//! Umbrella crate re-exporting the `ixp-vantage` public API.
pub use ixp_cert as cert;
pub use ixp_core as core;
pub use ixp_dns as dns;
pub use ixp_faults as faults;
pub use ixp_netmodel as netmodel;
pub use ixp_obs as obs;
pub use ixp_obsd as obsd;
pub use ixp_sflow as sflow;
pub use ixp_supervisor as supervisor;
pub use ixp_traffic as traffic;
pub use ixp_transport as transport;
pub use ixp_wire as wire;
