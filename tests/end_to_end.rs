//! End-to-end integration: synthetic Internet → sFlow bytes → analysis
//! pipeline → every experiment of the paper, on one shared tiny model.

use std::sync::OnceLock;

use ixp_vantage::core::analyzer::{Analyzer, StudyReport};
use ixp_vantage::core::{baseline, blindspots, changes, cluster, hetero, longitudinal, visibility};
use ixp_vantage::netmodel::{InternetModel, ScaleConfig, Week};

fn model() -> &'static InternetModel {
    static M: OnceLock<InternetModel> = OnceLock::new();
    M.get_or_init(|| InternetModel::generate(ScaleConfig::tiny(), 777))
}

fn analyzer() -> &'static Analyzer<'static> {
    static A: OnceLock<Analyzer<'static>> = OnceLock::new();
    A.get_or_init(|| Analyzer::new(model()))
}

fn study() -> &'static StudyReport {
    static S: OnceLock<StudyReport> = OnceLock::new();
    S.get_or_init(|| analyzer().run_study(8))
}

#[test]
fn fig1_filtering_cascade_shape() {
    let report = study().reference();
    let f = &report.snapshot.filter;
    use ixp_vantage::core::Category::*;
    let total = f.total();
    assert!(total.bytes > 0);
    // Peering dominates; the removed slivers are small; TCP beats UDP.
    assert!(f.peering().share_of(&total) > 95.0);
    assert!(f.share(Ipv6) < 2.0);
    assert!(f.share(NonMemberOrLocal) < 2.0);
    assert!(f.share(Icmp) + f.share(OtherTransport) < 1.5);
    let peering = f.peering();
    let tcp_share = f.get(PeeringTcp).share_of(&peering);
    assert!((70.0..95.0).contains(&tcp_share), "TCP share {tcp_share:.1}");
}

#[test]
fn table1_visibility_hierarchy() {
    let report = study().reference();
    let t1 = visibility::table1(&report.snapshot);
    // The vantage point sees most of the routed world each week...
    let as_coverage = t1.peering.ases as f64 / model().registry.len() as f64;
    assert!(as_coverage > 0.5, "AS coverage {as_coverage:.2}");
    // ...and the server view is a proper subset.
    assert!(t1.server.ips < t1.peering.ips);
    assert!(t1.server.ases <= t1.peering.ases);
    // Server view still spans about half the ASes (paper: ~50 %).
    assert!(t1.server.ases as f64 / t1.peering.ases as f64 > 0.1);
}

#[test]
fn table3_member_traffic_concentration() {
    let report = study().reference();
    let t3 = visibility::table3(&report.snapshot);
    // Traffic concentrates on A(L) much more than AS counts do (paper:
    // 67.3 % of traffic vs 1.0 % of ASes).
    let traffic_member = t3.peering[3][0];
    let ases_member = t3.peering[2][0];
    assert!(
        traffic_member > ases_member * 2.0,
        "traffic A(L) {traffic_member:.1} vs ASes A(L) {ases_member:.1}"
    );
    // Server traffic is at least comparably member-concentrated (paper:
    // 82.6 % vs 67.3 %; the strict ordering holds at paper scale — see
    // EXPERIMENTS.md E6 — but is noisy at the tiny test scale).
    assert!(t3.server[3][0] > t3.peering[3][0] - 15.0);
}

#[test]
fn fig2_concentration_head() {
    let report = study().reference();
    let f2 = visibility::fig2(report);
    // The head of the rank plot concentrates traffic (paper: top-34 > 6 %).
    assert!(f2.top34_share > 6.0, "top-34 share {:.1}", f2.top34_share);
    assert!(f2.above_half_percent > 0);
}

#[test]
fn longitudinal_stable_pool_properties() {
    let (f4a, _, f4c, f5) = longitudinal::churn(study());
    let s = longitudinal::summary(&f4a, &f4c, &f5);
    // Paper: ≈ 30 % stable IPs, ≈ 70 % stable ASes, > 60 % of traffic from
    // the stable pool. Tolerances widen at tiny scale.
    assert!((15.0..60.0).contains(&s.stable_ip_share), "stable IPs {:.1}", s.stable_ip_share);
    assert!(s.stable_as_share > s.stable_ip_share);
    assert!(s.min_stable_traffic_share > 35.0, "stable traffic {:.1}", s.min_stable_traffic_share);
}

#[test]
fn events_are_detectable() {
    let study = study();
    // HTTPS drift up.
    let trend = changes::https_trend(study);
    assert!(trend.traffic_slope > 0.0 || trend.server_slope > 0.0);
    // EC2 Ireland ramp.
    let ec2 = changes::ec2_verdict(&changes::range_series(study, "eu-ireland"));
    assert!(ec2.after > ec2.before);
    // Sandy.
    let sandy = changes::outage_verdict(&changes::range_series(study, "sc-us-east-1"));
    assert!(sandy.week43 > 0 && sandy.week44 == 0 && sandy.week45 > 0);
    // Reseller growth: combined across resellers (single cones are tiny at
    // this scale).
    let series = changes::reseller_series(study);
    assert!(!series.is_empty());
    let head: usize = series.iter().map(|s| s.counts[..5].iter().sum::<usize>()).sum();
    let tail: usize =
        series.iter().map(|s| s.counts[s.counts.len() - 5..].iter().sum::<usize>()).sum();
    assert!(tail > head, "no reseller growth: head {head}, tail {tail}");
}

#[test]
fn clustering_and_heterogeneity() {
    let report = study().reference();
    let clusters = cluster::cluster(report, &analyzer().dns);
    // A partition with step 1 dominating.
    assert_eq!(
        clusters.clustered_total() + clusters.unclustered,
        report.census.len()
    );
    let shares = clusters.step_shares();
    assert!(shares[0] > shares[1] && shares[0] > shares[2]);
    // Validated FP rate is small.
    let v = cluster::validate_clusters(&clusters, report, model());
    assert!(v.false_positive_rate < 0.10);

    // Fig. 6: heterogeneity in both directions.
    let f6b = hetero::fig6b(&clusters, 2, 50);
    assert!(f6b.points.iter().any(|(_, _, ases)| *ases > 3));
    let f6c = hetero::fig6c(report, &clusters, 1);
    assert!(f6c.points.iter().any(|(_, _, orgs)| *orgs > 2));

    // Fig. 7: Akamai-like off-link traffic exists but direct dominates.
    let f7 = hetero::link_usage(analyzer(), report, &clusters, "akamai.example").unwrap();
    assert!(f7.offlink_share > 0.0 && f7.offlink_share < 60.0);
    assert!(f7.servers_via_other_links > 0);
}

#[test]
fn blindspots_and_baselines() {
    let report = study().reference();
    // Domain recovery favours the popular head (paper: 80/63/20).
    let rec = blindspots::domain_recovery(report, model());
    assert!(rec.top_percentile >= rec.full_list);
    // The resolver campaign finds servers the IXP misses.
    let campaign = blindspots::resolver_campaign(analyzer(), report, Week::REFERENCE, 6);
    assert!(campaign.found > 0);
    assert!(campaign.unseen_total() > 0);
    // Port-based classification over-claims.
    let pb = baseline::port_baseline(analyzer(), report);
    assert!(pb.false_servers > 0);
}

#[test]
fn study_is_deterministic_across_fresh_models() {
    let m1 = InternetModel::generate(ScaleConfig::tiny(), 31337);
    let m2 = InternetModel::generate(ScaleConfig::tiny(), 31337);
    let r1 = Analyzer::new(&m1).run_week(Week::REFERENCE);
    let r2 = Analyzer::new(&m2).run_week(Week::REFERENCE);
    assert_eq!(r1.census.len(), r2.census.len());
    assert_eq!(r1.snapshot.peering.ips, r2.snapshot.peering.ips);
    assert_eq!(r1.snapshot.https.confirmed, r2.snapshot.https.confirmed);
}
