//! Transport chaos-soak acceptance gate: the wire front-end must survive
//! combined UDP-level faults (5 % loss, duplication, reordering,
//! truncation), template churn (withhold windows, layout flaps, exporter
//! restarts), and a mid-stream kill-and-resume of both the transport
//! intake and the supervisor — with byte-identical recovery, exact
//! extended conservation, and Table 1 drift under 2 %.

use std::sync::OnceLock;

use ixp_vantage::core::analyzer::{Analyzer, WeeklyReport};
use ixp_vantage::core::{visibility, WeekScan};
use ixp_vantage::faults::{WireFaultConfig, WirePlan};
use ixp_vantage::netmodel::{InternetModel, ScaleConfig, Week};
use ixp_vantage::obs::Obs;
use ixp_vantage::supervisor::{Supervisor, SupervisorConfig};
use ixp_vantage::transport::{
    generate, Drained, FlowGenConfig, TransportConfig, TransportIntake, TransportMetrics,
    TransportStats,
};
use ixp_vantage::{faults, transport};

const SEED: u64 = 1313;

/// Peer identity the sFlow week feed uses at the transport front door.
const SFLOW_PEER: u64 = 0x5F10;

/// Flow-export packets mixed into the week feed.
const FLOW_PACKETS: u64 = 400;

fn model() -> &'static InternetModel {
    static M: OnceLock<InternetModel> = OnceLock::new();
    M.get_or_init(|| InternetModel::generate(ScaleConfig::tiny(), SEED))
}

fn analyzer() -> &'static Analyzer<'static> {
    static A: OnceLock<Analyzer<'static>> = OnceLock::new();
    A.get_or_init(|| Analyzer::new(model()))
}

/// The fault-free reference-week report drift is measured against.
fn clean() -> &'static WeeklyReport {
    static C: OnceLock<WeeklyReport> = OnceLock::new();
    C.get_or_init(|| analyzer().run_week(Week::REFERENCE))
}

fn members() -> u32 {
    model().registry.members_at(Week::REFERENCE).len() as u32
}

/// The flow-export half of the workload: NetFlow v5/v9/IPFIX with
/// seeded withhold/flap windows and exporter restarts — a withhold
/// window at the very start so the first templated packets must park —
/// plus a small *orphan* workload from exporters (remapped to their own
/// peer identities) whose templates are withheld for the whole stream:
/// their packets can never resolve, so `finish` must flush them into
/// `template_missing_dropped` — the soak asserts that bucket moves.
/// A few leading-0xFF garbage packets keep the decode-error path hot.
fn flow_workload() -> Vec<(u64, Vec<u8>)> {
    let mut withhold = faults::withhold_windows(SEED, FLOW_PACKETS, 2, 50);
    withhold.insert(0, (0, 20));
    let cfg = FlowGenConfig {
        seed: SEED,
        packets: FLOW_PACKETS,
        withhold,
        flap: faults::flap_windows(SEED, FLOW_PACKETS, 1, 30),
        restarts: faults::exporter_restart_offsets(SEED, FLOW_PACKETS, 2),
        ..FlowGenConfig::default()
    };
    let mut out = generate(&cfg);
    let orphans = FlowGenConfig {
        seed: SEED ^ 0x0DD,
        packets: 24,
        exporters: 2, // v9 and IPFIX only — both templated
        withhold: vec![(0, 24)],
        ..FlowGenConfig::default()
    };
    // Remap the orphans onto distinct peers: the template cache keys
    // domains by (peer, odid), so the main exporters' templates can
    // never adopt these packets.
    out.extend(generate(&orphans).into_iter().map(|(peer, p)| (peer + 0x0DD0_0000, p)));
    for i in 0..6u8 {
        out.push((0x6A4Bu64, vec![0xFF; 9 + usize::from(i)]));
    }
    out
}

/// The combined workload, before wire faults: the reference week's sFlow
/// datagrams with flow-export packets interleaved at a fixed stride.
fn workload() -> &'static Vec<(u64, Vec<u8>)> {
    static W: OnceLock<Vec<(u64, Vec<u8>)>> = OnceLock::new();
    W.get_or_init(|| {
        let sflow: Vec<(u64, Vec<u8>)> =
            analyzer().feed(Week::REFERENCE).map(|d| (SFLOW_PEER, d)).collect();
        let mut flows = flow_workload().into_iter();
        let stride = (sflow.len() / usize::try_from(FLOW_PACKETS).unwrap_or(1)).max(1);
        let mut out = Vec::with_capacity(sflow.len() + FLOW_PACKETS as usize);
        for (i, dg) in sflow.into_iter().enumerate() {
            out.push(dg);
            if (i + 1) % stride == 0 {
                out.extend(flows.next());
            }
        }
        out.extend(flows);
        out
    })
}

/// The faulted stream, materialized once so every arm sees identical
/// bytes: 5 % loss plus duplication, reordering, and truncation.
fn faulted() -> &'static Vec<(u64, Vec<u8>)> {
    static F: OnceLock<Vec<(u64, Vec<u8>)>> = OnceLock::new();
    F.get_or_init(|| {
        let wire = WireFaultConfig {
            seed: SEED,
            drop: 0.05,
            duplicate: 0.01,
            reorder: 0.01,
            truncate: 0.002,
        };
        WirePlan::new(workload().iter().cloned(), wire).collect()
    })
}

fn config() -> SupervisorConfig {
    SupervisorConfig {
        ring_capacity: 256,
        arrivals_per_tick: 64,
        drain_budget: 96,
        ..SupervisorConfig::default()
    }
}

/// One soak arm's complete observable outcome.
struct Outcome {
    sup_checkpoint: Vec<u8>,
    transport_state: Vec<u8>,
    metrics: String,
    stats: TransportStats,
    fully_accounted: bool,
    report: WeeklyReport,
}

/// Drive the faulted stream through an intake-fed supervisor. With
/// `kill_at`, the run "dies" at that stream offset: both the supervisor
/// checkpoint and the transport state are serialized, everything is
/// dropped, and a fresh process (fresh registry included) restores and
/// continues — exactly the repro binary's `--kill-at`/`--resume` path.
fn run(kill_at: Option<usize>) -> Outcome {
    let stream = faulted();
    let mut obs = Obs::deterministic();
    let mut sup = Supervisor::with_obs(
        WeekScan::with_obs(Week::REFERENCE, members(), &obs),
        config(),
        &obs,
    );
    let mut intake = TransportIntake::new(TransportConfig::default());
    intake.bind_metrics(TransportMetrics::register(&obs.registry));

    for (i, (peer, packet)) in stream.iter().enumerate() {
        if kill_at == Some(i) {
            let sup_ck = sup.checkpoint();
            let t_ck = intake.save_state();
            obs = Obs::deterministic();
            sup = Supervisor::restore(&sup_ck, config()).expect("restore own checkpoint");
            sup.bind_obs(&obs);
            intake = TransportIntake::restore_from(&t_ck).expect("restore own transport state");
            intake.bind_metrics(TransportMetrics::register(&obs.registry));
        }
        intake.offer(*peer, packet);
        for unit in intake.drain(usize::MAX) {
            if let Drained::Sflow { datagram, .. } = unit {
                sup.offer(datagram);
            }
        }
    }
    sup.finish();
    let stats = intake.finish();
    Outcome {
        sup_checkpoint: sup.checkpoint(),
        transport_state: intake.save_state(),
        metrics: ixp_vantage::obs::json::render(&obs.snapshot()),
        stats,
        fully_accounted: intake.fully_accounted(),
        report: analyzer().report_from_scan(sup.into_scan()),
    }
}

fn drift_pct(value: u64, reference: u64) -> f64 {
    100.0 * (value as f64 - reference as f64).abs() / reference.max(1) as f64
}

#[test]
fn soak_holds_conservation_and_drift_under_combined_chaos() {
    let outcome = run(None);
    let s = outcome.stats;

    // The chaos actually happened: templates were withheld past the end,
    // flow packets were duplicated on the wire, and decoders saw damage.
    assert!(s.template_missing_dropped > 0, "no template-missing drops: {s:?}");
    assert!(s.duplicates > 0, "no duplicates suppressed: {s:?}");
    assert!(s.decode_errors > 0, "no decode errors: {s:?}");
    assert!(s.v5_packets > 0 && s.v9_packets > 0 && s.ipfix_packets > 0, "{s:?}");

    // Exact extended conservation, with no transient terms after finish.
    assert!(outcome.fully_accounted, "{s:?}");
    assert_eq!(s.offered, faulted().len() as u64);
    assert_eq!(s.offered, s.received + s.shed);
    assert_eq!(
        s.received,
        s.accepted + s.duplicates + s.decode_errors + s.template_missing_dropped
    );
    assert_eq!(s.decode_errors, s.truncated + s.bad_version + s.inconsistent);
    assert_eq!(s.pending, 0);
    assert_eq!(s.pending_bytes, 0);

    // Table 1 stays within the chaos drift tolerance.
    let clean_t1 = visibility::table1(&clean().snapshot);
    let t1 = visibility::table1(&outcome.report.snapshot);
    for (label, got, want) in [
        ("peering IPs", t1.peering.ips, clean_t1.peering.ips),
        ("peering prefixes", t1.peering.prefixes, clean_t1.peering.prefixes),
        ("peering ASes", t1.peering.ases, clean_t1.peering.ases),
    ] {
        let drift = drift_pct(got, want);
        assert!(drift <= 2.0, "{label} drifted {drift:.2} % ({got} vs {want})");
    }
}

#[test]
fn kill_and_resume_mid_stream_is_byte_identical() {
    let whole = run(None);
    // Die halfway through, inside the live part of the stream, where
    // dedup windows, the template cache, and parked packets are all hot.
    let resumed = run(Some(faulted().len() / 2));
    assert_eq!(
        whole.sup_checkpoint, resumed.sup_checkpoint,
        "supervisor checkpoint diverged across kill-and-resume"
    );
    assert_eq!(
        whole.transport_state, resumed.transport_state,
        "transport state diverged across kill-and-resume"
    );
    assert_eq!(
        whole.metrics, resumed.metrics,
        "metrics snapshot diverged across kill-and-resume"
    );
    assert_eq!(whole.stats, resumed.stats);
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = run(None);
    let b = run(None);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.sup_checkpoint, b.sup_checkpoint);
    assert_eq!(a.transport_state, b.transport_state);
}

#[test]
fn overload_sheds_visibly_never_silently() {
    // A deliberately tiny inbox with a lazy drain cadence: the front
    // door must shed, and every shed packet must be counted.
    let mut intake = TransportIntake::new(TransportConfig {
        inbox_capacity: 16,
        ..TransportConfig::default()
    });
    for (i, (peer, packet)) in flow_workload().iter().enumerate() {
        intake.offer(*peer, packet);
        if i % 8 == 7 {
            intake.drain(2);
        }
    }
    intake.drain(usize::MAX);
    let s = intake.finish();
    assert!(s.shed > 0, "tiny inbox never shed: {s:?}");
    assert!(intake.fully_accounted(), "{s:?}");
    assert_eq!(s.offered, s.received + s.shed);
}

/// A mid-stream kill of the transport front-end leaves a flight dump
/// whose tail names the cut, and whose body carries the transport-side
/// journal traffic (template churn, parking, replay, sheds) that explains
/// what the intake was doing when it died. Damaged dumps are rejected
/// with a typed error.
#[test]
fn kill_leaves_a_flight_dump_naming_the_cut() {
    use ixp_vantage::obs::journal::{self, EventKind};

    let stream = faulted();
    let kill_at = stream.len() / 2;
    let journal = ixp_vantage::obs::Journal::deterministic();
    let mut sup = Supervisor::new(WeekScan::new(Week::REFERENCE, members()), config());
    sup.bind_journal(journal.clone());
    let mut intake = TransportIntake::new(TransportConfig::default());
    intake.bind_journal(journal.clone());

    for (peer, packet) in stream.iter().take(kill_at) {
        intake.offer(*peer, packet);
        for unit in intake.drain(usize::MAX) {
            if let Drained::Sflow { datagram, .. } = unit {
                sup.offer(datagram);
            }
        }
    }
    // As the repro binary's transport kill path (`sub_agent` 1 marks the
    // transport side), then the dump to `<state>.flight`. The whole ring
    // goes into the dump here so the early template churn — parked during
    // the opening withhold window — is retained alongside the kill edge.
    journal.record(EventKind::Kill, 0, 1, kill_at as u64, sup.stats().ticks);
    let dir = std::env::temp_dir().join(format!("ixp-transport-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("transport.state.flight");
    std::fs::write(&path, journal.dump_flight(journal::DEFAULT_CAPACITY)).unwrap();
    assert!(path.is_file(), "flight dump missing after transport kill");

    let bytes = std::fs::read(&path).unwrap();
    let events = journal::parse_flight(&bytes).expect("flight dump parses");
    let tail = events.last().expect("flight dump holds the journal tail");
    assert_eq!(tail.kind, EventKind::Kill);
    assert_eq!(tail.sub_agent, 1, "kill edge must name the transport side");
    assert_eq!(tail.a, kill_at as u64, "flight tail must name the cut offset");
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            EventKind::TemplateInstall | EventKind::Park | EventKind::Replay | EventKind::Shed
        )),
        "flight dump carries no transport-side context: {events:?}"
    );

    let mut flipped = bytes.clone();
    faults::chaos::flip_bit(&mut flipped, SEED);
    let err = journal::parse_flight(&flipped)
        .err()
        .expect("bit-flipped flight dump must be rejected");
    assert!(!err.to_string().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_transport_state_fails_closed() {
    let state = run(None).transport_state;
    let mut flipped = state.clone();
    faults::chaos::flip_bit(&mut flipped, SEED);
    assert!(
        TransportIntake::restore_from(&flipped).is_err(),
        "bit-flipped transport state restored"
    );
    let truncated = faults::chaos::truncate_at_random(&state, SEED);
    assert!(
        TransportIntake::restore_from(&truncated).is_err(),
        "truncated transport state restored"
    );
    // And the stream's FIN sentinel is never a valid packet.
    let mut t = TransportIntake::new(TransportConfig::default());
    t.offer(1, transport::FIN);
    t.drain(1);
    assert_eq!(t.stats().decode_errors + t.stats().shed, 1);
}
