//! Cross-crate behaviour of the active-measurement instruments (DNS,
//! crawler, resolver pool) against the same model the traffic comes from.

use std::sync::OnceLock;

use ixp_vantage::cert::{validate_fetches, CrawlSim, RootStore};
use ixp_vantage::dns::{DnsDb, ResolverPool};
use ixp_vantage::netmodel::{InternetModel, ScaleConfig, ServerFlags, Week};

fn model() -> &'static InternetModel {
    static M: OnceLock<InternetModel> = OnceLock::new();
    M.get_or_init(|| InternetModel::generate(ScaleConfig::tiny(), 555))
}

#[test]
fn dns_and_crawler_agree_on_identity() {
    let model = model();
    let dns = DnsDb::build(model);
    let crawl = CrawlSim::build(model, model.seed);
    let store = RootStore::default_store();

    let mut agreements = 0usize;
    for server in model.servers.servers() {
        if !server.flags.has(ServerFlags::HTTPS)
            || !server.flags.has(ServerFlags::HAS_PTR)
            || !server.active_in(Week::REFERENCE)
        {
            continue;
        }
        let fetches = crawl.fetch_repeatedly(model, server.ip, Week::REFERENCE, 3);
        let Ok(info) = validate_fetches(&fetches, &store) else { continue };
        // The certificate's names and the hostname's SOA must lead to the
        // same administrative zone (this is what powers clustering step 1).
        let host_soa = dns.soa_of_ip(server.ip).ok().flatten();
        let cert_soa = info.names.iter().find_map(|n| dns.soa_lookup(n));
        if let (Some(a), Some(b)) = (host_soa, cert_soa) {
            assert_eq!(a.zone, b.zone, "identity mismatch for {}", server.ip);
            agreements += 1;
        }
    }
    assert!(agreements > 3, "only {agreements} DNS/cert agreements checked");
}

#[test]
fn https_from_gates_both_traffic_and_crawl() {
    let model = model();
    let crawl = CrawlSim::build(model, model.seed);
    let late = model
        .servers
        .servers()
        .iter()
        .find(|s| {
            s.flags.has(ServerFlags::HTTPS)
                && s.https_from > 40
                && s.activity & 0b1 != 0 // active at week 35
        })
        .expect("a late TLS adopter exists");
    // Before the switch-on: no TLS.
    let before = crawl.fetch(model, late.ip, Week(36), 0);
    assert!(!matches!(before, ixp_vantage::cert::CrawlResult::Tls(_)));
    // After: TLS (if the server is still around).
    if late.exists_in(Week(late.https_from.max(45))) {
        let after = crawl.fetch(model, late.ip, Week(late.https_from.max(45)), 0);
        assert!(matches!(after, ixp_vantage::cert::CrawlResult::Tls(_)));
    }
}

#[test]
fn resolver_answers_respect_weekly_existence() {
    let model = model();
    let pool = ResolverPool::build(model, model.seed);
    let org = model.orgs.iter().max_by_key(|o| o.target_servers).unwrap();
    for week in [Week::FIRST, Week::REFERENCE, Week::LAST] {
        for k in 0..10 {
            for ip in pool.resolve(model, &org.domains[0], k, week) {
                let s = model.servers.by_ip(ip).unwrap();
                assert!(s.exists_in(week), "{ip} answered but does not exist in {week}");
            }
        }
    }
}

#[test]
fn hidden_servers_never_cross_the_fabric_but_exist_to_instruments() {
    let model = model();
    let hidden: Vec<_> = model
        .servers
        .servers()
        .iter()
        .filter(|s| s.flags.has(ServerFlags::HIDDEN))
        .collect();
    assert!(!hidden.is_empty());
    for s in &hidden {
        for w in Week::all() {
            assert!(!s.active_in(w), "hidden server active at the IXP");
        }
    }
    // At least one hidden server is resolvable via DNS instruments (it has
    // a PTR under its org's schema).
    let dns = DnsDb::build(model);
    assert!(
        hidden.iter().any(|s| dns.ptr_lookup(s.ip).is_some()),
        "no hidden server has DNS presence"
    );
}
