//! Chaos-soak acceptance gate: the supervised pipeline must survive
//! process-level chaos — kill-and-resume at seeded datagram offsets,
//! sustained overload that sheds into the bounded intake ring, and
//! corrupted or truncated checkpoint images — with byte-identical
//! recovery, zero silent discards, and Table 1 drift under 2 %.

use std::sync::OnceLock;

use ixp_vantage::core::analyzer::{Analyzer, WeeklyReport};
use ixp_vantage::core::{visibility, WeekScan};
use ixp_vantage::faults::{chaos, FaultConfig, FaultPlan};
use ixp_vantage::netmodel::{InternetModel, ScaleConfig, Week};
use ixp_vantage::obs::Obs;
use ixp_vantage::supervisor::{Supervisor, SupervisorConfig};

const SEED: u64 = 777;

fn model() -> &'static InternetModel {
    static M: OnceLock<InternetModel> = OnceLock::new();
    M.get_or_init(|| InternetModel::generate(ScaleConfig::tiny(), SEED))
}

fn analyzer() -> &'static Analyzer<'static> {
    static A: OnceLock<Analyzer<'static>> = OnceLock::new();
    A.get_or_init(|| Analyzer::new(model()))
}

/// The fault-free reference-week report the soak compares drift against.
fn clean() -> &'static WeeklyReport {
    static C: OnceLock<WeeklyReport> = OnceLock::new();
    C.get_or_init(|| analyzer().run_week(Week::REFERENCE))
}

/// The reference week's datagrams after a moderately hostile fault plan,
/// materialized once — every supervised arm must see identical bytes.
fn faulted_feed() -> &'static Vec<Vec<u8>> {
    static F: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    F.get_or_init(|| {
        let cfg = FaultConfig {
            seed: SEED,
            drop: 0.02,
            duplicate: 0.005,
            reorder: 0.005,
            truncate: 0.001,
            corrupt: 0.001,
            restarts: vec![(0, 400)],
            ..FaultConfig::default()
        };
        FaultPlan::new(analyzer().feed(Week::REFERENCE), cfg).collect()
    })
}

fn members() -> u32 {
    model().registry.members_at(Week::REFERENCE).len() as u32
}

fn config() -> SupervisorConfig {
    SupervisorConfig {
        ring_capacity: 128,
        arrivals_per_tick: 32,
        drain_budget: 48,
        ..SupervisorConfig::default()
    }
}

fn fresh(obs: Option<&Obs>) -> Supervisor {
    match obs {
        Some(obs) => Supervisor::with_obs(
            WeekScan::with_obs(Week::REFERENCE, members(), obs),
            config(),
            obs,
        ),
        None => Supervisor::new(WeekScan::new(Week::REFERENCE, members()), config()),
    }
}

fn drift_pct(chaotic: u64, clean: u64) -> f64 {
    100.0 * (chaotic as f64 - clean as f64).abs() / clean.max(1) as f64
}

/// Kill-and-resume at every seeded offset: each killed run, restored from
/// its own sealed checkpoint and replayed over the regenerated feed, ends
/// with a checkpoint — and a metrics snapshot — byte-identical to the
/// uninterrupted run's. Zero silent discards throughout.
#[test]
fn kill_and_resume_recovers_byte_identically() {
    let feed = faulted_feed();
    let obs_whole = Obs::deterministic();
    let mut whole = fresh(Some(&obs_whole));
    whole.run_feed(feed.iter().cloned(), None);
    let whole_ckpt = whole.checkpoint();
    let whole_metrics = ixp_vantage::obs::json::render(&obs_whole.snapshot());

    for kill_at in chaos::kill_offsets(SEED, feed.len() as u64, 4) {
        let mut killed = fresh(None);
        let done = killed.run_feed(feed.iter().cloned(), Some(kill_at));
        assert!(!done, "kill offset {kill_at} was never reached");
        let ckpt = killed.checkpoint();
        drop(killed);

        let obs = Obs::deterministic();
        let mut resumed = Supervisor::restore(&ckpt, config())
            .unwrap_or_else(|e| panic!("restore at {kill_at}: {e}"));
        resumed.bind_obs(&obs);
        assert_eq!(resumed.offered(), kill_at, "resume cursor at {kill_at}");
        resumed.run_feed(feed.iter().cloned(), None);

        assert_eq!(
            resumed.checkpoint(),
            whole_ckpt,
            "checkpoint diverged after kill at {kill_at}"
        );
        assert_eq!(
            ixp_vantage::obs::json::render(&obs.snapshot()),
            whole_metrics,
            "metrics snapshot diverged after kill at {kill_at}"
        );
        let health = resumed.into_scan().ingest_health();
        assert!(health.fully_accounted(), "silent discard after kill at {kill_at}");
    }
}

/// Every injected kill leaves a flight dump beside the checkpoint — the
/// sealed tail of the event journal — that parses fail-closed and whose
/// last event names the killed offset and tick count, exactly what a
/// post-mortem needs. A bit-flipped dump is rejected with a typed error.
#[test]
fn every_kill_leaves_a_parseable_flight_dump() {
    use ixp_vantage::obs::journal::{self, EventKind};

    let feed = faulted_feed();
    let dir = std::env::temp_dir().join(format!("ixp-chaos-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    for kill_at in chaos::kill_offsets(SEED, feed.len() as u64, 4) {
        let journal = ixp_vantage::obs::Journal::deterministic();
        let mut killed = fresh(None);
        killed.bind_journal(journal.clone());
        let done = killed.run_feed(feed.iter().cloned(), Some(kill_at));
        assert!(!done, "kill offset {kill_at} was never reached");

        // As the repro binary's kill path: record the kill edge, then dump
        // the journal tail to `<checkpoint>.flight`.
        journal.record(EventKind::Kill, 0, 0, killed.offered(), killed.stats().ticks);
        let path = dir.join(format!("kill-{kill_at}.ckpt.flight"));
        std::fs::write(&path, journal.dump_flight(64)).unwrap();
        assert!(path.is_file(), "flight dump missing after kill at {kill_at}");

        let bytes = std::fs::read(&path).unwrap();
        let events = journal::parse_flight(&bytes)
            .unwrap_or_else(|e| panic!("flight dump after kill at {kill_at}: {e}"));
        let tail = events.last().expect("flight dump holds the journal tail");
        assert_eq!(tail.kind, EventKind::Kill, "tail must be the kill edge");
        assert_eq!(tail.a, kill_at, "flight tail must name the killed offset");
        // The dump explains the failure: supervisor activity precedes it.
        assert!(
            events.iter().any(|e| matches!(e.kind, EventKind::TickStart | EventKind::TickEnd)),
            "flight dump carries no tick context for kill at {kill_at}"
        );

        // A damaged dump is rejected with a typed error, never a panic.
        let mut flipped = bytes.clone();
        chaos::flip_bit(&mut flipped, kill_at);
        let err = journal::parse_flight(&flipped)
            .err()
            .unwrap_or_else(|| panic!("bit-flipped flight dump (kill {kill_at}) parsed"));
        assert!(!err.to_string().is_empty());
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupted and truncated checkpoint images are rejected with a typed
/// error — a restore either succeeds completely or fails closed; it never
/// panics and never yields a half-restored pipeline.
#[test]
fn damaged_checkpoints_fail_closed() {
    let feed = faulted_feed();
    let mut sup = fresh(None);
    sup.run_feed(feed.iter().cloned(), Some((feed.len() / 2) as u64));
    let ckpt = sup.checkpoint();

    for seed in 0..64u64 {
        let mut flipped = ckpt.clone();
        chaos::flip_bit(&mut flipped, seed);
        let err = Supervisor::restore(&flipped, config())
            .err()
            .unwrap_or_else(|| panic!("bit flip (seed {seed}) restored"));
        // The error is typed and printable, not a panic payload.
        assert!(!err.to_string().is_empty());

        let truncated = chaos::truncate_at_random(&ckpt, seed);
        assert!(
            Supervisor::restore(&truncated, config()).is_err(),
            "truncation (seed {seed}) restored"
        );
    }
}

/// Sustained overload: with the drain stage stalled in seeded burst
/// windows, the bounded ring sheds — visibly. Every shed datagram lands in
/// the accounting (`ingested = accepted + duplicates + errors + shed`),
/// deadline misses are counted, and the run still recovers byte-identically
/// across a kill inside a burst.
#[test]
fn overload_sheds_visibly_and_recovers() {
    let feed = faulted_feed();
    let total = feed.len() as u64;
    let bursts = chaos::overload_bursts(SEED, total, 2, (total / 8).max(1));
    assert!(!bursts.is_empty());

    let drive = |sup: &mut Supervisor, kill_at: Option<u64>| -> bool {
        let skip = sup.offered() as usize;
        for (i, dg) in feed.iter().enumerate().skip(skip) {
            if kill_at.is_some_and(|k| sup.offered() >= k) {
                return false;
            }
            sup.set_stalled(bursts.iter().any(|b| b.contains(i as u64 + 1)));
            sup.offer(dg.clone());
        }
        sup.set_stalled(false);
        sup.finish();
        true
    };

    let mut whole = fresh(None);
    drive(&mut whole, None);
    let stats = whole.stats();
    assert!(stats.shed > 0, "overload bursts never filled the ring");
    assert!(stats.deadline_misses > 0, "stalled ticks missed no deadlines");
    assert_eq!(stats.high_water, config().ring_capacity, "ring never hit capacity");
    let health = whole.scan().ingest_health();
    assert_eq!(health.shed, stats.shed, "ring and scan disagree on sheds");
    assert!(health.fully_accounted(), "shed accounting does not balance");
    let whole_ckpt = whole.checkpoint();

    // Kill inside the first burst — the ring is full and mid-shed — and
    // resume; the queued datagrams are part of the checkpoint.
    let kill_at = bursts.first().map(|b| b.from + (b.until - b.from) / 2).unwrap_or(1);
    let mut killed = fresh(None);
    assert!(!drive(&mut killed, Some(kill_at)));
    let ckpt = killed.checkpoint();
    let mut resumed = Supervisor::restore(&ckpt, config()).expect("restore mid-burst");
    drive(&mut resumed, None);
    assert_eq!(resumed.checkpoint(), whole_ckpt, "divergence after mid-burst kill");
}

/// The headline gate: stream faults, overload bursts, and a chain of
/// kill-and-resume cycles together move Table 1's unique-prefix and
/// unique-AS counts by less than 2 % against the fault-free run — and the
/// soaked pipeline's final state is byte-identical to the same chaos
/// without any kills.
#[test]
fn chaos_soak_stays_within_two_percent_drift() {
    let feed = faulted_feed();
    let total = feed.len() as u64;
    let bursts = chaos::overload_bursts(SEED.wrapping_add(1), total, 2, (total / 10).max(1));
    let kills = chaos::kill_offsets(SEED.wrapping_add(1), total, 3);

    let drive = |sup: &mut Supervisor, kill_at: Option<u64>| -> bool {
        let skip = sup.offered() as usize;
        for (i, dg) in feed.iter().enumerate().skip(skip) {
            if kill_at.is_some_and(|k| sup.offered() >= k) {
                return false;
            }
            sup.set_stalled(bursts.iter().any(|b| b.contains(i as u64 + 1)));
            sup.offer(dg.clone());
        }
        sup.set_stalled(false);
        sup.finish();
        true
    };

    let mut whole = fresh(None);
    drive(&mut whole, None);
    let whole_ckpt = whole.checkpoint();

    let mut sup = fresh(None);
    let mut resumes = 0;
    for &k in &kills {
        if drive(&mut sup, Some(k)) {
            break;
        }
        let ckpt = sup.checkpoint();
        sup = Supervisor::restore(&ckpt, config()).expect("restore in kill chain");
        resumes += 1;
    }
    drive(&mut sup, None);
    assert!(resumes >= 2, "soak exercised too few resumes: {resumes}");
    assert_eq!(sup.checkpoint(), whole_ckpt, "kill chain diverged from whole run");

    let health = sup.scan().ingest_health();
    assert!(health.fully_accounted(), "soak accounting does not balance");
    let report = analyzer().report_from_scan(sup.into_scan());
    let t1 = visibility::table1(&report.snapshot);
    let t1_clean = visibility::table1(&clean().snapshot);
    let prefixes = drift_pct(t1.peering.prefixes, t1_clean.peering.prefixes);
    let ases = drift_pct(t1.peering.ases, t1_clean.peering.ases);
    assert!(prefixes < 2.0, "unique-prefix drift {prefixes:.2} % >= 2 %");
    assert!(ases < 2.0, "unique-AS drift {ases:.2} % >= 2 %");
}
