//! Metrics smoke test (run by `scripts/ci.sh` after the repro harness has
//! written `target/metrics-a.json`):
//!
//! * the exported snapshot parses against the `ixp-obs/1` JSON schema,
//! * the required metric families are present,
//! * an in-process deterministic pipeline run snapshots byte-identically
//!   across two executions (the cross-process equivalent — two `repro`
//!   invocations — is byte-compared by `cmp` in ci.sh itself).

use ixp_vantage::core::analyzer::Analyzer;
use ixp_vantage::netmodel::{InternetModel, ScaleConfig, Week};
use ixp_vantage::obs::{json, Obs};

/// Families every instrumented run must publish. `dns_*` counters exist
/// from registration even when a run never exercises the resolver pool.
const REQUIRED_FAMILIES: &[&str] = &[
    "wire_frames_total",
    "sflow_datagrams_total",
    "sflow_accepted_total",
    "sflow_ingest_duration_ns",
    "core_stage_duration_ns",
    "cert_fetches_total",
    "dns_queries_total",
];

fn reference_snapshot_json() -> String {
    let model = InternetModel::generate(ScaleConfig::tiny(), 2012);
    let obs = Obs::deterministic();
    let analyzer = Analyzer::with_obs(&model, obs.clone());
    let _ = analyzer.run_week(Week::REFERENCE);
    json::render(&obs.snapshot())
}

fn assert_families(doc: &str, source: &str) {
    for family in REQUIRED_FAMILIES {
        assert!(doc.contains(family), "family {family} missing from {source}");
    }
}

#[test]
fn snapshot_parses_and_contains_required_families() {
    // Prefer the file a real repro run wrote (ci.sh); fall back to an
    // in-process run so `cargo test` alone also exercises the check.
    let (doc, source) = match std::fs::read_to_string("target/metrics-a.json") {
        Ok(s) => (s, "target/metrics-a.json (repro run)"),
        Err(_) => (reference_snapshot_json(), "in-process reference run"),
    };
    let parsed = json::parse(&doc).unwrap_or_else(|| panic!("{source}: snapshot does not parse"));
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some("ixp-obs/1"),
        "{source}: wrong schema tag"
    );
    let metrics = parsed
        .get("metrics")
        .and_then(|v| v.as_arr())
        .unwrap_or_else(|| panic!("{source}: metrics array missing"));
    assert!(!metrics.is_empty(), "{source}: metrics array empty");
    for m in metrics {
        assert!(m.get("name").and_then(|v| v.as_str()).is_some(), "{source}: unnamed metric");
        assert!(m.get("kind").and_then(|v| v.as_str()).is_some(), "{source}: kindless metric");
    }
    assert_families(&doc, source);
}

#[test]
fn same_seed_runs_snapshot_byte_identically() {
    let a = reference_snapshot_json();
    let b = reference_snapshot_json();
    assert_eq!(a, b, "deterministic runs must export identical snapshots");
    assert_families(&a, "in-process reference run");
}
