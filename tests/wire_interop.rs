//! Cross-crate wire interop: everything the generator emits must be
//! consumable by the collector-side crates, byte for byte, including under
//! corruption.

use ixp_vantage::netmodel::{InternetModel, ScaleConfig, Week};
use ixp_vantage::sflow::{Datagram, Sampler, SamplerConfig};
use ixp_vantage::traffic::{MixConfig, WeekStream};
use ixp_vantage::wire::dissect::{Dissection, Network};

#[test]
fn generator_output_survives_full_decode_path() {
    let model = InternetModel::generate(ScaleConfig::tiny(), 99);
    let stream = WeekStream::with_budget(&model, MixConfig::default(), Week(40), 99, 3_000);
    let mut samples = 0usize;
    let mut dissected = 0usize;
    for bytes in stream {
        let dg = Datagram::decode(&bytes).expect("valid sFlow from the generator");
        // Re-encode must round-trip.
        assert_eq!(Datagram::decode(&dg.encode()).unwrap(), dg);
        for s in &dg.samples {
            samples += 1;
            assert!(s.record.header.len() <= 128);
            if Dissection::parse(&s.record.header).is_ok() {
                dissected += 1;
            }
        }
    }
    assert_eq!(samples, 3_000);
    assert_eq!(dissected, samples, "every generated snippet must dissect");
}

#[test]
fn ipv4_headers_in_generated_frames_are_checksum_valid() {
    let model = InternetModel::generate(ScaleConfig::tiny(), 98);
    let stream = WeekStream::with_budget(&model, MixConfig::default(), Week(45), 98, 1_500);
    let mut checked = 0usize;
    for bytes in stream {
        let dg = Datagram::decode(&bytes).unwrap();
        for s in &dg.samples {
            let d = Dissection::parse(&s.record.header).unwrap();
            if let Network::Ipv4 { .. } = d.network {
                let l3 = &s.record.header[14..];
                let packet = ixp_vantage::wire::ipv4::Packet::new_snippet(l3).unwrap();
                assert!(packet.verify_checksum(), "bad IPv4 checksum in generated frame");
                checked += 1;
            }
        }
    }
    assert!(checked > 1_000);
}

#[test]
fn corrupted_datagrams_never_panic_the_scan() {
    use ixp_vantage::core::WeekScan;
    let model = InternetModel::generate(ScaleConfig::tiny(), 97);
    let mut scan = WeekScan::new(Week(45), 46);
    let stream = WeekStream::with_budget(&model, MixConfig::default(), Week(45), 97, 700);
    for (i, mut bytes) in stream.enumerate() {
        // Flip a byte in every second datagram.
        if i % 2 == 0 && !bytes.is_empty() {
            let idx = (i * 37) % bytes.len();
            bytes[idx] ^= 0xA5;
        }
        scan.ingest(&bytes); // must not panic
    }
    // The scan still produced something from the intact half.
    assert!(scan.filter.total().bytes > 0);
}

#[test]
fn classic_sampler_agrees_with_direct_synthesis_accounting() {
    // The workload generator synthesises the sampled stream directly; the
    // classic frame-by-frame sampler must agree on traffic accounting.
    use ixp_vantage::sflow::TrafficEstimate;
    let mut sampler = Sampler::new(SamplerConfig {
        rate: 32,
        source_id: 1,
        agent_address: std::net::Ipv4Addr::new(10, 0, 0, 9),
        samples_per_datagram: 5,
        seed: 7,
    });
    let frame = vec![0xABu8; 1000];
    let frames = 64_000u32;
    let mut estimate = TrafficEstimate::zero();
    for _ in 0..frames {
        if let Some(dg) = sampler.observe(&frame) {
            for s in &dg.samples {
                estimate.add_sample(s);
            }
        }
    }
    if let Some(dg) = sampler.flush() {
        for s in &dg.samples {
            estimate.add_sample(s);
        }
    }
    let true_bytes = u64::from(frames) * 1000;
    let err = (estimate.bytes as f64 - true_bytes as f64).abs() / true_bytes as f64;
    assert!(err < 0.10, "estimate off by {:.1} %", err * 100.0);
}
