//! Degraded-mode acceptance tests: the analysis pipeline behind the
//! paper's tables must survive a hostile sFlow transport — datagram loss,
//! duplication, reordering, truncation, bit corruption, agent restarts,
//! counter wraps, outage windows — with exact ingest accounting and only
//! marginal drift in the headline statistics.

use std::sync::OnceLock;

use ixp_vantage::core::analyzer::{Analyzer, WeeklyReport};
use ixp_vantage::core::visibility;
use ixp_vantage::faults::{FaultConfig, FaultPlan, OutageWindow};
use ixp_vantage::netmodel::{InternetModel, ScaleConfig, Week};

fn model() -> &'static InternetModel {
    static M: OnceLock<InternetModel> = OnceLock::new();
    M.get_or_init(|| InternetModel::generate(ScaleConfig::tiny(), 777))
}

fn analyzer() -> &'static Analyzer<'static> {
    static A: OnceLock<Analyzer<'static>> = OnceLock::new();
    A.get_or_init(|| Analyzer::new(model()))
}

/// The fault-free reference-week report all degraded runs compare against.
fn clean() -> &'static WeeklyReport {
    static C: OnceLock<WeeklyReport> = OnceLock::new();
    C.get_or_init(|| analyzer().run_week(Week::REFERENCE))
}

/// Run the reference week through a fault plan; return the report plus the
/// plan's injection stats.
fn degraded(cfg: FaultConfig) -> (WeeklyReport, ixp_vantage::faults::FaultStats) {
    let analyzer = analyzer();
    let mut plan = FaultPlan::new(analyzer.feed(Week::REFERENCE), cfg);
    let scan = analyzer.scan_week_from(Week::REFERENCE, plan.by_ref());
    let stats = plan.stats();
    (analyzer.report_from_scan(scan), stats)
}

fn drift_pct(degraded: u64, clean: u64) -> f64 {
    100.0 * (degraded as f64 - clean as f64).abs() / clean.max(1) as f64
}

/// The headline acceptance criterion: 5 % loss plus one agent restart
/// moves Table 1's unique-AS and unique-prefix counts by less than 2 %,
/// the loss estimate is within half a percentage point of what was
/// actually injected, and nothing is silently discarded.
#[test]
fn five_percent_loss_plus_restart_stays_within_tolerance() {
    let cfg = FaultConfig {
        seed: 777,
        drop: 0.05,
        restarts: vec![(0, 500)],
        ..FaultConfig::default()
    };
    let (report, stats) = degraded(cfg);
    let t1 = visibility::table1(&report.snapshot);
    let t1_clean = visibility::table1(&clean().snapshot);

    assert!(stats.restarts_injected == 1, "restart did not fire");
    let injected_pct = 100.0 * stats.injected_loss_rate();
    assert!((4.0..6.0).contains(&injected_pct), "loss coin off: {injected_pct:.2} %");

    // Table 1 stability.
    let ases = drift_pct(t1.peering.ases, t1_clean.peering.ases);
    let prefixes = drift_pct(t1.peering.prefixes, t1_clean.peering.prefixes);
    assert!(ases < 2.0, "unique-AS drift {ases:.2} % >= 2 %");
    assert!(prefixes < 2.0, "unique-prefix drift {prefixes:.2} % >= 2 %");

    // Loss-estimate accuracy: the collector detects the restart instead of
    // booking the sequence regression as a giant gap.
    let h = &report.health;
    let err = h.loss_pct() - injected_pct;
    assert!(err.abs() < 0.5, "loss estimate off by {err:+.2} pp");
    assert_eq!(h.collector.restarts, 1, "restart not detected");

    // No silent discard: every ingested datagram is accepted, a suppressed
    // duplicate, or a counted decode error.
    assert!(h.fully_accounted(), "accounting invariant violated: {:?}", h.collector);
    assert_eq!(h.collector.datagrams, stats.emitted);
}

/// Full hostility: loss, duplicates, reordering, truncation, bit flips,
/// counter wrap. The accounting invariant must still balance exactly.
#[test]
fn hostile_stream_is_fully_accounted() {
    let cfg = FaultConfig {
        seed: 31,
        drop: 0.05,
        duplicate: 0.02,
        reorder: 0.02,
        truncate: 0.01,
        corrupt: 0.01,
        restarts: vec![(0, 300)],
        counter_wrap: true,
        ..FaultConfig::default()
    };
    let (report, stats) = degraded(cfg);
    let h = &report.health;

    assert!(h.fully_accounted(), "accounting invariant violated: {:?}", h.collector);
    assert_eq!(h.collector.datagrams, stats.emitted, "collector missed datagrams");
    // Injected duplicates are suppressed, not double-counted. (A duplicate
    // of a truncated/corrupted datagram books as two decode errors instead,
    // so suppression is bounded by, not equal to, the injection count.)
    assert!(h.collector.duplicates > 0);
    assert!(h.collector.duplicates <= stats.duplicated);
    // Truncations surface as counted decode errors, not crashes.
    assert!(stats.truncated > 0, "truncation coin never fired");
    assert!(h.collector.decode_errors.total() > 0, "no decode errors counted");
    // The week still produces a usable census.
    assert!(!report.census.is_empty());
    assert!(report.snapshot.filter.total().bytes > 0);
}

/// An outage window is plain loss to the collector: the gap estimate must
/// track the dropped datagrams within half a percentage point.
#[test]
fn outage_window_is_counted_as_loss() {
    let cfg = FaultConfig {
        seed: 5,
        outages: vec![OutageWindow { sub_agent: 0, from: 200, until: 500 }],
        ..FaultConfig::default()
    };
    let (report, stats) = degraded(cfg);
    assert!(stats.outage_dropped > 0, "outage window dropped nothing");
    let injected_pct = 100.0 * stats.injected_loss_rate();
    let err = report.health.loss_pct() - injected_pct;
    assert!(err.abs() < 0.5, "outage loss estimate off by {err:+.2} pp");
    assert!(report.health.fully_accounted());
}

/// Counter wraps must not disturb the flow statistics: the wrap only
/// touches cumulative `if_counters`, which the wrap-safe deltas absorb.
#[test]
fn counter_wrap_does_not_disturb_flow_statistics() {
    let cfg = FaultConfig { seed: 9, counter_wrap: true, ..FaultConfig::default() };
    let (report, stats) = degraded(cfg);
    assert_eq!(stats.dropped + stats.outage_dropped, 0);
    let t1 = visibility::table1(&report.snapshot);
    let t1_clean = visibility::table1(&clean().snapshot);
    assert_eq!(t1.peering.ips, t1_clean.peering.ips);
    assert_eq!(t1.peering.prefixes, t1_clean.peering.prefixes);
    assert_eq!(t1.peering.ases, t1_clean.peering.ases);
    assert_eq!(report.health.collector.lost, 0);
    assert!(report.health.fully_accounted());
}

/// A seeded plan replays bit-for-bit: the same configuration must yield an
/// identical degraded report, down to the health counters.
#[test]
fn degraded_runs_replay_deterministically() {
    let cfg = || FaultConfig {
        seed: 2013,
        drop: 0.03,
        duplicate: 0.01,
        reorder: 0.01,
        restarts: vec![(0, 400)],
        ..FaultConfig::default()
    };
    let (a, sa) = degraded(cfg());
    let (b, sb) = degraded(cfg());
    assert_eq!(sa, sb);
    assert_eq!(a.health, b.health);
    let (ta, tb) = (visibility::table1(&a.snapshot), visibility::table1(&b.snapshot));
    assert_eq!(ta.peering.ips, tb.peering.ips);
    assert_eq!(ta.peering.prefixes, tb.peering.prefixes);
    assert_eq!(ta.peering.ases, tb.peering.ases);
    assert_eq!(a.census.len(), b.census.len());
}
