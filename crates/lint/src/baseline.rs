//! The ratchet baseline: `lint-baseline.toml`.
//!
//! The baseline records, per `(file, rule)` pair, how many violations were
//! grandfathered in when the linter was adopted. A run fails only when a
//! pair *exceeds* its baselined count — so violations can be burned down but
//! never added. `--update-baseline` rewrites the file from the current tree
//! (intended to be run only when a count has gone *down*).
//!
//! The format is a tiny TOML subset (parsed by hand; the linter is
//! dependency-free):
//!
//! ```toml
//! [[entry]]
//! file = "crates/core/src/census.rs"
//! rule = "no-narrow-cast"
//! count = 2
//! reason = "pre-existing; tracked in ROADMAP"   # optional
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::Finding;

/// One grandfathered `(file, rule)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// Number of tolerated violations.
    pub count: usize,
    /// Optional human justification for keeping the entry.
    pub reason: Option<String>,
}

/// A parsed baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// All entries, in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Tolerated count for a `(file, rule)` pair; zero when absent.
    pub fn allowed(&self, file: &str, rule: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.file == file && e.rule == rule)
            .map(|e| e.count)
            .sum()
    }
}

/// Parse the baseline text. Returns `Err` with a line-tagged message on any
/// construct outside the supported subset.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut baseline = Baseline::default();
    let mut current: Option<Entry> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[entry]]" {
            if let Some(e) = current.take() {
                finish_entry(e, lineno, &mut baseline)?;
            }
            current =
                Some(Entry { file: String::new(), rule: String::new(), count: 0, reason: None });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("baseline line {lineno}: expected `key = value`"));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!("baseline line {lineno}: assignment outside [[entry]]"));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "file" => entry.file = unquote(value, lineno)?,
            "rule" => entry.rule = unquote(value, lineno)?,
            "count" => {
                entry.count = value.parse().map_err(|_| {
                    format!("baseline line {lineno}: count must be an integer")
                })?;
            }
            "reason" => entry.reason = Some(unquote(value, lineno)?),
            other => {
                return Err(format!("baseline line {lineno}: unknown key `{other}`"));
            }
        }
    }
    if let Some(e) = current.take() {
        let last = text.lines().count();
        finish_entry(e, last, &mut baseline)?;
    }
    Ok(baseline)
}

fn finish_entry(e: Entry, lineno: usize, baseline: &mut Baseline) -> Result<(), String> {
    if e.file.is_empty() || e.rule.is_empty() {
        return Err(format!(
            "baseline entry ending at line {lineno}: `file` and `rule` are required"
        ));
    }
    baseline.entries.push(e);
    Ok(())
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("baseline line {lineno}: expected a quoted string"))?;
    Ok(inner.to_string())
}

/// Render a baseline from raw findings (post-directive, pre-baseline),
/// aggregated per `(file, rule)` and sorted.
pub fn render(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for f in findings {
        *counts.entry((f.file.as_str(), f.rule)).or_insert(0) += 1;
    }
    let mut out = String::from(
        "# ixp-lint ratchet baseline. Counts may only decrease; regenerate with\n\
         # `cargo run -p ixp-lint -- --update-baseline` after burning violations down.\n",
    );
    for ((file, rule), count) in counts {
        let _ = write!(out, "\n[[entry]]\nfile = \"{file}\"\nrule = \"{rule}\"\ncount = {count}\n");
    }
    out
}

/// Apply the ratchet: keep findings for every `(file, rule)` pair whose
/// actual count exceeds its baseline, and return notes about stale entries
/// (actual below baseline) that should be ratcheted down.
pub fn apply(findings: Vec<Finding>, baseline: &Baseline) -> (Vec<Finding>, Vec<String>) {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &findings {
        *counts.entry((f.file.clone(), f.rule.to_string())).or_insert(0) += 1;
    }
    let kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            let actual = counts[&(f.file.clone(), f.rule.to_string())];
            actual > baseline.allowed(&f.file, f.rule)
        })
        .collect();

    let mut notes = Vec::new();
    for e in &baseline.entries {
        let actual = counts.get(&(e.file.clone(), e.rule.clone())).copied().unwrap_or(0);
        if actual < e.count {
            notes.push(format!(
                "stale baseline: {}:{} allows {} but only {} remain; \
                 run --update-baseline to ratchet down",
                e.file, e.rule, e.count, actual
            ));
        }
    }
    (kept, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &'static str) -> Finding {
        Finding::new(file, line, rule, "msg")
    }

    #[test]
    fn round_trip() {
        let findings = vec![
            finding("a.rs", 1, "no-index"),
            finding("a.rs", 9, "no-index"),
            finding("b.rs", 2, "no-unwrap"),
        ];
        let text = render(&findings);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.allowed("a.rs", "no-index"), 2);
        assert_eq!(parsed.allowed("b.rs", "no-unwrap"), 1);
        assert_eq!(parsed.allowed("b.rs", "no-index"), 0);
    }

    #[test]
    fn ratchet_blocks_increases_and_tolerates_baselined() {
        let baseline = parse(
            "[[entry]]\nfile = \"a.rs\"\nrule = \"no-index\"\ncount = 1\n",
        )
        .unwrap();
        // Exactly at baseline: suppressed.
        let (kept, notes) = apply(vec![finding("a.rs", 3, "no-index")], &baseline);
        assert!(kept.is_empty());
        assert!(notes.is_empty());
        // One above baseline: all findings for the pair are reported.
        let (kept, _) = apply(
            vec![finding("a.rs", 3, "no-index"), finding("a.rs", 8, "no-index")],
            &baseline,
        );
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn stale_entries_are_noted() {
        let baseline = parse(
            "[[entry]]\nfile = \"a.rs\"\nrule = \"no-index\"\ncount = 5\n",
        )
        .unwrap();
        let (kept, notes) = apply(vec![finding("a.rs", 3, "no-index")], &baseline);
        assert!(kept.is_empty());
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("only 1 remain"));
    }

    #[test]
    fn parse_errors_are_line_tagged() {
        assert!(parse("file = \"x\"\n").unwrap_err().contains("line 1"));
        assert!(parse("[[entry]]\nfile = x\n").unwrap_err().contains("quoted"));
        assert!(parse("[[entry]]\ncount = 1\n").unwrap_err().contains("required"));
        assert!(parse("[[entry]]\nfile = \"a\"\nrule = \"r\"\ncount = q\n")
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn reason_key_is_accepted_and_optional() {
        let text =
            "[[entry]]\nfile = \"a.rs\"\nrule = \"no-unwrap\"\ncount = 1\nreason = \"legacy\"\n";
        let b = parse(text).unwrap();
        assert_eq!(b.entries[0].reason.as_deref(), Some("legacy"));
        assert!(parse("[[entry]]\nfile = \"a\"\nrule = \"r\"\ncount = 1\nreason = bare\n")
            .unwrap_err()
            .contains("quoted"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n[[entry]]\nfile = \"a.rs\"\nrule = \"no-unwrap\"\ncount = 2\n";
        assert_eq!(parse(text).unwrap().allowed("a.rs", "no-unwrap"), 2);
    }
}
