//! L9: accounting-conservation analysis (`unaccounted-drop`).
//!
//! The pipeline's headline invariant is that no datagram vanishes:
//! `ingested = accepted + duplicates + errors + shed`, every term a
//! counter someone incremented on purpose. The dynamic gates (chaos
//! soak, metrics smoke) catch a broken balance after the fact; this pass
//! catches the *cause* at review time — a code path that consumes a
//! datagram and exits without putting it in any bucket.
//!
//! The model is deliberately syntactic and local. A **consuming
//! function** is a non-test `fn` named `offer` or `ingest*` that takes a
//! payload parameter (beyond `self`) and whose body contains at least
//! one *accounting event*. Accessor look-alikes (`ingest_health()`,
//! `ingested()`) fail one of those gates and are never analyzed. Within
//! a consuming function, the body is split into **segments** at each
//! `return`: every segment that ends in an exit — an explicit `return`
//! or falling off the end of the function — must contain at least one
//! accounting event, which is any of:
//!
//! * a counter bump: `<known counter field> += ...`;
//! * a counting call: `.inc()`, `.add(..)`, `.count(..)`, `.record*(..)`,
//!   `.observe(..)`, `.set_max(..)`;
//! * a transfer: handing the datagram to another consuming function
//!   (`.offer(..)`, `.ingest*(..)`, `.push_back(..)`, `.push(..)`),
//!   which is then accountable for it.
//!
//! A `return` reached with no event since the previous segment boundary
//! is an `unaccounted-drop` finding at the `return` token. The tail
//! segment is checked the same way when it contains any significant
//! tokens. Deleting the `self.shed += 1` line in the intake ring, or
//! adding an early `return` above `self.datagrams += 1` in the
//! collector, trips this pass (see `tests/mutation_checks.rs`).

use crate::lexer::{Kind, Lexed, Token};
use crate::parser::ParsedFile;
use crate::Finding;

/// Counter fields whose `+=` counts as an accounting event. These are
/// the IngestHealth/Collector/Supervisor conservation buckets and their
/// totals (see DESIGN.md §8, L9).
const COUNTER_FIELDS: &[&str] = &[
    "accepted",
    "bytes",
    "datagrams",
    "deadline_misses",
    "decode_errors",
    "duplicates",
    "latency_samples",
    "lost",
    "offered",
    "pending",
    "quarantined",
    "received",
    "restarts",
    "samples",
    "seq_opened",
    "seq_recovered",
    "shed",
    "template_missing_dropped",
    "ticks",
    "unattributed_errors",
    "undissectable",
    "undissectable_samples",
];

/// Method names that record into a counter/metric when called.
const COUNT_CALLS: &[&str] =
    &["add", "count", "inc", "observe", "record", "record_shed", "set_max"];

/// Method/function names that hand the datagram to another consuming
/// function, transferring the accounting obligation.
const TRANSFER_CALLS: &[&str] =
    &["ingest", "ingest_inner", "ingest_sample", "offer", "push", "push_back"];

/// Crates whose `src/` trees carry the conservation obligation.
fn in_scope(path: &str) -> bool {
    path.starts_with("crates/sflow/src/")
        || path.starts_with("crates/supervisor/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/transport/src/")
}

/// True when `fi.name` marks a datagram-consuming entry point.
fn consuming_name(name: &str) -> bool {
    name == "offer" || name.starts_with("ingest")
}

/// True when `toks[i]` is an accounting event site (see module docs).
fn is_event(toks: &[Token], i: usize) -> bool {
    let Kind::Ident(name) = &toks[i].kind else { return false };
    // Counter bump: `<field> += ...` (`+=` lexes as two puncts).
    if COUNTER_FIELDS.contains(&name.as_str())
        && matches!(toks.get(i + 1).map(|t| &t.kind), Some(Kind::Punct('+')))
        && matches!(toks.get(i + 2).map(|t| &t.kind), Some(Kind::Punct('=')))
    {
        return true;
    }
    let called = matches!(toks.get(i + 1).map(|t| &t.kind), Some(Kind::Punct('(')));
    if !called {
        return false;
    }
    let after_dot =
        i > 0 && matches!(toks[i - 1].kind, Kind::Punct('.'));
    let after_path =
        i > 0 && matches!(toks[i - 1].kind, Kind::Punct('.') | Kind::PathSep);
    (after_dot && COUNT_CALLS.contains(&name.as_str()))
        || (after_path && TRANSFER_CALLS.contains(&name.as_str()))
}

/// Run the pass over the workspace.
pub fn check(files: &[ParsedFile], lexed: &[Lexed], out: &mut Vec<Finding>) {
    for (fi, file) in files.iter().enumerate() {
        if !in_scope(&file.path) {
            continue;
        }
        let toks = &lexed[fi].tokens;
        for f in &file.fns {
            if f.in_test || !consuming_name(&f.name) {
                continue;
            }
            // A consuming function takes the datagram as a parameter;
            // accessors whose only parameter is `self` are exempt.
            if !f.params.iter().any(|p| p != "self") {
                continue;
            }
            let Some((b0, b1)) = f.body else { continue };
            let body = b0 + 1..b1.min(toks.len());
            // Gate: at least one accounting event anywhere in the body,
            // otherwise this fn does not participate in the conservation
            // system at all (e.g. a pure router or a test helper).
            if !body.clone().any(|i| is_event(toks, i)) {
                continue;
            }

            let mut counted = false;
            let mut tail_significant = false;
            for i in body {
                if is_event(toks, i) {
                    counted = true;
                    tail_significant = true;
                    continue;
                }
                match &toks[i].kind {
                    Kind::Ident(name) if name == "return" => {
                        if !counted {
                            out.push(Finding::at(
                                &file.path,
                                toks[i].line,
                                toks[i].col,
                                "unaccounted-drop",
                                &format!(
                                    "fn `{}` returns without recording the datagram in any \
                                     accounting bucket; every consumed datagram must increment \
                                     exactly one counter (or be transferred to a consuming fn) \
                                     before this exit",
                                    f.name
                                ),
                            ));
                        }
                        // The segment ends here; the next one starts clean.
                        counted = false;
                        tail_significant = false;
                    }
                    Kind::Ident(_)
                    | Kind::Int
                    | Kind::Float
                    | Kind::Str
                    | Kind::Char => tail_significant = true,
                    _ => {}
                }
            }
            // Falling off the end of the fn is an exit too: if the tail
            // segment does real work, it must have counted.
            if tail_significant && !counted {
                out.push(Finding::at(
                    &file.path,
                    f.line,
                    f.col,
                    "unaccounted-drop",
                    &format!(
                        "fn `{}` falls off its end without recording the datagram in any \
                         accounting bucket; the tail path must increment exactly one counter \
                         (or transfer to a consuming fn)",
                        f.name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::scan_sources;

    fn scan(path: &str, src: &str) -> Vec<(u32, String)> {
        scan_sources(vec![(path.to_string(), src.to_string())])
            .into_iter()
            .filter(|f| f.rule == "unaccounted-drop")
            .map(|f| (f.line, f.message))
            .collect()
    }

    #[test]
    fn uncounted_early_return_is_flagged() {
        let src = "pub struct R { shed: u64, accepted: u64 }\n\
                   impl R {\n\
                   pub fn offer(&mut self, dg: Vec<u8>) -> bool {\n\
                   if dg.is_empty() {\n\
                   return false;\n\
                   }\n\
                   self.accepted += 1;\n\
                   true\n\
                   }\n\
                   }\n";
        let hits = scan("crates/supervisor/src/r.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, 5);
    }

    #[test]
    fn counted_paths_and_transfers_are_clean() {
        let src = "pub struct R { shed: u64, accepted: u64 }\n\
                   impl R {\n\
                   pub fn offer(&mut self, dg: Vec<u8>) -> bool {\n\
                   if dg.is_empty() {\n\
                   self.shed += 1;\n\
                   return false;\n\
                   }\n\
                   self.inner.offer(dg);\n\
                   true\n\
                   }\n\
                   }\n";
        assert!(scan("crates/supervisor/src/r.rs", src).is_empty());
    }

    #[test]
    fn uncounted_tail_is_flagged() {
        let src = "pub struct R { shed: u64 }\n\
                   impl R {\n\
                   pub fn ingest(&mut self, dg: &[u8]) {\n\
                   if dg.is_empty() {\n\
                   self.shed += 1;\n\
                   return;\n\
                   }\n\
                   let _n = dg.len();\n\
                   }\n\
                   }\n";
        let hits = scan("crates/sflow/src/r.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn accessors_and_out_of_scope_files_are_exempt() {
        // No non-self param: accessor, exempt even with a bare return.
        let src = "impl H { pub fn ingested(&self) -> u64 {\n\
                   return self.a;\n\
                   } }\n";
        assert!(scan("crates/core/src/h.rs", src).is_empty());
        // Same consuming shape, but outside the conservation scope.
        let src2 = "pub struct R { shed: u64 }\n\
                    impl R { pub fn offer(&mut self, d: u8) -> bool {\n\
                    if d == 0 { return false; }\n\
                    self.shed += 1;\n\
                    true\n\
                    } }\n";
        assert!(scan("crates/dns/src/r.rs", src2).is_empty());
    }

    #[test]
    fn event_free_consuming_fns_are_not_analyzed() {
        // Gate: no accounting event at all => not part of the system.
        let src = "pub fn ingest_name(s: &str) -> bool {\n\
                   if s.is_empty() { return false; }\n\
                   true\n\
                   }\n";
        assert!(scan("crates/core/src/n.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_vouches_a_site() {
        let src = "pub struct R { shed: u64 }\n\
                   impl R {\n\
                   pub fn offer(&mut self, dg: Vec<u8>) -> bool {\n\
                   if dg.is_empty() {\n\
                   / ixp-lint: allow(unaccounted-drop) probe datagram, not stream data\n\
                   return false;\n\
                   }\n\
                   self.shed += 1;\n\
                   false\n\
                   }\n\
                   }\n";
        let src = src.replace("/ ixp-lint", "// ixp-lint");
        assert!(scan("crates/supervisor/src/r.rs", &src).is_empty());
    }
}
