//! L6 — wire-taint overflow analysis.
//!
//! Values decoded from the wire are attacker-controlled: a length or
//! counter read by the XDR/wire decoders can be anything a datagram can
//! carry. This pass marks such values *tainted* and flags the places
//! where a tainted value reaches arithmetic that can overflow-panic (in
//! debug) or silently wrap (in release), or sizes an allocation or slice
//! operation:
//!
//! * `tainted-capacity` — a tainted value as the `with_capacity` argument;
//! * `tainted-arith`    — a tainted operand of unchecked `+`, `+=`, `*`,
//!   `*=`, or a tainted shift amount of `<<`;
//! * `tainted-slice-len` — a tainted value inside an index/slice bracket.
//!
//! Taint sources are decoder reads (`.u32()`, `.opaque()`,
//! `from_be_bytes`, ...) and the decoded-header field names of the sFlow
//! structs. Flowing a value through `checked_*`/`saturating_*`/
//! `wrapping_*`, `min`/`clamp`, or `try_from`/`try_into` sanitizes it.
//! Taint crosses function boundaries: a call argument that is tainted at
//! any call site taints the callee's parameter (computed by fixpoint over
//! the call graph), which is how scaling helpers like
//! `accounting::add_raw` inherit taint from decoded samples.
//!
//! Scope: the stream-facing crates, same as L1.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Kind, Lexed, Token};
use crate::parser::{FnItem, ParsedFile};
use crate::symbols::{FnRef, SymbolTable};
use crate::Finding;

/// Decoder methods whose return value is wire-controlled.
const SEED_METHODS: &[&str] = &["u8", "u16", "u32", "u64", "i32", "i64", "opaque"];

/// Free/associated functions whose result is wire-controlled.
const SEED_FNS: &[&str] = &["from_be_bytes", "from_le_bytes", "from_ne_bytes"];

/// Decoded-struct field names treated as wire-controlled wherever they
/// are read via `.field`.
const WIRE_FIELDS: &[&str] = &[
    "sampling_rate",
    "frame_length",
    "stripped",
    "sequence",
    "source_id",
    "sample_pool",
    "drops",
    "input_if",
    "output_if",
    "uptime_ms",
    "sub_agent_id",
    "if_index",
    "if_speed",
    "if_in_octets",
    "if_in_ucast",
    "if_out_octets",
    "if_out_ucast",
    "header",
    "protocol",
];

/// Exact sanitizer names (prefix families are matched separately).
const SANITIZER_EXACT: &[&str] = &["min", "clamp", "try_from", "try_into", "rem_euclid"];

/// Collection-lookup methods that *launder* taint: the value they return
/// belongs to the collection, not to the (possibly wire-controlled) key
/// used to find it. Without this, `map.entry(tainted_key)` would taint the
/// looked-up entry handle and every counter bumped through it.
const LAUNDER_METHODS: &[&str] = &["entry", "or_insert", "or_insert_with", "or_default", "get_mut"];

fn is_sanitizer(name: &str) -> bool {
    name.starts_with("checked_")
        || name.starts_with("saturating_")
        || name.starts_with("wrapping_")
        || name.starts_with("overflowing_")
        || SANITIZER_EXACT.contains(&name)
        || LAUNDER_METHODS.contains(&name)
}

/// Does the token range contain a taint source or a tainted identifier?
fn range_tainted(toks: &[Token], range: (usize, usize), tainted: &HashSet<String>) -> bool {
    let (start, end) = range;
    let mut i = start;
    while i < end {
        let Some(t) = toks.get(i) else { break };
        if let Kind::Ident(name) = &t.kind {
            let after_dot =
                i.checked_sub(1).and_then(|j| toks.get(j)).map(|p| &p.kind) == Some(&Kind::Punct('.'));
            let before_paren = toks.get(i + 1).map(|n| &n.kind) == Some(&Kind::Punct('('));
            if after_dot && before_paren && SEED_METHODS.contains(&name.as_str()) {
                return true;
            }
            if before_paren && SEED_FNS.contains(&name.as_str()) {
                return true;
            }
            if after_dot && !before_paren && WIRE_FIELDS.contains(&name.as_str()) {
                return true;
            }
            if !after_dot && tainted.contains(name.as_str()) {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Does the token range pass through a sanitizer?
fn range_sanitized(toks: &[Token], range: (usize, usize)) -> bool {
    let (start, end) = range;
    (start..end).any(|i| {
        matches!(toks.get(i).map(|t| &t.kind), Some(Kind::Ident(n)) if is_sanitizer(n))
    })
}

/// Skip forward past a balanced bracket pair opening at `i`.
fn skip_fwd(toks: &[Token], mut i: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    while let Some(t) = toks.get(i) {
        match &t.kind {
            Kind::Punct(c) if *c == open => depth += 1,
            Kind::Punct(c) if *c == close => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Extract the primary expression to the *right* of the operator at `op`
/// (exclusive), bounded by `end`. Returns a token range.
fn operand_right(toks: &[Token], op: usize, end: usize) -> (usize, usize) {
    let mut i = op + 1;
    // Unary prefixes.
    while matches!(toks.get(i).map(|t| &t.kind), Some(Kind::Punct('&' | '*' | '-' | '!'))) {
        i += 1;
    }
    let start = i;
    while i < end {
        match toks.get(i).map(|t| &t.kind) {
            Some(Kind::Punct('(')) => i = skip_fwd(toks, i, '(', ')'),
            Some(Kind::Punct('[')) => i = skip_fwd(toks, i, '[', ']'),
            Some(Kind::Ident(id)) if id == "as" => i += 1,
            Some(Kind::Ident(_)) | Some(Kind::Int) | Some(Kind::Float) => i += 1,
            Some(Kind::Punct('.' | '?')) | Some(Kind::PathSep) => i += 1,
            _ => break,
        }
    }
    (start, i.max(start))
}

/// Extract the primary expression to the *left* of the operator at `op`
/// (exclusive), bounded below by `start`. Returns a token range.
fn operand_left(toks: &[Token], op: usize, start: usize) -> (usize, usize) {
    let i = op; // exclusive upper bound
    let mut j = op;
    while j > start {
        let prev = j - 1;
        match toks.get(prev).map(|t| &t.kind) {
            Some(Kind::Punct(')')) => j = rskip(toks, prev, '(', ')', start),
            Some(Kind::Punct(']')) => j = rskip(toks, prev, '[', ']', start),
            Some(Kind::Ident(id)) if id == "as" => j = prev,
            Some(Kind::Ident(id))
                if crate::rules::NON_INDEXABLE_KEYWORDS.contains(&id.as_str()) =>
            {
                break;
            }
            Some(Kind::Ident(_)) | Some(Kind::Int) | Some(Kind::Float) => j = prev,
            Some(Kind::Punct('.' | '?')) | Some(Kind::PathSep) => j = prev,
            _ => break,
        }
    }
    if j > i {
        j = i;
    }
    (j, i)
}

/// Skip backward past a balanced bracket pair closing at `close_idx`.
/// Returns the index of the opener.
fn rskip(toks: &[Token], close_idx: usize, open: char, close: char, floor: usize) -> usize {
    let mut depth = 0i32;
    let mut j = close_idx;
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(Kind::Punct(c)) if *c == close => depth += 1,
            Some(Kind::Punct(c)) if *c == open => {
                depth -= 1;
                if depth <= 0 {
                    return j;
                }
            }
            _ => {}
        }
        if j <= floor {
            return j;
        }
        j -= 1;
    }
}

/// Compute the set of tainted local names inside one function body.
/// `param_taint` carries the interprocedural parameter verdicts.
fn tainted_locals(toks: &[Token], f: &FnItem, param_taint: &[bool]) -> HashSet<String> {
    let mut tainted: HashSet<String> = HashSet::new();
    for (name, &is_tainted) in f.params.iter().zip(param_taint) {
        if is_tainted && name != "self" {
            tainted.insert(name.clone());
        }
    }
    let Some((body_start, body_end)) = f.body else { return tainted };
    // Two passes so taint flowing backward through a loop settles.
    for _ in 0..2 {
        let mut i = body_start;
        while i < body_end {
            if !matches!(toks.get(i).map(|t| &t.kind), Some(Kind::Ident(id)) if id == "let") {
                i += 1;
                continue;
            }
            // Binders: idents up to `:` or `=` at depth 0.
            let mut binders: Vec<String> = Vec::new();
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < body_end {
                match toks.get(j).map(|t| &t.kind) {
                    Some(Kind::Punct('(' | '[' | '<')) => depth += 1,
                    Some(Kind::Punct(')' | ']' | '>')) => depth -= 1,
                    Some(Kind::Punct(':' | '=' | ';')) if depth <= 0 => break,
                    Some(Kind::Ident(id))
                        if !matches!(id.as_str(), "mut" | "ref" | "box") =>
                    {
                        binders.push(id.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            // Skip a type ascription to reach `=`.
            while j < body_end
                && !matches!(toks.get(j).map(|t| &t.kind), Some(Kind::Punct('=' | ';')))
            {
                j += 1;
            }
            if matches!(toks.get(j).map(|t| &t.kind), Some(Kind::Punct(';'))) || j >= body_end {
                i = j + 1;
                continue;
            }
            // RHS: from after `=` to the statement's `;` at depth 0.
            let rhs_start = j + 1;
            let mut k = rhs_start;
            let mut depth = 0i32;
            while k < body_end {
                match toks.get(k).map(|t| &t.kind) {
                    Some(Kind::Punct('(' | '[' | '{')) => depth += 1,
                    Some(Kind::Punct(')' | ']' | '}')) => depth -= 1,
                    Some(Kind::Punct(';')) if depth <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let rhs = (rhs_start, k);
            if range_sanitized(toks, rhs) {
                for b in &binders {
                    tainted.remove(b);
                }
            } else if range_tainted(toks, rhs, &tainted) {
                for b in &binders {
                    tainted.insert(b.clone());
                }
            } else {
                // Rebinding to a clean value shadows earlier taint.
                for b in &binders {
                    tainted.remove(b);
                }
            }
            i = k + 1;
        }
    }
    tainted
}

/// Operator sinks inside one function; pushes findings.
fn check_sinks(
    path: &str,
    toks: &[Token],
    f: &FnItem,
    tainted: &HashSet<String>,
    out: &mut Vec<Finding>,
) {
    let Some((body_start, body_end)) = f.body else { return };
    let dirty = |range: (usize, usize)| {
        range_tainted(toks, range, tainted) && !range_sanitized(toks, range)
    };
    let mut i = body_start;
    while i < body_end {
        let Some(t) = toks.get(i) else { break };
        if t.in_test {
            i += 1;
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| toks.get(j)).map(|p| &p.kind);
        let next = toks.get(i + 1).map(|n| &n.kind);
        let binary_left = matches!(
            prev,
            Some(Kind::Punct(')' | ']' | '?')) | Some(Kind::Int) | Some(Kind::Float)
        ) || matches!(prev, Some(Kind::Ident(id))
            if !crate::rules::NON_INDEXABLE_KEYWORDS.contains(&id.as_str()));
        match &t.kind {
            Kind::Ident(name) if name == "with_capacity" => {
                if matches!(next, Some(Kind::Punct('('))) {
                    let close = skip_fwd(toks, i + 1, '(', ')');
                    let inner = (i + 2, close.saturating_sub(1));
                    if dirty(inner) {
                        out.push(Finding::at(
                            path,
                            t.line,
                            t.col,
                            "tainted-capacity",
                            "wire-tainted value sizes `with_capacity`; \
                             cap it against the remaining input first",
                        ));
                    }
                }
            }
            Kind::Punct(op @ ('+' | '*')) => {
                let compound = matches!(next, Some(Kind::Punct('=')));
                if *op == '*' && !binary_left {
                    // Dereference, not multiplication.
                    i += 1;
                    continue;
                }
                if !binary_left && !compound {
                    i += 1;
                    continue;
                }
                let left = operand_left(toks, i, body_start);
                let right_from = if compound { i + 1 } else { i };
                let right = operand_right(toks, right_from, body_end);
                if dirty(left) || dirty(right) {
                    let shown = if compound { format!("{op}=") } else { op.to_string() };
                    out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "tainted-arith",
                        &format!(
                            "wire-tainted operand of unchecked `{shown}`; \
                             use `checked_/saturating_` arithmetic or validate the bound"
                        ),
                    ));
                }
                if compound {
                    i += 2;
                    continue;
                }
            }
            Kind::Punct('<')
                if matches!(next, Some(Kind::Punct('<')))
                    && toks.get(i + 1).is_some_and(|n| n.line == t.line && n.col == t.col + 1) =>
            {
                let right = operand_right(toks, i + 1, body_end);
                if dirty(right) {
                    out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "tainted-arith",
                        "wire-tainted shift amount of `<<`; \
                         a shift by >= bit-width panics in debug and wraps in release",
                    ));
                }
                i += 2;
                continue;
            }
            Kind::Punct('[') => {
                let indexable = match prev {
                    Some(Kind::Ident(id)) => {
                        !crate::rules::NON_INDEXABLE_KEYWORDS.contains(&id.as_str())
                    }
                    Some(Kind::Punct(']' | ')' | '?')) | Some(Kind::Int) => true,
                    _ => false,
                };
                if indexable {
                    let close = skip_fwd(toks, i, '[', ']');
                    let inner = (i + 1, close.saturating_sub(1));
                    if dirty(inner) {
                        out.push(Finding::at(
                            path,
                            t.line,
                            t.col,
                            "tainted-slice-len",
                            "wire-tainted value in an index/slice bound; \
                             validate it against the buffer length first",
                        ));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Run the pass over the workspace.
pub fn check(
    files: &[ParsedFile],
    lexed: &[Lexed],
    table: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    let in_scope: Vec<bool> =
        files.iter().map(|f| crate::rules::l1_applies(&f.path)).collect();

    // Interprocedural parameter taint, by fixpoint over call sites.
    let mut param_taint: HashMap<FnRef, Vec<bool>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (xi, f) in file.fns.iter().enumerate() {
            param_taint.insert((fi, xi), vec![false; f.params.len()]);
        }
    }
    for _round in 0..10 {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            if !in_scope[fi] {
                continue;
            }
            let Some(lx) = lexed.get(fi) else { continue };
            for (xi, f) in file.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let pt = param_taint.get(&(fi, xi)).cloned().unwrap_or_default();
                let tainted = tainted_locals(&lx.tokens, f, &pt);
                for call in &f.calls {
                    for tgt in table.resolve(call, file, f) {
                        if !in_scope.get(tgt.0).copied().unwrap_or(false) {
                            continue;
                        }
                        let callee_takes_self = files
                            .get(tgt.0)
                            .and_then(|fl| fl.fns.get(tgt.1))
                            .and_then(|g| g.params.first())
                            .is_some_and(|p| p == "self");
                        let offset = usize::from(call.is_method && callee_takes_self);
                        for (pos, &arg) in call.args.iter().enumerate() {
                            if range_tainted(&lx.tokens, arg, &tainted)
                                && !range_sanitized(&lx.tokens, arg)
                            {
                                if let Some(slots) = param_taint.get_mut(&tgt) {
                                    if let Some(slot) = slots.get_mut(pos + offset) {
                                        if !*slot {
                                            *slot = true;
                                            changed = true;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    for (fi, file) in files.iter().enumerate() {
        if !in_scope[fi] {
            continue;
        }
        let Some(lx) = lexed.get(fi) else { continue };
        for (xi, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let pt = param_taint.get(&(fi, xi)).cloned().unwrap_or_default();
            let tainted = tainted_locals(&lx.tokens, f, &pt);
            check_sinks(&file.path, &lx.tokens, f, &tainted, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn run(files: &[(&str, &str)]) -> Vec<(String, u32, &'static str)> {
        let lexeds: Vec<Lexed> = files.iter().map(|(_, s)| lex(s)).collect();
        let parsed: Vec<ParsedFile> =
            files.iter().zip(&lexeds).map(|((p, _), lx)| parse(p, lx)).collect();
        let table = SymbolTable::build(&parsed);
        let mut out = Vec::new();
        check(&parsed, &lexeds, &table, &mut out);
        out.into_iter().map(|f| (f.file, f.line, f.rule)).collect()
    }

    #[test]
    fn decoded_length_reaching_with_capacity_is_flagged() {
        let got = run(&[(
            "crates/sflow/src/x.rs",
            "fn f(r: &mut R) -> Vec<u8> {\n    let n = r.u32() as usize;\n    Vec::with_capacity(n)\n}",
        )]);
        assert_eq!(got, vec![("crates/sflow/src/x.rs".to_string(), 3, "tainted-capacity")]);
    }

    #[test]
    fn sanitized_length_is_clean() {
        let got = run(&[(
            "crates/sflow/src/x.rs",
            "fn f(r: &mut R, cap: usize) -> Vec<u8> {\n    let n = (r.u32() as usize).min(cap);\n    Vec::with_capacity(n)\n}",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn tainted_addition_and_multiplication_are_flagged() {
        let got = run(&[(
            "crates/sflow/src/x.rs",
            "fn f(r: &mut R, mut acc: u64) {\n    let n = r.u32() as u64;\n    acc += n;\n    let _ = n * 8;\n    let _ = acc.saturating_add(n);\n}",
        )]);
        let rules: Vec<&str> = got.iter().map(|(_, _, r)| *r).collect();
        assert_eq!(rules, vec!["tainted-arith", "tainted-arith"], "{got:?}");
    }

    #[test]
    fn tainted_shift_amount_but_not_shifted_value() {
        let got = run(&[(
            "crates/sflow/src/x.rs",
            "fn f(r: &mut R) {\n    let n = r.u32();\n    let _hi = (n as u64) << 32;\n    let _bad = 1u64 << n;\n}",
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].1, 4);
    }

    #[test]
    fn tainted_slice_bound_is_flagged() {
        let got = run(&[(
            "crates/wire/src/x.rs",
            "fn f(r: &mut R, buf: &[u8]) -> u8 {\n    let n = r.u32() as usize;\n    buf[n]\n}",
        )]);
        assert!(got.iter().any(|(_, _, r)| *r == "tainted-slice-len"), "{got:?}");
    }

    #[test]
    fn field_seeds_and_interprocedural_params() {
        let got = run(&[(
            "crates/sflow/src/x.rs",
            "pub fn outer(s: &Sample, e: &mut E) { inner(e, s.sampling_rate); }\nfn inner(e: &mut E, rate: u32) { e.frames += u64::from(rate); }",
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].2, "tainted-arith");
        assert_eq!(got[0].1, 2);
    }

    #[test]
    fn map_lookup_by_tainted_key_launders_the_handle() {
        let got = run(&[(
            "crates/sflow/src/x.rs",
            "fn f(&mut self, r: &mut R) {\n    let key = r.u32();\n    let src = self.sources.entry(key).or_insert_with(State::new);\n    src.received += 1;\n}",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn untainted_arithmetic_is_silent() {
        let got = run(&[(
            "crates/sflow/src/x.rs",
            "fn f(a: usize, b: usize) -> usize { let c = a + b; c * 2 }",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let got = run(&[(
            "crates/core/src/x.rs",
            "fn f(r: &mut R) -> Vec<u8> { let n = r.u32() as usize; Vec::with_capacity(n) }",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }
}
