//! L10: checkpoint-codec symmetry analysis (`codec-asymmetry`,
//! `schema-drift`).
//!
//! Crash recovery (DESIGN.md §11) depends on every versioned
//! encode/decode pair staying *mirror images*: the ordered list of field
//! writes in `save` must equal the ordered list of field reads in
//! `restore`, or a checkpoint written today is garbage after the next
//! refactor. This pass holds that property statically, per entry of a
//! hand-maintained [`REGISTRY`] of writer/reader pairs:
//!
//! * **field-sequence symmetry** — both bodies are abstracted to a
//!   sequence of width symbols (`u8 bool u16 u32 u64 u128 bytes str`),
//!   loop brackets (`for`/`while`/`loop` bodies become `L( … )L`, so a
//!   writer loop must be mirrored by a reader loop), and nested-codec
//!   markers (a call to `save`/`save_state`/`checkpoint` must line up
//!   with a call to `restore`/`restore_from`/`restore_state`). A reader
//!   `count(..)` normalizes to `u64` — it reads the writer's `put_u64`
//!   length prefix. Any divergence is a `codec-asymmetry` finding naming
//!   the first mismatched step.
//! * **version discipline** — when the entry names a version const, both
//!   bodies must mention it and must put/read it first as a `u32`;
//!   sealed pairs must call `seal`/`open`; the envelope itself (frame
//!   mode) must mention `MAGIC`, the format version, and `fnv64` on both
//!   sides.
//! * **schema-digest ratchet** (`schema-drift`) — an FNV-1a-64 digest of
//!   the writer's field sequence *including the written expressions* is
//!   pinned in the registry. Renaming, reordering, adding, or dropping a
//!   field changes the digest; the lint then fails until the author
//!   bumps the pair's format version and updates the pinned digest in
//!   the same change — the static analogue of "never change a schema
//!   without a version bump".
//! * **no unregistered codecs** — any non-test fn in the checkpoint
//!   crates that writes (≥ 2 `put_*`) or reads (≥ 2 numeric cursor
//!   widths) like a codec but is not in the registry is a
//!   `schema-drift` finding: new codecs must enter the ratchet.

use crate::lexer::{Kind, Lexed, Token};
use crate::parser::{FnItem, ParsedFile};
use crate::Finding;

/// One registered writer/reader pair.
pub struct CodecPair {
    /// Workspace-relative path holding both functions.
    pub file: &'static str,
    /// Writer `(owner, name)`; empty owner means a free function.
    pub writer: (&'static str, &'static str),
    /// Reader `(owner, name)`.
    pub reader: (&'static str, &'static str),
    /// Version const both bodies must mention and frame first as `u32`.
    pub version_ident: Option<&'static str>,
    /// Writer must call `seal(..)` and reader `open(..)`.
    pub sealed: bool,
    /// The envelope itself: check the magic/version/checksum frame
    /// instead of field-sequence symmetry.
    pub frame: bool,
    /// Pinned FNV-1a-64 digest of the writer's schema (see module docs).
    pub digest: u64,
}

/// Every checkpoint codec in the workspace, plus the lint fixture pair.
/// Adding an encode/decode pair anywhere else trips the unregistered
/// check until it is listed here with its digest.
pub const REGISTRY: &[CodecPair] = &[
    CodecPair {
        file: "crates/sflow/src/collector.rs",
        writer: ("Collector", "save_state"),
        reader: ("Collector", "restore_from"),
        version_ident: Some("COLLECTOR_STATE_VERSION"),
        sealed: false,
        frame: false,
        digest: 0x4737_8e02_1aa4_1477,
    },
    CodecPair {
        file: "crates/core/src/scan.rs",
        writer: ("WeekScan", "save_state"),
        reader: ("WeekScan", "restore_state"),
        version_ident: Some("WEEKSCAN_STATE_VERSION"),
        sealed: false,
        frame: false,
        digest: 0x22de_ae83_a9b7_4939,
    },
    CodecPair {
        file: "crates/supervisor/src/supervisor.rs",
        writer: ("Supervisor", "checkpoint"),
        reader: ("Supervisor", "restore"),
        version_ident: Some("SUPERVISOR_STATE_VERSION"),
        sealed: true,
        frame: false,
        digest: 0xc63d_1bdf_57af_8ec1,
    },
    CodecPair {
        file: "crates/supervisor/src/ring.rs",
        writer: ("IntakeRing", "save"),
        reader: ("IntakeRing", "restore"),
        version_ident: None,
        sealed: false,
        frame: false,
        digest: 0x7076_142d_6dc2_10c0,
    },
    CodecPair {
        file: "crates/supervisor/src/health.rs",
        writer: ("AgentHealth", "save"),
        reader: ("AgentHealth", "restore"),
        version_ident: None,
        sealed: false,
        frame: false,
        digest: 0x5707_3053_7bbd_8dc7,
    },
    CodecPair {
        file: "crates/supervisor/src/envelope.rs",
        writer: ("", "seal"),
        reader: ("", "open"),
        version_ident: Some("FORMAT_VERSION"),
        sealed: false,
        frame: true,
        digest: 0x926d_aadf_f3ad_6242,
    },
    CodecPair {
        file: "crates/transport/src/intake.rs",
        writer: ("TransportIntake", "save_state"),
        reader: ("TransportIntake", "restore_from"),
        version_ident: Some("TRANSPORT_STATE_VERSION"),
        sealed: false,
        frame: false,
        digest: 0x2168_a917_8cd6_2f8a,
    },
    // Lint fixture: deliberately asymmetric pair under tests/fixtures.
    CodecPair {
        file: "crates/supervisor/src/codec_pair.rs",
        writer: ("MiniState", "save"),
        reader: ("MiniState", "restore"),
        version_ident: None,
        sealed: false,
        frame: false,
        digest: 0x87e1_f982_bd95_d560,
    },
];

/// `put_*` writers, normalized to their width symbol.
const PUT_OPS: &[(&str, &str)] = &[
    ("put_u8", "u8"),
    ("put_bool", "bool"),
    ("put_u16", "u16"),
    ("put_u32", "u32"),
    ("put_u64", "u64"),
    ("put_u128", "u128"),
    ("put_bytes", "bytes"),
    ("put_str", "str"),
];

/// Cursor readers, normalized. `count` reads a `put_u64` length prefix.
const CUR_OPS: &[(&str, &str)] = &[
    ("u8", "u8"),
    ("bool", "bool"),
    ("u16", "u16"),
    ("u32", "u32"),
    ("u64", "u64"),
    ("u128", "u128"),
    ("bytes", "bytes"),
    ("str", "str"),
    ("count", "u64"),
];

/// Calls that hand off to a nested codec on the writer side.
const NESTED_SAVE: &[&str] = &["save", "save_state", "checkpoint"];
/// ... and on the reader side.
const NESTED_RESTORE: &[&str] = &["restore", "restore_from", "restore_state"];

/// Numeric widths that count toward the unregistered-codec threshold
/// (`bytes`/`str`/`count` are common std method names and excluded).
const UNREG_NUMERIC: &[&str] = &["u8", "bool", "u16", "u32", "u64", "u128"];

/// Crates whose `src/` trees may hold checkpoint codecs.
fn in_scope(path: &str) -> bool {
    path.starts_with("crates/sflow/src/")
        || path.starts_with("crates/supervisor/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/transport/src/")
}

/// One abstract step of a codec body.
#[derive(Debug, Clone, PartialEq)]
enum Sym {
    /// A width symbol (`u64`, `bytes`, ...).
    Op(&'static str),
    LoopOpen,
    LoopClose,
    /// A nested-codec call, carrying the callee name for messages.
    Nested(String),
}

impl Sym {
    /// Rendering for findings and the digest canon.
    fn name(&self) -> String {
        match self {
            Sym::Op(o) => (*o).to_string(),
            Sym::LoopOpen => "loop{".to_string(),
            Sym::LoopClose => "}loop".to_string(),
            Sym::Nested(n) => format!("nested:{n}"),
        }
    }

    /// Equality for symmetry: any nested save lines up with any nested
    /// restore — the nested pair has its own registry entry.
    fn matches(&self, other: &Sym) -> bool {
        matches!((self, other), (Sym::Nested(_), Sym::Nested(_))) || self == other
    }
}

/// Textual form of one token, for the digest canon.
fn tok_text(t: &Token) -> String {
    match &t.kind {
        Kind::Ident(s) => s.clone(),
        Kind::Int => "#".to_string(),
        Kind::Float => "#.".to_string(),
        Kind::Str => "\"\"".to_string(),
        Kind::Char => "''".to_string(),
        Kind::Lifetime => "'_".to_string(),
        Kind::EqEq => "==".to_string(),
        Kind::Ne => "!=".to_string(),
        Kind::DotDot => "..".to_string(),
        Kind::PathSep => "::".to_string(),
        Kind::Arrow => "->".to_string(),
        Kind::FatArrow => "=>".to_string(),
        Kind::Punct(c) => c.to_string(),
    }
}

/// FNV-1a-64 (same constants as the checkpoint envelope's checksum).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What one body walk produces.
struct Extract {
    syms: Vec<Sym>,
    /// Digest canon (writer side): symbols plus written expressions.
    canon: String,
    /// `put_*` call count (registered or not).
    puts: usize,
    /// Numeric cursor-read count (see [`UNREG_NUMERIC`]).
    numeric_reads: usize,
    /// Idents mentioned anywhere in the body.
    idents: Vec<String>,
}

/// The value expression of a `put_*` call: the tokens after the first
/// top-level comma of its argument list (`put_u64(out, self.shed)` →
/// `self.shed`). Feeds the schema digest so renames and reorders of the
/// *written fields* change it, while the output-buffer argument does not.
fn put_value_text(toks: &[Token], open: usize) -> String {
    let mut depth = 0usize;
    let mut i = open;
    let mut after_comma = false;
    let mut out = String::new();
    while i < toks.len() {
        match &toks[i].kind {
            Kind::Punct('(') | Kind::Punct('[') => depth += 1,
            Kind::Punct(')') | Kind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Kind::Punct(',') if depth == 1 => {
                after_comma = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        if after_comma && depth >= 1 {
            out.push_str(&tok_text(&toks[i]));
        }
        i += 1;
    }
    out
}

/// Walk one fn body and abstract it (see module docs). `writer` selects
/// `put_*` ops; otherwise cursor reads.
fn extract(toks: &[Token], body: (usize, usize), writer: bool) -> Extract {
    let mut ex = Extract {
        syms: Vec::new(),
        canon: String::new(),
        puts: 0,
        numeric_reads: 0,
        idents: Vec::new(),
    };
    let (b0, b1) = body;
    let mut depth = 0usize;
    let mut loop_depths: Vec<usize> = Vec::new();
    let mut pending_loop = false;
    let mut i = b0 + 1;
    while i < b1.min(toks.len()) {
        let t = &toks[i];
        match &t.kind {
            Kind::Punct('{') => {
                depth += 1;
                if pending_loop {
                    pending_loop = false;
                    loop_depths.push(depth);
                    ex.syms.push(Sym::LoopOpen);
                    ex.canon.push_str("|L(");
                }
            }
            Kind::Punct('}') => {
                if loop_depths.last() == Some(&depth) {
                    loop_depths.pop();
                    ex.syms.push(Sym::LoopClose);
                    ex.canon.push_str("|)L");
                }
                depth = depth.saturating_sub(1);
            }
            Kind::Ident(name) => {
                ex.idents.push(name.clone());
                match name.as_str() {
                    "for" | "while" | "loop" => pending_loop = true,
                    _ => {}
                }
                let called =
                    matches!(toks.get(i + 1).map(|t| &t.kind), Some(Kind::Punct('(')));
                let after_dot = i > b0 && matches!(toks[i - 1].kind, Kind::Punct('.'));
                let after_path =
                    i > b0 && matches!(toks[i - 1].kind, Kind::Punct('.') | Kind::PathSep);
                // `self.u64()` is the cursor implementing itself in terms
                // of narrower reads, not a codec consuming a cursor.
                let self_recv = after_dot
                    && i >= 2
                    && matches!(&toks[i - 2].kind, Kind::Ident(r) if r == "self");
                if called {
                    if writer {
                        // Checkpoint puts are free functions
                        // (`checkpoint::put_u64(out, v)`); method-style
                        // `out.put_u32(v)` is the sFlow XDR wire trait,
                        // a protocol codec outside the checkpoint ratchet.
                        if let Some((_, op)) = PUT_OPS
                            .iter()
                            .find(|(n, _)| n == name)
                            .filter(|_| !after_dot)
                        {
                            ex.puts += 1;
                            ex.syms.push(Sym::Op(op));
                            ex.canon.push('|');
                            ex.canon.push_str(op);
                            ex.canon.push('(');
                            ex.canon.push_str(&put_value_text(toks, i + 1));
                            ex.canon.push(')');
                        }
                        if after_path && NESTED_SAVE.contains(&name.as_str()) {
                            ex.syms.push(Sym::Nested(name.clone()));
                            ex.canon.push_str("|N:");
                            ex.canon.push_str(name);
                        }
                    } else {
                        if after_dot && !self_recv {
                            if let Some((_, op)) =
                                CUR_OPS.iter().find(|(n, _)| n == name)
                            {
                                // `count(min)` takes an argument; std's
                                // argless `Iterator::count()` does not and
                                // stays out of the codec-shape threshold.
                                let with_arg = !matches!(
                                    toks.get(i + 2).map(|t| &t.kind),
                                    Some(Kind::Punct(')'))
                                );
                                let numeric = if name == "count" {
                                    with_arg
                                } else {
                                    UNREG_NUMERIC.contains(op)
                                };
                                if numeric {
                                    ex.numeric_reads += 1;
                                }
                                if name != "count" || with_arg {
                                    ex.syms.push(Sym::Op(op));
                                }
                            }
                        }
                        if after_path && NESTED_RESTORE.contains(&name.as_str()) {
                            ex.syms.push(Sym::Nested(name.clone()));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    ex
}

/// Find a registered fn inside one parsed file.
fn find_fn<'a>(file: &'a ParsedFile, owner: &str, name: &str) -> Option<&'a FnItem> {
    file.fns.iter().find(|f| {
        !f.in_test
            && f.name == name
            && match (&f.owner, owner.is_empty()) {
                (None, true) => true,
                (Some(o), false) => o == owner,
                _ => false,
            }
    })
}

fn qual(owner: &str, name: &str) -> String {
    if owner.is_empty() {
        name.to_string()
    } else {
        format!("{owner}::{name}")
    }
}

/// Run the pass over the workspace against the built-in [`REGISTRY`].
pub fn check(files: &[ParsedFile], lexed: &[Lexed], out: &mut Vec<Finding>) {
    check_with(REGISTRY, files, lexed, out);
}

/// Run the pass against an explicit registry (tests inject pairs here).
pub fn check_with(
    registry: &[CodecPair],
    files: &[ParsedFile],
    lexed: &[Lexed],
    out: &mut Vec<Finding>,
) {
    for pair in registry {
        let Some(fi) = files.iter().position(|f| f.path == pair.file) else {
            // The file is not part of this scan (subset scans, fixture
            // registry entries against the live tree): nothing to check.
            continue;
        };
        let file = &files[fi];
        let toks = &lexed[fi].tokens;
        let writer = find_fn(file, pair.writer.0, pair.writer.1);
        let reader = find_fn(file, pair.reader.0, pair.reader.1);
        let (Some(w), Some(r)) = (writer, reader) else {
            let missing = if writer.is_none() { pair.writer } else { pair.reader };
            out.push(Finding::at(
                &file.path,
                1,
                1,
                "codec-asymmetry",
                &format!(
                    "registered codec fn `{}` not found in this file; update the codec \
                     registry in crates/lint/src/codec_sym.rs",
                    qual(missing.0, missing.1)
                ),
            ));
            continue;
        };
        let (Some(wb), Some(rb)) = (w.body, r.body) else { continue };
        let wx = extract(toks, wb, true);
        let rx = extract(toks, rb, false);

        if pair.frame {
            // The envelope itself: the magic/version/length/trailer frame
            // must be present on both sides, not field-symmetric.
            for (f, ex) in [(w, &wx), (r, &rx)] {
                for required in
                    ["MAGIC", pair.version_ident.unwrap_or("FORMAT_VERSION"), "fnv64"]
                {
                    if !ex.idents.iter().any(|s| s == required) {
                        out.push(Finding::at(
                            &file.path,
                            f.line,
                            f.col,
                            "codec-asymmetry",
                            &format!(
                                "envelope fn `{}` does not mention `{required}`; the \
                                 magic/version/length/trailer frame must be written and \
                                 verified on both sides",
                                qual(pair.writer.0, &f.name),
                            ),
                        ));
                    }
                }
            }
        } else {
            // Field-sequence symmetry: first divergence wins.
            let n = wx.syms.len().max(rx.syms.len());
            for step in 0..n {
                let ws = wx.syms.get(step);
                let rs = rx.syms.get(step);
                let ok = matches!((ws, rs), (Some(a), Some(b)) if a.matches(b));
                if !ok {
                    out.push(Finding::at(
                        &file.path,
                        r.line,
                        r.col,
                        "codec-asymmetry",
                        &format!(
                            "reader `{}` diverges from writer `{}` at field {}: writer has \
                             {}, reader has {} — encode and decode must walk the same \
                             ordered field list",
                            qual(pair.reader.0, pair.reader.1),
                            qual(pair.writer.0, pair.writer.1),
                            step + 1,
                            ws.map_or("nothing".to_string(), Sym::name),
                            rs.map_or("nothing".to_string(), Sym::name),
                        ),
                    ));
                    break;
                }
            }
            if let Some(version) = pair.version_ident {
                for (f, ex) in [(w, &wx), (r, &rx)] {
                    if !ex.idents.iter().any(|s| s == version) {
                        out.push(Finding::at(
                            &file.path,
                            f.line,
                            f.col,
                            "codec-asymmetry",
                            &format!(
                                "codec fn `{}` does not mention its version const \
                                 `{version}`; versioned state must be framed by it",
                                qual(pair.writer.0, &f.name),
                            ),
                        ));
                    } else if ex.syms.first() != Some(&Sym::Op("u32")) {
                        out.push(Finding::at(
                            &file.path,
                            f.line,
                            f.col,
                            "codec-asymmetry",
                            &format!(
                                "codec fn `{}` must put/read the `u32` version \
                                 (`{version}`) as its first field",
                                qual(pair.writer.0, &f.name),
                            ),
                        ));
                    }
                }
            }
        }
        if pair.sealed {
            for (f, ex, call) in [(w, &wx, "seal"), (r, &rx, "open")] {
                if !ex.idents.iter().any(|s| s == call) {
                    out.push(Finding::at(
                        &file.path,
                        f.line,
                        f.col,
                        "codec-asymmetry",
                        &format!(
                            "sealed codec fn `{}` must call `{call}` so the state rides \
                             inside the checked envelope",
                            qual(pair.writer.0, &f.name),
                        ),
                    ));
                }
            }
        }

        // Schema-digest ratchet over the writer's field schema.
        let computed = fnv64(wx.canon.as_bytes());
        if computed != pair.digest {
            let bump = pair.version_ident.map_or(
                "bump the enclosing format version".to_string(),
                |v| format!("bump `{v}`"),
            );
            out.push(Finding::at(
                &file.path,
                w.line,
                w.col,
                "schema-drift",
                &format!(
                    "schema digest {computed:#018x} of writer `{}` does not match the \
                     registered {:#018x}; the checkpoint schema changed without a version \
                     bump — {bump} and update the digest in crates/lint/src/codec_sym.rs \
                     in the same change",
                    qual(pair.writer.0, pair.writer.1),
                    pair.digest,
                ),
            ));
        }
    }

    // Unregistered-codec sweep: codec-shaped fns must enter the ratchet.
    for (fi, file) in files.iter().enumerate() {
        if !in_scope(&file.path) {
            continue;
        }
        let toks = &lexed[fi].tokens;
        for f in &file.fns {
            if f.in_test {
                continue;
            }
            let registered = registry.iter().any(|p| {
                p.file == file.path
                    && (find_fn(file, p.writer.0, p.writer.1)
                        .is_some_and(|g| std::ptr::eq(g, f))
                        || find_fn(file, p.reader.0, p.reader.1)
                            .is_some_and(|g| std::ptr::eq(g, f)))
            });
            if registered {
                continue;
            }
            let Some(body) = f.body else { continue };
            let puts = extract(toks, body, true).puts;
            let reads = extract(toks, body, false).numeric_reads;
            if puts >= 2 || reads >= 2 {
                let what = if puts >= 2 {
                    format!("{puts} field writes")
                } else {
                    format!("{reads} field reads")
                };
                out.push(Finding::at(
                    &file.path,
                    f.line,
                    f.col,
                    "schema-drift",
                    &format!(
                        "fn `{}` looks like a checkpoint codec ({what}) but is not in the \
                         codec registry; add the writer/reader pair and its schema digest \
                         to crates/lint/src/codec_sym.rs",
                        f.name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser};

    fn prep(path: &str, src: &str) -> (Vec<ParsedFile>, Vec<Lexed>) {
        let lexed = lexer::lex(src);
        let parsed = parser::parse(path, &lexed);
        (vec![parsed], vec![lexed])
    }

    fn pair(file: &'static str, digest: u64) -> CodecPair {
        CodecPair {
            file,
            writer: ("S", "save"),
            reader: ("S", "restore"),
            version_ident: None,
            sealed: false,
            frame: false,
            digest,
        }
    }

    const SYMMETRIC: &str = "impl S {\n\
        pub fn save(&self, out: &mut Vec<u8>) {\n\
            checkpoint::put_u64(out, self.a);\n\
            checkpoint::put_u64(out, self.items.len() as u64);\n\
            for it in &self.items {\n\
                checkpoint::put_bytes(out, it);\n\
            }\n\
        }\n\
        pub fn restore(cur: &mut Cur<'_>) -> Result<S, StateError> {\n\
            let a = cur.u64()?;\n\
            let n = cur.count(1)?;\n\
            let mut items = Vec::new();\n\
            for _ in 0..n {\n\
                items.push(cur.bytes()?.to_vec());\n\
            }\n\
            Ok(S { a, items })\n\
        }\n\
    }\n";

    fn digest_of(src: &str) -> u64 {
        let (parsed, lexed) = prep("crates/core/src/x.rs", src);
        let f = find_fn(&parsed[0], "S", "save").expect("writer");
        fnv64(extract(&lexed[0].tokens, f.body.expect("body"), true).canon.as_bytes())
    }

    fn run(registry: &[CodecPair], path: &str, src: &str) -> Vec<(String, String)> {
        let (parsed, lexed) = prep(path, src);
        let mut out = Vec::new();
        check_with(registry, &parsed, &lexed, &mut out);
        out.into_iter().map(|f| (f.rule.to_string(), f.message)).collect()
    }

    #[test]
    fn symmetric_pair_with_pinned_digest_is_clean() {
        let registry = [pair("crates/core/src/x.rs", digest_of(SYMMETRIC))];
        let hits = run(&registry, "crates/core/src/x.rs", SYMMETRIC);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn dropped_read_is_an_asymmetry() {
        let src = SYMMETRIC.replace("let n = cur.count(1)?;", "let n = 0usize;");
        let registry = [pair("crates/core/src/x.rs", digest_of(&src))];
        let hits = run(&registry, "crates/core/src/x.rs", &src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "codec-asymmetry");
        assert!(hits[0].1.contains("at field 2"), "{}", hits[0].1);
    }

    #[test]
    fn missing_loop_on_one_side_is_an_asymmetry() {
        // `\n\` string continuations strip the next line's indentation,
        // so the fixture content has none.
        let src = SYMMETRIC.replace(
            "for _ in 0..n {\nitems.push(cur.bytes()?.to_vec());\n}",
            "items.push(cur.bytes()?.to_vec());",
        );
        assert_ne!(src, SYMMETRIC);
        let registry = [pair("crates/core/src/x.rs", digest_of(&src))];
        let hits = run(&registry, "crates/core/src/x.rs", &src);
        assert!(
            hits.iter().any(|h| h.0 == "codec-asymmetry"),
            "{hits:?}"
        );
    }

    #[test]
    fn reordered_fields_change_the_digest() {
        // Swap which fields the writer puts: symbol sequence unchanged,
        // schema digest changed -> drift against the old pin.
        let swapped = SYMMETRIC.replace("self.a", "self.b");
        assert_ne!(digest_of(SYMMETRIC), digest_of(&swapped));
        let registry = [pair("crates/core/src/x.rs", digest_of(SYMMETRIC))];
        let hits = run(&registry, "crates/core/src/x.rs", &swapped);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "schema-drift");
        assert!(hits[0].1.contains("version bump"), "{}", hits[0].1);
    }

    #[test]
    fn unregistered_codec_shape_is_flagged_on_both_sides() {
        let hits = run(&[], "crates/core/src/x.rs", SYMMETRIC);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.0 == "schema-drift"));
        assert!(hits[0].1.contains("not in the codec registry"));
    }

    #[test]
    fn missing_version_and_seal_are_flagged() {
        let src = "impl S {\n\
            pub fn save(&self, out: &mut Vec<u8>) {\n\
                checkpoint::put_u64(out, self.a);\n\
            }\n\
            pub fn restore(cur: &mut Cur<'_>) -> Result<u64, StateError> {\n\
                cur.u64()\n\
            }\n\
        }\n";
        let registry = [CodecPair {
            version_ident: Some("STATE_VERSION"),
            sealed: true,
            digest: digest_of2(src),
            ..pair("crates/core/src/x.rs", 0)
        }];
        let hits = run(&registry, "crates/core/src/x.rs", src);
        // version missing in both + seal/open missing in both.
        assert_eq!(hits.len(), 4, "{hits:?}");
        assert!(hits.iter().all(|h| h.0 == "codec-asymmetry"));
    }

    fn digest_of2(src: &str) -> u64 {
        let (parsed, lexed) = prep("crates/core/src/x.rs", src);
        let f = find_fn(&parsed[0], "S", "save").expect("writer");
        fnv64(extract(&lexed[0].tokens, f.body.expect("body"), true).canon.as_bytes())
    }

    #[test]
    fn nested_codec_calls_line_up() {
        let src = "impl S {\n\
            pub fn save(&self, out: &mut Vec<u8>) {\n\
                checkpoint::put_u64(out, self.a);\n\
                self.inner.save_state(out);\n\
            }\n\
            pub fn restore(cur: &mut Cur<'_>) -> Result<S, StateError> {\n\
                let a = cur.u64()?;\n\
                let inner = Inner::restore_from(cur)?;\n\
                Ok(S { a, inner })\n\
            }\n\
        }\n";
        let registry = [pair("crates/core/src/x.rs", digest_of2(src))];
        let hits = run(&registry, "crates/core/src/x.rs", src);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
