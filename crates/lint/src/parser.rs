//! A lightweight item/expression parser over the lexer's token stream.
//!
//! This is not a Rust grammar: it recovers exactly the structure the
//! semantic passes need — function items (name, impl owner, visibility,
//! parameter names, body token range), call sites with per-argument token
//! ranges, panic sites, and `use` imports — and it never fails. Anything
//! it cannot make sense of is skipped token by token, which is the right
//! degradation for a linter: an unparsed construct produces no findings
//! rather than a crash.

use crate::lexer::{Kind, Lexed, Token};

/// A `use` import: the name it binds locally and the full path it names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The local binding (last path segment, or the `as` alias).
    pub alias: String,
    /// Full path segments, e.g. `["ixp_core", "util", "pick"]`.
    pub path: Vec<String>,
}

/// Where a call leaves the current function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments as written: `["helper"]`, `["xdr", "pad4"]`,
    /// `["Self", "new"]`. Method calls carry the bare method name.
    pub path: Vec<String>,
    /// True for `.name(...)` receiver calls.
    pub is_method: bool,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
    /// Token ranges (half-open, into the file's token vec) of each
    /// top-level argument.
    pub args: Vec<(usize, usize)>,
    /// Token index of the callee name in the file's token vec, so passes
    /// that reason about statement extents (L8) can anchor a scan there.
    pub tok: usize,
}

/// A construct that can panic at runtime.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human description, e.g. "`.unwrap()`" or "`[..]` indexing".
    pub what: &'static str,
    /// The rule whose allow directive vouches for this site. L1-covered
    /// sites use their L1 rule id; assert-family sites use `panic-path`.
    pub vouch_rule: &'static str,
    /// True when the L1 token rules already report this construct in L1
    /// scope (so L5 need not re-report it locally).
    pub l1_covered: bool,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// True inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// 1-based line of the function name.
    pub line: u32,
    /// 1-based column of the function name.
    pub col: u32,
    /// Parameter names in declaration order (`self` included).
    pub params: Vec<String>,
    /// Body token range (half-open, including the braces); `None` for
    /// bodiless declarations.
    pub body: Option<(usize, usize)>,
    /// Calls made anywhere in the body.
    pub calls: Vec<CallSite>,
    /// Panic sites anywhere in the body.
    pub panics: Vec<PanicSite>,
}

/// One parsed file: imports plus function items, with the token stream
/// kept alongside so passes can inspect argument ranges.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub path: String,
    /// Owning crate name (`wire` for `crates/wire/...`, `(root)` for the
    /// root package `src/` tree).
    pub crate_name: String,
    /// All `use` imports (item- or body-level).
    pub uses: Vec<UseImport>,
    /// All function items in source order.
    pub fns: Vec<FnItem>,
}

/// The crate a workspace-relative path belongs to.
pub fn crate_of(path: &str) -> String {
    for prefix in ["crates/", "vendor/"] {
        if let Some(rest) = path.strip_prefix(prefix) {
            if let Some(name) = rest.split('/').next() {
                return name.to_string();
            }
        }
    }
    "(root)".to_string()
}

/// Keywords that introduce control flow, not calls, when followed by `(`.
const NOT_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move",
    "let", "else", "break", "continue", "fn", "where", "impl", "dyn",
    "pub", "crate", "super", "mut", "ref", "box", "yield", "async", "await",
    "unsafe", "use", "static", "const", "trait", "struct", "enum", "type",
];

/// Re-exported for the body scanner: identifiers that may precede `[`
/// without forming an index expression.
use crate::rules::NON_INDEXABLE_KEYWORDS;

fn ident_is(t: Option<&Token>, s: &str) -> bool {
    matches!(t.map(|t| &t.kind), Some(Kind::Ident(id)) if id == s)
}

fn kind(t: Option<&Token>) -> Option<&Kind> {
    t.map(|t| &t.kind)
}

/// Skip a balanced `<...>` generic list starting at `i` (which must point
/// at `<`). Returns the index just past the matching `>`, or `len` when
/// unbalanced.
fn skip_angles(toks: &[Token], mut i: usize) -> usize {
    let mut depth = 0i32;
    while let Some(t) = toks.get(i) {
        match t.kind {
            Kind::Punct('<') => depth += 1,
            Kind::Punct('>') => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            // A `;` or `{` at depth > 0 means this was a comparison, not
            // generics; bail out where we are.
            Kind::Punct(';' | '{') => return i,
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Skip a balanced bracket pair (`(`/`[`/`{`) starting at `i` (which must
/// point at the opener). Returns the index just past the closer.
fn skip_balanced(toks: &[Token], mut i: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    while let Some(t) = toks.get(i) {
        match &t.kind {
            Kind::Punct(c) if *c == open => depth += 1,
            Kind::Punct(c) if *c == close => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Parse a `use` declaration starting at the `use` keyword. Expands
/// `{...}` groups and `as` aliases; globs and malformed trees are skipped.
/// Returns the index just past the terminating `;` (or EOF).
fn parse_use(toks: &[Token], start: usize, out: &mut Vec<UseImport>) -> usize {
    let mut path: Vec<String> = Vec::new();
    // Stack of path lengths to restore at each `}`.
    let mut group_marks: Vec<usize> = Vec::new();
    let mut pending: Option<String> = None;
    let mut i = start + 1;

    macro_rules! emit {
        ($leaf:expr, $alias:expr) => {{
            let leaf: String = $leaf;
            if leaf != "*" {
                let mut full = path.clone();
                // `use a::b::{self, c}`: `self` names the prefix itself.
                if leaf == "self" {
                    if let Some(last) = full.last().cloned() {
                        out.push(UseImport { alias: $alias.unwrap_or(last), path: full });
                    }
                } else {
                    full.push(leaf.clone());
                    out.push(UseImport { alias: $alias.unwrap_or(leaf), path: full });
                }
            }
        }};
    }

    while let Some(t) = toks.get(i) {
        match &t.kind {
            Kind::Ident(id) if id == "as" => {
                if let Some(Kind::Ident(alias)) = kind(toks.get(i + 1)) {
                    if let Some(leaf) = pending.take() {
                        emit!(leaf, Some(alias.clone()));
                    }
                    i += 1;
                }
            }
            Kind::Ident(id) => pending = Some(id.clone()),
            Kind::Punct('*') => pending = Some("*".to_string()),
            Kind::PathSep => {
                if let Some(seg) = pending.take() {
                    path.push(seg);
                }
            }
            Kind::Punct(',') => {
                if let Some(leaf) = pending.take() {
                    emit!(leaf, None);
                }
                // Restore the path to the innermost group prefix.
                if let Some(mark) = group_marks.last() {
                    path.truncate(*mark);
                }
            }
            Kind::Punct('{') => group_marks.push(path.len()),
            Kind::Punct('}') => {
                if let Some(leaf) = pending.take() {
                    emit!(leaf, None);
                }
                if let Some(mark) = group_marks.pop() {
                    path.truncate(mark);
                }
            }
            Kind::Punct(';') => {
                if let Some(leaf) = pending.take() {
                    emit!(leaf, None);
                }
                return i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// From an `impl`/`trait` keyword at `start`, recover the implemented-on
/// type name (after `for` if present, the first type otherwise) and the
/// block's token extent. Returns `(owner, body_open, body_end)`.
fn impl_owner(toks: &[Token], start: usize) -> Option<(String, usize, usize)> {
    let mut i = start + 1;
    if matches!(kind(toks.get(i)), Some(Kind::Punct('<'))) {
        i = skip_angles(toks, i);
    }
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    // Stop collecting type names once a `where` clause or supertrait list
    // starts; keep scanning for the block opener.
    let mut collecting = true;
    while let Some(t) = toks.get(i) {
        match &t.kind {
            Kind::Ident(id) if id == "for" => saw_for = true,
            Kind::Ident(id) if id == "where" => collecting = false,
            Kind::Punct(':') => collecting = false,
            Kind::Ident(id) if collecting => {
                // `a::b::Type`: keep updating through path segments so the
                // last segment wins.
                if saw_for {
                    after_for = Some(id.clone());
                } else {
                    last_ident = Some(id.clone());
                }
            }
            Kind::Punct('<') => {
                i = skip_angles(toks, i);
                continue;
            }
            Kind::Punct('{') => {
                let end = skip_balanced(toks, i, '{', '}');
                let owner = after_for.or(last_ident)?;
                return Some((owner, i, end));
            }
            Kind::Punct(';') => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Is the `fn` at `start` unrestricted-`pub`? Scans back over visibility
/// and function qualifiers.
fn fn_is_pub(toks: &[Token], start: usize) -> bool {
    let mut j = start;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            Kind::Ident(q)
                if matches!(q.as_str(), "const" | "unsafe" | "async" | "extern") => {}
            Kind::Str => {} // extern "C"
            Kind::Punct(')') => {
                // pub(crate) / pub(super): restricted, keep scanning past it
                // but it does not count as pub.
                let open = rfind_open(toks, j);
                if open == 0 {
                    return false;
                }
                j = open;
            }
            Kind::Ident(q) if q == "pub" => {
                // `pub(` is restricted visibility.
                return !matches!(kind(toks.get(j + 1)), Some(Kind::Punct('(')));
            }
            _ => return false,
        }
    }
    false
}

/// Index of the `(` matching the `)` at `close`, scanning backward.
fn rfind_open(toks: &[Token], close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        match &toks[j].kind {
            Kind::Punct(')') => depth += 1,
            Kind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        if j == 0 {
            return 0;
        }
        j -= 1;
    }
}

/// Parameter names from the `(...)` range: each ident directly before a
/// `:` at parenthesis depth 1, plus a bare/borrowed `self` receiver.
fn parse_params(toks: &[Token], open: usize, close: usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < close {
        match kind(toks.get(i)) {
            Some(Kind::Punct('(' | '[' | '{')) => depth += 1,
            Some(Kind::Punct(')' | ']' | '}')) => depth -= 1,
            Some(Kind::Ident(id)) if depth == 1 => {
                if id == "self" && params.is_empty() {
                    params.push("self".to_string());
                } else if matches!(kind(toks.get(i + 1)), Some(Kind::Punct(':')))
                    && !matches!(kind(toks.get(i + 2)), Some(Kind::PathSep))
                {
                    params.push(id.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    params
}

/// Parse the `fn` whose keyword sits at `start`. Returns the item (or
/// `None` when `fn` is part of a type like `fn(u32) -> u32`) and the index
/// scanning should continue from.
fn parse_fn(toks: &[Token], start: usize, owner: Option<&str>) -> (Option<FnItem>, usize) {
    let name_tok = toks.get(start + 1);
    let Some(Kind::Ident(name)) = kind(name_tok) else {
        return (None, start + 1);
    };
    let name = name.clone();
    let (line, col, in_test) =
        name_tok.map(|t| (t.line, t.col, t.in_test)).unwrap_or((0, 0, false));

    let mut i = start + 2;
    if matches!(kind(toks.get(i)), Some(Kind::Punct('<'))) {
        i = skip_angles(toks, i);
    }
    if !matches!(kind(toks.get(i)), Some(Kind::Punct('('))) {
        return (None, start + 1);
    }
    let params_open = i;
    let params_close = skip_balanced(toks, i, '(', ')');
    let params = parse_params(toks, params_open, params_close);

    // Scan the return type / where clause for the body `{` or a `;`.
    let mut j = params_close;
    let mut body = None;
    while let Some(t) = toks.get(j) {
        match &t.kind {
            Kind::Punct('<') => {
                j = skip_angles(toks, j);
                continue;
            }
            Kind::Punct('{') => {
                body = Some((j, skip_balanced(toks, j, '{', '}')));
                break;
            }
            Kind::Punct(';') => {
                j += 1;
                break;
            }
            Kind::Punct('(' | '[') => {
                let close = if t.kind == Kind::Punct('(') { ')' } else { ']' };
                let open = if t.kind == Kind::Punct('(') { '(' } else { '[' };
                j = skip_balanced(toks, j, open, close);
                continue;
            }
            _ => j += 1,
        }
    }

    let item = FnItem {
        name,
        owner: owner.map(str::to_string),
        is_pub: fn_is_pub(toks, start),
        in_test,
        line,
        col,
        params,
        body,
        calls: Vec::new(),
        panics: Vec::new(),
    };
    // Continue scanning just inside the body so nested items are found.
    let next = match body {
        Some((open, _)) => open + 1,
        None => j,
    };
    (Some(item), next.max(start + 2))
}

/// Split the argument list of a call whose `(` sits at `open` into
/// top-level token ranges. Returns (arg ranges, index past `)`).
fn split_args(toks: &[Token], open: usize) -> (Vec<(usize, usize)>, usize) {
    let close = skip_balanced(toks, open, '(', ')');
    let inner_end = close.saturating_sub(1).max(open + 1);
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = open + 1;
    let mut i = open + 1;
    while i < inner_end {
        match kind(toks.get(i)) {
            Some(Kind::Punct('(' | '[' | '{')) => depth += 1,
            Some(Kind::Punct(')' | ']' | '}')) => depth -= 1,
            Some(Kind::Punct(',')) if depth == 0 => {
                args.push((arg_start, i));
                arg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if arg_start < inner_end {
        args.push((arg_start, inner_end));
    }
    (args, close)
}

/// Collect the `::`-separated path ending with the ident at `i`, looking
/// backward. `["a", "b", "name"]` for `a::b::name`.
fn collect_path(toks: &[Token], i: usize, name: &str) -> Vec<String> {
    let mut segs = vec![name.to_string()];
    let mut j = i;
    while j >= 2
        && matches!(kind(toks.get(j - 1)), Some(Kind::PathSep))
    {
        match kind(toks.get(j - 2)) {
            Some(Kind::Ident(seg)) => {
                segs.insert(0, seg.clone());
                j -= 2;
            }
            _ => break,
        }
    }
    segs
}

/// Scan a function body for call sites and panic sites.
fn scan_body(toks: &[Token], start: usize, end: usize, item: &mut FnItem) {
    let mut i = start;
    while i < end {
        let Some(t) = toks.get(i) else { break };
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let next = toks.get(i + 1);
        match &t.kind {
            Kind::Ident(name) => {
                let after_dot = matches!(kind(prev), Some(Kind::Punct('.')));
                let before_paren = matches!(kind(next), Some(Kind::Punct('(')));
                let before_bang = matches!(kind(next), Some(Kind::Punct('!')));
                if before_bang {
                    let (what, vouch_rule, l1): (&str, &str, bool) = match name.as_str() {
                        "panic" => ("`panic!`", "no-panic", true),
                        "todo" => ("`todo!`", "no-panic", true),
                        "unimplemented" => ("`unimplemented!`", "no-panic", true),
                        "unreachable" => ("`unreachable!`", "no-unreachable", true),
                        "assert" => ("`assert!`", "panic-path", false),
                        "assert_eq" => ("`assert_eq!`", "panic-path", false),
                        "assert_ne" => ("`assert_ne!`", "panic-path", false),
                        _ => ("", "", false),
                    };
                    if !what.is_empty() {
                        item.panics.push(PanicSite {
                            line: t.line,
                            col: t.col,
                            what,
                            vouch_rule,
                            l1_covered: l1,
                        });
                    }
                    i += 1;
                    continue;
                }
                if before_paren {
                    if after_dot {
                        match name.as_str() {
                            "unwrap" => item.panics.push(PanicSite {
                                line: t.line,
                                col: t.col,
                                what: "`.unwrap()`",
                                vouch_rule: "no-unwrap",
                                l1_covered: true,
                            }),
                            "expect" => item.panics.push(PanicSite {
                                line: t.line,
                                col: t.col,
                                what: "`.expect()`",
                                vouch_rule: "no-expect",
                                l1_covered: true,
                            }),
                            _ => {}
                        }
                        let (args, _after) = split_args(toks, i + 1);
                        item.calls.push(CallSite {
                            path: vec![name.clone()],
                            is_method: true,
                            line: t.line,
                            col: t.col,
                            args,
                            tok: i,
                        });
                        // Advance one token only: the argument interior is
                        // scanned normally, so nested calls are still found.
                        i += 1;
                        continue;
                    }
                    let declares_fn = ident_is(prev, "fn");
                    if !declares_fn && !NOT_CALLEES.contains(&name.as_str()) {
                        let (args, _after) = split_args(toks, i + 1);
                        item.calls.push(CallSite {
                            path: collect_path(toks, i, name),
                            is_method: false,
                            line: t.line,
                            col: t.col,
                            args,
                            tok: i,
                        });
                    }
                }
            }
            Kind::Punct('[') => {
                let indexable = match kind(prev) {
                    Some(Kind::Ident(id)) => !NON_INDEXABLE_KEYWORDS.contains(&id.as_str()),
                    Some(Kind::Punct(']' | ')' | '?')) | Some(Kind::Int) => true,
                    _ => false,
                };
                if indexable {
                    item.panics.push(PanicSite {
                        line: t.line,
                        col: t.col,
                        what: "`[..]` indexing",
                        vouch_rule: "no-index",
                        l1_covered: true,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Parse one lexed file.
pub fn parse(path: &str, lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.tokens;
    let mut file = ParsedFile {
        path: path.to_string(),
        crate_name: crate_of(path),
        uses: Vec::new(),
        fns: Vec::new(),
    };
    // Stack of enclosing impl/trait blocks: (owner, end token index).
    let mut owners: Vec<(String, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while owners.last().is_some_and(|(_, end)| i >= *end) {
            owners.pop();
        }
        let t = &toks[i];
        match &t.kind {
            Kind::Ident(id) if id == "use" => {
                // Only at statement position (not e.g. a field named `use`,
                // which is not valid Rust anyway).
                i = parse_use(toks, i, &mut file.uses);
                continue;
            }
            Kind::Ident(id) if id == "impl" || id == "trait" => {
                if let Some((owner, body_open, end)) = impl_owner(toks, i) {
                    owners.push((owner, end));
                    i = body_open + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            Kind::Ident(id) if id == "fn" => {
                let owner = owners.last().map(|(o, _)| o.as_str());
                let (item, next) = parse_fn(toks, i, owner);
                if let Some(item) = item {
                    file.fns.push(item);
                }
                i = next.max(i + 1);
                continue;
            }
            _ => i += 1,
        }
    }
    for f in &mut file.fns {
        if let Some((s, e)) = f.body {
            scan_body(toks, s + 1, e.saturating_sub(1), f);
        }
    }
    file
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse("crates/x/src/lib.rs", &lex(src))
    }

    #[test]
    fn free_fn_with_params_and_body() {
        let p = parse_src("pub fn add(a: u32, b: u32) -> u32 { a + b }");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "add");
        assert!(f.is_pub);
        assert_eq!(f.params, vec!["a", "b"]);
        assert!(f.owner.is_none());
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_methods_get_their_owner() {
        let p = parse_src(
            "struct R;\nimpl R {\n    pub fn new() -> Self { R }\n    fn go(&self, n: usize) {}\n}\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("R"));
        assert_eq!(p.fns[1].params, vec!["self", "n"]);
    }

    #[test]
    fn trait_impl_owner_is_the_type_after_for() {
        let p = parse_src("impl fmt::Display for Foo {\n    fn fmt(&self) {}\n}\n");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Foo"));
    }

    #[test]
    fn pub_crate_is_not_pub() {
        let p = parse_src("pub(crate) fn a() {}\npub fn b() {}\nfn c() {}");
        let pubs: Vec<bool> = p.fns.iter().map(|f| f.is_pub).collect();
        assert_eq!(pubs, vec![false, true, false]);
    }

    #[test]
    fn calls_paths_and_methods() {
        let p = parse_src(
            "fn f(r: &mut R) { let x = r.u32(); helper(x); xdr::pad4(x); Self::go(x, 2); }",
        );
        let f = &p.fns[0];
        let paths: Vec<Vec<String>> = f.calls.iter().map(|c| c.path.clone()).collect();
        assert!(paths.contains(&vec!["u32".to_string()]));
        assert!(paths.contains(&vec!["helper".to_string()]));
        assert!(paths.contains(&vec!["xdr".to_string(), "pad4".to_string()]));
        assert!(paths.contains(&vec!["Self".to_string(), "go".to_string()]));
        let go = f.calls.iter().find(|c| c.path.last().map(String::as_str) == Some("go")).unwrap();
        assert_eq!(go.args.len(), 2);
    }

    #[test]
    fn panic_sites_cover_macros_methods_and_indexing() {
        let p = parse_src(
            "fn f(b: &[u8], o: Option<u8>) {\n    o.unwrap();\n    o.expect(\"x\");\n    panic!(\"y\");\n    assert!(b.len() > 1);\n    let _ = b[0];\n}\n",
        );
        let what: Vec<&str> = p.fns[0].panics.iter().map(|s| s.what).collect();
        assert_eq!(
            what,
            vec!["`.unwrap()`", "`.expect()`", "`panic!`", "`assert!`", "`[..]` indexing"]
        );
        assert!(p.fns[0].panics.iter().any(|s| !s.l1_covered));
    }

    #[test]
    fn use_trees_expand_groups_and_aliases() {
        let p = parse_src(
            "use std::collections::{HashMap, BTreeMap as Tree};\nuse ixp_core::util::pick;\nuse crate::xdr;\n",
        );
        let find = |alias: &str| p.uses.iter().find(|u| u.alias == alias).map(|u| u.path.clone());
        assert_eq!(
            find("HashMap"),
            Some(vec!["std".into(), "collections".into(), "HashMap".into()])
        );
        assert_eq!(
            find("Tree"),
            Some(vec!["std".into(), "collections".into(), "BTreeMap".into()])
        );
        assert_eq!(find("pick"), Some(vec!["ixp_core".into(), "util".into(), "pick".into()]));
        assert_eq!(find("xdr"), Some(vec!["crate".into(), "xdr".into()]));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse_src("fn apply(f: fn(u32) -> u32, x: u32) -> u32 { f(x) }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "apply");
    }

    #[test]
    fn bodiless_trait_methods_parse() {
        let p = parse_src("trait T { fn must(&self) -> u8; fn dflt(&self) -> u8 { 0 } }");
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.fns[0].owner.as_deref(), Some("T"));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let p = parse_src("#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn real() {}");
        let t = p.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
        let real = p.fns.iter().find(|f| f.name == "real").unwrap();
        assert!(!real.in_test);
    }

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/wire/src/ipv4.rs"), "wire");
        assert_eq!(crate_of("vendor/crossbeam/src/lib.rs"), "crossbeam");
        assert_eq!(crate_of("src/lib.rs"), "(root)");
    }
}
