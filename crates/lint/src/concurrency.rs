//! L8 — concurrency-safety analysis ahead of the sharded parallel ingest.
//!
//! Four analyses over the parsed item tree and the workspace call graph
//! (DESIGN.md §8):
//!
//! * **lock-order** (`lock-order-cycle`): per function, record which lock
//!   identities are held (guard live) when another lock is acquired —
//!   directly or via any workspace call — accumulate the pairs into a
//!   lock-order graph, and report every cycle with one witness site per
//!   edge.
//! * **guard scopes** (`guard-across-blocking`): a guard held across
//!   `.send()`/`.recv()`/`join`/`wait`/`sleep` stalls other threads;
//!   passing the guard *into* a condvar `wait` releases it atomically and
//!   is exempt.
//! * **escape analysis** (`shared-state-escape`): non-`Arc` interior
//!   mutability (`RefCell`/`Cell`/`UnsafeCell` locals) and `static mut`
//!   reached from `spawn` closures.
//! * **merge determinism** (`atomic-ordering`, `order-dependent-merge`):
//!   `Relaxed` loads reachable from snapshot/report entry points, and
//!   channel-drain loops folding with float `+=` or unsorted `push`.
//!
//! Lock identity is lexical: the last non-`self` identifier of the
//! receiver chain before `.lock()`/`.read()`/`.write()` (`self.inner
//! .lock()` → `inner`). A wrapper method whose receiver chain is exactly
//! `self` (e.g. `Registry::lock` calling `self.inner.lock()`) contributes
//! its callee's lock set instead. Guard lifetime runs from the acquisition
//! to an explicit `drop(guard)`, the end of the enclosing statement for
//! unnamed temporaries, or the end of the surrounding block — a sound
//! over-approximation of NLL for the straight-line code this workspace
//! writes.
//!
//! Scope: every crate `src/` tree (the L4 scope) plus the vendored
//! `vendor/*/src/` stand-ins, whose channel internals are exactly the kind
//! of code L8 exists to police. Test items are exempt.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use crate::lexer::{Kind, Lexed, Token};
use crate::parser::{FnItem, ParsedFile};
use crate::rules;
use crate::symbols::{FnRef, SymbolTable};
use crate::Finding;

/// Method/path tails treated as blocking for `guard-across-blocking`.
const BLOCKING: &[&str] = &["send", "recv", "wait", "wait_timeout", "join", "park", "sleep"];

/// Interior-mutability constructors whose un-`Arc`ed values must not cross
/// a spawn boundary.
const INTERIOR_MUT: &[&str] = &["RefCell", "Cell", "UnsafeCell"];

/// L8 scope: the L4 scope (every crate `src/` tree) plus the vendored
/// dependency stand-ins.
fn l8_applies(path: &str) -> bool {
    rules::l4_applies(path) || (path.starts_with("vendor/") && path.contains("/src/"))
}

/// The `.`-separated identifier chain ending just before the method name
/// at token `tok` (`a.b.lock()` at `lock` → `["a", "b"]`). Empty when the
/// receiver is not a plain ident chain (call results, indexing, ...).
fn receiver_chain(toks: &[Token], tok: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = tok;
    // Walk back over `Ident .` pairs.
    while j >= 2
        && matches!(toks.get(j - 1).map(|t| &t.kind), Some(Kind::Punct('.')))
    {
        match toks.get(j - 2).map(|t| &t.kind) {
            Some(Kind::Ident(id)) => {
                chain.insert(0, id.clone());
                j -= 2;
            }
            _ => return Vec::new(),
        }
    }
    chain
}

/// Index just past the statement containing token `from`: the first `;` at
/// non-nested depth, or the index where depth goes negative (end of the
/// enclosing block/paren), capped at `limit`.
fn statement_end(toks: &[Token], from: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < limit {
        match toks.get(j).map(|t| &t.kind) {
            Some(Kind::Punct('(' | '[' | '{')) => depth += 1,
            Some(Kind::Punct(')' | ']' | '}')) => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            Some(Kind::Punct(';')) if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    limit
}

/// Index of the `}` closing the block that token `from` sits in, capped at
/// `limit`.
fn block_end(toks: &[Token], from: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < limit {
        match toks.get(j).map(|t| &t.kind) {
            Some(Kind::Punct('{')) => depth += 1,
            Some(Kind::Punct('}')) => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    limit
}

/// First `drop(<name>)` after `from`, if any.
fn drop_site(toks: &[Token], from: usize, limit: usize, name: &str) -> Option<usize> {
    let mut j = from;
    while j + 3 < limit {
        if matches!(toks.get(j).map(|t| &t.kind), Some(Kind::Ident(id)) if id == "drop")
            && matches!(toks.get(j + 1).map(|t| &t.kind), Some(Kind::Punct('(')))
            && matches!(toks.get(j + 2).map(|t| &t.kind), Some(Kind::Ident(id)) if id == name)
            && matches!(toks.get(j + 3).map(|t| &t.kind), Some(Kind::Punct(')')))
        {
            return Some(j);
        }
        j += 1;
    }
    None
}

/// One lock acquisition inside a function body.
#[derive(Debug)]
struct Site {
    /// Token index of the `lock`/`read`/`write` (or wrapper) call.
    tok: usize,
    /// Lock identities acquired here (one for a direct call; a wrapper
    /// inherits its callee's whole set).
    locks: Vec<String>,
    /// Guard binding name, when `let g = ...lock();` names one.
    guard: Option<String>,
    /// Token index the guard is live until (exclusive).
    until: usize,
    line: u32,
}

/// How a call site relates to the lock analysis.
enum Classified {
    /// `recv.lock()` — acquires the named lock directly.
    Direct(String),
    /// `self.lock()` — a wrapper; inherits the callees' lock sets.
    Wrapper(Vec<FnRef>),
    /// Any other call; resolved workspace callees (possibly empty).
    Plain(Vec<FnRef>),
}

/// Classify every call of `f` (file `fi`) for the lock analyses.
fn classify(
    files: &[ParsedFile],
    lexed: &[Lexed],
    table: &SymbolTable,
    fi: usize,
    f: &FnItem,
) -> Vec<(usize, Classified)> {
    let toks = &lexed[fi].tokens;
    let mut out = Vec::new();
    for (ci, c) in f.calls.iter().enumerate() {
        let name = c.path.last().map(String::as_str).unwrap_or("");
        let is_lock_call =
            c.is_method && matches!(name, "lock" | "read" | "write") && c.args.is_empty();
        if is_lock_call {
            let chain = receiver_chain(toks, c.tok);
            if chain.iter().all(|s| s == "self") && !chain.is_empty() {
                // `self.lock()`: a wrapper around the real acquisition.
                let refs: Vec<FnRef> = table
                    .resolve_unfiltered(c, &files[fi], f)
                    .into_iter()
                    .filter(|&(cfi, cxi)| !files[cfi].fns[cxi].in_test)
                    .collect();
                out.push((ci, Classified::Wrapper(refs)));
            } else if let Some(id) = chain.iter().rev().find(|s| *s != "self") {
                out.push((ci, Classified::Direct(id.clone())));
            }
            // Computed receivers (`make().lock()`) are skipped: no stable
            // identity to order against.
            continue;
        }
        let refs: Vec<FnRef> = table
            .resolve_unfiltered(c, &files[fi], f)
            .into_iter()
            .filter(|&(cfi, cxi)| !files[cfi].fns[cxi].in_test)
            .collect();
        out.push((ci, Classified::Plain(refs)));
    }
    out
}

/// Build the acquisition [`Site`]s of one function from its classified
/// calls, resolving each guard's live range.
fn sites_of(
    lexed: &Lexed,
    f: &FnItem,
    classified: &[(usize, Classified)],
    acquires: &HashMap<FnRef, BTreeSet<String>>,
) -> Vec<Site> {
    let toks = &lexed.tokens;
    let Some((_, body_close)) = f.body else { return Vec::new() };
    let body_limit = body_close.saturating_sub(1);
    let mut sites = Vec::new();
    for (ci, class) in classified {
        let c = &f.calls[*ci];
        let locks: Vec<String> = match class {
            Classified::Direct(id) => vec![id.clone()],
            Classified::Wrapper(refs) => {
                let mut set = BTreeSet::new();
                for r in refs {
                    if let Some(s) = acquires.get(r) {
                        set.extend(s.iter().cloned());
                    }
                }
                set.into_iter().collect()
            }
            Classified::Plain(_) => continue,
        };
        if locks.is_empty() {
            continue;
        }
        // `let g = recv.chain.lock()` — the binding sits just before the
        // receiver chain (2 tokens per chain segment).
        let chain_len = receiver_chain(toks, c.tok).len();
        let cs = c.tok.saturating_sub(2 * chain_len);
        let guard = match (
            cs.checked_sub(1).and_then(|j| toks.get(j)).map(|t| &t.kind),
            cs.checked_sub(2).and_then(|j| toks.get(j)).map(|t| &t.kind),
        ) {
            (Some(Kind::Punct('=')), Some(Kind::Ident(name)))
                if name != "let" && name != "mut" =>
            {
                Some(name.clone())
            }
            _ => None,
        };
        let until = match &guard {
            Some(name) => {
                let dropped = drop_site(toks, c.tok, body_limit, name);
                let scope = block_end(toks, c.tok, body_limit);
                dropped.map_or(scope, |d| d.min(scope))
            }
            // An unnamed temporary guard dies at the end of its statement.
            None => statement_end(toks, c.tok, body_limit),
        };
        sites.push(Site { tok: c.tok, locks, guard, until, line: c.line });
    }
    sites
}

/// Lock identities held at token `t` (strictly after an acquisition,
/// strictly before its release).
fn held_at(sites: &[Site], t: usize) -> Vec<&Site> {
    sites.iter().filter(|s| s.tok < t && t < s.until).collect()
}

/// A witness for one lock-order edge: where `to` was acquired while `from`
/// was held.
#[derive(Debug, Clone)]
struct Edge {
    file: String,
    line: u32,
    func: String,
    /// Callee name when the acquisition happened inside a callee.
    via: Option<String>,
}

/// Run every L8 analysis. `files`, `lexed` are parallel (same indices);
/// findings are appended unsorted (the caller sorts globally).
pub fn check(
    files: &[ParsedFile],
    lexed: &[Lexed],
    table: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    let static_muts = collect_static_muts(files, lexed);
    let classified: Vec<Vec<Vec<(usize, Classified)>>> = files
        .iter()
        .enumerate()
        .map(|(fi, file)| {
            file.fns
                .iter()
                .map(|f| classify(files, lexed, table, fi, f))
                .collect()
        })
        .collect();
    let acquires = acquired_sets(files, lexed, &classified);

    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if !l8_applies(&file.path) {
            continue;
        }
        for (xi, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let class = &classified[fi][xi];
            let sites = sites_of(&lexed[fi], f, class, &acquires);
            lock_order_edges(file, f, class, &sites, &acquires, &mut edges);
            guard_across_blocking(file, &lexed[fi], f, class, &sites, out);
            shared_state_escape(&lexed[fi], file, f, &static_muts, out);
            order_dependent_merge(&lexed[fi], file, f, out);
        }
    }
    report_cycles(&edges, out);
    atomic_ordering(files, lexed, table, out);
}

/// Fixpoint: the set of lock identities each function may acquire,
/// directly or through any workspace call.
fn acquired_sets(
    files: &[ParsedFile],
    lexed: &[Lexed],
    classified: &[Vec<Vec<(usize, Classified)>>],
) -> HashMap<FnRef, BTreeSet<String>> {
    let mut acquires: HashMap<FnRef, BTreeSet<String>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (xi, _) in file.fns.iter().enumerate() {
            let direct: BTreeSet<String> = classified[fi][xi]
                .iter()
                .filter_map(|(_, c)| match c {
                    Classified::Direct(id) => Some(id.clone()),
                    _ => None,
                })
                .collect();
            acquires.insert((fi, xi), direct);
        }
    }
    let _ = lexed;
    loop {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for (xi, _) in file.fns.iter().enumerate() {
                let mut merged = acquires[&(fi, xi)].clone();
                for (_, class) in &classified[fi][xi] {
                    let refs = match class {
                        Classified::Wrapper(refs) | Classified::Plain(refs) => refs,
                        Classified::Direct(_) => continue,
                    };
                    for r in refs {
                        if let Some(s) = acquires.get(r) {
                            merged.extend(s.iter().cloned());
                        }
                    }
                }
                if merged.len() != acquires[&(fi, xi)].len() {
                    acquires.insert((fi, xi), merged);
                    changed = true;
                }
            }
        }
        if !changed {
            return acquires;
        }
    }
}

/// Record held→acquired edges from one function's sites and calls.
fn lock_order_edges(
    file: &ParsedFile,
    f: &FnItem,
    classified: &[(usize, Classified)],
    sites: &[Site],
    acquires: &HashMap<FnRef, BTreeSet<String>>,
    edges: &mut BTreeMap<(String, String), Edge>,
) {
    let mut push = |from: &str, to: &str, line: u32, via: Option<String>| {
        // A self-edge (re-locking the same identity through a wrapper) is
        // re-entrancy, not an ordering fact; skip it.
        if from == to {
            return;
        }
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| Edge { file: file.path.clone(), line, func: f.name.clone(), via });
    };
    for s in sites {
        for h in held_at(sites, s.tok) {
            for from in &h.locks {
                for to in &s.locks {
                    push(from, to, s.line, None);
                }
            }
        }
    }
    for (ci, class) in classified {
        let refs = match class {
            Classified::Plain(refs) if !refs.is_empty() => refs,
            _ => continue,
        };
        let c = &f.calls[*ci];
        let mut callee_locks = BTreeSet::new();
        let mut callee_name = String::new();
        for r in refs {
            if let Some(s) = acquires.get(r) {
                callee_locks.extend(s.iter().cloned());
            }
        }
        if callee_locks.is_empty() {
            continue;
        }
        if let Some(n) = c.path.last() {
            callee_name = n.clone();
        }
        for h in held_at(sites, c.tok) {
            for from in &h.locks {
                for to in &callee_locks {
                    push(from, to, c.line, Some(callee_name.clone()));
                }
            }
        }
    }
}

/// Find and report cycles in the lock-order graph.
fn report_cycles(edges: &BTreeMap<(String, String), Edge>, out: &mut Vec<Finding>) {
    let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adjacency.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut reported: HashSet<BTreeSet<String>> = HashSet::new();
    for (a, b) in edges.keys() {
        // A cycle through edge a→b exists iff b reaches a.
        let Some(path) = shortest_path(&adjacency, b, a) else { continue };
        let mut cycle: Vec<&str> = vec![a.as_str()];
        cycle.extend(path.iter().copied());
        let key: BTreeSet<String> = cycle.iter().map(|s| s.to_string()).collect();
        if !reported.insert(key) {
            continue;
        }
        let mut parts = Vec::new();
        let mut anchor: Option<(&Edge, u32)> = None;
        for w in cycle.windows(2) {
            let Some(e) = edges.get(&(w[0].to_string(), w[1].to_string())) else { continue };
            parts.push(match &e.via {
                Some(via) => format!(
                    "`{}` acquired (inside `{}`) while holding `{}` in `{}` ({}:{})",
                    w[1], via, w[0], e.func, e.file, e.line
                ),
                None => format!(
                    "`{}` acquired while holding `{}` in `{}` ({}:{})",
                    w[1], w[0], e.func, e.file, e.line
                ),
            });
            let better = anchor
                .map(|(a, _)| (e.file.as_str(), e.line) < (a.file.as_str(), a.line))
                .unwrap_or(true);
            if better {
                anchor = Some((e, e.line));
            }
        }
        let Some((anchor_edge, line)) = anchor else { continue };
        let order = cycle.iter().map(|l| format!("`{l}`")).collect::<Vec<_>>().join(" → ");
        out.push(Finding::new(
            &anchor_edge.file,
            line,
            "lock-order-cycle",
            &format!("potential deadlock: lock-order cycle {order}: {}", parts.join("; ")),
        ));
    }
}

/// BFS shortest path from `from` to `to` over the adjacency lists.
/// Returns the node sequence starting at `from` and ending at `to`.
fn shortest_path<'a>(
    adjacency: &BTreeMap<&'a str, Vec<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen: BTreeSet<&str> = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in adjacency.get(n).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Report blocking calls made while a guard is live, unless the guard is
/// passed into the call (condvar `wait(guard)` releases it atomically).
fn guard_across_blocking(
    file: &ParsedFile,
    lexed: &Lexed,
    f: &FnItem,
    classified: &[(usize, Classified)],
    sites: &[Site],
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for (ci, class) in classified {
        if !matches!(class, Classified::Plain(_)) {
            continue;
        }
        let c = &f.calls[*ci];
        let name = c.path.last().map(String::as_str).unwrap_or("");
        if !BLOCKING.contains(&name) {
            continue;
        }
        for site in held_at(sites, c.tok) {
            let exempted = site.guard.as_deref().is_some_and(|g| {
                c.args.iter().any(|&(s, e)| {
                    toks[s.min(toks.len())..e.min(toks.len())]
                        .iter()
                        .any(|t| matches!(&t.kind, Kind::Ident(id) if id == g))
                })
            });
            if exempted {
                continue;
            }
            let held = site.locks.iter().map(|l| format!("`{l}`")).collect::<Vec<_>>().join(", ");
            out.push(Finding::at(
                &file.path,
                c.line,
                c.col,
                "guard-across-blocking",
                &format!(
                    "`.{name}()` can block while the guard of {held} (acquired at line {}) \
                     is still held; drop the guard first",
                    site.line
                ),
            ));
        }
    }
}

/// `static mut` names declared outside tests, across every L8-scope file.
fn collect_static_muts(files: &[ParsedFile], lexed: &[Lexed]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        if !l8_applies(&file.path) {
            continue;
        }
        let toks = &lexed[fi].tokens;
        for w in toks.windows(3) {
            if w[0].in_test {
                continue;
            }
            if let (Kind::Ident(a), Kind::Ident(b), Kind::Ident(name)) =
                (&w[0].kind, &w[1].kind, &w[2].kind)
            {
                if a == "static" && b == "mut" {
                    names.insert(name.clone());
                }
            }
        }
    }
    names
}

/// Report unsynchronised state reached from spawn closures: `static mut`
/// names and non-`Arc` interior-mutability locals.
fn shared_state_escape(
    lexed: &Lexed,
    file: &ParsedFile,
    f: &FnItem,
    static_muts: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    let Some((body_open, body_close)) = f.body else { return };
    // Locals bound to a bare interior-mutability constructor: scan each
    // `let [mut] name = init;` in the body.
    let mut unsync: Vec<(String, usize)> = Vec::new();
    let mut i = body_open + 1;
    let body_limit = body_close.saturating_sub(1);
    while i < body_limit {
        let is_let = matches!(&toks[i].kind, Kind::Ident(id) if id == "let");
        if !is_let {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(toks.get(j).map(|t| &t.kind), Some(Kind::Ident(id)) if id == "mut") {
            j += 1;
        }
        let Some(Kind::Ident(name)) = toks.get(j).map(|t| &t.kind) else {
            i += 1;
            continue;
        };
        let name = name.clone();
        let end = statement_end(toks, j, body_limit);
        let init = &toks[j..end];
        let has_cell = init
            .iter()
            .any(|t| matches!(&t.kind, Kind::Ident(id) if INTERIOR_MUT.contains(&id.as_str())));
        let has_arc = init.iter().any(|t| matches!(&t.kind, Kind::Ident(id) if id == "Arc"));
        if has_cell && !has_arc {
            unsync.push((name, i));
        }
        i = end.max(i + 1);
    }
    for c in &f.calls {
        if c.path.last().map(String::as_str) != Some("spawn") {
            continue;
        }
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for &(s, e) in &c.args {
            for t in &toks[s.min(toks.len())..e.min(toks.len())] {
                let Kind::Ident(id) = &t.kind else { continue };
                let local = unsync.iter().find(|(n, decl)| n == id && *decl < c.tok);
                let is_static = static_muts.contains(id);
                if (local.is_some() || is_static) && seen.insert(id.as_str()) {
                    let what = if is_static {
                        format!("`static mut {id}`")
                    } else {
                        format!("non-Arc interior-mutability local `{id}`")
                    };
                    out.push(Finding::at(
                        &file.path,
                        t.line,
                        t.col,
                        "shared-state-escape",
                        &format!(
                            "{what} is reached from a `spawn` closure; wrap it in \
                             `Arc<Mutex<_>>`/an atomic or move per-thread state by value"
                        ),
                    ));
                }
            }
        }
    }
}

/// Report `Ordering::Relaxed` loads in functions reachable from
/// snapshot/report/export entry points.
fn atomic_ordering(
    files: &[ParsedFile],
    lexed: &[Lexed],
    table: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    let is_seed = |f: &FnItem| {
        let n = f.name.as_str();
        n == "snapshot"
            || n == "render"
            || n.starts_with("snapshot_")
            || n.starts_with("render_")
            || n.starts_with("export")
            || n.starts_with("report")
            || n.starts_with("emit")
    };
    // BFS from every seed, remembering one parent per function for traces.
    let mut parent: HashMap<FnRef, Option<FnRef>> = HashMap::new();
    let mut queue: VecDeque<FnRef> = VecDeque::new();
    for (fi, file) in files.iter().enumerate() {
        if !l8_applies(&file.path) {
            continue;
        }
        for (xi, f) in file.fns.iter().enumerate() {
            if !f.in_test && is_seed(f) {
                parent.entry((fi, xi)).or_insert(None);
                queue.push_back((fi, xi));
            }
        }
    }
    while let Some((fi, xi)) = queue.pop_front() {
        let f = &files[fi].fns[xi];
        for c in &f.calls {
            for r in table.resolve_unfiltered(c, &files[fi], f) {
                if files[r.0].fns[r.1].in_test || parent.contains_key(&r) {
                    continue;
                }
                parent.insert(r, Some((fi, xi)));
                queue.push_back(r);
            }
        }
    }
    let mut reachable: Vec<FnRef> = parent.keys().copied().collect();
    reachable.sort_unstable();
    for (fi, xi) in reachable {
        let file = &files[fi];
        if !l8_applies(&file.path) {
            continue;
        }
        let f = &file.fns[xi];
        let toks = &lexed[fi].tokens;
        for c in &f.calls {
            if !matches!(c.path.last().map(String::as_str), Some("load" | "fetch_update")) {
                continue;
            }
            for &(s, e) in &c.args {
                for (ti, t) in toks[s.min(toks.len())..e.min(toks.len())].iter().enumerate() {
                    let _ = ti;
                    if !matches!(&t.kind, Kind::Ident(id) if id == "Relaxed") {
                        continue;
                    }
                    // Walk parents back to the seed for the trace.
                    let mut chain = vec![f.name.clone()];
                    let mut cur = (fi, xi);
                    while let Some(Some(p)) = parent.get(&cur) {
                        chain.push(files[p.0].fns[p.1].name.clone());
                        cur = *p;
                        if chain.len() >= 6 {
                            break;
                        }
                    }
                    chain.reverse();
                    out.push(Finding::at(
                        &file.path,
                        t.line,
                        t.col,
                        "atomic-ordering",
                        &format!(
                            "`Ordering::Relaxed` load on a snapshot/report path \
                             (reached via {}); use at least `Ordering::Acquire`",
                            chain.join(" → ")
                        ),
                    ));
                }
            }
        }
    }
}

/// Report order-dependent folds inside channel-drain loops.
fn order_dependent_merge(
    lexed: &Lexed,
    file: &ParsedFile,
    f: &FnItem,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    let Some((body_open, body_close)) = f.body else { return };
    let body_limit = body_close.saturating_sub(1);

    // Float-typed locals: a `let` whose statement mentions a float literal
    // or an f32/f64 annotation.
    let mut float_locals: BTreeSet<String> = BTreeSet::new();
    let mut i = body_open + 1;
    while i < body_limit {
        if matches!(&toks[i].kind, Kind::Ident(id) if id == "let") {
            let mut j = i + 1;
            if matches!(toks.get(j).map(|t| &t.kind), Some(Kind::Ident(id)) if id == "mut") {
                j += 1;
            }
            if let Some(Kind::Ident(name)) = toks.get(j).map(|t| &t.kind) {
                let end = statement_end(toks, j, body_limit);
                let floaty = toks[j..end].iter().any(|t| {
                    matches!(t.kind, Kind::Float)
                        || matches!(&t.kind, Kind::Ident(id) if id == "f64" || id == "f32")
                });
                if floaty {
                    float_locals.insert(name.clone());
                }
                i = end.max(i + 1);
                continue;
            }
        }
        i += 1;
    }

    // Drain regions: `while`/`loop` whose extent contains `.recv(` or
    // `.try_recv(`.
    let mut i = body_open + 1;
    while i < body_limit {
        let is_loop_kw =
            matches!(&toks[i].kind, Kind::Ident(id) if id == "while" || id == "loop");
        if !is_loop_kw {
            i += 1;
            continue;
        }
        // The region runs from the keyword (so the `while let ... = rx
        // .recv()` condition counts) to the end of the loop body.
        let open = (i..body_limit)
            .find(|&j| matches!(toks[j].kind, Kind::Punct('{')))
            .unwrap_or(body_limit);
        let close = if open < body_limit {
            block_end(toks, open + 1, body_limit)
        } else {
            body_limit
        };
        let region = &toks[i..close.min(toks.len())];
        let drains = region.windows(3).any(|w| {
            matches!(&w[0].kind, Kind::Punct('.'))
                && matches!(&w[1].kind, Kind::Ident(id) if id == "recv" || id == "try_recv")
                && matches!(&w[2].kind, Kind::Punct('('))
        });
        if !drains {
            i = close.max(i + 1);
            continue;
        }
        for (off, t) in region.iter().enumerate() {
            let j = i + off;
            match &t.kind {
                // `sum += v;` / `prod *= v;` on a float local.
                Kind::Ident(id) if float_locals.contains(id) => {
                    let op = toks.get(j + 1).map(|t| &t.kind);
                    let eq = toks.get(j + 2).map(|t| &t.kind);
                    if matches!(op, Some(Kind::Punct('+' | '*')))
                        && matches!(eq, Some(Kind::Punct('=')))
                    {
                        out.push(Finding::at(
                            &file.path,
                            t.line,
                            t.col,
                            "order-dependent-merge",
                            &format!(
                                "float accumulation `{id} {}=` inside a channel-drain loop \
                                 depends on arrival order; use an integer accumulator or \
                                 merge per-shard partials in a fixed order",
                                match op {
                                    Some(Kind::Punct(c)) => *c,
                                    _ => '+',
                                }
                            ),
                        ));
                    }
                }
                // `out.push(v)` / `out.extend(vs)` with no later sort.
                Kind::Ident(id)
                    if matches!(id.as_str(), "push" | "push_str" | "extend")
                        && matches!(
                            j.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.kind),
                            Some(Kind::Punct('.'))
                        )
                        && matches!(toks.get(j + 1).map(|t| &t.kind), Some(Kind::Punct('('))) =>
                {
                    let chain = receiver_chain(toks, j);
                    let Some(recv) = chain.iter().rev().find(|s| *s != "self") else {
                        continue;
                    };
                    let sorted_later = (j..body_limit.saturating_sub(3)).any(|k| {
                        matches!(&toks[k].kind, Kind::Ident(id) if id == recv)
                            && matches!(&toks[k + 1].kind, Kind::Punct('.'))
                            && matches!(&toks[k + 2].kind, Kind::Ident(m) if m.starts_with("sort"))
                    });
                    if !sorted_later {
                        out.push(Finding::at(
                            &file.path,
                            t.line,
                            t.col,
                            "order-dependent-merge",
                            &format!(
                                "`{recv}.{id}(..)` inside a channel-drain loop leaks arrival \
                                 order into the result; sort `{recv}` afterwards or use \
                                 index-keyed slots"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
        i = close.max(i + 1);
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::L8_RULES;
    use crate::scan_sources;
    use crate::Finding;

    /// Scan sources and keep only L8 findings.
    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        scan_sources(files.iter().map(|(p, s)| (p.to_string(), s.to_string())))
            .into_iter()
            .filter(|f| L8_RULES.contains(&f.rule))
            .collect()
    }

    #[test]
    fn direct_lock_inversion_is_a_cycle() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn one(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let g = a.lock();\n    let h = b.lock();\n    drop(h);\n    drop(g);\n}\npub fn two(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let h = b.lock();\n    let g = a.lock();\n    drop(g);\n    drop(h);\n}\n",
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "lock-order-cycle");
        assert!(got[0].message.contains("`a`"), "{}", got[0].message);
        assert!(got[0].message.contains("`b`"), "{}", got[0].message);
        assert!(got[0].message.contains("crates/a/src/lib.rs:"), "{}", got[0].message);
    }

    #[test]
    fn consistent_order_is_clean() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn one(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let g = a.lock();\n    let h = b.lock();\n    drop(h);\n    drop(g);\n}\npub fn two(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let g = a.lock();\n    let h = b.lock();\n    drop(h);\n    drop(g);\n}\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        // `one` drops `g` before taking `b`; `two` nests the other way.
        // Without the drop this would be a cycle; with it there is no
        // a→b edge, so the tree is clean.
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn one(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let g = a.lock();\n    drop(g);\n    let h = b.lock();\n    drop(h);\n}\npub fn two(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let h = b.lock();\n    let g = a.lock();\n    drop(g);\n    drop(h);\n}\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn cross_crate_cycle_reports_the_via_callee() {
        let got = run(&[
            (
                "crates/a/src/lib.rs",
                "pub fn ingest(stats: &Mutex<u8>, table: &Mutex<u8>) {\n    let s = stats.lock();\n    ixp_b::account(table);\n    drop(s);\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn account(table: &Mutex<u8>) {\n    *table.lock() += 1;\n}\npub fn flush(table: &Mutex<u8>, stats: &Mutex<u8>) {\n    let t = table.lock();\n    let s = stats.lock();\n    drop(s);\n    drop(t);\n}\n",
            ),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        let m = &got[0].message;
        assert!(m.contains("inside `account`"), "{m}");
        assert!(m.contains("crates/b/src/lib.rs:"), "{m}");
        assert!(m.contains("`stats`") && m.contains("`table`"), "{m}");
    }

    #[test]
    fn wrapper_self_lock_inherits_the_inner_identity() {
        // Registry-style wrapper: `self.lock()` resolves to a method that
        // locks `self.inner`, so `snapshot` + `other` order inner vs. aux.
        let got = run(&[(
            "crates/a/src/lib.rs",
            "impl Registry {\n    fn lock(&self) -> Guard { self.inner.lock() }\n    pub fn snapshot(&self, aux: &Mutex<u8>) {\n        let g = self.lock();\n        let h = aux.lock();\n        drop(h);\n        drop(g);\n    }\n    pub fn other(&self, aux: &Mutex<u8>) {\n        let h = aux.lock();\n        let g = self.lock();\n        drop(g);\n        drop(h);\n    }\n}\n",
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("`inner`"), "{}", got[0].message);
        assert!(got[0].message.contains("`aux`"), "{}", got[0].message);
    }

    #[test]
    fn reentrant_wrapper_is_not_a_self_cycle() {
        // snapshot() locks via the wrapper and also calls helper() which
        // locks the same identity — a re-entrancy question, not an
        // ordering cycle; L8 stays quiet.
        let got = run(&[(
            "crates/a/src/lib.rs",
            "impl Registry {\n    fn lock(&self) -> Guard { self.inner.lock() }\n    fn helper(&self) { let g = self.lock(); drop(g); }\n    pub fn snapshot(&self) {\n        let g = self.lock();\n        drop(g);\n        self.helper();\n    }\n}\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn guard_across_recv_is_reported_and_condvar_wait_is_exempt() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn drain(m: &Mutex<u8>, rx: &Receiver<u8>) {\n    let g = m.lock();\n    let v = rx.recv();\n    let _ = (g, v);\n}\npub fn wait_ok(m: &Mutex<u8>, cv: &Condvar) {\n    let mut state = m.lock();\n    state = cv.wait(state);\n    let _ = state;\n}\n",
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "guard-across-blocking");
        assert_eq!(got[0].line, 3);
        assert!(got[0].message.contains("recv"), "{}", got[0].message);
    }

    #[test]
    fn dropped_guard_before_recv_is_clean() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn drain(m: &Mutex<u8>, rx: &Receiver<u8>) {\n    let g = m.lock();\n    drop(g);\n    let v = rx.recv();\n    let _ = v;\n}\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn refcell_and_static_mut_escaping_into_spawn() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "static mut DROPPED: u64 = 0;\npub fn shard() {\n    let cache = RefCell::new(0u64);\n    std::thread::spawn(move || {\n        *cache.borrow_mut() += 1;\n        unsafe { DROPPED += 1 };\n    });\n}\n",
        )]);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|f| f.rule == "shared-state-escape"));
        assert!(got.iter().any(|f| f.message.contains("`cache`")));
        assert!(got.iter().any(|f| f.message.contains("static mut DROPPED")));
    }

    #[test]
    fn arc_wrapped_cell_does_not_escape() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn shard() {\n    let cache = Arc::new(RefCell::new(0u64));\n    std::thread::spawn(move || {\n        let _ = cache;\n    });\n}\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn relaxed_load_on_snapshot_path_direct_and_via_helper() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn snapshot(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\npub fn snapshot_all(c: &AtomicU64) -> u64 {\n    peek(c)\n}\nfn peek(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n",
        )]);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|f| f.rule == "atomic-ordering"));
        let via = got.iter().find(|f| f.message.contains("peek")).unwrap();
        assert!(via.message.contains("snapshot_all → peek"), "{}", via.message);
    }

    #[test]
    fn relaxed_writers_and_unreachable_fns_are_clean() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn snapshot(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\npub fn unrelated(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\npub fn acquire_ok(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Acquire)\n}\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn float_accumulation_and_unsorted_push_in_drain_loop() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn merge(rx: &Receiver<f64>) -> (f64, Vec<u64>) {\n    let mut sum = 0.0;\n    let mut tags = Vec::new();\n    while let Ok(v) = rx.recv() {\n        sum += v;\n        tags.push(1u64);\n    }\n    (sum, tags)\n}\n",
        )]);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|f| f.rule == "order-dependent-merge"));
        assert!(got.iter().any(|f| f.message.contains("sum")));
        assert!(got.iter().any(|f| f.message.contains("tags.push")));
    }

    #[test]
    fn sorted_push_and_index_keyed_merge_are_clean() {
        let got = run(&[(
            "crates/a/src/lib.rs",
            "pub fn merge(rx: &Receiver<u64>, slots: &mut [u64]) -> Vec<u64> {\n    let mut out = Vec::new();\n    let mut i = 0;\n    while let Ok(v) = rx.recv() {\n        out.push(v);\n        slots[i] = v; // ixp-lint: allow(no-index) fixture\n        i += 1;\n    }\n    out.sort_unstable();\n    out\n}\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn test_code_and_out_of_scope_files_are_exempt() {
        let src = "pub fn snapshot(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n";
        let got = run(&[("crates/a/examples/demo.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
        let test_src = "#[cfg(test)]\nmod tests {\n    pub fn snapshot(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n}\n";
        let got = run(&[("crates/a/src/lib.rs", test_src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn vendor_src_is_in_scope() {
        let got = run(&[(
            "vendor/x/src/lib.rs",
            "pub fn snapshot(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n",
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "atomic-ordering");
    }
}
