//! L7 — determinism of report/serialization and replay paths.
//!
//! The fault-replay guarantee (DESIGN.md §9) and every rendered table in
//! the report depend on iteration order and ambient inputs being fixed.
//! In the scoped files this pass forbids:
//!
//! * `hash-iter-order` — any use of `HashMap`/`HashSet`: their iteration
//!   order is randomized per process, which reorders rendered lines and
//!   changes the accumulation order of floating-point sums. Use
//!   `BTreeMap`/`BTreeSet` or sort an extracted Vec explicitly.
//! * `ambient-time`   — `SystemTime::now`/`Instant::now`: wall-clock
//!   reads make replays non-reproducible; thread timestamps through as
//!   data instead.
//! * `ambient-random` — `thread_rng`/`from_entropy`/`OsRng`: ambient
//!   entropy breaks bit-for-bit replay; all randomness must come from a
//!   seeded generator carried in the plan/config.
//!
//! Scope: the report/serialization modules of `ixp-core` (`report.rs`,
//! `snapshot.rs`, `bias.rs`) and all of `ixp-faults`.
//!
//! A fourth rule, `obs-clock-boundary`, extends the ambient-time ban to
//! **every** crate `src/` tree: since `ixp-obs` made time injectable, the
//! only legitimate `Instant::now`/`SystemTime::now` site in the workspace
//! is `RealClock` in `crates/obs/src/clock.rs`. Everything else takes a
//! `&dyn Clock` (or an `Obs` bundle), so instrumented runs stay
//! byte-reproducible under `TestClock`. Files already in the strict L7
//! scope keep reporting `ambient-time` instead (one decision, one rule).

use crate::lexer::{Kind, Lexed};
use crate::Finding;

/// Files whose behaviour must be deterministic.
pub(crate) fn l7_applies(path: &str) -> bool {
    path == "crates/core/src/report.rs"
        || path == "crates/core/src/snapshot.rs"
        || path == "crates/core/src/bias.rs"
        || path.starts_with("crates/faults/src/")
}

/// Files held to the clock-injection boundary: every `src/` tree except
/// the one sanctioned real-clock site, minus the strict-L7 files (those
/// already report the stronger `ambient-time`).
pub(crate) fn obs_clock_applies(path: &str) -> bool {
    crate::rules::l4_applies(path)
        && path != "crates/obs/src/clock.rs"
        && !l7_applies(path)
}

/// Ambient entropy sources.
const RANDOM_SOURCES: &[&str] = &["thread_rng", "from_entropy", "OsRng", "random"];

/// Run the pass over one lexed file.
pub fn check(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let l7 = l7_applies(path);
    let clock_boundary = obs_clock_applies(path);
    if !(l7 || clock_boundary) {
        return;
    }
    let toks = &lexed.tokens;
    let mut in_use = false;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        match &t.kind {
            Kind::Ident(id) if id == "use" => in_use = true,
            Kind::Punct(';') => in_use = false,
            Kind::Ident(id) if l7 && (id == "HashMap" || id == "HashSet") => {
                // The `use` line falls with the last mention; flagging it
                // too would double-count one decision.
                if !in_use {
                    out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "hash-iter-order",
                        &format!(
                            "`{id}` in a deterministic output/replay path; its iteration \
                             order is randomized — use `BTree{}` or an explicit sort",
                            id.trim_start_matches("Hash")
                        ),
                    ));
                }
            }
            Kind::Ident(id) if id == "SystemTime" || id == "Instant" => {
                let now_next = matches!(toks.get(i + 1).map(|n| &n.kind), Some(Kind::PathSep))
                    && matches!(
                        toks.get(i + 2).map(|n| &n.kind),
                        Some(Kind::Ident(m)) if m == "now"
                    );
                if now_next {
                    if l7 {
                        out.push(Finding::at(
                            path,
                            t.line,
                            t.col,
                            "ambient-time",
                            &format!(
                                "`{id}::now()` in a deterministic path; wall-clock reads break \
                                 replay — take timestamps as input data"
                            ),
                        ));
                    } else {
                        out.push(Finding::at(
                            path,
                            t.line,
                            t.col,
                            "obs-clock-boundary",
                            &format!(
                                "`{id}::now()` outside ixp-obs's RealClock; read time through \
                                 an injected `ixp_obs::Clock` so instrumented runs stay \
                                 reproducible"
                            ),
                        ));
                    }
                }
            }
            Kind::Ident(id) if l7 && RANDOM_SOURCES.contains(&id.as_str()) => {
                // `random` only as a call (`random()`), to spare variables
                // merely named `random`.
                let is_call = id != "random"
                    || matches!(toks.get(i + 1).map(|n| &n.kind), Some(Kind::Punct('(')));
                if !in_use && is_call {
                    out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "ambient-random",
                        &format!(
                            "`{id}` draws ambient entropy; replays must use the seeded \
                             generator carried in the plan"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<(u32, &'static str)> {
        let mut out = Vec::new();
        check(path, &lex(src), &mut out);
        out.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn hashmap_in_report_path_is_flagged_but_use_line_is_not() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u64>) {}\n";
        assert_eq!(run("crates/core/src/report.rs", src), vec![(2, "hash-iter-order")]);
    }

    #[test]
    fn btreemap_and_out_of_scope_files_are_clean() {
        let src = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u64>) {}\n";
        assert!(run("crates/core/src/report.rs", src).is_empty());
        let hashy = "fn f(m: &HashMap<u32, u64>) {}";
        assert!(run("crates/core/src/census.rs", hashy).is_empty());
    }

    #[test]
    fn ambient_time_and_randomness_are_flagged() {
        let src = "fn f() {\n    let t = SystemTime::now();\n    let i = std::time::Instant::now();\n    let mut rng = rand::thread_rng();\n}\n";
        let got = run("crates/faults/src/clock.rs", src);
        assert_eq!(
            got,
            vec![(2, "ambient-time"), (3, "ambient-time"), (4, "ambient-random")]
        );
    }

    #[test]
    fn seeded_rng_and_duration_are_clean() {
        let src = "fn f(seed: u64) {\n    let rng = SmallRng::seed_from_u64(seed);\n    let d = SystemTime::UNIX_EPOCH;\n}\n";
        assert!(run("crates/faults/src/plan.rs", src).is_empty());
    }

    #[test]
    fn clock_boundary_covers_every_src_tree() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(run("crates/core/src/scan.rs", src), vec![(1, "obs-clock-boundary")]);
        assert_eq!(run("crates/obs/src/span.rs", src), vec![(1, "obs-clock-boundary")]);
        assert_eq!(run("src/lib.rs", src), vec![(1, "obs-clock-boundary")]);
        // Outside any src tree (benches, examples) the rule is silent.
        assert!(run("crates/bench/benches/pipeline.rs", src).is_empty());
    }

    #[test]
    fn real_clock_site_is_exempt_and_hash_rules_stay_scoped() {
        let src = "fn f() { RealClock { origin: Instant::now() } }";
        assert!(run("crates/obs/src/clock.rs", src).is_empty());
        // The strict-L7 rules do not leak into the broader clock scope.
        let other = "fn g(m: &HashMap<u8, u8>) { let r = rand::thread_rng(); }";
        assert!(run("crates/core/src/scan.rs", other).is_empty());
        // Strict-L7 files keep reporting ambient-time, not the boundary rule.
        let timed = "fn h() { let t = SystemTime::now(); }";
        assert_eq!(run("crates/faults/src/plan.rs", timed), vec![(1, "ambient-time")]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(run("crates/faults/src/plan.rs", src).is_empty());
    }
}
