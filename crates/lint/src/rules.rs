//! The project rules, run over the token stream of each file.
//!
//! Rules are scoped by workspace-relative path. All checks are lexical
//! approximations of the real invariants — exact enough for this codebase,
//! with the inline allow directive as the escape hatch for false positives.
//!
//! | rule            | family | scope                                         |
//! |-----------------|--------|-----------------------------------------------|
//! | `no-unwrap`     | L1     | stream-facing crates (`ixp-wire`, `ixp-sflow`, `ixp-faults`) |
//! | `no-expect`     | L1     | stream-facing crates                          |
//! | `no-panic`      | L1     | stream-facing crates (`panic!`/`todo!`/`unimplemented!`) |
//! | `no-unreachable`| L1     | stream-facing crates                          |
//! | `no-index`      | L1     | stream-facing crates (`[i]` indexing / slicing) |
//! | `no-narrow-cast`| L2     | `sflow::accounting`, `core::census`           |
//! | `no-float-eq`   | L3     | `core::{longitudinal, visibility, baseline}`  |
//! | `error-impl`    | L4     | every crate `src/` tree                       |
//!
//! Test code (`#[cfg(test)]` items) is exempt from L1–L3.

use std::collections::{BTreeMap, HashSet};

use crate::lexer::{Kind, Lexed};
use crate::Finding;

/// Every rule the linter knows, including the meta rule for malformed
/// directives.
pub const ALL_RULES: &[&str] = &[
    "no-unwrap",
    "no-expect",
    "no-panic",
    "no-unreachable",
    "no-index",
    "no-narrow-cast",
    "no-float-eq",
    "error-impl",
    "bad-directive",
];

/// The L1 family: the no-panic decoder contract.
pub const L1_RULES: &[&str] =
    &["no-unwrap", "no-expect", "no-panic", "no-unreachable", "no-index"];

/// Expand a rule name or family alias (`l1`..`l4`) into concrete rules.
/// Returns `None` for unknown names.
pub fn resolve_rule(name: &str) -> Option<Vec<&'static str>> {
    if let Some(&r) = ALL_RULES.iter().find(|r| **r == name) {
        return Some(vec![r]);
    }
    match name {
        "l1" | "L1" => Some(L1_RULES.to_vec()),
        "l2" | "L2" => Some(vec!["no-narrow-cast"]),
        "l3" | "L3" => Some(vec!["no-float-eq"]),
        "l4" | "L4" => Some(vec!["error-impl"]),
        _ => None,
    }
}

/// L1 scope: source trees of the crates that face the raw datagram stream —
/// the two packet parsers plus the fault injector (which rewrites encoded
/// datagrams and must survive anything it is fed, including its own output).
fn l1_applies(path: &str) -> bool {
    path.starts_with("crates/wire/src/")
        || path.starts_with("crates/sflow/src/")
        || path.starts_with("crates/faults/src/")
}

/// L2 scope: modules that aggregate counters and must not silently truncate.
fn l2_applies(path: &str) -> bool {
    path == "crates/sflow/src/accounting.rs" || path == "crates/core/src/census.rs"
}

/// L3 scope: longitudinal/visibility analytics comparing measured ratios.
fn l3_applies(path: &str) -> bool {
    path == "crates/core/src/longitudinal.rs"
        || path == "crates/core/src/visibility.rs"
        || path == "crates/core/src/baseline.rs"
}

/// L4 scope: any `src/` tree (root package or a workspace crate). Excludes
/// tests, examples, benches and fixture trees.
fn l4_applies(path: &str) -> bool {
    let mut parts = path.split('/');
    match parts.next() {
        Some("src") => true,
        Some("crates") => {
            let _crate_name = parts.next();
            parts.next() == Some("src")
        }
        _ => false,
    }
}

/// Identifiers that may legally precede `[` without it being an index
/// expression (mostly keywords introducing array patterns/types).
const NON_INDEXABLE_KEYWORDS: &[&str] = &[
    "let", "in", "mut", "ref", "return", "as", "if", "else", "match", "move",
    "static", "const", "dyn", "impl", "for", "where", "use", "pub", "enum",
    "struct", "fn", "type", "break", "continue", "loop", "while", "unsafe",
    "mod", "trait", "box", "yield", "async", "await", "become",
];

/// Cast targets treated as narrowing-prone. Lexically we cannot see the
/// source type, so every `as` to one of these is flagged in L2 scope;
/// widening targets (`u64`, `usize`, `f64`, ...) are not.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Run the per-file rules (L1, L2, L3) over one lexed file.
pub fn check_tokens(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let l1 = l1_applies(path);
    let l2 = l2_applies(path);
    let l3 = l3_applies(path);
    if !(l1 || l2 || l3) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j].kind);
        let next = toks.get(i + 1).map(|t| &t.kind);
        // L2 runs before the big match: accounting.rs sits inside an L1
        // scope too, and `as` is an identifier the L1 arm would swallow.
        if l2 {
            if let Kind::Ident(name) = &t.kind {
                if name == "as" {
                    if let Some(Kind::Ident(target)) = next {
                        if NARROW_TARGETS.contains(&target.as_str()) {
                            out.push(Finding::new(
                                path,
                                t.line,
                                "no-narrow-cast",
                                &format!(
                                    "narrowing `as {target}` in an accounting module; \
                                     use `TryFrom` or a widening type"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        match &t.kind {
            Kind::Ident(name) if l1 => {
                let after_dot = prev == Some(&Kind::Punct('.'));
                let bang = next == Some(&Kind::Punct('!'));
                match name.as_str() {
                    "unwrap" if after_dot => out.push(Finding::new(
                        path,
                        t.line,
                        "no-unwrap",
                        "`.unwrap()` in a parser crate; return `Error` instead",
                    )),
                    "expect" if after_dot => out.push(Finding::new(
                        path,
                        t.line,
                        "no-expect",
                        "`.expect()` in a parser crate; return `Error` instead",
                    )),
                    "panic" | "todo" | "unimplemented" if bang => out.push(Finding::new(
                        path,
                        t.line,
                        "no-panic",
                        &format!("`{name}!` in a parser crate; decoders must not panic"),
                    )),
                    "unreachable" if bang => out.push(Finding::new(
                        path,
                        t.line,
                        "no-unreachable",
                        "`unreachable!` in a parser crate; return `Error` for impossible states",
                    )),
                    _ => {}
                }
            }
            Kind::Punct('[') if l1 => {
                let indexable = match prev {
                    Some(Kind::Ident(id)) => {
                        !NON_INDEXABLE_KEYWORDS.contains(&id.as_str())
                    }
                    Some(Kind::Punct(']' | ')' | '?')) | Some(Kind::Int) => true,
                    _ => false,
                };
                if indexable {
                    out.push(Finding::new(
                        path,
                        t.line,
                        "no-index",
                        "`[..]` indexing/slicing can panic; use `.get()` or slice patterns",
                    ));
                }
            }
            Kind::EqEq | Kind::Ne if l3 => {
                let float_adjacent = matches!(prev, Some(Kind::Float))
                    || matches!(next, Some(&Kind::Float));
                if float_adjacent {
                    out.push(Finding::new(
                        path,
                        t.line,
                        "no-float-eq",
                        "exact float comparison; compare against a tolerance instead",
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Per-crate facts feeding the L4 rule.
#[derive(Debug, Default)]
pub struct CrateErrorInfo {
    /// `pub enum <name>` where the name contains `Error`, outside tests:
    /// (enum name, file, line).
    pub error_enums: Vec<(String, String, u32)>,
    /// Type names with an `impl ... Display for <name>` anywhere in the crate.
    pub display_impls: HashSet<String>,
    /// Type names with an `impl ... Error for <name>` anywhere in the crate.
    pub error_impls: HashSet<String>,
}

/// Group key for a file: the crate it belongs to (`crates/<name>` or the
/// root package).
fn crate_group(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some(name) = rest.split('/').next() {
            return format!("crates/{name}");
        }
    }
    "(root)".to_string()
}

/// Collect L4 facts from one lexed file into the per-crate map.
pub fn collect_error_info(
    path: &str,
    lexed: &Lexed,
    map: &mut BTreeMap<String, CrateErrorInfo>,
) {
    if !l4_applies(path) {
        return;
    }
    let info = map.entry(crate_group(path)).or_default();
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        match &toks[i].kind {
            // `pub enum FooError` / `pub(crate) enum FooError`
            Kind::Ident(kw) if kw == "enum" && !toks[i].in_test => {
                let is_pub = match i.checked_sub(1).map(|j| &toks[j].kind) {
                    Some(Kind::Ident(p)) => p == "pub",
                    Some(Kind::Punct(')')) => {
                        // pub(crate) / pub(super): scan back past the parens.
                        let mut j = i - 1;
                        while j > 0 && toks[j].kind != Kind::Punct('(') {
                            j -= 1;
                        }
                        j > 0 && matches!(&toks[j - 1].kind, Kind::Ident(p) if p == "pub")
                    }
                    _ => false,
                };
                if !is_pub {
                    continue;
                }
                if let Some(Kind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    if name.contains("Error") {
                        info.error_enums.push((
                            name.clone(),
                            path.to_string(),
                            toks[i + 1].line,
                        ));
                    }
                }
            }
            // `impl [<...>] [path::]Trait for Type`
            Kind::Ident(kw) if kw == "for" => {
                // Walk back: the trait name is the last ident before `for`;
                // only count it if an `impl` appears first (not a loop).
                let mut trait_name: Option<&str> = None;
                let mut j = i;
                let mut is_impl = false;
                while j > 0 {
                    j -= 1;
                    match &toks[j].kind {
                        Kind::Ident(id) if id == "impl" => {
                            is_impl = true;
                            break;
                        }
                        Kind::Ident(id) => {
                            if trait_name.is_none() {
                                trait_name = Some(id);
                            }
                        }
                        Kind::Punct('{' | '}' | ';') => break,
                        _ => {}
                    }
                }
                if !is_impl {
                    continue;
                }
                if let Some(Kind::Ident(type_name)) = toks.get(i + 1).map(|t| &t.kind) {
                    match trait_name {
                        Some("Display") => {
                            info.display_impls.insert(type_name.clone());
                        }
                        Some("Error") => {
                            info.error_impls.insert(type_name.clone());
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

/// Emit an `error-impl` finding for every public error enum missing a
/// `Display` or `std::error::Error` impl within its crate.
pub fn finalize_error_impl(
    map: &BTreeMap<String, CrateErrorInfo>,
    out: &mut Vec<Finding>,
) {
    for info in map.values() {
        for (name, file, line) in &info.error_enums {
            let mut missing = Vec::new();
            if !info.display_impls.contains(name) {
                missing.push("Display");
            }
            if !info.error_impls.contains(name) {
                missing.push("std::error::Error");
            }
            if !missing.is_empty() {
                out.push(Finding::new(
                    file,
                    *line,
                    "error-impl",
                    &format!("`pub enum {name}` does not implement {}", missing.join(" + ")),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<(u32, &'static str)> {
        let lexed = lex(src);
        let mut out = Vec::new();
        check_tokens(path, &lexed, &mut out);
        out.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn l1_catches_all_five_shapes() {
        let src = "
fn f(b: &[u8]) {
    let a = b.first().unwrap();
    let c = b.get(1).expect(\"x\");
    panic!(\"boom\");
    unreachable!();
    let d = b[0];
}
";
        let got = run("crates/wire/src/x.rs", src);
        assert_eq!(
            got,
            vec![
                (3, "no-unwrap"),
                (4, "no-expect"),
                (5, "no-panic"),
                (6, "no-unreachable"),
                (7, "no-index"),
            ]
        );
    }

    #[test]
    fn l1_out_of_scope_and_test_code_are_clean() {
        let src = "fn f(b: &[u8]) -> u8 { b[0] }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn t(b: &[u8]) { b[0]; b.first().unwrap(); } }";
        assert!(run("crates/wire/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn l1_covers_the_fault_injector() {
        let src = "fn f(b: &[u8]) { b.first().unwrap(); let _ = b[0]; }";
        let got = run("crates/faults/src/plan.rs", src);
        assert_eq!(got, vec![(1, "no-unwrap"), (1, "no-index")]);
    }

    #[test]
    fn no_index_skips_types_patterns_and_macros() {
        let src = "
fn f() -> [u8; 4] {
    let [a, b, c, d] = [1u8, 2, 3, 4];
    let v = vec![a, b];
    if let Some([x, ..]) = Some([c, d]) { let _ = x; }
    [a, b, c, d]
}
";
        assert!(run("crates/wire/src/x.rs", src).is_empty(), "{:?}", run("crates/wire/src/x.rs", src));
    }

    #[test]
    fn no_index_catches_chained_and_call_results() {
        let src = "fn f(v: &[Vec<u8>]) { v[0][1]; f2()[2]; }";
        let got = run("crates/sflow/src/x.rs", src);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|(_, r)| *r == "no-index"));
    }

    #[test]
    fn l2_narrowing_only_in_scope() {
        let src = "fn f(x: usize) { let _ = x as u32; let _ = x as u64; }";
        let got = run("crates/core/src/census.rs", src);
        assert_eq!(got, vec![(1, "no-narrow-cast")]);
        assert!(run("crates/core/src/other.rs", src).is_empty());
    }

    #[test]
    fn l1_and_l2_both_fire_in_accounting() {
        let src = "fn f(x: usize, o: Option<u8>) { let _ = x as u16; o.unwrap(); }";
        let got = run("crates/sflow/src/accounting.rs", src);
        assert_eq!(got, vec![(1, "no-narrow-cast"), (1, "no-unwrap")]);
    }

    #[test]
    fn l3_float_eq() {
        let src = "fn f(x: f64) -> bool { x == 0.5 || 1.0 != x || x == y }";
        let got = run("crates/core/src/visibility.rs", src);
        assert_eq!(got, vec![(1, "no-float-eq"), (1, "no-float-eq")]);
    }

    #[test]
    fn l4_flags_missing_impls_and_accepts_complete_ones() {
        let good = "
pub enum ParseError { Bad }
impl fmt::Display for ParseError { }
impl std::error::Error for ParseError { }
";
        let bad = "pub enum DecodeError { Short }\nimpl fmt::Display for DecodeError {}\n";
        let mut map = BTreeMap::new();
        collect_error_info("crates/a/src/lib.rs", &lex(good), &mut map);
        collect_error_info("crates/b/src/lib.rs", &lex(bad), &mut map);
        let mut out = Vec::new();
        finalize_error_impl(&map, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "error-impl");
        assert!(out[0].message.contains("std::error::Error"));
        assert!(!out[0].message.contains("Display +"));
    }

    #[test]
    fn l4_cross_file_impls_count() {
        let decl = "pub enum FetchError { Nope }";
        let impls = "impl core::fmt::Display for FetchError {}\nimpl std::error::Error for FetchError {}";
        let mut map = BTreeMap::new();
        collect_error_info("crates/a/src/err.rs", &lex(decl), &mut map);
        collect_error_info("crates/a/src/fmt.rs", &lex(impls), &mut map);
        let mut out = Vec::new();
        finalize_error_impl(&map, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l4_ignores_for_loops_and_test_enums() {
        let src = "
fn f() { for x in 0..3 { let _ = x; } }
#[cfg(test)]
mod tests { pub enum TestError { X } }
";
        let mut map = BTreeMap::new();
        collect_error_info("crates/a/src/lib.rs", &lex(src), &mut map);
        let mut out = Vec::new();
        finalize_error_impl(&map, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(resolve_rule("l1").map(|v| v.len()), Some(5));
        assert_eq!(resolve_rule("no-index"), Some(vec!["no-index"]));
        assert_eq!(resolve_rule("nope"), None);
    }
}
