//! The project rules, run over the token stream of each file.
//!
//! Rules are scoped by workspace-relative path. All checks are lexical
//! approximations of the real invariants — exact enough for this codebase,
//! with the inline allow directive as the escape hatch for false positives.
//!
//! | rule            | family | scope                                         |
//! |-----------------|--------|-----------------------------------------------|
//! | `no-unwrap`     | L1     | stream-facing crates (`ixp-wire`, `ixp-sflow`, `ixp-faults`, `ixp-supervisor`, `ixp-transport`, `ixp-obsd`) |
//! | `no-expect`     | L1     | stream-facing crates                          |
//! | `no-panic`      | L1     | stream-facing crates (`panic!`/`todo!`/`unimplemented!`) |
//! | `no-unreachable`| L1     | stream-facing crates                          |
//! | `no-index`      | L1     | stream-facing crates (`[i]` indexing / slicing) |
//! | `no-narrow-cast`| L2     | `sflow::accounting`, `core::census`           |
//! | `no-float-eq`   | L3     | `core::{longitudinal, visibility, baseline}`  |
//! | `error-impl`    | L4     | every crate `src/` tree                       |
//! | `panic-path`    | L5     | `pub fn`s of stream-facing crates (whole-workspace call graph) |
//! | `tainted-capacity`, `tainted-arith`, `tainted-slice-len` | L6 | stream-facing crates |
//! | `hash-iter-order`, `ambient-time`, `ambient-random` | L7 | `core::{report, snapshot, bias}`, `ixp-faults` |
//! | `obs-clock-boundary` | L7 | every crate `src/` tree except `obs/src/clock.rs` |
//! | `lock-order-cycle` | L8 | every crate `src/` tree + `vendor/*/src/` |
//! | `guard-across-blocking` | L8 | every crate `src/` tree + `vendor/*/src/` |
//! | `shared-state-escape` | L8 | every crate `src/` tree + `vendor/*/src/` |
//! | `atomic-ordering` | L8 | every crate `src/` tree + `vendor/*/src/` |
//! | `order-dependent-merge` | L8 | every crate `src/` tree + `vendor/*/src/` |
//! | `unaccounted-drop` | L9 | datagram-consuming paths of `sflow::collector`, `supervisor::{ring, supervisor}`, `core::scan` |
//! | `codec-asymmetry` | L10 | registered checkpoint save/restore pairs |
//! | `schema-drift` | L10 | registered pairs (digest ratchet) + unregistered checkpoint-shaped codecs |
//! | `error-sink` | L11 | every crate `src/` tree |
//!
//! Test code (`#[cfg(test)]` items) is exempt from every family except L4.

use std::collections::{BTreeMap, HashSet};

use crate::lexer::{Kind, Lexed};
use crate::Finding;

/// Metadata for one rule: where it sits in the family taxonomy and the
/// `--explain` text.
#[derive(Debug)]
pub struct RuleInfo {
    /// Rule id as it appears in findings and directives.
    pub id: &'static str,
    /// Family tag: `L1`..`L11`, or `meta` for the directive checker.
    pub family: &'static str,
    /// Diagnostic severity (currently always `error`; the field exists so
    /// advisory rules can be added without a JSON schema bump).
    pub severity: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Longer `--explain` text.
    pub explain: &'static str,
}

/// The full rule registry.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-unwrap",
        family: "L1",
        severity: "error",
        summary: "no `.unwrap()` in stream-facing crates",
        explain: "The decoders are fed raw network bytes and must never panic \
                  (DESIGN.md §8). `.unwrap()` turns a malformed datagram into a \
                  collector crash; return the crate's Error type instead.",
    },
    RuleInfo {
        id: "no-expect",
        family: "L1",
        severity: "error",
        summary: "no `.expect()` in stream-facing crates",
        explain: "Like no-unwrap: `.expect()` panics on malformed input. The \
                  message string does not make the crash acceptable; return an \
                  Error with the same context instead.",
    },
    RuleInfo {
        id: "no-panic",
        family: "L1",
        severity: "error",
        summary: "no `panic!`/`todo!`/`unimplemented!` in stream-facing crates",
        explain: "Explicit panic macros in a decoder convert hostile input into \
                  denial of service. Unfinished paths must return Error, not todo!.",
    },
    RuleInfo {
        id: "no-unreachable",
        family: "L1",
        severity: "error",
        summary: "no `unreachable!` in stream-facing crates",
        explain: "States judged impossible have a way of arriving off the wire. \
                  Return an Error for impossible states so a wrong judgement is \
                  a diagnostic, not an abort.",
    },
    RuleInfo {
        id: "no-index",
        family: "L1",
        severity: "error",
        summary: "no `[..]` indexing/slicing in stream-facing crates",
        explain: "Slice indexing panics on out-of-bounds. Decoders must use \
                  `.get()`, slice patterns, or split_at-style helpers after an \
                  explicit length check. A checked site can be vouched for with \
                  `// ixp-lint: allow(no-index) <reason>`.",
    },
    RuleInfo {
        id: "no-narrow-cast",
        family: "L2",
        severity: "error",
        summary: "no narrowing `as` casts in accounting modules",
        explain: "Traffic estimates aggregate 64-bit counters; a narrowing `as` \
                  silently truncates. Use TryFrom or keep the wide type \
                  (DESIGN.md §8, L2).",
    },
    RuleInfo {
        id: "no-float-eq",
        family: "L3",
        severity: "error",
        summary: "no exact float comparison in longitudinal analytics",
        explain: "Measured ratios carry rounding error; `==`/`!=` against floats \
                  makes conclusions depend on accumulation order. Compare \
                  against a tolerance.",
    },
    RuleInfo {
        id: "error-impl",
        family: "L4",
        severity: "error",
        summary: "public error enums implement Display + std::error::Error",
        explain: "Every `pub enum *Error*` must implement Display and \
                  std::error::Error somewhere in its crate, so callers can \
                  propagate and print failures uniformly.",
    },
    RuleInfo {
        id: "panic-path",
        family: "L5",
        severity: "error",
        summary: "pub fns of stream-facing crates are transitively panic-free",
        explain: "L5 builds the workspace call graph and computes the transitive \
                  can-panic set. A `pub fn` in ixp-wire/ixp-sflow/ixp-faults that \
                  can reach a panic through any workspace call chain — including \
                  helpers in other crates, or assert!/assert_eq! which the L1 \
                  token rules do not cover — is reported with the offending \
                  chain. Sites suppressed by their L1 allow directive are \
                  treated as vouched-safe and do not propagate.",
    },
    RuleInfo {
        id: "tainted-capacity",
        family: "L6",
        severity: "error",
        summary: "wire-tainted values must not size allocations",
        explain: "A length decoded from the wire can be up to 2^32; passing it \
                  to Vec::with_capacity lets one datagram demand gigabytes. Cap \
                  the value against the remaining input (e.g. `.min(buf.len())`) \
                  before sizing the allocation.",
    },
    RuleInfo {
        id: "tainted-arith",
        family: "L6",
        severity: "error",
        summary: "wire-tainted operands require checked arithmetic",
        explain: "Unchecked `+`/`*`/`<<` on a wire-derived value overflows: a \
                  panic in debug builds, a silent wrap in release — either way a \
                  corrupted traffic estimate (the sampling-rate scaling of §3.1 \
                  multiplies two wire values). Route the value through \
                  checked_*/saturating_* arithmetic or validate its bound first.",
    },
    RuleInfo {
        id: "tainted-slice-len",
        family: "L6",
        severity: "error",
        summary: "wire-tainted values must not bound index/slice expressions",
        explain: "Using a decoded length inside `[..]` panics when the datagram \
                  lies about its own size. Validate against the buffer length \
                  and use `.get()`.",
    },
    RuleInfo {
        id: "hash-iter-order",
        family: "L7",
        severity: "error",
        summary: "no HashMap/HashSet in deterministic output/replay paths",
        explain: "HashMap iteration order is randomized per process. In report \
                  rendering it reorders lines; in float accumulation it changes \
                  sums; in ixp-faults it breaks bit-for-bit replay (DESIGN.md §9). \
                  Use BTreeMap/BTreeSet or sort explicitly.",
    },
    RuleInfo {
        id: "ambient-time",
        family: "L7",
        severity: "error",
        summary: "no SystemTime::now/Instant::now in deterministic paths",
        explain: "Wall-clock reads make two runs of the same input differ. \
                  Timestamps must arrive as data (datagram uptime fields, plan \
                  parameters), never be sampled ambiently.",
    },
    RuleInfo {
        id: "ambient-random",
        family: "L7",
        severity: "error",
        summary: "no ambient entropy in deterministic paths",
        explain: "thread_rng/from_entropy/OsRng draw per-process entropy, \
                  breaking the fault-replay guarantee. All randomness flows from \
                  the seeded generator carried in the plan.",
    },
    RuleInfo {
        id: "obs-clock-boundary",
        family: "L7",
        severity: "error",
        summary: "Instant/SystemTime reads only inside ixp-obs's RealClock",
        explain: "All instrumentation timing flows through the injectable \
                  ixp_obs::Clock trait so metric snapshots stay reproducible \
                  under TestClock (DESIGN.md §10). The single permitted \
                  `Instant::now()` site is RealClock in crates/obs/src/clock.rs; \
                  every other module takes a `&dyn Clock` (or an `Obs` bundle) \
                  and reads time through it.",
    },
    RuleInfo {
        id: "lock-order-cycle",
        family: "L8",
        severity: "error",
        summary: "lock-acquisition order is acyclic across the workspace",
        explain: "L8 records, per function, which locks are held when another \
                  lock is acquired — directly or through any workspace call \
                  chain — and builds a lock-order graph over the guard scopes \
                  it can see (`lock()`/`read()`/`write()` receivers). A cycle \
                  in that graph means two threads taking the locks in opposite \
                  orders can deadlock; the finding carries the full cycle with \
                  one witness acquisition site per edge. Break the cycle by \
                  ordering the acquisitions consistently or narrowing a guard \
                  scope with `drop(guard)`.",
    },
    RuleInfo {
        id: "guard-across-blocking",
        family: "L8",
        severity: "error",
        summary: "no Mutex guard held across a blocking channel/thread call",
        explain: "Holding a lock guard across `.send()`/`.recv()`/`join`/`wait`/\
                  `sleep` stalls every other thread contending for that lock for \
                  as long as the blocking call takes — and deadlocks outright \
                  when the unblocking party needs the same lock. Drop the guard \
                  first (`drop(guard)`), or pass the guard to a condvar `wait`, \
                  which atomically releases it and is therefore exempt.",
    },
    RuleInfo {
        id: "shared-state-escape",
        family: "L8",
        severity: "error",
        summary: "no non-Arc interior mutability or `static mut` inside spawned closures",
        explain: "A `RefCell`/`Cell`/`UnsafeCell` local that is not wrapped in \
                  `Arc`, or any `static mut`, reached from a `thread::spawn`/\
                  `scope.spawn` closure is a data race: the borrow-flag or the \
                  raw cell is mutated unsynchronised from two threads. Share \
                  state through `Arc<Mutex<_>>`/`Arc<AtomicU64>` or move \
                  per-thread state into the closure by value.",
    },
    RuleInfo {
        id: "atomic-ordering",
        family: "L8",
        severity: "error",
        summary: "no `Ordering::Relaxed` atomic loads on report/snapshot paths",
        explain: "Functions reachable from a snapshot/report/export entry point \
                  feed the byte-identical-metrics gate (DESIGN.md §10). A \
                  `Relaxed` load there may read a stale value relative to the \
                  writes another thread published before the snapshot was cut, \
                  so two exports of the 'same' state can disagree. Use at least \
                  `Ordering::Acquire` for loads on these paths; hot-path \
                  writers (`fetch_add`/`store`) may stay `Relaxed`.",
    },
    RuleInfo {
        id: "order-dependent-merge",
        family: "L8",
        severity: "error",
        summary: "channel-drain merges must be order-independent or sorted",
        explain: "A loop draining a channel (`recv`/`try_recv`) observes items \
                  in a scheduling-dependent order. Accumulating them with \
                  float `+=`/`*=` makes the sum depend on that order (float \
                  addition is not associative), and collecting them with \
                  `push`/`extend` without a subsequent `sort*` leaks the order \
                  into the result. Use integer accumulators, index-keyed slots \
                  (`slots[i] = v`), or sort the collected values before use — \
                  the ROADMAP-1 shard merge must be seed-stable.",
    },
    RuleInfo {
        id: "unaccounted-drop",
        family: "L9",
        severity: "error",
        summary: "datagram-consuming paths must increment an accounting bucket on every exit",
        explain: "The conservation invariant `ingested = accepted + duplicates + \
                  errors + shed` (DESIGN.md §9/§11) only holds if every code \
                  path that consumes a datagram — accept, dedupe, decode-error, \
                  shed, quarantine — increments exactly one bucket before it \
                  exits. This pass splits each consuming fn (`offer`/`ingest*` \
                  with a payload parameter) into segments at every `return`: a \
                  segment that exits without a counter bump (`<bucket> += ..`), \
                  a counting call (`.inc()`/`.add()`/`.record*()`/...), or a \
                  transfer to another consuming fn is a silent drop. Count the \
                  datagram, hand it on, or vouch the exit with \
                  allow(unaccounted-drop) and a reason.",
    },
    RuleInfo {
        id: "codec-asymmetry",
        family: "L10",
        severity: "error",
        summary: "checkpoint encode/decode pairs must walk the same ordered field list",
        explain: "Crash recovery restores state by replaying the writer's field \
                  list in order (DESIGN.md §11); if `save` and `restore` \
                  disagree about one width, loop, or nested-codec call, every \
                  checkpoint on disk is misread from that field on. Each pair \
                  in the codec registry (crates/lint/src/codec_sym.rs) is \
                  abstracted to a width/loop/nested symbol sequence and the \
                  reader must mirror the writer exactly; versioned pairs must \
                  frame a `u32` version const first, sealed pairs must ride in \
                  the `seal`/`open` envelope, and the envelope itself must \
                  write and verify the magic/version/length/trailer frame.",
    },
    RuleInfo {
        id: "schema-drift",
        family: "L10",
        severity: "error",
        summary: "checkpoint schemas may only change together with a version bump",
        explain: "Every registered codec writer has an FNV-1a-64 digest of its \
                  field schema (widths, loops, nested codecs, and the written \
                  expressions) pinned in crates/lint/src/codec_sym.rs. \
                  Renaming, reordering, adding, or dropping a field changes \
                  the digest, and the lint fails until the format version is \
                  bumped and the pinned digest updated in the same change — \
                  old checkpoints then fail closed with `BadVersion` instead \
                  of being misdecoded. Codec-shaped fns (two or more field \
                  writes/reads) outside the registry are also flagged: new \
                  codecs must enter the ratchet.",
    },
    RuleInfo {
        id: "error-sink",
        family: "L11",
        severity: "error",
        summary: "no silently discarded `Result` on stream-facing paths",
        explain: "A decode/restore error that evaporates is a lost datagram the \
                  accounting never saw — the dynamic invariants can no longer \
                  notice it. On stream-facing paths, `let _ = fallible()`, a \
                  bare `fallible().ok();`, and `fallible().unwrap_or_default()` \
                  are findings; fallibility is resolved interprocedurally \
                  through the workspace symbol table (any fn returning \
                  `Result`) plus the `Cur`/decode/restore primitives. \
                  Propagate with `?`, convert the error into a counted bucket \
                  or metric, or vouch the site with allow(error-sink) and a \
                  reason.",
    },
    RuleInfo {
        id: "bad-directive",
        family: "meta",
        severity: "error",
        summary: "malformed or unknown ixp-lint directives",
        explain: "An `// ixp-lint:` comment that names an unknown rule or omits \
                  the allow-file reason is itself a finding, so suppressions \
                  cannot silently rot.",
    },
];

/// Every rule the linter knows, including the meta rule for malformed
/// directives.
pub const ALL_RULES: &[&str] = &[
    "no-unwrap",
    "no-expect",
    "no-panic",
    "no-unreachable",
    "no-index",
    "no-narrow-cast",
    "no-float-eq",
    "error-impl",
    "panic-path",
    "tainted-capacity",
    "tainted-arith",
    "tainted-slice-len",
    "hash-iter-order",
    "ambient-time",
    "ambient-random",
    "obs-clock-boundary",
    "lock-order-cycle",
    "guard-across-blocking",
    "shared-state-escape",
    "atomic-ordering",
    "order-dependent-merge",
    "unaccounted-drop",
    "codec-asymmetry",
    "schema-drift",
    "error-sink",
    "bad-directive",
];

/// The L1 family: the no-panic decoder contract.
pub const L1_RULES: &[&str] =
    &["no-unwrap", "no-expect", "no-panic", "no-unreachable", "no-index"];

/// The L6 family: wire-taint overflow analysis.
pub const L6_RULES: &[&str] = &["tainted-capacity", "tainted-arith", "tainted-slice-len"];

/// The L7 family: determinism of output and replay paths, plus the
/// workspace-wide clock-injection boundary of `ixp-obs`.
pub const L7_RULES: &[&str] =
    &["hash-iter-order", "ambient-time", "ambient-random", "obs-clock-boundary"];

/// The L8 family: concurrency safety ahead of the sharded parallel ingest —
/// lock ordering, guard scopes, shared-state escapes, atomic orderings on
/// snapshot paths, and order-independent shard merges.
pub const L8_RULES: &[&str] = &[
    "lock-order-cycle",
    "guard-across-blocking",
    "shared-state-escape",
    "atomic-ordering",
    "order-dependent-merge",
];

/// The L9 family: the accounting-conservation invariant, held statically.
pub const L9_RULES: &[&str] = &["unaccounted-drop"];

/// The L10 family: checkpoint-codec symmetry and the schema-digest ratchet.
pub const L10_RULES: &[&str] = &["codec-asymmetry", "schema-drift"];

/// The L11 family: error-flow completeness on stream-facing paths.
pub const L11_RULES: &[&str] = &["error-sink"];

/// Registry lookup by rule id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Expand a rule name or family alias (`l1`..`l11`) into concrete rules.
/// Returns `None` for unknown names.
pub fn resolve_rule(name: &str) -> Option<Vec<&'static str>> {
    if let Some(&r) = ALL_RULES.iter().find(|r| **r == name) {
        return Some(vec![r]);
    }
    match name {
        "l1" | "L1" => Some(L1_RULES.to_vec()),
        "l2" | "L2" => Some(vec!["no-narrow-cast"]),
        "l3" | "L3" => Some(vec!["no-float-eq"]),
        "l4" | "L4" => Some(vec!["error-impl"]),
        "l5" | "L5" => Some(vec!["panic-path"]),
        "l6" | "L6" => Some(L6_RULES.to_vec()),
        "l7" | "L7" => Some(L7_RULES.to_vec()),
        "l8" | "L8" => Some(L8_RULES.to_vec()),
        "l9" | "L9" => Some(L9_RULES.to_vec()),
        "l10" | "L10" => Some(L10_RULES.to_vec()),
        "l11" | "L11" => Some(L11_RULES.to_vec()),
        _ => None,
    }
}

/// L1 scope: source trees of the crates that face the raw datagram stream —
/// the two packet parsers, the fault injector (which rewrites encoded
/// datagrams and must survive anything it is fed, including its own output),
/// the supervisor (which decodes checkpoint images that may be
/// truncated or corrupted by the very crash they are recovering from),
/// and the wire transport (UDP front door plus the NetFlow v5/v9/IPFIX
/// decoders, which parse attacker-grade bytes straight off the socket),
/// and the exposition server (which parses HTTP request bytes from any
/// client that can reach the socket).
pub(crate) fn l1_applies(path: &str) -> bool {
    path.starts_with("crates/wire/src/")
        || path.starts_with("crates/sflow/src/")
        || path.starts_with("crates/faults/src/")
        || path.starts_with("crates/supervisor/src/")
        || path.starts_with("crates/transport/src/")
        || path.starts_with("crates/obsd/src/")
}

/// L2 scope: modules that aggregate counters and must not silently truncate.
fn l2_applies(path: &str) -> bool {
    path == "crates/sflow/src/accounting.rs" || path == "crates/core/src/census.rs"
}

/// L3 scope: longitudinal/visibility analytics comparing measured ratios.
fn l3_applies(path: &str) -> bool {
    path == "crates/core/src/longitudinal.rs"
        || path == "crates/core/src/visibility.rs"
        || path == "crates/core/src/baseline.rs"
}

/// L4 scope: any `src/` tree (root package or a workspace crate). Excludes
/// tests, examples, benches and fixture trees. Shared with the L7
/// `obs-clock-boundary` rule, which polices the same set of files.
pub(crate) fn l4_applies(path: &str) -> bool {
    let mut parts = path.split('/');
    match parts.next() {
        Some("src") => true,
        Some("crates") => {
            let _crate_name = parts.next();
            parts.next() == Some("src")
        }
        _ => false,
    }
}

/// Identifiers that may legally precede `[` without it being an index
/// expression (mostly keywords introducing array patterns/types).
pub(crate) const NON_INDEXABLE_KEYWORDS: &[&str] = &[
    "let", "in", "mut", "ref", "return", "as", "if", "else", "match", "move",
    "static", "const", "dyn", "impl", "for", "where", "use", "pub", "enum",
    "struct", "fn", "type", "break", "continue", "loop", "while", "unsafe",
    "mod", "trait", "box", "yield", "async", "await", "become",
];

/// Cast targets treated as narrowing-prone. Lexically we cannot see the
/// source type, so every `as` to one of these is flagged in L2 scope;
/// widening targets (`u64`, `usize`, `f64`, ...) are not.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Run the per-file rules (L1, L2, L3) over one lexed file.
pub fn check_tokens(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let l1 = l1_applies(path);
    let l2 = l2_applies(path);
    let l3 = l3_applies(path);
    if !(l1 || l2 || l3) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j].kind);
        let next = toks.get(i + 1).map(|t| &t.kind);
        // L2 runs before the big match: accounting.rs sits inside an L1
        // scope too, and `as` is an identifier the L1 arm would swallow.
        if l2 {
            if let Kind::Ident(name) = &t.kind {
                if name == "as" {
                    if let Some(Kind::Ident(target)) = next {
                        if NARROW_TARGETS.contains(&target.as_str()) {
                            out.push(Finding::at(
                                path,
                                t.line,
                                t.col,
                                "no-narrow-cast",
                                &format!(
                                    "narrowing `as {target}` in an accounting module; \
                                     use `TryFrom` or a widening type"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        match &t.kind {
            Kind::Ident(name) if l1 => {
                let after_dot = prev == Some(&Kind::Punct('.'));
                let bang = next == Some(&Kind::Punct('!'));
                match name.as_str() {
                    "unwrap" if after_dot => out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "no-unwrap",
                        "`.unwrap()` in a parser crate; return `Error` instead",
                    )),
                    "expect" if after_dot => out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "no-expect",
                        "`.expect()` in a parser crate; return `Error` instead",
                    )),
                    "panic" | "todo" | "unimplemented" if bang => out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "no-panic",
                        &format!("`{name}!` in a parser crate; decoders must not panic"),
                    )),
                    "unreachable" if bang => out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "no-unreachable",
                        "`unreachable!` in a parser crate; return `Error` for impossible states",
                    )),
                    _ => {}
                }
            }
            Kind::Punct('[') if l1 => {
                let indexable = match prev {
                    Some(Kind::Ident(id)) => {
                        !NON_INDEXABLE_KEYWORDS.contains(&id.as_str())
                    }
                    Some(Kind::Punct(']' | ')' | '?')) | Some(Kind::Int) => true,
                    _ => false,
                };
                if indexable {
                    out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "no-index",
                        "`[..]` indexing/slicing can panic; use `.get()` or slice patterns",
                    ));
                }
            }
            Kind::EqEq | Kind::Ne if l3 => {
                let float_adjacent = matches!(prev, Some(Kind::Float))
                    || matches!(next, Some(&Kind::Float));
                if float_adjacent {
                    out.push(Finding::at(
                        path,
                        t.line,
                        t.col,
                        "no-float-eq",
                        "exact float comparison; compare against a tolerance instead",
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Per-crate facts feeding the L4 rule.
#[derive(Debug, Default)]
pub struct CrateErrorInfo {
    /// `pub enum <name>` where the name contains `Error`, outside tests:
    /// (enum name, file, line).
    pub error_enums: Vec<(String, String, u32)>,
    /// Type names with an `impl ... Display for <name>` anywhere in the crate.
    pub display_impls: HashSet<String>,
    /// Type names with an `impl ... Error for <name>` anywhere in the crate.
    pub error_impls: HashSet<String>,
}

/// Group key for a file: the crate it belongs to (`crates/<name>` or the
/// root package).
fn crate_group(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some(name) = rest.split('/').next() {
            return format!("crates/{name}");
        }
    }
    "(root)".to_string()
}

/// Collect L4 facts from one lexed file into the per-crate map.
pub fn collect_error_info(
    path: &str,
    lexed: &Lexed,
    map: &mut BTreeMap<String, CrateErrorInfo>,
) {
    if !l4_applies(path) {
        return;
    }
    let info = map.entry(crate_group(path)).or_default();
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        match &toks[i].kind {
            // `pub enum FooError` / `pub(crate) enum FooError`
            Kind::Ident(kw) if kw == "enum" && !toks[i].in_test => {
                let is_pub = match i.checked_sub(1).map(|j| &toks[j].kind) {
                    Some(Kind::Ident(p)) => p == "pub",
                    Some(Kind::Punct(')')) => {
                        // pub(crate) / pub(super): scan back past the parens.
                        let mut j = i - 1;
                        while j > 0 && toks[j].kind != Kind::Punct('(') {
                            j -= 1;
                        }
                        j > 0 && matches!(&toks[j - 1].kind, Kind::Ident(p) if p == "pub")
                    }
                    _ => false,
                };
                if !is_pub {
                    continue;
                }
                if let Some(Kind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    if name.contains("Error") {
                        info.error_enums.push((
                            name.clone(),
                            path.to_string(),
                            toks[i + 1].line,
                        ));
                    }
                }
            }
            // `impl [<...>] [path::]Trait for Type`
            Kind::Ident(kw) if kw == "for" => {
                // Walk back: the trait name is the last ident before `for`;
                // only count it if an `impl` appears first (not a loop).
                let mut trait_name: Option<&str> = None;
                let mut j = i;
                let mut is_impl = false;
                while j > 0 {
                    j -= 1;
                    match &toks[j].kind {
                        Kind::Ident(id) if id == "impl" => {
                            is_impl = true;
                            break;
                        }
                        Kind::Ident(id) => {
                            if trait_name.is_none() {
                                trait_name = Some(id);
                            }
                        }
                        Kind::Punct('{' | '}' | ';') => break,
                        _ => {}
                    }
                }
                if !is_impl {
                    continue;
                }
                if let Some(Kind::Ident(type_name)) = toks.get(i + 1).map(|t| &t.kind) {
                    match trait_name {
                        Some("Display") => {
                            info.display_impls.insert(type_name.clone());
                        }
                        Some("Error") => {
                            info.error_impls.insert(type_name.clone());
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

/// Emit an `error-impl` finding for every public error enum missing a
/// `Display` or `std::error::Error` impl within its crate.
pub fn finalize_error_impl(
    map: &BTreeMap<String, CrateErrorInfo>,
    out: &mut Vec<Finding>,
) {
    for info in map.values() {
        for (name, file, line) in &info.error_enums {
            let mut missing = Vec::new();
            if !info.display_impls.contains(name) {
                missing.push("Display");
            }
            if !info.error_impls.contains(name) {
                missing.push("std::error::Error");
            }
            if !missing.is_empty() {
                out.push(Finding::new(
                    file,
                    *line,
                    "error-impl",
                    &format!("`pub enum {name}` does not implement {}", missing.join(" + ")),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<(u32, &'static str)> {
        let lexed = lex(src);
        let mut out = Vec::new();
        check_tokens(path, &lexed, &mut out);
        out.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn l1_catches_all_five_shapes() {
        let src = "
fn f(b: &[u8]) {
    let a = b.first().unwrap();
    let c = b.get(1).expect(\"x\");
    panic!(\"boom\");
    unreachable!();
    let d = b[0];
}
";
        let got = run("crates/wire/src/x.rs", src);
        assert_eq!(
            got,
            vec![
                (3, "no-unwrap"),
                (4, "no-expect"),
                (5, "no-panic"),
                (6, "no-unreachable"),
                (7, "no-index"),
            ]
        );
    }

    #[test]
    fn l1_out_of_scope_and_test_code_are_clean() {
        let src = "fn f(b: &[u8]) -> u8 { b[0] }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn t(b: &[u8]) { b[0]; b.first().unwrap(); } }";
        assert!(run("crates/wire/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn l1_covers_the_fault_injector() {
        let src = "fn f(b: &[u8]) { b.first().unwrap(); let _ = b[0]; }";
        let got = run("crates/faults/src/plan.rs", src);
        assert_eq!(got, vec![(1, "no-unwrap"), (1, "no-index")]);
    }

    #[test]
    fn no_index_skips_types_patterns_and_macros() {
        let src = "
fn f() -> [u8; 4] {
    let [a, b, c, d] = [1u8, 2, 3, 4];
    let v = vec![a, b];
    if let Some([x, ..]) = Some([c, d]) { let _ = x; }
    [a, b, c, d]
}
";
        assert!(run("crates/wire/src/x.rs", src).is_empty(), "{:?}", run("crates/wire/src/x.rs", src));
    }

    #[test]
    fn no_index_catches_chained_and_call_results() {
        let src = "fn f(v: &[Vec<u8>]) { v[0][1]; f2()[2]; }";
        let got = run("crates/sflow/src/x.rs", src);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|(_, r)| *r == "no-index"));
    }

    #[test]
    fn l2_narrowing_only_in_scope() {
        let src = "fn f(x: usize) { let _ = x as u32; let _ = x as u64; }";
        let got = run("crates/core/src/census.rs", src);
        assert_eq!(got, vec![(1, "no-narrow-cast")]);
        assert!(run("crates/core/src/other.rs", src).is_empty());
    }

    #[test]
    fn l1_and_l2_both_fire_in_accounting() {
        let src = "fn f(x: usize, o: Option<u8>) { let _ = x as u16; o.unwrap(); }";
        let got = run("crates/sflow/src/accounting.rs", src);
        assert_eq!(got, vec![(1, "no-narrow-cast"), (1, "no-unwrap")]);
    }

    #[test]
    fn l3_float_eq() {
        let src = "fn f(x: f64) -> bool { x == 0.5 || 1.0 != x || x == y }";
        let got = run("crates/core/src/visibility.rs", src);
        assert_eq!(got, vec![(1, "no-float-eq"), (1, "no-float-eq")]);
    }

    #[test]
    fn l4_flags_missing_impls_and_accepts_complete_ones() {
        let good = "
pub enum ParseError { Bad }
impl fmt::Display for ParseError { }
impl std::error::Error for ParseError { }
";
        let bad = "pub enum DecodeError { Short }\nimpl fmt::Display for DecodeError {}\n";
        let mut map = BTreeMap::new();
        collect_error_info("crates/a/src/lib.rs", &lex(good), &mut map);
        collect_error_info("crates/b/src/lib.rs", &lex(bad), &mut map);
        let mut out = Vec::new();
        finalize_error_impl(&map, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "error-impl");
        assert!(out[0].message.contains("std::error::Error"));
        assert!(!out[0].message.contains("Display +"));
    }

    #[test]
    fn l4_cross_file_impls_count() {
        let decl = "pub enum FetchError { Nope }";
        let impls = "impl core::fmt::Display for FetchError {}\nimpl std::error::Error for FetchError {}";
        let mut map = BTreeMap::new();
        collect_error_info("crates/a/src/err.rs", &lex(decl), &mut map);
        collect_error_info("crates/a/src/fmt.rs", &lex(impls), &mut map);
        let mut out = Vec::new();
        finalize_error_impl(&map, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l4_ignores_for_loops_and_test_enums() {
        let src = "
fn f() { for x in 0..3 { let _ = x; } }
#[cfg(test)]
mod tests { pub enum TestError { X } }
";
        let mut map = BTreeMap::new();
        collect_error_info("crates/a/src/lib.rs", &lex(src), &mut map);
        let mut out = Vec::new();
        finalize_error_impl(&map, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(resolve_rule("l1").map(|v| v.len()), Some(5));
        assert_eq!(resolve_rule("l6").map(|v| v.len()), Some(3));
        assert_eq!(resolve_rule("l7").map(|v| v.len()), Some(4));
        assert_eq!(resolve_rule("l8").map(|v| v.len()), Some(5));
        assert_eq!(resolve_rule("l9").map(|v| v.len()), Some(1));
        assert_eq!(resolve_rule("l10").map(|v| v.len()), Some(2));
        assert_eq!(resolve_rule("l11").map(|v| v.len()), Some(1));
        assert_eq!(resolve_rule("no-index"), Some(vec!["no-index"]));
        assert_eq!(resolve_rule("panic-path"), Some(vec!["panic-path"]));
        assert_eq!(resolve_rule("nope"), None);
    }

    #[test]
    fn registry_covers_every_rule() {
        assert_eq!(RULES.len(), ALL_RULES.len());
        for id in ALL_RULES {
            let info = rule_info(id).unwrap_or_else(|| panic!("{id} missing from RULES"));
            assert!(!info.summary.is_empty() && !info.explain.is_empty());
            assert!(
                matches!(
                    info.family,
                    "L1" | "L2" | "L3" | "L4" | "L5" | "L6" | "L7" | "L8" | "L9" | "L10"
                        | "L11" | "meta"
                ),
                "{id} has odd family {}",
                info.family
            );
        }
    }
}
