//! L11: error-flow completeness analysis (`error-sink`).
//!
//! Every `Result` produced on a stream-facing path must go somewhere
//! deliberate: propagated with `?`, matched and converted into a counted
//! metric/bucket, or vouched with an inline `allow(error-sink)` naming
//! why the error is genuinely ignorable. What it must never do is
//! evaporate — `let _ = fallible()`, a bare `fallible().ok();`, or
//! `fallible().unwrap_or_default()` turn a decode/restore failure into
//! silence, which is exactly the "silently lost datagram" failure mode
//! the conservation invariant (L9) exists to prevent.
//!
//! **Fallibility** is interprocedural, reusing the L6 symbol-table
//! machinery: a call site is fallible when it resolves to a workspace
//! `fn` whose signature returns `Result<..>` (the return types are
//! recovered by a token scan over each `fn` signature), or when its
//! final path segment is a known fallible decode/restore primitive
//! (`Cur` widths, `decode`, `restore*`, `open`, `finish`) — those seeds
//! keep the pass sound across the `Reader`/`Cur` trait boundary where
//! resolution has nothing to bind to.
//!
//! **Sinks** are judged per statement, inside non-test fns of the
//! stream-facing crates:
//!
//! * `let _ = <stmt containing a fallible call>;`
//! * a statement ending in a bare `.ok();` whose chain contains a
//!   fallible call (using `.ok()` to *convert and consume* the Option —
//!   `if let Some(x) = f().ok()` — is not a sink);
//! * `.unwrap_or_default()` applied downstream of a fallible call,
//!   which silently substitutes a zero value for a decode error.

use crate::lexer::{Kind, Lexed};
use crate::parser::ParsedFile;
use crate::symbols::SymbolTable;
use crate::Finding;

/// Crates whose `src/` trees are stream-facing.
fn in_scope(path: &str) -> bool {
    for crate_dir in ["wire", "sflow", "supervisor", "core", "faults", "transport"] {
        if path.starts_with(&format!("crates/{crate_dir}/src/")) {
            return true;
        }
    }
    false
}

/// Final path segments that are fallible even when unresolvable.
const SEED_FALLIBLE: &[&str] = &[
    "bool", "bytes", "count", "decode", "finish", "open", "restore", "restore_from",
    "restore_state", "str", "u128", "u16", "u32", "u64", "u8",
];

/// Per-file map of `fn`-name positions to "returns `Result`", recovered
/// by scanning each signature between the parameter list and the body.
fn result_fns(lexed: &Lexed) -> Vec<(String, u32, u32)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_fn = matches!(&toks[i].kind, Kind::Ident(k) if k == "fn");
        if !is_fn {
            i += 1;
            continue;
        }
        let Some(Kind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) else {
            i += 1;
            continue;
        };
        let (name, line, col) = (name.clone(), toks[i + 1].line, toks[i + 1].col);
        // Scan the signature: past generics/params to `{` or `;`, looking
        // for `-> ... Result`. Depth-track parens so fn-pointer params
        // and tuple returns do not derail the walk.
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut angle = 0i32;
        let mut arrow = false;
        let mut returns_result = false;
        while let Some(t) = toks.get(j) {
            match &t.kind {
                Kind::Punct('(') => paren += 1,
                Kind::Punct(')') => paren -= 1,
                Kind::Punct('<') => angle += 1,
                Kind::Punct('>') => angle -= 1,
                Kind::Arrow if paren == 0 => arrow = true,
                Kind::Ident(s) if arrow && s == "Result" => returns_result = true,
                Kind::Punct('{') | Kind::Punct(';') if paren == 0 && angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if returns_result {
            out.push((name, line, col));
        }
        i = j.max(i + 1);
    }
    out
}

/// Run the pass over the workspace.
pub fn check(
    files: &[ParsedFile],
    lexed: &[Lexed],
    table: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    // (file_idx, fn_idx) -> returns Result, matched by name-token position.
    let per_file_results: Vec<Vec<(String, u32, u32)>> =
        lexed.iter().map(result_fns).collect();
    let mut returns_result = std::collections::HashSet::new();
    for (fi, file) in files.iter().enumerate() {
        for (xi, f) in file.fns.iter().enumerate() {
            if per_file_results[fi]
                .iter()
                .any(|(n, l, c)| *n == f.name && *l == f.line && *c == f.col)
            {
                returns_result.insert((fi, xi));
            }
        }
    }

    for (fi, file) in files.iter().enumerate() {
        if !in_scope(&file.path) {
            continue;
        }
        let toks = &lexed[fi].tokens;
        for f in &file.fns {
            if f.in_test {
                continue;
            }
            let Some((b0, b1)) = f.body else { continue };
            let b1 = b1.min(toks.len());
            // Call-site token indexes that are fallible, for cheap
            // "does this statement contain one" range checks.
            let fallible: Vec<usize> = f
                .calls
                .iter()
                .filter(|c| {
                    let last = c.path.last().map(String::as_str).unwrap_or("");
                    SEED_FALLIBLE.contains(&last)
                        || table
                            .resolve(c, file, f)
                            .iter()
                            .any(|r| returns_result.contains(r))
                })
                .map(|c| c.tok)
                .collect();
            let stmt_has_fallible = |from: usize, to: usize| {
                fallible.iter().any(|&t| t >= from && t < to)
            };
            // Statement start: just past the previous `;`/`{`/`}`.
            let stmt_start = |at: usize| {
                let mut k = at;
                while k > b0 + 1 {
                    if matches!(toks[k - 1].kind, Kind::Punct(';' | '{' | '}')) {
                        break;
                    }
                    k -= 1;
                }
                k
            };
            // Statement end: the next `;` (or the body's end).
            let stmt_end = |at: usize| {
                let mut k = at;
                while k < b1 {
                    if matches!(toks[k].kind, Kind::Punct(';')) {
                        break;
                    }
                    k += 1;
                }
                k
            };

            let mut i = b0 + 1;
            while i < b1 {
                match &toks[i].kind {
                    // `let _ = <fallible>;`
                    Kind::Ident(k) if k == "let" => {
                        let underscore = matches!(
                            toks.get(i + 1).map(|t| &t.kind),
                            Some(Kind::Ident(u)) if u == "_"
                        );
                        let assigned = matches!(
                            toks.get(i + 2).map(|t| &t.kind),
                            Some(Kind::Punct('='))
                        );
                        if underscore && assigned {
                            let end = stmt_end(i);
                            if stmt_has_fallible(i, end) {
                                out.push(Finding::at(
                                    &file.path,
                                    toks[i].line,
                                    toks[i].col,
                                    "error-sink",
                                    &format!(
                                        "`let _ =` discards a `Result` from a fallible call \
                                         in fn `{}`; propagate with `?`, count the error, \
                                         or vouch with allow(error-sink)",
                                        f.name
                                    ),
                                ));
                                i = end;
                            }
                        }
                    }
                    // bare `.ok();` and `.unwrap_or_default()`
                    Kind::Ident(k) if k == "ok" || k == "unwrap_or_default" => {
                        let after_dot =
                            i > 0 && matches!(toks[i - 1].kind, Kind::Punct('.'));
                        let closed_call = matches!(
                            toks.get(i + 1).map(|t| &t.kind),
                            Some(Kind::Punct('('))
                        ) && matches!(
                            toks.get(i + 2).map(|t| &t.kind),
                            Some(Kind::Punct(')'))
                        );
                        // `.ok()` is only a sink when the Option is
                        // dropped on the floor (statement ends here).
                        let discards = k == "unwrap_or_default"
                            || matches!(
                                toks.get(i + 3).map(|t| &t.kind),
                                Some(Kind::Punct(';'))
                            );
                        if after_dot
                            && closed_call
                            && discards
                            && stmt_has_fallible(stmt_start(i), i)
                        {
                            let what = if k == "ok" {
                                "a bare `.ok()` discards the error of a fallible call"
                            } else {
                                "`unwrap_or_default()` silently replaces a decode/restore \
                                 error with a zero value"
                            };
                            out.push(Finding::at(
                                &file.path,
                                toks[i].line,
                                toks[i].col,
                                "error-sink",
                                &format!(
                                    "{what} in fn `{}`; propagate with `?`, count the \
                                     error, or vouch with allow(error-sink)",
                                    f.name
                                ),
                            ));
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::scan_sources;

    fn scan(path: &str, src: &str) -> Vec<(u32, String)> {
        scan_sources(vec![(path.to_string(), src.to_string())])
            .into_iter()
            .filter(|f| f.rule == "error-sink")
            .map(|f| (f.line, f.message))
            .collect()
    }

    const HELPER: &str = "fn parse(d: &[u8]) -> Result<u64, E> {\n\
                          if d.is_empty() { return Err(E); }\n\
                          Ok(1)\n\
                          }\n";

    #[test]
    fn let_underscore_on_fallible_call_is_a_sink() {
        let src = format!("{HELPER}pub fn drain(d: &[u8]) {{\nlet _ = parse(d);\n}}\n");
        let hits = scan("crates/sflow/src/s.rs", &src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].1.contains("let _ ="));
    }

    #[test]
    fn bare_ok_and_unwrap_or_default_are_sinks() {
        let src = format!(
            "{HELPER}pub fn drain(d: &[u8]) -> u64 {{\n\
             parse(d).ok();\n\
             parse(d).unwrap_or_default()\n\
             }}\n"
        );
        let hits = scan("crates/sflow/src/s.rs", &src);
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn seed_fallible_primitives_need_no_resolution() {
        let src = "pub fn peek(cur: &mut Cur<'_>) {\nlet _ = cur.u64();\n}\n";
        let hits = scan("crates/supervisor/src/s.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn propagation_match_and_used_ok_are_clean() {
        let src = format!(
            "{HELPER}pub fn fwd(d: &[u8]) -> Result<u64, E> {{\n\
             let v = parse(d)?;\n\
             match parse(d) {{ Ok(x) => Ok(x + v), Err(e) => Err(e) }}\n\
             }}\n\
             pub fn opt(d: &[u8]) -> Option<u64> {{\n\
             parse(d).ok()\n\
             }}\n\
             pub fn infallible() {{\n\
             let _ = total(3);\n\
             }}\n\
             fn total(x: u64) -> u64 {{ x }}\n"
        );
        let hits = scan("crates/sflow/src/s.rs", &src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn out_of_scope_and_tests_are_exempt() {
        let src = format!("{HELPER}pub fn drain(d: &[u8]) {{\nlet _ = parse(d);\n}}\n");
        assert!(scan("crates/dns/src/s.rs", &src).is_empty());
        let test_src = format!(
            "{HELPER}#[cfg(test)]\nmod tests {{\n\
             fn drain(d: &[u8]) {{ let _ = super::parse(d); }}\n\
             }}\n"
        );
        assert!(scan("crates/sflow/src/s.rs", &test_src).is_empty());
    }

    #[test]
    fn allow_directive_vouches_a_sink() {
        let src = format!(
            "{HELPER}pub fn drain(d: &[u8]) {{\n\
             // ixp-lint: allow(error-sink) best-effort probe, failure is expected\n\
             let _ = parse(d);\n\
             }}\n"
        );
        assert!(scan("crates/sflow/src/s.rs", &src).is_empty());
    }
}
