//! Machine-readable diagnostics: the `--format json` report.
//!
//! The emitter is hand-rolled (the linter is dependency-free and the
//! vendored `serde_json` stand-in is intentionally empty); a minimal
//! parser rides along so tests — and the CI smoke check — can validate
//! that emitted reports round-trip.
//!
//! # Schema (version 3)
//!
//! ```json
//! {
//!   "version": 3,
//!   "tool": "ixp-lint",
//!   "rules": [
//!     { "id": "no-unwrap", "family": "L1", "severity": "error", "summary": "..." }
//!   ],
//!   "findings": [
//!     {
//!       "file": "crates/sflow/src/xdr.rs",
//!       "line": 42,
//!       "column": 9,
//!       "rule": "tainted-arith",
//!       "family": "L6",
//!       "severity": "error",
//!       "message": "..."
//!     }
//!   ],
//!   "notes": ["stale baseline: ..."],
//!   "summary": { "total": 1, "by_rule": { "tainted-arith": 1 } }
//! }
//! ```
//!
//! `rules` lists the full registry (every rule the linter ran, not just
//! those that fired), so consumers can discover families and ids without
//! parsing `--explain` output — the CI smoke check greps it for the L8
//! ids. `findings` is sorted (file, line, rule); `column` is 1-based and
//! 0 when unknown; `family` is `L1`..`L11` or `meta`; `severity` is
//! currently always `error` (the field exists so future advisory rules
//! do not need a schema bump).
//!
//! Version 2 added the `rules` array. Version 3 extends the family set
//! with `L9` (accounting conservation), `L10` (checkpoint-codec
//! symmetry), and `L11` (error-flow completeness); the report shape is
//! unchanged, but consumers keying on the family enumeration must
//! re-sync, so the version is bumped.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules;
use crate::Finding;

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full diagnostics report.
pub fn report(findings: &[Finding], notes: &[String]) -> String {
    let mut out = String::from("{\n  \"version\": 3,\n  \"tool\": \"ixp-lint\",\n  \"rules\": [");
    for (i, r) in rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": \"{}\", \"family\": \"{}\", \"severity\": \"{}\", \
             \"summary\": \"{}\"}}",
            escape(r.id),
            r.family,
            r.severity,
            escape(r.summary),
        );
    }
    out.push_str("\n  ],\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let info = rules::rule_info(f.rule);
        let (family, severity) =
            info.map(|r| (r.family, r.severity)).unwrap_or(("meta", "error"));
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"column\": {}, \"rule\": \"{}\", \
             \"family\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}",
            escape(&f.file),
            f.line,
            f.col,
            escape(f.rule),
            family,
            severity,
            escape(&f.message),
        );
    }
    if findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"notes\": [");
    for (i, n) in notes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape(n));
    }
    out.push_str("],\n");
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule).or_insert(0) += 1;
    }
    let _ = write!(out, "  \"summary\": {{\"total\": {}, \"by_rule\": {{", findings.len());
    for (i, (rule, count)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", escape(rule), count);
    }
    out.push_str("}}\n}\n");
    out
}

/// A parsed JSON value (the subset the report uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key-ordered.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while b.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}"))
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some('"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some('t') if matches(b, *pos, "true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some('f') if matches(b, *pos, "false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some('n') if matches(b, *pos, "null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(b, pos),
        _ => Err(format!("unexpected character at offset {pos}")),
    }
}

fn matches(b: &[char], pos: usize, word: &str) -> bool {
    word.chars().enumerate().all(|(i, c)| b.get(pos + i) == Some(&c))
}

fn parse_string(b: &[char], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, '"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = b.get(*pos).copied();
                *pos += 1;
                match esc {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = b
                                .get(*pos)
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| format!("bad \\u escape at offset {pos}"))?;
                            code = code * 16 + d;
                            *pos += 1;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[char], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
    {
        *pos += 1;
    }
    let text: String = b
        .get(start..*pos)
        .map(|cs| cs.iter().collect())
        .unwrap_or_default();
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let findings = vec![
            Finding::at("crates/a/src/x.rs", 3, 5, "no-unwrap", "msg with \"quotes\""),
            Finding::at("crates/a/src/x.rs", 9, 1, "no-unwrap", "second"),
        ];
        let notes = vec!["a note".to_string()];
        let text = report(&findings, &notes);
        let v = parse(&text).unwrap();
        assert_eq!(v.get("version").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("tool").and_then(Value::as_str), Some("ixp-lint"));
        let rules_arr = v.get("rules").and_then(Value::as_arr).unwrap();
        assert_eq!(rules_arr.len(), crate::rules::RULES.len());
        assert!(rules_arr.iter().any(|r| {
            r.get("id").and_then(Value::as_str) == Some("lock-order-cycle")
                && r.get("family").and_then(Value::as_str) == Some("L8")
        }));
        let fs = v.get("findings").and_then(Value::as_arr).unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].get("line").and_then(Value::as_u64), Some(3));
        assert_eq!(fs[0].get("column").and_then(Value::as_u64), Some(5));
        assert_eq!(fs[0].get("family").and_then(Value::as_str), Some("L1"));
        assert_eq!(fs[0].get("severity").and_then(Value::as_str), Some("error"));
        assert_eq!(
            fs[0].get("message").and_then(Value::as_str),
            Some("msg with \"quotes\"")
        );
        let summary = v.get("summary").unwrap();
        assert_eq!(summary.get("total").and_then(Value::as_u64), Some(2));
        assert_eq!(
            summary.get("by_rule").and_then(|m| m.get("no-unwrap")).and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(v.get("notes").and_then(Value::as_arr).map(<[Value]>::len), Some(1));
    }

    #[test]
    fn empty_report_is_valid() {
        let v = parse(&report(&[], &[])).unwrap();
        assert_eq!(v.get("summary").and_then(|s| s.get("total")).and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("findings").and_then(Value::as_arr).map(<[Value]>::len), Some(0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("{} extra").is_err());
    }
}
