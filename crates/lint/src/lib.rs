//! ixp-lint — the workspace invariant linter.
//!
//! A dependency-free static analysis pass over every `.rs` file in the
//! workspace, enforcing the project's no-panic decoder contract and a few
//! numeric-hygiene rules (see [`rules`] for the table). Run it as
//! `cargo run -p ixp-lint`; it exits 0 on a clean tree, 1 with
//! `file:line: rule: message` output when violations exceed the committed
//! ratchet baseline (`lint-baseline.toml`), and 2 on usage or I/O errors.
//!
//! False positives are suppressed inline:
//!
//! ```text
//! let b = frame[0]; // ixp-lint: allow(no-index) length checked above
//! ```
//!
//! placed on the offending line, or on its own line directly above. A whole
//! file can opt out of one rule with a mandatory justification:
//!
//! ```text
//! // ixp-lint: allow-file(no-float-eq, "bit-exact golden values")
//! ```
//!
//! Family aliases `l1`..`l8` expand to their rule groups.
//!
//! Beyond the token-level rules, the linter parses every file into a
//! lightweight item tree ([`parser`]), builds a workspace symbol table
//! ([`symbols`]), and runs four semantic passes: panic-reachability over
//! the call graph ([`callgraph`], L5), wire-taint overflow analysis
//! ([`taint`], L6), determinism checks ([`determinism`], L7), and
//! concurrency-safety analysis ([`concurrency`], L8). The per-file
//! lex/parse stage fans out over the vendored thread stand-ins; the
//! semantic passes stay sequential, so output is byte-identical to a
//! single-threaded run.

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod codec_sym;
pub mod concurrency;
pub mod conservation;
pub mod determinism;
pub mod errorflow;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;
pub mod taint;

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::Lexed;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the offending token; 0 when unknown.
    pub col: u32,
    /// Rule id (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Construct a finding without column information.
    pub fn new(file: &str, line: u32, rule: &'static str, message: &str) -> Self {
        Finding { file: file.to_string(), line, col: 0, rule, message: message.to_string() }
    }

    /// Construct a finding with a column.
    pub fn at(file: &str, line: u32, col: u32, rule: &'static str, message: &str) -> Self {
        Finding { file: file.to_string(), line, col, rule, message: message.to_string() }
    }

    /// The canonical `file:line: rule: message` rendering.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Allow directives collected from one file's comments.
#[derive(Debug, Default)]
pub(crate) struct FileAllows {
    /// Line number → rules allowed on that line.
    lines: HashMap<u32, Vec<&'static str>>,
    /// Rules allowed for the whole file.
    file_wide: Vec<&'static str>,
}

impl FileAllows {
    pub(crate) fn suppresses(&self, rule: &str, line: u32) -> bool {
        self.file_wide.iter().any(|r| *r == rule)
            || self.lines.get(&line).is_some_and(|rs| rs.iter().any(|r| *r == rule))
    }
}

const DIRECTIVE_MARKER: &str = "ixp-lint:";

/// Parse lint directives (the `ixp-lint` comment marker) out of a file's
/// comments. Malformed directives become `bad-directive` findings.
pub(crate) fn parse_directives(
    path: &str,
    lexed: &Lexed,
    findings: &mut Vec<Finding>,
) -> FileAllows {
    let mut allows = FileAllows::default();
    for c in &lexed.comments {
        let Some(pos) = c.text.find(DIRECTIVE_MARKER) else { continue };
        let rest = c.text[pos + DIRECTIVE_MARKER.len()..].trim();
        if let Some(args) = rest.strip_prefix("allow-file") {
            let Some(inner) = paren_args(args) else {
                findings.push(Finding::new(
                    path,
                    c.line,
                    "bad-directive",
                    "allow-file expects `allow-file(rule, \"reason\")`",
                ));
                continue;
            };
            let Some((rule_name, reason)) = inner.split_once(',') else {
                findings.push(Finding::new(
                    path,
                    c.line,
                    "bad-directive",
                    "allow-file requires a quoted reason after the rule",
                ));
                continue;
            };
            let reason = reason.trim();
            let quoted = reason.len() >= 2
                && reason.starts_with('"')
                && reason.ends_with('"')
                && reason.len() > 2;
            if !quoted {
                findings.push(Finding::new(
                    path,
                    c.line,
                    "bad-directive",
                    "allow-file reason must be a non-empty quoted string",
                ));
                continue;
            }
            match rules::resolve_rule(rule_name.trim()) {
                Some(resolved) => allows.file_wide.extend(resolved),
                None => findings.push(Finding::new(
                    path,
                    c.line,
                    "bad-directive",
                    &format!("unknown rule `{}` in allow-file", rule_name.trim()),
                )),
            }
        } else if let Some(args) = rest.strip_prefix("allow") {
            let Some(inner) = paren_args(args) else {
                findings.push(Finding::new(
                    path,
                    c.line,
                    "bad-directive",
                    "allow expects `allow(rule[, rule...])`",
                ));
                continue;
            };
            // The directive covers its own line; a comment alone on a line
            // also covers the next line of code.
            let mut targets = vec![c.line];
            if c.own_line {
                if let Some(next) =
                    lexed.tokens.iter().map(|t| t.line).filter(|l| *l > c.line).min()
                {
                    targets.push(next);
                }
            }
            for rule_name in inner.split(',') {
                match rules::resolve_rule(rule_name.trim()) {
                    Some(resolved) => {
                        for &line in &targets {
                            allows.lines.entry(line).or_default().extend(resolved.iter());
                        }
                    }
                    None => findings.push(Finding::new(
                        path,
                        c.line,
                        "bad-directive",
                        &format!("unknown rule `{}` in allow", rule_name.trim()),
                    )),
                }
            }
        } else {
            findings.push(Finding::new(
                path,
                c.line,
                "bad-directive",
                &format!("unknown directive `{}`", rest.split_whitespace().next().unwrap_or("")),
            ));
        }
    }
    allows
}

/// Extract `inner` from a `(inner)` argument list; trailing free text after
/// the closing paren is treated as justification and ignored.
fn paren_args(args: &str) -> Option<&str> {
    let args = args.trim_start();
    let rest = args.strip_prefix('(')?;
    let close = rest.find(')')?;
    Some(&rest[..close])
}

/// The outcome of the per-file stage (lex, directives, token rules, L4
/// facts, determinism, parse) for one source file. Everything later
/// passes need, computed independently of every other file — which is
/// what lets the stage fan out across threads.
struct PerFile {
    path: String,
    findings: Vec<Finding>,
    /// Findings of the pure per-file rules (token rules + determinism):
    /// the slice of the result the incremental cache may reuse. Empty
    /// when the cache supplied them (`token_rules: false`).
    token_findings: Vec<Finding>,
    allows: FileAllows,
    l4: BTreeMap<String, rules::CrateErrorInfo>,
    lexed: Lexed,
    parsed: parser::ParsedFile,
}

/// Run every per-file pass over one source. `token_rules: false` skips
/// the cacheable token/determinism rules (a per-file cache hit); the
/// directive, L4-fact, and parse stages always run — later passes and
/// the suppression step need their output regardless.
fn analyze_file(path: String, src: &str, token_rules: bool) -> PerFile {
    let mut findings = Vec::new();
    let mut token_findings = Vec::new();
    let mut l4 = BTreeMap::new();
    let lexed = lexer::lex(src);
    let allows = parse_directives(&path, &lexed, &mut findings);
    if token_rules {
        rules::check_tokens(&path, &lexed, &mut token_findings);
        determinism::check(&path, &lexed, &mut token_findings);
    }
    rules::collect_error_info(&path, &lexed, &mut l4);
    let parsed = parser::parse(&path, &lexed);
    PerFile { path, findings, token_findings, allows, l4, lexed, parsed }
}

/// Below this many files the thread fan-out costs more than it saves.
const PARALLEL_THRESHOLD: usize = 4;

/// Fan the per-file stage out over a scoped worker pool. Results land in
/// index-keyed slots, so the returned order — and therefore every
/// downstream pass — is identical to the sequential path.
fn analyze_parallel(files: Vec<(String, String, bool)>) -> Vec<PerFile> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
        .min(files.len());
    if workers <= 1 || files.len() < PARALLEL_THRESHOLD {
        return files.into_iter().map(|(p, s, t)| analyze_file(p, &s, t)).collect();
    }
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<(usize, String, String, bool)>();
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, PerFile)>();
    let n = files.len();
    for (i, (path, src, token_rules)) in files.into_iter().enumerate() {
        let _ = work_tx.send((i, path, src, token_rules));
    }
    drop(work_tx);
    let mut slots: Vec<Option<PerFile>> = Vec::new();
    slots.resize_with(n, || None);
    let _ = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move |_| {
                while let Ok((i, path, src, token_rules)) = work_rx.recv() {
                    let _ = done_tx.send((i, analyze_file(path, &src, token_rules)));
                }
            });
        }
        drop(done_tx);
        while let Ok((i, pf)) = done_rx.recv() {
            slots[i] = Some(pf);
        }
    });
    slots.into_iter().flatten().collect()
}

/// Lint a set of in-memory sources. `files` yields workspace-relative
/// paths (forward slashes) and their contents. Findings come back sorted
/// by file, line, rule.
pub fn scan_sources<I>(files: I) -> Vec<Finding>
where
    I: IntoIterator<Item = (String, String)>,
{
    let files: Vec<(String, String)> = files.into_iter().collect();
    let n = files.len();
    scan_sources_inner(files, vec![None; n]).0
}

/// The full pipeline behind [`scan_sources`] and the cached scan.
/// `cached_tokens[i]` supplies file `i`'s per-file findings from the
/// cache (skipping its token/determinism rules); `None` computes them.
/// Returns the final findings plus, for each file that was computed,
/// `(index, per-file findings)` for the caller to store.
fn scan_sources_inner(
    files: Vec<(String, String)>,
    cached_tokens: Vec<Option<Vec<Finding>>>,
) -> (Vec<Finding>, Vec<(usize, Vec<Finding>)>) {
    let mut findings = Vec::new();
    let mut computed_tokens = Vec::new();
    let mut l4_map: BTreeMap<String, rules::CrateErrorInfo> = BTreeMap::new();
    let mut allows: HashMap<String, FileAllows> = HashMap::new();
    let mut lexed_files = Vec::new();
    let mut parsed_files = Vec::new();

    let work: Vec<(String, String, bool)> = files
        .into_iter()
        .zip(&cached_tokens)
        .map(|((p, s), cached)| (p, s, cached.is_none()))
        .collect();
    for (i, pf) in analyze_parallel(work).into_iter().enumerate() {
        findings.extend(pf.findings);
        match &cached_tokens[i] {
            Some(cached) => findings.extend(cached.iter().cloned()),
            None => {
                computed_tokens.push((i, pf.token_findings.clone()));
                findings.extend(pf.token_findings);
            }
        }
        for (group, info) in pf.l4 {
            let entry = l4_map.entry(group).or_default();
            entry.error_enums.extend(info.error_enums);
            entry.display_impls.extend(info.display_impls);
            entry.error_impls.extend(info.error_impls);
        }
        parsed_files.push(pf.parsed);
        lexed_files.push(pf.lexed);
        allows.insert(pf.path, pf.allows);
    }
    rules::finalize_error_impl(&l4_map, &mut findings);

    let table = symbols::SymbolTable::build(&parsed_files);
    callgraph::check(&parsed_files, &table, &allows, &mut findings);
    taint::check(&parsed_files, &lexed_files, &table, &mut findings);
    concurrency::check(&parsed_files, &lexed_files, &table, &mut findings);
    conservation::check(&parsed_files, &lexed_files, &mut findings);
    codec_sym::check(&parsed_files, &lexed_files, &mut findings);
    errorflow::check(&parsed_files, &lexed_files, &table, &mut findings);

    findings.retain(|f| {
        f.rule == "bad-directive"
            || !allows.get(&f.file).is_some_and(|fa| fa.suppresses(f.rule, f.line))
    });
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    (findings, computed_tokens)
}

/// [`scan_sources`] through the incremental cache at `dir` (see
/// [`cache`]): a whole-workspace fixpoint hit skips all analysis; per
/// changed file only its token rules recompute, everything cross-file
/// always recomputes. Results are identical to an uncached scan.
pub fn scan_sources_cached(
    files: Vec<(String, String)>,
    dir: &Path,
) -> (Vec<Finding>, cache::CacheStats) {
    let registry = cache::registry_digest();
    let digests: Vec<u64> =
        files.iter().map(|(_, src)| cache::fnv64(src.as_bytes())).collect();
    let workspace = cache::workspace_digest(&files, &digests);
    let mut stats = cache::CacheStats::default();
    if let Some(findings) = cache::load_fixpoint(dir, registry, workspace) {
        stats.fixpoint_hit = true;
        stats.file_hits = files.len();
        return (findings, stats);
    }
    let cached_tokens: Vec<Option<Vec<Finding>>> = files
        .iter()
        .zip(&digests)
        .map(|((path, _), digest)| cache::load_per_file(dir, path, *digest, registry))
        .collect();
    stats.file_hits = cached_tokens.iter().filter(|c| c.is_some()).count();
    stats.file_misses = files.len() - stats.file_hits;
    let keys: Vec<(String, u64)> =
        files.iter().zip(&digests).map(|((p, _), d)| (p.clone(), *d)).collect();
    let (findings, computed) = scan_sources_inner(files, cached_tokens);
    for (i, token_findings) in &computed {
        let (path, digest) = &keys[*i];
        cache::store_per_file(dir, path, *digest, registry, token_findings);
    }
    cache::store_fixpoint(dir, registry, workspace, &findings);
    (findings, stats)
}

/// Directory names the walker never descends into: build output, the
/// offline dependency stand-ins, VCS metadata, lint test fixtures (which
/// contain violations on purpose), and anything hidden.
fn skip_dir(name: &str) -> bool {
    name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.')
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rs(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Collect every lintable `.rs` file under `root`, as sorted
/// workspace-relative (path, content) pairs.
fn collect_workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut paths = Vec::new();
    collect_rs(root, root, &mut paths)?;
    // The general walk skips vendor/ (stand-ins are exempt from the
    // style-level families), but the L8 concurrency rules deliberately
    // cover the vendored channel/lock internals: walk those two crates
    // explicitly.
    for name in ["crossbeam", "parking_lot"] {
        let dir = root.join("vendor").join(name);
        if dir.is_dir() {
            collect_rs(root, &dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel, fs::read_to_string(&p)?));
    }
    Ok(files)
}

/// Lint every `.rs` file under `root` (a workspace checkout).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(scan_sources(collect_workspace_files(root)?))
}

/// [`scan_workspace`] through the incremental cache at `cache_dir`.
pub fn scan_workspace_cached(
    root: &Path,
    cache_dir: &Path,
) -> io::Result<(Vec<Finding>, cache::CacheStats)> {
    Ok(scan_sources_cached(collect_workspace_files(root)?, cache_dir))
}

/// Walk up from `start` looking for a `Cargo.toml` declaring `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_one(path: &str, src: &str) -> Vec<Finding> {
        scan_sources([(path.to_string(), src.to_string())])
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "fn f(b: &[u8]) -> u8 { b[0] } // ixp-lint: allow(no-index) bounds checked\n";
        assert!(scan_one("crates/wire/src/x.rs", src).is_empty());
    }

    #[test]
    fn own_line_allow_covers_next_code_line() {
        let src = "\
fn f(b: &[u8]) -> u8 {
    // ixp-lint: allow(no-index) caller guarantees length
    b[0]
}
";
        assert!(scan_one("crates/wire/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_on_wrong_line_does_not_leak() {
        let src = "\
fn f(b: &[u8]) -> u8 {
    // ixp-lint: allow(no-index) only covers the next line
    let _ = b.len();
    b[0]
}
";
        let got = scan_one("crates/wire/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "no-index");
        assert_eq!(got[0].line, 4);
    }

    #[test]
    fn family_alias_expands() {
        let src = "fn f(o: Option<u8>, b: &[u8]) { o.unwrap(); b[0]; } // ixp-lint: allow(l1)\n";
        assert!(scan_one("crates/sflow/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_file_needs_reason() {
        let with = "// ixp-lint: allow-file(no-index, \"fixed-size header\")\nfn f(b: &[u8]) -> u8 { b[0] }\nfn g(b: &[u8]) -> u8 { b[1] }\n";
        assert!(scan_one("crates/wire/src/x.rs", with).is_empty());

        let without = "// ixp-lint: allow-file(no-index)\nfn f(b: &[u8]) -> u8 { b[0] }\n";
        let got = scan_one("crates/wire/src/x.rs", without);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().any(|f| f.rule == "bad-directive"));
        assert!(got.iter().any(|f| f.rule == "no-index"));
    }

    #[test]
    fn unknown_rule_is_bad_directive() {
        let src = "fn f() {} // ixp-lint: allow(no-such-rule)\n";
        let got = scan_one("crates/core/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "bad-directive");
        assert!(got[0].message.contains("no-such-rule"));
    }

    #[test]
    fn directives_in_strings_are_ignored() {
        let src = "fn f() -> &'static str { \"// ixp-lint: allow(nope)\" }\n";
        assert!(scan_one("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn render_format() {
        let f = Finding::new("a.rs", 7, "no-unwrap", "msg");
        assert_eq!(f.render(), "a.rs:7: no-unwrap: msg");
    }

    #[test]
    fn findings_are_sorted() {
        let files = [
            ("crates/wire/src/b.rs".to_string(), "fn f(b:&[u8]){ b[0]; }".to_string()),
            ("crates/wire/src/a.rs".to_string(), "fn f(o:Option<u8>){ o.unwrap(); }".to_string()),
        ];
        let got = scan_sources(files);
        assert_eq!(got[0].file, "crates/wire/src/a.rs");
        assert_eq!(got[1].file, "crates/wire/src/b.rs");
    }

    #[test]
    fn l4_spans_files_within_a_crate() {
        let files = [
            (
                "crates/x/src/err.rs".to_string(),
                "pub enum XError { A }".to_string(),
            ),
            (
                "crates/x/src/fmt.rs".to_string(),
                "impl fmt::Display for XError {}\nimpl std::error::Error for XError {}".to_string(),
            ),
        ];
        assert!(scan_sources(files).is_empty());
    }
}
