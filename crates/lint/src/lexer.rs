//! A small hand-rolled Rust lexer.
//!
//! Just enough lexing to run the project rules reliably: it is exact about
//! what is *not* code — line/block comments (nested), string literals,
//! raw strings with any `#` arity, byte strings, char literals vs.
//! lifetimes — and it records comment text so allow directives (see the
//! crate docs) can be attached to lines. It does not build an AST; rules
//! work on the flat token stream plus the `in_test` flag computed for
//! `#[cfg(test)]` regions.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, exponent, or f32/f64 suffix).
    Float,
    /// Any string-ish literal (string, raw string, byte string).
    Str,
    /// Char or byte-char literal.
    Char,
    /// A lifetime like `'a`.
    Lifetime,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `..` or `..=`
    DotDot,
    /// `::`
    PathSep,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// Any other single punctuation character.
    Punct(char),
}

/// One token with its 1-based source line and column.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind (and text for identifiers).
    pub kind: Kind,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in chars) of the token start.
    pub col: u32,
    /// True when the token sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A comment's text and the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line number of the comment start.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Never fails: unterminated constructs consume the rest of
/// the input, which is the forgiving behaviour a linter wants.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_start = 0usize;
    let mut line_has_code = false;

    // Push a token with the line/col captured *before* its consumption (a
    // string may span newlines, mutating `line` while being consumed).
    macro_rules! push {
        ($kind:expr, $line:expr, $col:expr) => {
            out.tokens.push(Token { kind: $kind, line: $line, col: $col, in_test: false })
        };
    }
    // Re-anchor `line_start` after consuming a construct that may contain
    // newlines (multi-line strings, block comments).
    macro_rules! resync_line_start {
        () => {
            if let Some(p) = bytes[..i].iter().rposition(|c| *c == '\n') {
                line_start = p + 1;
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let tok_line = line;
        let tok_col = (i - line_start + 1) as u32;
        match c {
            '\n' => {
                line += 1;
                line_start = i + 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: bytes[start..j].iter().collect(),
                    own_line: !line_has_code,
                });
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                let comment_line = i;
                let own_line = !line_has_code;
                let start_line = line;
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        line_has_code = false;
                    } else if bytes[j] == '/' && bytes.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 1;
                    } else if bytes[j] == '*' && bytes.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 1;
                    }
                    j += 1;
                }
                // Strip the closing `*/` only when the comment actually
                // terminated; an unterminated comment runs to EOF and its
                // last two chars are ordinary text (possibly a directive's).
                let text_end = if depth == 0 { j.saturating_sub(2) } else { j };
                out.comments.push(Comment {
                    line: start_line,
                    text: bytes[comment_line + 2..text_end.max(comment_line + 2)]
                        .iter()
                        .collect(),
                    own_line,
                });
                i = j;
                resync_line_start!();
            }
            '"' => {
                line_has_code = true;
                i = consume_string(&bytes, i + 1, &mut line);
                resync_line_start!();
                push!(Kind::Str, tok_line, tok_col);
            }
            'r' | 'b' if is_raw_or_byte_string(&bytes, i) => {
                line_has_code = true;
                i = consume_prefixed_string(&bytes, i, &mut line);
                resync_line_start!();
                push!(Kind::Str, tok_line, tok_col);
            }
            'b' if bytes.get(i + 1) == Some(&'\'') => {
                line_has_code = true;
                i = consume_char_literal(&bytes, i + 2);
                push!(Kind::Char, tok_line, tok_col);
            }
            '\'' => {
                line_has_code = true;
                // Char literal or lifetime?
                if bytes.get(i + 1) == Some(&'\\') {
                    i = consume_char_literal(&bytes, i + 1);
                    push!(Kind::Char, tok_line, tok_col);
                } else if bytes.get(i + 2) == Some(&'\'')
                    && bytes.get(i + 1).is_some_and(|c| *c != '\'')
                {
                    i += 3;
                    push!(Kind::Char, tok_line, tok_col);
                } else {
                    // Lifetime: consume ident chars.
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    i = j;
                    push!(Kind::Lifetime, tok_line, tok_col);
                }
            }
            c if c.is_ascii_digit() => {
                line_has_code = true;
                let (next, is_float) = consume_number(&bytes, i);
                i = next;
                push!(if is_float { Kind::Float } else { Kind::Int }, tok_line, tok_col);
            }
            c if c.is_alphabetic() || c == '_' => {
                line_has_code = true;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let ident: String = bytes[i..j].iter().collect();
                i = j;
                push!(Kind::Ident(ident), tok_line, tok_col);
            }
            _ => {
                line_has_code = true;
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                let (kind, advance) = match two.as_str() {
                    "==" => (Kind::EqEq, 2),
                    "!=" => (Kind::Ne, 2),
                    "::" => (Kind::PathSep, 2),
                    "->" => (Kind::Arrow, 2),
                    "=>" => (Kind::FatArrow, 2),
                    ".." => {
                        if bytes.get(i + 2) == Some(&'=') {
                            (Kind::DotDot, 3)
                        } else {
                            (Kind::DotDot, 2)
                        }
                    }
                    _ => (Kind::Punct(c), 1),
                };
                i += advance;
                push!(kind, tok_line, tok_col);
            }
        }
    }

    mark_test_regions(&mut out.tokens);
    out
}

fn is_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    // r"..", r#"..."#, br".."/rb is not a thing, b"..", br#"..."#
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
        while bytes.get(j) == Some(&'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&'"');
    }
    bytes[i] == 'b' && bytes.get(j) == Some(&'"')
}

fn consume_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            '\\' => {
                // An escaped newline (line continuation) still ends a
                // source line; and a trailing backslash at EOF must not
                // step past the buffer.
                if bytes.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn consume_prefixed_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    if bytes.get(i) == Some(&'b') {
        i += 1;
    }
    if bytes.get(i) == Some(&'r') {
        i += 1;
        let mut hashes = 0;
        while bytes.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        // Scan for `"` followed by `hashes` hash marks.
        while i < bytes.len() {
            if bytes[i] == '\n' {
                *line += 1;
            }
            if bytes[i] == '"' {
                let mut k = 0;
                while k < hashes && bytes.get(i + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        i
    } else {
        // b"..."
        consume_string(bytes, i + 1, line)
    }
}

fn consume_char_literal(bytes: &[char], mut i: usize) -> usize {
    // `i` points just after the opening quote (or at the backslash).
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i = (i + 2).min(bytes.len()),
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn consume_number(bytes: &[char], mut i: usize) -> (usize, bool) {
    let mut is_float = false;
    if bytes[i] == '0' && matches!(bytes.get(i + 1), Some('x' | 'o' | 'b')) {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
            i += 1;
        }
        return (i, false);
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
        i += 1;
    }
    // Fraction: a dot NOT followed by another dot (range) or an identifier
    // start (method call on a literal).
    if bytes.get(i) == Some(&'.')
        && !matches!(bytes.get(i + 1), Some(&'.'))
        && !bytes.get(i + 1).is_some_and(|c| c.is_alphabetic() || *c == '_')
    {
        is_float = true;
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
            i += 1;
        }
    }
    // Exponent.
    if matches!(bytes.get(i), Some('e' | 'E'))
        && (bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(bytes.get(i + 1), Some('+' | '-'))
                && bytes.get(i + 2).is_some_and(|c| c.is_ascii_digit())))
    {
        is_float = true;
        i += 1;
        if matches!(bytes.get(i), Some('+' | '-')) {
            i += 1;
        }
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
            i += 1;
        }
    }
    // Suffix (u8, usize, f64, ...).
    let suffix_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
        i += 1;
    }
    let suffix: String = bytes[suffix_start..i].iter().collect();
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    (i, is_float)
}

/// Mark tokens inside `#[cfg(test)]` items (attribute plus the following
/// braced item, or up to `;` for statement-like items).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Find the end of the attribute: the `]` closing `#[`.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < tokens.len() {
                match tokens[j].kind {
                    Kind::Punct('[') => depth += 1,
                    Kind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Walk forward to the first `{` or `;` at brace depth 0.
            let mut k = j + 1;
            let mut end = tokens.len();
            while k < tokens.len() {
                match tokens[k].kind {
                    Kind::Punct('{') => {
                        let mut depth = 0i32;
                        let mut m = k;
                        while m < tokens.len() {
                            match tokens[m].kind {
                                Kind::Punct('{') => depth += 1,
                                Kind::Punct('}') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        end = (m + 1).min(tokens.len());
                        break;
                    }
                    Kind::Punct(';') => {
                        end = k + 1;
                        break;
                    }
                    _ => k += 1,
                }
            }
            for t in &mut tokens[i..end] {
                t.in_test = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// Does `#[cfg(test)]` or `#[cfg(any(test, ...))]` start at index `i`?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if tokens[i].kind != Kind::Punct('#') {
        return false;
    }
    if tokens.get(i + 1).map(|t| &t.kind) != Some(&Kind::Punct('[')) {
        return false;
    }
    let is_ident = |idx: usize, s: &str| {
        matches!(tokens.get(idx).map(|t| &t.kind), Some(Kind::Ident(id)) if id == s)
    };
    if !is_ident(i + 2, "cfg") {
        return false;
    }
    // Scan the attribute's token window for a `test` ident.
    let mut j = i + 3;
    let mut depth = 0i32;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            Kind::Punct('(') => depth += 1,
            Kind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Kind::Ident(id) if id == "test" => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Kind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            let a = "unwrap() == 1.0"; // unwrap() here is comment
            let b = r#"panic!("x")"#;
            /* .unwrap() */
            let c = 'x';
        "##;
        let toks = lex(src);
        assert!(!idents(src).iter().any(|s| s == "unwrap" || s == "panic"));
        assert_eq!(toks.comments.len(), 2);
        assert!(toks.comments[0].text.contains("unwrap() here"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let toks = lex(src);
        assert_eq!(
            toks.tokens.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            3
        );
        assert!(!toks.tokens.iter().any(|t| t.kind == Kind::Char));
    }

    #[test]
    fn ranges_are_not_floats() {
        let src = "let v = &x[0..10]; let f = 1.5; let g = 2.0e-3; let h = 3f64; let i = 1.min(2);";
        let toks = lex(src);
        let floats = toks.tokens.iter().filter(|t| t.kind == Kind::Float).count();
        assert_eq!(floats, 3, "{:?}", toks.tokens);
        assert!(toks.tokens.iter().any(|t| t.kind == Kind::DotDot));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "
fn real() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn after() { z.unwrap(); }
";
        let toks = lex(src);
        let unwraps: Vec<bool> = toks
            .tokens
            .iter()
            .filter(|t| matches!(&t.kind, Kind::Ident(s) if s == "unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true, false]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = \"multi\nline\";\nlet b = 1;";
        let toks = lex(src);
        let b_line = toks
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, Kind::Ident(s) if s == "b"))
            .map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }

    #[test]
    fn own_line_comments_are_flagged() {
        let src = "// top\nlet x = 1; // trailing\n";
        let toks = lex(src);
        assert!(toks.comments[0].own_line);
        assert!(!toks.comments[1].own_line);
    }

    #[test]
    fn nested_block_comments_track_depth() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n/* a /* b /* c */ */ */ let y = 2;";
        let toks = lex(src);
        assert_eq!(idents(src), vec!["let", "x", "let", "y"]);
        assert!(toks.comments[0].text.contains("inner"));
        assert!(toks.comments[0].text.contains("still comment"));
        // Nothing inside the nesting leaks out as code.
        assert!(!toks.tokens.iter().any(|t| matches!(&t.kind, Kind::Ident(s) if s == "b")));
    }

    #[test]
    fn unterminated_block_comment_keeps_its_full_text() {
        // The closing `*/` never arrives; the comment runs to EOF and the
        // last two characters are real text — a directive there must
        // survive (it used to be clipped).
        let src = "/* ixp-lint: allow(no-index) ok";
        let toks = lex(src);
        assert_eq!(toks.comments.len(), 1);
        assert!(toks.comments[0].text.ends_with("allow(no-index) ok"), "{:?}", toks.comments[0]);
        assert!(toks.tokens.is_empty());
    }

    #[test]
    fn raw_strings_with_hash_arities_and_embedded_quotes() {
        let src = "let a = r##\"says \"#hello\"# here\"##; let b = br#\"bytes \"x\" too\"#; let c = 1;";
        let toks = lex(src);
        assert_eq!(idents(src), vec!["let", "a", "let", "b", "let", "c"]);
        assert_eq!(toks.tokens.iter().filter(|t| t.kind == Kind::Str).count(), 2);
    }

    #[test]
    fn raw_string_newlines_count_lines() {
        let src = "let a = r#\"one\ntwo\nthree\"#;\nlet b = 1;";
        let toks = lex(src);
        let b_line = toks
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, Kind::Ident(s) if s == "b"))
            .map(|t| t.line);
        assert_eq!(b_line, Some(4));
    }

    #[test]
    fn trailing_backslash_at_eof_does_not_panic() {
        // Each used to drive the scan index past the buffer (an
        // out-of-bounds slice in the line resync).
        for src in ["let a = \"x\\", "let a = b\"x\\", "let c = '\\", "let c = b'\\"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn escaped_newline_in_string_counts_the_line() {
        let src = "let a = \"one\\\ntwo\";\nlet b = 1;";
        let toks = lex(src);
        let b_line = toks
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, Kind::Ident(s) if s == "b"))
            .map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }
}
