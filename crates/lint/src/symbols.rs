//! The workspace symbol table: function lookup across parsed files.
//!
//! Resolution is deliberately conservative in what it *claims to know*:
//! a call that cannot be pinned to a workspace function resolves to
//! nothing, which downstream passes treat as "outside the workspace,
//! assumed safe". Within the workspace, lookups are crate-scoped — two
//! crates can define `fn decode` without interfering — and ambiguous
//! method names resolve to every same-crate candidate (union semantics:
//! if any candidate can panic, callers inherit it).

use std::collections::HashMap;

use crate::parser::{CallSite, FnItem, ParsedFile};

/// Index of one function: `(file index, fn index)` into the parsed set.
pub type FnRef = (usize, usize);

/// Crate-scoped lookup tables over every parsed file.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// `(crate, name)` → free functions (no impl owner).
    free: HashMap<(String, String), Vec<FnRef>>,
    /// `(crate, owner, name)` → inherent/trait methods.
    methods: HashMap<(String, String, String), Vec<FnRef>>,
    /// `(crate, name)` → every owned method with that name (receiver-call
    /// fallback when the receiver type is unknown).
    by_name: HashMap<(String, String), Vec<FnRef>>,
    /// Crate names present in the workspace (`wire`, `sflow`, ...).
    crates: Vec<String>,
}

/// Method names so common on std types that resolving a `.name(...)`
/// receiver call to a same-named workspace method would be noise, not
/// signal. Path calls (`Type::name`) are unaffected.
const STD_METHOD_NAMES: &[&str] = &[
    "clone", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "default",
    "from", "into", "try_from", "try_into", "next", "len", "is_empty",
    "get", "get_mut", "iter", "iter_mut", "into_iter", "push", "pop",
    "insert", "remove", "contains", "contains_key", "entry", "extend",
    "to_string", "to_vec", "as_ref", "as_mut", "as_str", "as_slice",
    "as_bytes", "write_str", "clear", "sort", "sort_by", "sort_by_key",
    "first", "last", "split", "join", "take", "drain", "count", "min",
    "max", "sum", "map", "and_then", "unwrap_or", "unwrap_or_else",
    "unwrap_or_default", "ok_or", "ok_or_else", "filter", "collect",
    "source", "description",
];

impl SymbolTable {
    /// Build the table from every parsed file.
    pub fn build(files: &[ParsedFile]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (fi, file) in files.iter().enumerate() {
            if !table.crates.contains(&file.crate_name) {
                table.crates.push(file.crate_name.clone());
            }
            for (xi, f) in file.fns.iter().enumerate() {
                let key_crate = file.crate_name.clone();
                match &f.owner {
                    Some(owner) => {
                        table
                            .methods
                            .entry((key_crate.clone(), owner.clone(), f.name.clone()))
                            .or_default()
                            .push((fi, xi));
                        table
                            .by_name
                            .entry((key_crate, f.name.clone()))
                            .or_default()
                            .push((fi, xi));
                    }
                    None => {
                        table.free.entry((key_crate, f.name.clone())).or_default().push((fi, xi));
                    }
                }
            }
        }
        table
    }

    /// Resolve a call made inside `caller` (in `file`) to workspace
    /// functions. Empty when the callee lives outside the workspace.
    /// Method names on the std blocklist resolve to nothing.
    pub fn resolve(&self, call: &CallSite, file: &ParsedFile, caller: &FnItem) -> Vec<FnRef> {
        self.resolve_inner(call, file, caller, true)
    }

    /// Like [`SymbolTable::resolve`], but without the std-method-name
    /// filter. L8 reachability wants every same-crate candidate even for
    /// common names (`get`, `count`, ...) because false negatives there
    /// hide atomics read on snapshot paths; the extra fan-out only widens
    /// the set of functions inspected, never fabricates a finding.
    pub fn resolve_unfiltered(
        &self,
        call: &CallSite,
        file: &ParsedFile,
        caller: &FnItem,
    ) -> Vec<FnRef> {
        self.resolve_inner(call, file, caller, false)
    }

    fn resolve_inner(
        &self,
        call: &CallSite,
        file: &ParsedFile,
        caller: &FnItem,
        filter_std: bool,
    ) -> Vec<FnRef> {
        if call.is_method {
            let Some(name) = call.path.first() else { return Vec::new() };
            if filter_std && STD_METHOD_NAMES.contains(&name.as_str()) {
                return Vec::new();
            }
            return self
                .by_name
                .get(&(file.crate_name.clone(), name.clone()))
                .cloned()
                .unwrap_or_default();
        }

        // Expand a leading `use` alias into its full path.
        let mut segs: Vec<String> = call.path.clone();
        if let Some(first) = segs.first().cloned() {
            if let Some(import) = file.uses.iter().find(|u| u.alias == first) {
                let mut full = import.path.clone();
                full.extend(segs.drain(1..));
                segs = full;
            }
        }

        // Strip crate-qualifying prefixes and pick the target crate.
        let mut target_crate = file.crate_name.clone();
        while let Some(first) = segs.first().cloned() {
            match first.as_str() {
                "crate" | "self" | "super" => {
                    segs.remove(0);
                }
                "std" | "core" | "alloc" => return Vec::new(),
                _ => {
                    if let Some(c) = first.strip_prefix("ixp_") {
                        if self.crates.iter().any(|k| k == c) {
                            target_crate = c.to_string();
                            segs.remove(0);
                        }
                    }
                    break;
                }
            }
        }
        let Some(name) = segs.last().cloned() else { return Vec::new() };

        // `Type::assoc` / `Self::assoc`: try a method lookup first.
        if segs.len() >= 2 {
            if let Some(qual) = segs.get(segs.len() - 2) {
                let owner = if qual == "Self" {
                    caller.owner.clone()
                } else if qual.chars().next().is_some_and(char::is_uppercase) {
                    Some(qual.clone())
                } else {
                    None
                };
                if let Some(owner) = owner {
                    if let Some(found) =
                        self.methods.get(&(target_crate.clone(), owner, name.clone()))
                    {
                        return found.clone();
                    }
                    // An unknown type's associated fn (e.g. `Vec::new`)
                    // is outside the workspace.
                    return Vec::new();
                }
            }
        }

        // Module-path or bare free-function call.
        self.free.get(&(target_crate, name)).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn ws(files: &[(&str, &str)]) -> Vec<ParsedFile> {
        files.iter().map(|(p, s)| parse(p, &lex(s))).collect()
    }

    fn resolve_names(
        files: &[ParsedFile],
        table: &SymbolTable,
        file_idx: usize,
        fn_name: &str,
    ) -> Vec<String> {
        let file = &files[file_idx];
        let caller = file.fns.iter().find(|f| f.name == fn_name).unwrap();
        caller
            .calls
            .iter()
            .flat_map(|c| table.resolve(c, file, caller))
            .map(|(fi, xi)| files[fi].fns[xi].name.clone())
            .collect()
    }

    #[test]
    fn bare_calls_resolve_within_the_crate() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "fn helper() {}\npub fn go() { helper(); std::mem::drop(1); }",
        )]);
        let table = SymbolTable::build(&files);
        assert_eq!(resolve_names(&files, &table, 0, "go"), vec!["helper"]);
    }

    #[test]
    fn cross_crate_via_ixp_prefix_and_use() {
        let files = ws(&[
            ("crates/core/src/util.rs", "pub fn pick(b: &[u8]) -> u8 { b[7] }"),
            (
                "crates/wire/src/lib.rs",
                "use ixp_core::util::pick;\npub fn a(b: &[u8]) -> u8 { pick(b) }\npub fn c(b: &[u8]) -> u8 { ixp_core::util::pick(b) }",
            ),
        ]);
        let table = SymbolTable::build(&files);
        assert_eq!(resolve_names(&files, &table, 1, "a"), vec!["pick"]);
        assert_eq!(resolve_names(&files, &table, 1, "c"), vec!["pick"]);
    }

    #[test]
    fn self_and_type_methods_resolve() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "struct R;\nimpl R {\n  fn helper(&self) {}\n  pub fn go(&self) { Self::helper(self); R::helper(self); self.helper(); }\n}",
        )]);
        let table = SymbolTable::build(&files);
        assert_eq!(resolve_names(&files, &table, 0, "go"), vec!["helper"; 3]);
    }

    #[test]
    fn std_and_unknown_calls_resolve_to_nothing() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn go(v: &mut Vec<u8>) { v.push(1); Vec::with_capacity(4); std::mem::take(v); }",
        )]);
        let table = SymbolTable::build(&files);
        assert!(resolve_names(&files, &table, 0, "go").is_empty());
    }

    #[test]
    fn method_calls_stay_crate_scoped() {
        let files = ws(&[
            ("crates/a/src/lib.rs", "struct R;\nimpl R { pub fn decode(&self) {} }"),
            ("crates/b/src/lib.rs", "pub fn go(r: &X) { r.decode(); }"),
        ]);
        let table = SymbolTable::build(&files);
        // `decode` lives in crate a; the receiver call is in crate b.
        assert!(resolve_names(&files, &table, 1, "go").is_empty());
    }
}
