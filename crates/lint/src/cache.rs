//! Content-hash incremental lint cache (`target/lint-cache/`).
//!
//! Two layers, both keyed by FNV-1a-64 content digests so a stale entry
//! is structurally impossible — there is no mtime anywhere:
//!
//! * **fixpoint entry** — the final, post-suppression, sorted findings of
//!   a whole-workspace run, keyed by the *rule-registry digest* (every
//!   rule id/family/severity/summary plus the codec registry and the
//!   cache format const — any lint upgrade invalidates everything) and
//!   the *workspace digest* (every file path and content digest). A hit
//!   skips the entire analysis: this is the warm-CI path.
//! * **per-file entries** — the pure per-file findings (token rules +
//!   determinism) of one file, keyed by path, content digest, and the
//!   registry digest. When one file changes, the workspace digest misses
//!   but every other file's token findings load from here; the
//!   cross-file fixpoint passes (L4–L11) always recompute, because their
//!   inputs span files. That is the invalidation contract the cache
//!   tests pin: a one-byte edit costs exactly one per-file recompute
//!   plus the fixpoint passes.
//!
//! Entries are written atomically (temp file + rename), and any parse
//! failure or digest mismatch degrades to a miss — the cache can be
//! deleted at any time with no effect but wall-clock.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::codec_sym;
use crate::rules;
use crate::Finding;

/// Bump to invalidate every cache entry on a format change.
const CACHE_FORMAT: &str = "ixp-lint-cache/1";

/// What a cached scan can report about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Files whose per-file findings loaded from cache.
    pub file_hits: usize,
    /// Files analyzed from scratch.
    pub file_misses: usize,
    /// Whole-workspace result loaded; no analysis ran at all.
    pub fixpoint_hit: bool,
}

/// FNV-1a-64 (same constants as the checkpoint envelope's checksum).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of everything that defines the linter's behavior: the rule
/// registry, the codec registry (file/fn names, versions, pinned schema
/// digests), and the cache format itself.
pub fn registry_digest() -> u64 {
    let mut canon = String::from(CACHE_FORMAT);
    for r in rules::RULES {
        canon.push('|');
        canon.push_str(r.id);
        canon.push('/');
        canon.push_str(r.family);
        canon.push('/');
        canon.push_str(r.severity);
        canon.push('/');
        canon.push_str(r.summary);
    }
    for p in codec_sym::REGISTRY {
        canon.push('|');
        canon.push_str(p.file);
        canon.push(':');
        canon.push_str(p.writer.1);
        canon.push('/');
        canon.push_str(p.reader.1);
        canon.push(':');
        canon.push_str(p.version_ident.unwrap_or("-"));
        canon.push_str(&format!(":{:016x}", p.digest));
    }
    fnv64(canon.as_bytes())
}

/// Digest of the whole input set: every path with its content digest.
/// Files arrive sorted from the workspace walk, so this is stable.
pub fn workspace_digest(files: &[(String, String)], digests: &[u64]) -> u64 {
    let mut canon = String::new();
    for ((path, _), d) in files.iter().zip(digests) {
        canon.push_str(path);
        canon.push_str(&format!(":{d:016x}|"));
    }
    fnv64(canon.as_bytes())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\x1f', "\\t")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\x1f'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn render_findings(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}\x1f{}\x1f{}\x1f{}\x1f{}\n",
            escape(&f.file),
            f.line,
            f.col,
            f.rule,
            escape(&f.message)
        ));
    }
    out
}

/// Parse serialized findings; `None` on any malformed line (→ miss).
fn parse_findings(body: &str) -> Option<Vec<Finding>> {
    let mut out = Vec::new();
    for line in body.lines() {
        let mut parts = line.split('\x1f');
        let file = unescape(parts.next()?);
        let line_no: u32 = parts.next()?.parse().ok()?;
        let col: u32 = parts.next()?.parse().ok()?;
        let rule_name = parts.next()?;
        // Findings carry `&'static str` rules: map back into the registry.
        let rule = *rules::ALL_RULES.iter().find(|r| **r == rule_name)?;
        let message = unescape(parts.next()?);
        if parts.next().is_some() {
            return None;
        }
        out.push(Finding::at(&file, line_no, col, rule, &message));
    }
    Some(out)
}

/// Atomically write `content` at `dir/name`. Failures are swallowed —
/// a cache that cannot be written is a cache that misses next time.
fn write_entry(dir: &Path, name: &str, content: &str) {
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = dir.join(format!("{name}.tmp{}", std::process::id()));
    let write = fs::File::create(&tmp).and_then(|mut f| f.write_all(content.as_bytes()));
    if write.is_ok() {
        let _ = fs::rename(&tmp, dir.join(name));
    } else {
        let _ = fs::remove_file(&tmp);
    }
}

fn read_entry(dir: &Path, name: &str, expect_header: &str) -> Option<String> {
    let text = fs::read_to_string(dir.join(name)).ok()?;
    let (format_line, rest) = text.split_once('\n')?;
    if format_line != CACHE_FORMAT {
        return None;
    }
    let (header, body) = rest.split_once('\n')?;
    if header != expect_header {
        return None;
    }
    Some(body.to_string())
}

fn fixpoint_name() -> &'static str {
    "fixpoint.ck"
}

fn per_file_name(path: &str, digest: u64, registry: u64) -> String {
    format!("pf-{:016x}.ck", fnv64(format!("{path}:{digest:016x}:{registry:016x}").as_bytes()))
}

/// Load the whole-workspace result if registry and workspace match.
pub fn load_fixpoint(dir: &Path, registry: u64, workspace: u64) -> Option<Vec<Finding>> {
    let header = format!("{registry:016x} {workspace:016x}");
    parse_findings(&read_entry(dir, fixpoint_name(), &header)?)
}

/// Store the whole-workspace result.
pub fn store_fixpoint(dir: &Path, registry: u64, workspace: u64, findings: &[Finding]) {
    let content = format!(
        "{CACHE_FORMAT}\n{registry:016x} {workspace:016x}\n{}",
        render_findings(findings)
    );
    write_entry(dir, fixpoint_name(), &content);
}

/// Load one file's per-file findings if its content digest matches.
pub fn load_per_file(
    dir: &Path,
    path: &str,
    digest: u64,
    registry: u64,
) -> Option<Vec<Finding>> {
    let header = format!("{registry:016x} {digest:016x} {}", escape(path));
    parse_findings(&read_entry(dir, &per_file_name(path, digest, registry), &header)?)
}

/// Store one file's per-file findings.
pub fn store_per_file(
    dir: &Path,
    path: &str,
    digest: u64,
    registry: u64,
    findings: &[Finding],
) {
    let content = format!(
        "{CACHE_FORMAT}\n{registry:016x} {digest:016x} {}\n{}",
        escape(path),
        render_findings(findings)
    );
    write_entry(dir, &per_file_name(path, digest, registry), &content);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ixp-lint-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn findings_round_trip_with_escapes() {
        let findings = vec![
            Finding::at("a/b.rs", 3, 7, "no-unwrap", "line one\nline two \\ back"),
            Finding::at("a/π.rs", 1, 1, "error-sink", "plain"),
        ];
        let parsed = parse_findings(&render_findings(&findings)).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].message, "line one\nline two \\ back");
        assert_eq!(parsed[0].col, 7);
        assert_eq!(parsed[1].file, "a/π.rs");
    }

    #[test]
    fn unknown_rule_is_a_miss_not_a_panic() {
        assert!(parse_findings("f\x1f1\x1f1\x1fnot-a-rule\x1fm\n").is_none());
    }

    #[test]
    fn fixpoint_store_load_honors_both_digests() {
        let dir = tmp_dir("fx");
        let findings = vec![Finding::at("x.rs", 1, 2, "no-panic", "m")];
        store_fixpoint(&dir, 7, 9, &findings);
        assert_eq!(load_fixpoint(&dir, 7, 9).as_deref(), Some(&findings[..]));
        assert!(load_fixpoint(&dir, 7, 10).is_none());
        assert!(load_fixpoint(&dir, 8, 9).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_file_store_load_honors_digest_and_path() {
        let dir = tmp_dir("pf");
        let findings = vec![Finding::at("a.rs", 2, 4, "no-index", "m")];
        store_per_file(&dir, "a.rs", 11, 5, &findings);
        assert_eq!(load_per_file(&dir, "a.rs", 11, 5).as_deref(), Some(&findings[..]));
        assert!(load_per_file(&dir, "a.rs", 12, 5).is_none());
        assert!(load_per_file(&dir, "b.rs", 11, 5).is_none());
        assert!(load_per_file(&dir, "a.rs", 11, 6).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_digest_is_stable_within_a_build() {
        assert_eq!(registry_digest(), registry_digest());
        assert_ne!(registry_digest(), 0);
    }
}
