//! L5 — panic reachability over the workspace call graph.
//!
//! Builds the intra-workspace call graph from the parsed files and
//! computes the transitive can-panic set by fixpoint. Every unrestricted
//! `pub fn` in the stream-facing crates (`ixp-wire`, `ixp-sflow`,
//! `ixp-faults`) must be transitively panic-free: a panic *anywhere* in
//! its workspace call chain — including helpers in other crates — is a
//! `panic-path` finding, reported at the `pub fn` with the offending
//! chain spelled out.
//!
//! Division of labour with L1: a panic construct written directly inside
//! an in-scope function is already reported (and suppressed) token-wise
//! by the L1 rules, so L5 re-reports a function only when the panic is
//! *reachable through a call* or comes from the assert family, which L1
//! does not cover. A site suppressed by its L1 allow directive is
//! "vouched": the author asserts it cannot fire, so it does not
//! propagate through the graph either.

use std::collections::HashMap;

use crate::parser::ParsedFile;
use crate::symbols::{FnRef, SymbolTable};
use crate::{FileAllows, Finding};

/// Why a function can panic: a vouched-free local site, or a call into a
/// function that can.
#[derive(Debug, Clone, Copy)]
enum Witness {
    /// Index into the function's own panic-site list.
    Local(usize),
    /// The panicking callee and the call's source line.
    Call(FnRef, u32),
}

/// Maximum chain length spelled out in a finding message.
const TRACE_CAP: usize = 6;

/// Run the pass: push `panic-path` findings for in-scope public functions
/// that are not transitively panic-free.
pub(crate) fn check(
    files: &[ParsedFile],
    table: &SymbolTable,
    allows: &HashMap<String, FileAllows>,
    out: &mut Vec<Finding>,
) {
    // Unvouched local panic sites and resolved call edges, per function.
    let mut local: HashMap<FnRef, Vec<usize>> = HashMap::new();
    let mut edges: HashMap<FnRef, Vec<(FnRef, u32)>> = HashMap::new();
    let mut witness: HashMap<FnRef, Witness> = HashMap::new();

    for (fi, file) in files.iter().enumerate() {
        let fa = allows.get(&file.path);
        for (xi, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let id: FnRef = (fi, xi);
            let mut sites = Vec::new();
            for (si, site) in f.panics.iter().enumerate() {
                let vouched = fa.is_some_and(|fa| {
                    fa.suppresses(site.vouch_rule, site.line)
                        || fa.suppresses("panic-path", site.line)
                });
                if !vouched {
                    sites.push(si);
                }
            }
            if let Some(&si) = sites.first() {
                witness.insert(id, Witness::Local(si));
            }
            local.insert(id, sites);
            let mut callees = Vec::new();
            for call in &f.calls {
                for tgt in table.resolve(call, file, f) {
                    // Calls into test-only code cannot happen at runtime.
                    let callee_is_test = files
                        .get(tgt.0)
                        .and_then(|fl| fl.fns.get(tgt.1))
                        .is_some_and(|g| g.in_test);
                    if tgt != id && !callee_is_test {
                        callees.push((tgt, call.line));
                    }
                }
            }
            edges.insert(id, callees);
        }
    }

    // Fixpoint: a caller of a can-panic function can panic.
    loop {
        let mut changed = false;
        for (&id, callees) in &edges {
            if witness.contains_key(&id) {
                continue;
            }
            if let Some(&(tgt, line)) = callees.iter().find(|(t, _)| witness.contains_key(t)) {
                witness.insert(id, Witness::Call(tgt, line));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (fi, file) in files.iter().enumerate() {
        if !crate::rules::l1_applies(&file.path) {
            continue;
        }
        for (xi, f) in file.fns.iter().enumerate() {
            if !f.is_pub || f.in_test {
                continue;
            }
            let id: FnRef = (fi, xi);
            let Some(&w) = witness.get(&id) else { continue };
            // Purely local L1-covered panics are L1's findings, not L5's.
            let has_assert_family = local
                .get(&id)
                .is_some_and(|sites| sites.iter().any(|&si| !f.panics[si].l1_covered));
            let has_panicking_callee = edges
                .get(&id)
                .is_some_and(|cs| cs.iter().any(|(t, _)| witness.contains_key(t)));
            if !has_assert_family && !has_panicking_callee {
                continue;
            }
            // Prefer the call chain in the message: it is the part L1
            // cannot see. Fall back to the local assert-family site.
            let start = if has_panicking_callee {
                edges
                    .get(&id)
                    .and_then(|cs| cs.iter().find(|(t, _)| witness.contains_key(t)))
                    .map(|&(t, line)| Witness::Call(t, line))
                    .unwrap_or(w)
            } else {
                w
            };
            let trace = render_trace(files, &witness, id, start);
            out.push(Finding::at(
                &file.path,
                f.line,
                f.col,
                "panic-path",
                &format!("pub fn `{}` is not transitively panic-free: {trace}", f.name),
            ));
        }
    }
}

/// Spell out the panic chain starting from `start` inside function `id`.
fn render_trace(
    files: &[ParsedFile],
    witness: &HashMap<FnRef, Witness>,
    id: FnRef,
    start: Witness,
) -> String {
    let mut msg = String::new();
    let mut cur_fn = id;
    let mut cur = start;
    let mut visited: Vec<FnRef> = vec![id];
    for hop in 0..TRACE_CAP {
        match cur {
            Witness::Local(si) => {
                let site = files
                    .get(cur_fn.0)
                    .and_then(|f| f.fns.get(cur_fn.1))
                    .and_then(|f| f.panics.get(si));
                let (what, line) = site.map(|s| (s.what, s.line)).unwrap_or(("a panic", 0));
                let file = files.get(cur_fn.0).map(|f| f.path.as_str()).unwrap_or("?");
                if hop == 0 {
                    msg.push_str(&format!("{what} at line {line}"));
                } else {
                    msg.push_str(&format!(", which does {what} ({file}:{line})"));
                }
                return msg;
            }
            Witness::Call(tgt, line) => {
                let callee =
                    files.get(tgt.0).and_then(|f| f.fns.get(tgt.1)).map(|f| f.name.as_str());
                let file = files.get(cur_fn.0).map(|f| f.path.as_str()).unwrap_or("?");
                let verb = if hop == 0 { "calls" } else { ", which calls" };
                msg.push_str(&format!("{verb} `{}` ({file}:{line})", callee.unwrap_or("?")));
                if visited.contains(&tgt) {
                    msg.push_str(" (recursive)");
                    return msg;
                }
                visited.push(tgt);
                cur_fn = tgt;
                match witness.get(&tgt) {
                    Some(&w) => cur = w,
                    None => return msg,
                }
            }
        }
    }
    msg.push_str(", ...");
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse(p, &lex(s))).collect();
        let table = SymbolTable::build(&parsed);
        let mut allows = HashMap::new();
        let mut dir_findings = Vec::new();
        for (p, s) in files {
            let lexed = lex(s);
            allows.insert(
                p.to_string(),
                crate::parse_directives(p, &lexed, &mut dir_findings),
            );
        }
        let mut out = Vec::new();
        check(&parsed, &table, &allows, &mut out);
        out
    }

    #[test]
    fn transitive_panic_through_another_crate_is_reported() {
        let got = run(&[
            ("crates/core/src/util.rs", "pub fn pick(b: &[u8]) -> u8 { b[7] }"),
            (
                "crates/wire/src/lib.rs",
                "use ixp_core::util::pick;\npub fn first(b: &[u8]) -> u8 { pick(b) }",
            ),
        ]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "panic-path");
        assert_eq!(got[0].file, "crates/wire/src/lib.rs");
        assert!(got[0].message.contains("calls `pick`"), "{}", got[0].message);
        assert!(got[0].message.contains("indexing"), "{}", got[0].message);
    }

    #[test]
    fn local_l1_covered_panics_are_left_to_l1() {
        let got = run(&[(
            "crates/wire/src/lib.rs",
            "pub fn bad(o: Option<u8>) -> u8 { o.unwrap() }",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn local_assert_family_is_reported() {
        let got = run(&[(
            "crates/sflow/src/lib.rs",
            "pub fn f(n: usize) { assert!(n > 0); }",
        )]);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("`assert!`"), "{}", got[0].message);
    }

    #[test]
    fn vouched_sites_do_not_propagate() {
        let got = run(&[
            (
                "crates/wire/src/acc.rs",
                "pub fn field(b: &[u8]) -> u8 {\n    b[0] // ixp-lint: allow(no-index) caller validated length\n}",
            ),
            ("crates/wire/src/lib.rs", "pub fn go(b: &[u8]) -> u8 { field(b) }"),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn private_and_out_of_scope_fns_are_not_reported() {
        let got = run(&[
            ("crates/core/src/lib.rs", "pub fn risky(b: &[u8]) -> u8 { b[0] }"),
            ("crates/wire/src/lib.rs", "fn private(b: &[u8]) -> u8 { helper(b) }\nfn helper(b: &[u8]) -> u8 { b[1] }"),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn recursion_terminates_and_reports() {
        let got = run(&[(
            "crates/wire/src/lib.rs",
            "pub fn a(n: usize) { if n > 0 { b(n) } }\nfn b(n: usize) { assert!(n < 10); a(n - 1); }",
        )]);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("calls `b`"), "{}", got[0].message);
    }
}
