//! The `ixp-lint` command-line entry point.
//!
//! ```text
//! cargo run -p ixp-lint                      # lint the workspace
//! cargo run -p ixp-lint -- --format json     # machine-readable report
//! cargo run -p ixp-lint -- --explain no-index
//! cargo run -p ixp-lint -- --update-baseline # rewrite lint-baseline.toml
//! cargo run -p ixp-lint -- --root <dir>      # lint another checkout
//! ```
//!
//! Exit codes: 0 clean, 1 violations above baseline, 2 usage/I-O error.
//! `--format json` keeps the same exit codes and writes the report
//! documented in `crates/lint/src/json.rs` to stdout.

use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.toml";

fn usage() -> &'static str {
    "usage: ixp-lint [--root <dir>] [--format text|json] [--update-baseline]\n\
     \x20      ixp-lint --explain <rule>\n\
     \n\
     Lints every workspace .rs file against the project rules, families\n\
     L1-L8 (see crates/lint/src/rules.rs). Violations are tolerated only\n\
     up to the counts recorded in lint-baseline.toml; --update-baseline\n\
     rewrites that file from the current tree. --format json emits the\n\
     schema documented in crates/lint/src/json.rs; --explain prints the\n\
     rationale for one rule or family alias (l1..l8)."
}

enum Format {
    Text,
    Json,
}

struct Args {
    root: Option<PathBuf>,
    update_baseline: bool,
    format: Format,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: None, update_baseline: false, format: Format::Text, explain: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--update-baseline" => args.update_baseline = true,
            "--format" => {
                let v = it.next().ok_or("--format requires `text` or `json`")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--explain" => {
                let v = it.next().ok_or("--explain requires a rule name")?;
                args.explain = Some(v);
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Print the registry entry for a rule id or family alias.
fn explain(name: &str) -> Result<(), String> {
    let rules = ixp_lint::rules::resolve_rule(name)
        .ok_or_else(|| format!("unknown rule or family `{name}`"))?;
    for (i, id) in rules.iter().enumerate() {
        // Every id in ALL_RULES has a registry entry; enforced by a test.
        let Some(info) = ixp_lint::rules::rule_info(id) else { continue };
        if i > 0 {
            println!();
        }
        println!("{} [{} / {}]", info.id, info.family, info.severity);
        println!("  {}", info.summary);
        println!();
        for line in textwrap(info.explain, 76) {
            println!("  {line}");
        }
    }
    Ok(())
}

/// Minimal greedy word wrap for --explain output.
fn textwrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cur = String::new();
    for word in text.split_whitespace() {
        if !cur.is_empty() && cur.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut cur));
        }
        if !cur.is_empty() {
            cur.push(' ');
        }
        cur.push_str(word);
    }
    if !cur.is_empty() {
        lines.push(cur);
    }
    lines
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;

    if let Some(name) = &args.explain {
        explain(name)?;
        return Ok(true);
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            ixp_lint::find_workspace_root(&cwd)
                .ok_or("no workspace Cargo.toml found above the current directory")?
        }
    };

    let findings = ixp_lint::scan_workspace(&root)
        .map_err(|e| format!("scanning {}: {e}", root.display()))?;

    let baseline_path = root.join(BASELINE_FILE);
    if args.update_baseline {
        let text = ixp_lint::baseline::render(&findings);
        std::fs::write(&baseline_path, text)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        let pairs = {
            let mut keys: Vec<_> = findings.iter().map(|f| (&f.file, f.rule)).collect();
            keys.sort();
            keys.dedup();
            keys.len()
        };
        println!(
            "ixp-lint: baseline updated: {} violation(s) across {} (file, rule) pair(s)",
            findings.len(),
            pairs
        );
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => ixp_lint::baseline::parse(&text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };

    let (kept, notes) = ixp_lint::baseline::apply(findings, &baseline);
    match args.format {
        Format::Json => {
            println!("{}", ixp_lint::json::report(&kept, &notes));
        }
        Format::Text => {
            for note in &notes {
                eprintln!("ixp-lint: note: {note}");
            }
            for f in &kept {
                println!("{}", f.render());
            }
        }
    }
    if kept.is_empty() {
        Ok(true)
    } else {
        if matches!(args.format, Format::Text) {
            eprintln!("ixp-lint: {} violation(s)", kept.len());
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::from(0),
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                ExitCode::from(0)
            } else {
                eprintln!("ixp-lint: error: {msg}");
                eprintln!("{}", usage());
                ExitCode::from(2)
            }
        }
    }
}
