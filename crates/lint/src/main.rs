//! The `ixp-lint` command-line entry point.
//!
//! ```text
//! cargo run -p ixp-lint                      # lint the workspace
//! cargo run -p ixp-lint -- --format json     # machine-readable report
//! cargo run -p ixp-lint -- --explain no-index
//! cargo run -p ixp-lint -- --only error-sink # report one rule/family
//! cargo run -p ixp-lint -- --changed         # report only edited files
//! cargo run -p ixp-lint -- --update-baseline # rewrite lint-baseline.toml
//! cargo run -p ixp-lint -- --root <dir>      # lint another checkout
//! ```
//!
//! Exit codes: 0 clean, 1 violations above baseline, 2 usage/I-O error.
//! `--format json` keeps the same exit codes and writes the report
//! documented in `crates/lint/src/json.rs` to stdout.
//!
//! Scans are cached under `target/lint-cache/` keyed by file content
//! digests (see `crates/lint/src/cache.rs`); an unchanged workspace
//! re-lints from the cache without re-running any analysis. `--no-cache`
//! forces a full run. `--only` and `--changed` filter the *report*, not
//! the analysis — cross-file passes always see the whole workspace, so
//! the filtered output is exactly the matching subset of the full run.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.toml";

fn usage() -> &'static str {
    "usage: ixp-lint [--root <dir>] [--format text|json] [--update-baseline]\n\
     \x20             [--only <rule>] [--changed] [--no-cache]\n\
     \x20      ixp-lint --explain <rule>\n\
     \n\
     Lints every workspace .rs file against the project rules, families\n\
     L1-L11 (see crates/lint/src/rules.rs). Violations are tolerated only\n\
     up to the counts recorded in lint-baseline.toml; --update-baseline\n\
     rewrites that file from the current tree. --format json emits the\n\
     schema documented in crates/lint/src/json.rs; --explain prints the\n\
     rationale for one rule or family alias (l1..l11). --only restricts\n\
     the report to one rule or family; --changed restricts it to files\n\
     with uncommitted git changes; --no-cache bypasses the content-hash\n\
     cache in target/lint-cache/."
}

enum Format {
    Text,
    Json,
}

struct Args {
    root: Option<PathBuf>,
    update_baseline: bool,
    format: Format,
    explain: Option<String>,
    only: Option<String>,
    changed: bool,
    no_cache: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        update_baseline: false,
        format: Format::Text,
        explain: None,
        only: None,
        changed: false,
        no_cache: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--update-baseline" => args.update_baseline = true,
            "--format" => {
                let v = it.next().ok_or("--format requires `text` or `json`")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--explain" => {
                let v = it.next().ok_or("--explain requires a rule name")?;
                args.explain = Some(v);
            }
            "--only" => {
                let v = it.next().ok_or("--only requires a rule or family name")?;
                args.only = Some(v);
            }
            "--changed" => args.changed = true,
            "--no-cache" => args.no_cache = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.update_baseline && (args.only.is_some() || args.changed) {
        return Err("--update-baseline cannot be combined with --only/--changed \
                    (the baseline must describe the whole tree)"
            .to_string());
    }
    Ok(args)
}

/// Workspace-relative paths with uncommitted git changes (modified
/// tracked files plus untracked files), forward-slashed to match the
/// scanner's path form.
fn changed_files(root: &std::path::Path) -> Result<HashSet<String>, String> {
    let mut out = HashSet::new();
    for git_args in [
        &["diff", "--name-only", "HEAD"][..],
        &["ls-files", "--others", "--exclude-standard"][..],
    ] {
        let run = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(git_args)
            .output()
            .map_err(|e| format!("running git: {e}"))?;
        if !run.status.success() {
            return Err(format!(
                "git {} failed: {}",
                git_args.join(" "),
                String::from_utf8_lossy(&run.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&run.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.replace('\\', "/"));
            }
        }
    }
    Ok(out)
}

/// Where the content-hash cache for a scan of `root` lives: under *this*
/// workspace's `target/`, keyed by the scanned root so `--root` runs
/// against fixture trees never write inside them (and never collide).
fn cache_dir_for(root: &std::path::Path) -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    let home = ixp_lint::find_workspace_root(&cwd)?;
    let canon = root.canonicalize().unwrap_or_else(|_| root.to_path_buf());
    let key = ixp_lint::cache::fnv64(canon.to_string_lossy().as_bytes());
    Some(home.join("target").join("lint-cache").join(format!("{key:016x}")))
}

/// Print the registry entry for a rule id or family alias.
fn explain(name: &str) -> Result<(), String> {
    let rules = ixp_lint::rules::resolve_rule(name)
        .ok_or_else(|| format!("unknown rule or family `{name}`"))?;
    for (i, id) in rules.iter().enumerate() {
        // Every id in ALL_RULES has a registry entry; enforced by a test.
        let Some(info) = ixp_lint::rules::rule_info(id) else { continue };
        if i > 0 {
            println!();
        }
        println!("{} [{} / {}]", info.id, info.family, info.severity);
        println!("  {}", info.summary);
        println!();
        for line in textwrap(info.explain, 76) {
            println!("  {line}");
        }
    }
    Ok(())
}

/// Minimal greedy word wrap for --explain output.
fn textwrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cur = String::new();
    for word in text.split_whitespace() {
        if !cur.is_empty() && cur.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut cur));
        }
        if !cur.is_empty() {
            cur.push(' ');
        }
        cur.push_str(word);
    }
    if !cur.is_empty() {
        lines.push(cur);
    }
    lines
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;

    if let Some(name) = &args.explain {
        explain(name)?;
        return Ok(true);
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            ixp_lint::find_workspace_root(&cwd)
                .ok_or("no workspace Cargo.toml found above the current directory")?
        }
    };

    // Resolve filters before the scan so a bad rule name fails fast.
    let only_rules: Option<Vec<&'static str>> = match &args.only {
        Some(name) => Some(
            ixp_lint::rules::resolve_rule(name)
                .ok_or_else(|| format!("unknown rule or family `{name}` in --only"))?,
        ),
        None => None,
    };
    let changed = if args.changed { Some(changed_files(&root)?) } else { None };

    let cache_dir = if args.no_cache { None } else { cache_dir_for(&root) };
    let findings = match &cache_dir {
        Some(dir) => ixp_lint::scan_workspace_cached(&root, dir)
            .map_err(|e| format!("scanning {}: {e}", root.display()))?
            .0,
        None => ixp_lint::scan_workspace(&root)
            .map_err(|e| format!("scanning {}: {e}", root.display()))?,
    };

    let baseline_path = root.join(BASELINE_FILE);
    if args.update_baseline {
        let text = ixp_lint::baseline::render(&findings);
        std::fs::write(&baseline_path, text)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        let pairs = {
            let mut keys: Vec<_> = findings.iter().map(|f| (&f.file, f.rule)).collect();
            keys.sort();
            keys.dedup();
            keys.len()
        };
        println!(
            "ixp-lint: baseline updated: {} violation(s) across {} (file, rule) pair(s)",
            findings.len(),
            pairs
        );
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => ixp_lint::baseline::parse(&text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };

    let (mut kept, notes) = ixp_lint::baseline::apply(findings, &baseline);
    // Report filters: the analysis above always covered the whole tree.
    if let Some(rules) = &only_rules {
        kept.retain(|f| rules.contains(&f.rule));
    }
    if let Some(files) = &changed {
        kept.retain(|f| files.contains(&f.file));
    }
    match args.format {
        Format::Json => {
            println!("{}", ixp_lint::json::report(&kept, &notes));
        }
        Format::Text => {
            for note in &notes {
                eprintln!("ixp-lint: note: {note}");
            }
            for f in &kept {
                println!("{}", f.render());
            }
        }
    }
    if kept.is_empty() {
        Ok(true)
    } else {
        if matches!(args.format, Format::Text) {
            eprintln!("ixp-lint: {} violation(s)", kept.len());
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::from(0),
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                ExitCode::from(0)
            } else {
                eprintln!("ixp-lint: error: {msg}");
                eprintln!("{}", usage());
                ExitCode::from(2)
            }
        }
    }
}
