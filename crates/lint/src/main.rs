//! The `ixp-lint` command-line entry point.
//!
//! ```text
//! cargo run -p ixp-lint                      # lint the workspace
//! cargo run -p ixp-lint -- --update-baseline # rewrite lint-baseline.toml
//! cargo run -p ixp-lint -- --root <dir>      # lint another checkout
//! ```
//!
//! Exit codes: 0 clean, 1 violations above baseline, 2 usage/I-O error.

use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.toml";

fn usage() -> &'static str {
    "usage: ixp-lint [--root <dir>] [--update-baseline]\n\
     \n\
     Lints every workspace .rs file against the project rules (see\n\
     crates/lint/src/rules.rs). Violations are tolerated only up to the\n\
     counts recorded in lint-baseline.toml; --update-baseline rewrites\n\
     that file from the current tree."
}

struct Args {
    root: Option<PathBuf>,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: None, update_baseline: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--update-baseline" => args.update_baseline = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            ixp_lint::find_workspace_root(&cwd)
                .ok_or("no workspace Cargo.toml found above the current directory")?
        }
    };

    let findings = ixp_lint::scan_workspace(&root)
        .map_err(|e| format!("scanning {}: {e}", root.display()))?;

    let baseline_path = root.join(BASELINE_FILE);
    if args.update_baseline {
        let text = ixp_lint::baseline::render(&findings);
        std::fs::write(&baseline_path, text)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        let pairs = {
            let mut keys: Vec<_> = findings.iter().map(|f| (&f.file, f.rule)).collect();
            keys.sort();
            keys.dedup();
            keys.len()
        };
        println!(
            "ixp-lint: baseline updated: {} violation(s) across {} (file, rule) pair(s)",
            findings.len(),
            pairs
        );
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => ixp_lint::baseline::parse(&text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };

    let (kept, notes) = ixp_lint::baseline::apply(findings, &baseline);
    for note in &notes {
        eprintln!("ixp-lint: note: {note}");
    }
    for f in &kept {
        println!("{}", f.render());
    }
    if kept.is_empty() {
        Ok(true)
    } else {
        eprintln!("ixp-lint: {} violation(s)", kept.len());
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::from(0),
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                ExitCode::from(0)
            } else {
                eprintln!("ixp-lint: error: {msg}");
                eprintln!("{}", usage());
                ExitCode::from(2)
            }
        }
    }
}
