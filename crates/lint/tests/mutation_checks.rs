//! Acceptance mutations for the L9/L10 analyses: patch a copy of the
//! *live* sources in memory and prove the lint catches the regression.
//! The checked-out tree is never modified — each test lints a patched
//! string through `scan_sources`, so these are real end-to-end runs over
//! the real collector/ring code, minus one invariant.

use std::fs;
use std::path::PathBuf;

const RING: &str = "crates/supervisor/src/ring.rs";
const COLLECTOR: &str = "crates/sflow/src/collector.rs";

fn live(path: &str) -> String {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    fs::read_to_string(root.join(path)).expect("live source")
}

/// Scan the given (path, source) set and keep only the L9-L11 rules.
fn scan(files: Vec<(&str, String)>) -> Vec<(String, u32, String)> {
    const NEW_RULES: [&str; 4] =
        ["unaccounted-drop", "codec-asymmetry", "schema-drift", "error-sink"];
    ixp_lint::scan_sources(files.into_iter().map(|(p, s)| (p.to_string(), s)))
        .into_iter()
        .filter(|f| NEW_RULES.contains(&f.rule))
        .map(|f| (f.rule.to_string(), f.line, f.message))
        .collect()
}

#[test]
fn unmutated_live_sources_are_clean() {
    let hits = scan(vec![(RING, live(RING)), (COLLECTOR, live(COLLECTOR))]);
    assert!(hits.is_empty(), "control must be clean: {hits:?}");
}

#[test]
fn deleting_the_shed_increment_fails_conservation() {
    let orig = live(RING);
    let src = orig.replacen(
        "self.shed += 1;\n            return false;",
        "return false;",
        1,
    );
    assert_ne!(src, orig, "patch must apply");
    let hits = scan(vec![(RING, src)]);
    assert!(
        hits.iter().any(|h| h.0 == "unaccounted-drop"),
        "dropping the shed count must fail L9: {hits:?}"
    );
}

#[test]
fn uncounted_early_return_in_ingest_fails_conservation() {
    let orig = live(COLLECTOR);
    let src = orig.replacen(
        "self.datagrams += 1;",
        "if bytes.is_empty() {\n            return Ingest::Rejected(DecodeError::Truncated);\n        }\n        self.datagrams += 1;",
        1,
    );
    assert_ne!(src, orig, "patch must apply");
    let hits = scan(vec![(COLLECTOR, src)]);
    assert!(
        hits.iter().any(|h| h.0 == "unaccounted-drop"),
        "an uncounted early return must fail L9: {hits:?}"
    );
}

#[test]
fn reordering_checkpoint_fields_without_version_bump_fails_drift() {
    let orig = live(COLLECTOR);
    let src = orig.replacen(
        "checkpoint::put_u64(&mut out, self.seq_opened);\n        checkpoint::put_u64(&mut out, self.seq_recovered);",
        "checkpoint::put_u64(&mut out, self.seq_recovered);\n        checkpoint::put_u64(&mut out, self.seq_opened);",
        1,
    );
    assert_ne!(src, orig, "patch must apply");
    let hits = scan(vec![(COLLECTOR, src)]);
    assert!(
        hits.iter().any(|h| h.0 == "schema-drift"),
        "a field reorder must fail the digest ratchet: {hits:?}"
    );
    // The width sequence is unchanged, so symmetry itself still holds.
    assert!(
        !hits.iter().any(|h| h.0 == "codec-asymmetry"),
        "reorder of same-width fields is drift, not asymmetry: {hits:?}"
    );
}

#[test]
fn dropping_a_checkpoint_field_fails_symmetry() {
    let orig = live(COLLECTOR);
    let src = orig.replacen(
        "        checkpoint::put_u64(&mut out, self.latency_samples);\n",
        "",
        1,
    );
    assert_ne!(src, orig, "patch must apply");
    let hits = scan(vec![(COLLECTOR, src)]);
    assert!(
        hits.iter().any(|h| h.0 == "codec-asymmetry"),
        "a dropped writer field must desynchronize the reader walk: {hits:?}"
    );
}
