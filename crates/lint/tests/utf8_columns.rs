//! Regression: reported columns are 1-based *character* columns, not
//! byte offsets. A multi-byte identifier earlier on the line must not
//! shift the span of a later violation.

#[test]
fn columns_count_chars_not_bytes_on_multibyte_lines() {
    let line = "    let π_total = v.unwrap();";
    let src = format!("pub fn f(v: Option<u8>) -> u8 {{\n{line}\n    π_total\n}}\n");
    let byte_off = line.find("unwrap").unwrap();
    let byte_col = byte_off + 1;
    let char_col = line[..byte_off].chars().count() + 1;
    assert_ne!(byte_col, char_col, "the fixture line must contain multi-byte chars");

    let findings =
        ixp_lint::scan_sources(vec![("crates/wire/src/x.rs".to_string(), src)]);
    let f = findings.iter().find(|f| f.rule == "no-unwrap").expect("no-unwrap fires");
    assert_eq!(f.line, 2);
    assert_eq!(f.col as usize, char_col, "column must be the char column");

    // The JSON report carries the same char column.
    let report = ixp_lint::json::report(&findings, &[]);
    assert!(
        report.contains(&format!("\"column\": {char_col}")),
        "report was: {report}"
    );
    assert!(!report.contains(&format!("\"column\": {byte_col}")), "byte column leaked");
}
