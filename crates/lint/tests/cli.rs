//! Exit-code and output tests for the `ixp-lint` binary, run against the
//! committed fixture trees and a temporary tree for the baseline ratchet.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ixp-lint"))
        .args(args)
        .output()
        .expect("spawn ixp-lint")
}

fn run_on(root: &Path) -> Output {
    run_lint(&["--root", root.to_str().unwrap()])
}

#[test]
fn violations_tree_exits_one_with_findings_on_stdout() {
    let out = run_on(&fixture("violations"));
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("crates/wire/src/bad.rs:2: no-unwrap: "),
        "stdout was: {stdout}"
    );
    assert!(stdout.contains("crates/wire/src/bad.rs:10: no-index: "));
    assert!(stdout.contains("crates/badcrate/src/lib.rs:1: error-impl: "));
    // One violation per new semantic rule family as well.
    assert!(stdout.contains("crates/wire/src/l5.rs:6: panic-path: "));
    assert!(stdout.contains("crates/sflow/src/taint.rs:5: tainted-capacity: "));
    assert!(stdout.contains("crates/faults/src/clock.rs:4: ambient-time: "));
    assert!(stdout.contains("crates/core/src/timing.rs:3: obs-clock-boundary: "));
    // And the L8 concurrency family.
    assert!(stdout.contains("crates/alpha/src/lib.rs:11: lock-order-cycle: "));
    assert!(stdout.contains("crates/gamma/src/lib.rs:24: guard-across-blocking: "));
    assert!(stdout.contains("crates/gamma/src/lib.rs:16: shared-state-escape: "));
    assert!(stdout.contains("crates/gamma/src/lib.rs:30: atomic-ordering: "));
    assert!(stdout.contains("crates/gamma/src/lib.rs:47: order-dependent-merge: "));
    let stderr = String::from_utf8(out.stderr).unwrap();
    // And the L9-L11 invariant families.
    assert!(stdout.contains("crates/supervisor/src/intake.rs:14: unaccounted-drop: "));
    assert!(stdout.contains("crates/supervisor/src/codec_pair.rs:16: codec-asymmetry: "));
    assert!(stdout.contains("crates/core/src/codec_noreg.rs:5: schema-drift: "));
    assert!(stdout.contains("crates/sflow/src/sink.rs:13: error-sink: "));
    // The transport crate carries the same invariant families.
    assert!(stdout.contains("crates/transport/src/bad.rs:4: no-index: "));
    assert!(stdout.contains("crates/transport/src/l5.rs:6: panic-path: "));
    assert!(stdout.contains("crates/transport/src/shed.rs:14: unaccounted-drop: "));
    assert!(stdout.contains("crates/transport/src/sink.rs:13: error-sink: "));
    assert!(stdout.contains("crates/transport/src/taint.rs:5: tainted-capacity: "));
    // So does the exposition server.
    assert!(stdout.contains("crates/obsd/src/bad.rs:4: no-expect: "));
    assert!(stderr.contains("38 violation(s)"), "stderr was: {stderr}");
}

#[test]
fn json_format_emits_the_documented_schema() {
    let out = run_lint(&["--root", fixture("violations").to_str().unwrap(), "--format", "json"]);
    // Same exit code as the text format.
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let v = ixp_lint::json::parse(&stdout).expect("report must be valid JSON");
    assert_eq!(v.get("version").and_then(|s| s.as_u64()), Some(3));
    let rules = v.get("rules").and_then(|r| r.as_arr()).expect("rules array");
    for id in ixp_lint::rules::L8_RULES
        .iter()
        .chain(ixp_lint::rules::L9_RULES)
        .chain(ixp_lint::rules::L10_RULES)
        .chain(ixp_lint::rules::L11_RULES)
    {
        assert!(
            rules.iter().any(|r| r.get("id").and_then(|i| i.as_str()) == Some(*id)),
            "rule {id} missing from the schema's rules array"
        );
    }
    let findings = v.get("findings").and_then(|f| f.as_arr()).expect("findings array");
    assert_eq!(v.get("summary").and_then(|s| s.get("total")).and_then(|t| t.as_u64()), Some(38));
    let cycle = findings
        .iter()
        .find(|f| f.get("rule").and_then(|r| r.as_str()) == Some("lock-order-cycle"))
        .expect("lock-order-cycle finding present");
    assert_eq!(cycle.get("family").and_then(|f| f.as_str()), Some("L8"));
    let unwrap_finding = findings
        .iter()
        .find(|f| f.get("rule").and_then(|r| r.as_str()) == Some("no-unwrap"))
        .expect("no-unwrap finding present");
    assert_eq!(
        unwrap_finding.get("file").and_then(|f| f.as_str()),
        Some("crates/wire/src/bad.rs")
    );
    assert_eq!(unwrap_finding.get("line").and_then(|l| l.as_u64()), Some(2));
    assert_eq!(unwrap_finding.get("family").and_then(|f| f.as_str()), Some("L1"));
    assert_eq!(unwrap_finding.get("severity").and_then(|s| s.as_str()), Some("error"));
    assert!(unwrap_finding.get("column").and_then(|c| c.as_u64()).is_some());
}

#[test]
fn json_format_on_the_workspace_parses_cleanly() {
    // The same invocation scripts/ci.sh uses to write target/lint-report.json.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf();
    let out = run_lint(&["--root", root.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "workspace must lint clean");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let v = ixp_lint::json::parse(&stdout).expect("workspace report must be valid JSON");
    assert_eq!(v.get("version").and_then(|s| s.as_u64()), Some(3));
    assert_eq!(v.get("summary").and_then(|s| s.get("total")).and_then(|t| t.as_u64()), Some(0));
}

#[test]
fn explain_prints_rule_rationale() {
    let out = run_lint(&["--explain", "panic-path"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("panic-path [L5 / error]"), "{stdout}");
    assert!(stdout.contains("call graph"), "{stdout}");

    let out = run_lint(&["--explain", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn clean_tree_exits_zero_silently() {
    let out = run_on(&fixture("clean"));
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stdout.is_empty());
}

#[test]
fn unknown_flag_and_missing_root_exit_two() {
    let out = run_lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));

    let out = run_on(Path::new("/nonexistent/ixp-lint-root"));
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_exits_zero() {
    let out = run_lint(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout).unwrap().contains("usage:"));
}

#[test]
fn baseline_ratchet_tolerates_then_blocks() {
    // Build a scratch tree with one grandfathered violation.
    let root = std::env::temp_dir().join(format!("ixp-lint-ratchet-{}", std::process::id()));
    let src_dir = root.join("crates/wire/src");
    fs::create_dir_all(&src_dir).unwrap();
    let one = "pub fn f(b: &[u8]) -> u8 {\n    b[0]\n}\n";
    fs::write(src_dir.join("lib.rs"), one).unwrap();

    // Without a baseline the violation fails the run.
    assert_eq!(run_on(&root).status.code(), Some(1));

    // --update-baseline grandfathers it; the next run is clean.
    let out = run_lint(&["--root", root.to_str().unwrap(), "--update-baseline"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(root.join("lint-baseline.toml").is_file());
    assert_eq!(run_on(&root).status.code(), Some(0));

    // A second violation exceeds the ratchet and fails again, listing both.
    let two = "pub fn f(b: &[u8]) -> u8 {\n    b[0]\n}\npub fn g(b: &[u8]) -> u8 {\n    b[1]\n}\n";
    fs::write(src_dir.join("lib.rs"), two).unwrap();
    let out = run_on(&root);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("crates/wire/src/lib.rs:2: no-index: "));
    assert!(stdout.contains("crates/wire/src/lib.rs:5: no-index: "));

    fs::remove_dir_all(&root).ok();
}
