//! Property tests for the lint front end: the full pipeline — lexer,
//! parser, symbol table, and every pass behind `scan_sources` — must never
//! panic on arbitrary input, and every span it reports must land inside
//! the file it came from.

use proptest::prelude::*;
use proptest::{collection, sample};

use ixp_lint::lexer::lex;
use ixp_lint::parser::parse;

/// Source fragments chosen to hit the parser's interesting paths: items,
/// impl blocks, use trees, calls, panic sites, strings that look like
/// comments or directives, test regions, and unbalanced nesting.
const FRAGMENTS: &[&str] = &[
    "fn f(b: &[u8]) -> u8 { b[0] }\n",
    "pub fn g(r: &mut R) -> u32 { r.u32() }\n",
    "pub(crate) fn h() {}\n",
    "impl Foo { fn m(&self) {} }\n",
    "impl<T: Ord> Display for Foo<T> where T: Copy { }\n",
    "trait T: Clone { fn d(&self); }\n",
    "use a::b::{c, d as e, self};\n",
    "use ixp_core::util::pick;\n",
    "let x = r.u32()? as usize;\n",
    "let v = Vec::with_capacity(n);\n",
    "x.unwrap();\n",
    "y.expect(\"msg\");\n",
    "panic!(\"boom\");\n",
    "assert_eq!(a, b);\n",
    "s[i..j]\n",
    "a + b * c << d\n",
    "acc += n;\n",
    "// ixp-lint: allow(no-index) reason\n",
    "// ixp-lint: allow-file(no-unwrap, \"why\")\n",
    "\"fn not_a_fn() { /* also not a comment */ }\"\n",
    "r#\"raw \" string\"#\n",
    "b\"bytes\"\n",
    "'c'",
    "'lifetime ",
    "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n",
    "fn broken( {\n",
    "}}}\n",
    "((([[[\n",
    "let callback: fn(u32) -> u32 = f;\n",
    "::std::mem::swap(&mut a, &mut b);\n",
    "0x1f 1_000 2.5e-3\n",
    "match x { Some(_) => {} None => unreachable!() }\n",
    // L8 shapes: guard scopes, spawn escapes, atomic orderings, drain loops.
    "let g = m.lock();\n",
    "drop(g);\n",
    "std::thread::spawn(move || { x.borrow_mut(); });\n",
    "scope.spawn(move |_| { tx.send(1); });\n",
    "let v = c.load(Ordering::Relaxed);\n",
    "fn snapshot(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
    "while let Ok(v) = rx.recv() { sum += v; out.push(v); }\n",
    "static mut COUNT: u64 = 0;\n",
    "let s = RefCell::new(0);\n",
    "cv.wait(&mut g);\n",
    "/* outer /* nested */ still a comment */\n",
];

/// Paths that route the assembled source into every scope predicate.
const PATHS: &[&str] = &[
    "crates/wire/src/x.rs",
    "crates/sflow/src/accounting.rs",
    "crates/core/src/report.rs",
    "crates/core/src/visibility.rs",
    "crates/faults/src/plan.rs",
    "crates/lint/src/x.rs",
    "crates/obs/src/metrics.rs",
    "vendor/crossbeam/src/lib.rs",
];

fn assemble(picks: &[sample::Index]) -> String {
    picks.iter().map(|ix| FRAGMENTS[ix.index(FRAGMENTS.len())]).collect()
}

proptest! {
    #[test]
    fn full_pipeline_never_panics_on_fragment_soup(
        picks in collection::vec(any::<sample::Index>(), 0..24),
        path_ix in any::<sample::Index>(),
    ) {
        let src = assemble(&picks);
        let path = PATHS[path_ix.index(PATHS.len())];
        // scan_sources drives lexer, parser, symbols, call graph, taint,
        // determinism, and the token rules in one go; the property is
        // simply that none of them panic and all spans are in range.
        let line_count = src.lines().count() as u32;
        for f in ixp_lint::scan_sources([(path.to_string(), src.clone())]) {
            prop_assert!(f.line >= 1 && f.line <= line_count.max(1), "{f:?}");
        }
    }

    #[test]
    fn parser_spans_stay_in_bounds(
        picks in collection::vec(any::<sample::Index>(), 0..24),
    ) {
        let src = assemble(&picks);
        let lexed = lex(&src);
        let line_count = (src.lines().count() as u32).max(1);
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= line_count, "token {t:?}");
            prop_assert!(t.col >= 1, "token {t:?}");
        }
        let parsed = parse("crates/wire/src/x.rs", &lexed);
        for f in &parsed.fns {
            prop_assert!(f.line >= 1 && f.line <= line_count, "fn {f:?}");
            if let Some((s, e)) = f.body {
                prop_assert!(s <= e && e <= lexed.tokens.len(), "body of {}", f.name);
            }
            for c in &f.calls {
                prop_assert!(c.line >= 1 && c.line <= line_count, "call {c:?}");
                for &(a, b) in &c.args {
                    prop_assert!(a <= b && b <= lexed.tokens.len(), "args of {c:?}");
                }
            }
            for p in &f.panics {
                prop_assert!(p.line >= 1 && p.line <= line_count, "panic site {p:?}");
            }
        }
    }

    #[test]
    fn pipeline_never_panics_on_printable_junk(src in "[ -~\n]{0,120}") {
        let _ = ixp_lint::scan_sources([("crates/wire/src/x.rs".to_string(), src)]);
    }
}
