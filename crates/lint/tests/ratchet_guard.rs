//! CI guard for the ratchet baseline: the entry count may only go down.
//!
//! `lint-baseline.toml` grandfathers pre-existing violations; every burn-
//! down shrinks it, and nothing is ever allowed to grow it back. When a
//! burn-down lands, lower `MAX_BASELINE_ENTRIES` to match — raising it is
//! the one edit this test exists to make loud.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// The committed baseline is empty: every rule family is enforced at zero
/// tolerated violations across the workspace.
const MAX_BASELINE_ENTRIES: usize = 0;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn baseline_entry_count_never_grows() {
    let path = workspace_root().join("lint-baseline.toml");
    let text = fs::read_to_string(&path).unwrap_or_default();
    let baseline = ixp_lint::baseline::parse(&text).expect("committed baseline must parse");
    assert!(
        baseline.entries.len() <= MAX_BASELINE_ENTRIES,
        "lint-baseline.toml grew to {} entr(ies); the ratchet only goes down. \
         Fix the new finding or vouch for it with an inline \
         `// ixp-lint: allow(<rule>) <reason>` directive instead of baselining it.",
        baseline.entries.len(),
    );
    for e in &baseline.entries {
        assert!(
            e.reason.is_some(),
            "baseline entry {}:{} has no `reason`; every grandfathered pair must say why",
            e.file,
            e.rule,
        );
    }
}

/// Every surface that enumerates rules — the registry behind `--explain`,
/// the `--rules` alias resolver, and the JSON schema's `rules` array —
/// must agree on the same 26 ids. A rule added to one surface but not the
/// others fails here, not in the field.
#[test]
fn registry_explain_and_json_schema_stay_in_sync() {
    use ixp_lint::rules;

    for id in rules::ALL_RULES {
        assert!(
            rules::rule_info(id).is_some(),
            "rule {id} is in ALL_RULES but has no registry entry for --explain"
        );
        assert_eq!(
            rules::resolve_rule(id),
            Some(vec![*id]),
            "rule {id} must resolve to itself through --rules"
        );
    }

    // The family aliases partition ALL_RULES exactly (bad-directive is the
    // one rule outside any lN family).
    let mut from_aliases = BTreeSet::new();
    for alias in
        ["l1", "l2", "l3", "l4", "l5", "l6", "l7", "l8", "l9", "l10", "l11", "bad-directive"]
    {
        for id in ixp_lint::rules::resolve_rule(alias).expect("family alias resolves") {
            assert!(from_aliases.insert(id), "rule {id} appears in two families");
        }
    }
    let all: BTreeSet<&str> = rules::ALL_RULES.iter().copied().collect();
    assert_eq!(from_aliases, all, "family aliases must cover ALL_RULES exactly");

    // The JSON schema's rules array lists the same ids.
    let report = ixp_lint::json::report(&[], &[]);
    let v = ixp_lint::json::parse(&report).expect("empty report parses");
    let json_ids: BTreeSet<String> = v
        .get("rules")
        .and_then(|r| r.as_arr())
        .expect("rules array")
        .iter()
        .map(|r| r.get("id").and_then(|i| i.as_str()).expect("rule id").to_string())
        .collect();
    let all_owned: BTreeSet<String> = all.iter().map(|s| s.to_string()).collect();
    assert_eq!(json_ids, all_owned, "JSON schema rules array must match ALL_RULES");
}

#[test]
fn committed_workspace_is_clean_without_any_baseline() {
    let findings = ixp_lint::scan_workspace(workspace_root()).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "the tree must lint clean with an empty ratchet:\n{}",
        findings.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n"),
    );
}
