//! CI guard for the ratchet baseline: the entry count may only go down.
//!
//! `lint-baseline.toml` grandfathers pre-existing violations; every burn-
//! down shrinks it, and nothing is ever allowed to grow it back. When a
//! burn-down lands, lower `MAX_BASELINE_ENTRIES` to match — raising it is
//! the one edit this test exists to make loud.

use std::fs;
use std::path::Path;

/// The committed baseline is empty: every rule family is enforced at zero
/// tolerated violations across the workspace.
const MAX_BASELINE_ENTRIES: usize = 0;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn baseline_entry_count_never_grows() {
    let path = workspace_root().join("lint-baseline.toml");
    let text = fs::read_to_string(&path).unwrap_or_default();
    let baseline = ixp_lint::baseline::parse(&text).expect("committed baseline must parse");
    assert!(
        baseline.entries.len() <= MAX_BASELINE_ENTRIES,
        "lint-baseline.toml grew to {} entr(ies); the ratchet only goes down. \
         Fix the new finding or vouch for it with an inline \
         `// ixp-lint: allow(<rule>) <reason>` directive instead of baselining it.",
        baseline.entries.len(),
    );
    for e in &baseline.entries {
        assert!(
            e.reason.is_some(),
            "baseline entry {}:{} has no `reason`; every grandfathered pair must say why",
            e.file,
            e.rule,
        );
    }
}

#[test]
fn committed_workspace_is_clean_without_any_baseline() {
    let findings = ixp_lint::scan_workspace(workspace_root()).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "the tree must lint clean with an empty ratchet:\n{}",
        findings.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n"),
    );
}
