pub fn good(b: &[u8]) -> Option<u8> {
    b.first().copied()
}
