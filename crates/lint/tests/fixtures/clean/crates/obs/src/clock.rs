// The one sanctioned real-clock site: RealClock may read Instant::now.
pub fn origin() -> std::time::Instant {
    std::time::Instant::now()
}
