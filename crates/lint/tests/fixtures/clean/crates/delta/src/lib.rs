//! L8 clean fixtures: each construct mirrors a violation in the
//! violations tree, written the way the rules want it.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Consistent `a` → `b` order everywhere: no cycle.
pub fn tick(a: &Mutex<u64>, b: &Mutex<u64>) {
    let g = a.lock();
    let h = b.lock();
    drop(h);
    drop(g);
}

/// Same order as `tick`.
pub fn audit(a: &Mutex<u64>, b: &Mutex<u64>) {
    let g = a.lock();
    let h = b.lock();
    drop(h);
    drop(g);
}

/// The guard is dropped before the blocking receive.
pub fn drain(m: &Mutex<u64>, rx: &Receiver<u64>) {
    let g = m.lock();
    drop(g);
    let v = rx.recv();
    let _ = v;
}

/// Acquire load on the snapshot path.
pub fn snapshot(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire)
}

/// Relaxed is fine for a writer (not reachable from a snapshot seed).
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Index-keyed merge: arrival order cannot leak into the result.
pub fn merge(rx: &Receiver<(usize, u64)>, slots: &mut Vec<u64>) {
    while let Ok((i, v)) = rx.recv() {
        if let Some(slot) = slots.get_mut(i) {
            *slot = v;
        }
    }
}

/// Collected then sorted: the result is order-independent.
pub fn merge_sorted(rx: &Receiver<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    while let Ok(v) = rx.recv() {
        out.push(v);
    }
    out.sort_unstable();
    out
}
