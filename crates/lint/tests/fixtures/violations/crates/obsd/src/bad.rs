//! L1 fixture: an HTTP request parser must not expect on request bytes.

pub fn request_path(line: &str) -> &str {
    line.split(' ').nth(1).expect("request path")
}
