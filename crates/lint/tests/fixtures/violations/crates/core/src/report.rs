//! L7 fixture: randomized iteration order feeding rendered output.

use std::collections::HashMap;

pub fn render(shares: &HashMap<u32, u64>) -> String {
    let mut out = String::new();
    for (ifindex, bytes) in shares {
        out.push_str(&format!("{ifindex} {bytes}\n"));
    }
    out
}
