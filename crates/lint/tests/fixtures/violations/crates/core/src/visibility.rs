pub fn exactly_quarter(x: f64) -> bool {
    x == 0.25
}
