//! Fixture: an encode/decode pair missing from the codec registry.

use crate::checkpoint::{self, Cur, StateError};

pub fn save_pair(out: &mut Vec<u8>, lo: u64, hi: u64) {
    checkpoint::put_u64(out, lo);
    checkpoint::put_u64(out, hi);
}

pub fn load_pair(cur: &mut Cur<'_>) -> Result<(u64, u64), StateError> {
    let lo = cur.u64()?;
    let hi = cur.u64()?;
    Ok((lo, hi))
}
