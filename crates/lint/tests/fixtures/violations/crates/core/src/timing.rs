// obs-clock-boundary: ambient time outside ixp-obs's RealClock.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
