//! Helper crate for the L5 fixture: `pick` panics locally, but `ixp-core`
//! is outside the L1/L5 scope, so the only report comes from the in-scope
//! caller in `crates/wire/src/l5.rs`.

pub fn pick(b: &[u8]) -> u8 {
    b[7]
}
