//! L5 fixture: a transport entry point that reaches a panic only through
//! a cross-crate call, invisible to the token-level L1 rules.

use ixp_core::util::pick;

pub fn first_byte(packet: &[u8]) -> u8 {
    pick(packet)
}
