//! L1 fixture: a transport decoder must not index into wire bytes.

pub fn first_flow(packet: &[u8]) -> u8 {
    packet[0]
}
