//! L11 fixture: a transport decode error silently discarded.

pub struct Malformed;

fn decode(packet: &[u8]) -> Result<u64, Malformed> {
    if packet.is_empty() {
        return Err(Malformed);
    }
    Ok(1)
}

pub fn pump(packet: &[u8]) -> u64 {
    let _ = decode(packet);
    0
}
