//! L6 fixture: a wire-tainted record count sizing an allocation.

pub fn decode(r: &mut Reader, buf: &[u8]) -> Result<(), DecodeError> {
    let count = r.u16()? as usize;
    let records = Vec::with_capacity(count);
    let _ = (records, buf);
    Ok(())
}
