//! L9 fixture: a transport offer path that drops a packet uncounted.

pub struct FlowIntake {
    inbox: Vec<Vec<u8>>,
    shed: u64,
    accepted: u64,
    limit: usize,
}

impl FlowIntake {
    /// Offer one packet; FIN sentinels vanish uncounted (the bug).
    pub fn offer(&mut self, packet: Vec<u8>) -> bool {
        if packet.is_empty() {
            return false;
        }
        if self.inbox.len() >= self.limit {
            self.shed += 1;
            return false;
        }
        self.inbox.push(packet);
        self.accepted += 1;
        true
    }
}
