pub enum FixtureError {
    Boom,
}
