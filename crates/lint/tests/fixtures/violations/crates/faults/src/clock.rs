//! L7 fixture: ambient time and ambient entropy in a replay path.

pub fn stamp() -> (u64, u32) {
    let t = SystemTime::now();
    let jitter = rand::thread_rng().next_u32();
    (elapsed_ms(t), jitter)
}
