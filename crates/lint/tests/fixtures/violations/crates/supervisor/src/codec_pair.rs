//! Fixture: a checkpoint pair whose reader dropped a field.

use crate::checkpoint::{self, Cur, StateError};

pub struct MiniState {
    ticks: u64,
    width: u32,
}

impl MiniState {
    pub fn save(&self, out: &mut Vec<u8>) {
        checkpoint::put_u64(out, self.ticks);
        checkpoint::put_u32(out, self.width);
    }

    pub fn restore(cur: &mut Cur<'_>) -> Result<MiniState, StateError> {
        let ticks = cur.u64()?;
        Ok(MiniState { ticks, width: 0 })
    }
}
