//! Fixture: an intake path that sheds a datagram without counting it.

pub struct Intake {
    queue: Vec<Vec<u8>>,
    shed: u64,
    accepted: u64,
    limit: usize,
}

impl Intake {
    /// Offer one datagram; empty datagrams vanish uncounted (the bug).
    pub fn offer(&mut self, datagram: Vec<u8>) -> bool {
        if datagram.is_empty() {
            return false;
        }
        if self.queue.len() >= self.limit {
            self.shed += 1;
            return false;
        }
        self.queue.push(datagram);
        self.accepted += 1;
        true
    }
}
