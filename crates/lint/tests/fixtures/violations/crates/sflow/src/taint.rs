//! L6 fixture: one violation of each wire-taint rule.

pub fn decode(r: &mut Reader, buf: &[u8]) -> Result<(), DecodeError> {
    let n = r.u32()? as usize;
    let samples = Vec::with_capacity(n);
    let total = n + 16;
    // ixp-lint: allow(no-index) fixture isolates the taint rule from L1
    let first = buf[n];
    let _ = (samples, total, first);
    Ok(())
}
