//! Fixture: decode errors silently discarded.

pub struct Malformed;

fn parse(d: &[u8]) -> Result<u64, Malformed> {
    if d.is_empty() {
        return Err(Malformed);
    }
    Ok(1)
}

pub fn drain(d: &[u8]) -> u64 {
    let _ = parse(d);
    parse(d).ok();
    parse(d).unwrap_or_default()
}
