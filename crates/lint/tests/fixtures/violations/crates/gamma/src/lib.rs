//! L8 violation fixtures for the other four sub-rules: shared-state
//! escapes, a guard across recv, Relaxed snapshot loads, order-dependent
//! merges.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static mut DROPPED: u64 = 0;

/// Un-Arc'ed RefCell and a `static mut` both escape into the spawned
/// closure.
pub fn shard(rx: &Receiver<u64>) {
    let cache = RefCell::new(0u64);
    std::thread::spawn(move || {
        *cache.borrow_mut() += 1;
        unsafe { DROPPED += 1 };
    });
}

/// Blocks on `recv` while the lock guard is still live.
pub fn drain(m: &Mutex<u64>, rx: &Receiver<u64>) {
    let g = m.lock();
    let v = rx.recv();
    let _ = (g, v);
}

/// Relaxed load directly in a snapshot entry point.
pub fn snapshot(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

/// Relaxed load one call away from a snapshot entry point.
pub fn snapshot_all(c: &AtomicU64) -> u64 {
    peek(c)
}

fn peek(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

/// Order-dependent fold: float accumulation plus an unsorted push.
pub fn merge(rx: &Receiver<f64>) -> (f64, Vec<u64>) {
    let mut sum = 0.0;
    let mut tags = Vec::new();
    while let Ok(v) = rx.recv() {
        sum += v;
        tags.push(1u64);
    }
    (sum, tags)
}
