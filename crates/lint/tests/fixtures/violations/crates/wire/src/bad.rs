pub fn bad(b: &[u8], o: Option<u8>) -> u8 {
    let x = o.unwrap();
    let y = o.expect("nope");
    if b.is_empty() {
        panic!("empty");
    }
    if x > y {
        unreachable!();
    }
    b[0]
}
