#[cfg(test)]
mod tests {
    pub fn helper(b: &[u8]) -> u8 {
        let first = b.first().copied().unwrap();
        first + b[0]
    }
}
