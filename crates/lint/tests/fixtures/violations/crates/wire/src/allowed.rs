pub fn same_line(b: &[u8]) -> u8 {
    b[0] // ixp-lint: allow(no-index) fixture: suppressed on its own line
}

pub fn next_line(b: &[u8]) -> u8 {
    // ixp-lint: allow(no-index) fixture: suppresses the following line
    b[1]
}
