pub fn noop() {} // ixp-lint: allow(not-a-rule)
