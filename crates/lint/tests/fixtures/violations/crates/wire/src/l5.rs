//! L5 fixture: a stream-facing pub fn that reaches a panic only through a
//! cross-crate call, which the token-level L1 rules cannot see.

use ixp_core::util::pick;

pub fn first_byte(b: &[u8]) -> u8 {
    pick(b)
}
