//! L8 demo: the seeded lock-order inversion of the acceptance criteria.
//! `ingest` holds `stats` while `ixp_beta::account` takes `table`;
//! `ixp_beta::flush` nests the other way round — a cross-crate
//! lock-order cycle ixp-lint must report with the full trace.

use parking_lot::Mutex;

/// Takes `stats`, then acquires `table` inside the beta crate.
pub fn ingest(stats: &Mutex<u64>, table: &Mutex<u64>) {
    let s = stats.lock();
    ixp_beta::account(table);
    drop(s);
}
