//! The other half of the seeded lock inversion (see alpha).

use parking_lot::Mutex;

/// Acquires `table`; called by alpha while `stats` is held.
pub fn account(table: &Mutex<u64>) {
    *table.lock() += 1;
}

/// Nests `table` → `stats`, the reverse of alpha's order.
pub fn flush(table: &Mutex<u64>, stats: &Mutex<u64>) {
    let t = table.lock();
    let s = stats.lock();
    drop(s);
    drop(t);
}
