//! Invalidation contract of the content-hash lint cache:
//!
//! * cold vs warm runs of an unchanged tree produce byte-identical
//!   reports, with the warm run answered entirely from the fixpoint
//!   entry (no analysis at all);
//! * a one-byte edit misses the fixpoint and exactly one per-file entry
//!   — every other file's token findings load from cache — and the
//!   result is indistinguishable from an uncached scan (the cross-file
//!   fixpoint passes L4-L11 always recompute).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use proptest::{collection, sample};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_cache() -> PathBuf {
    std::env::temp_dir().join(format!(
        "ixp-lint-cache-it-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn tree() -> Vec<(String, String)> {
    vec![
        (
            "crates/wire/src/lib.rs".to_string(),
            "pub fn first(b: &[u8]) -> u8 {\n    b[0]\n}\n".to_string(),
        ),
        (
            "crates/core/src/report.rs".to_string(),
            "pub fn total(xs: &[u64]) -> u64 {\n    xs.iter().sum()\n}\n".to_string(),
        ),
        (
            "crates/sflow/src/clean.rs".to_string(),
            "pub fn double(x: u64) -> u64 {\n    x * 2\n}\n".to_string(),
        ),
    ]
}

#[test]
fn cold_then_warm_is_byte_identical_and_skips_analysis() {
    let dir = scratch_cache();
    let files = tree();

    let (cold, s1) = ixp_lint::scan_sources_cached(files.clone(), &dir);
    assert!(!s1.fixpoint_hit);
    assert_eq!(s1.file_misses, files.len());
    assert_eq!(s1.file_hits, 0);
    assert!(cold.iter().any(|f| f.rule == "no-index"), "{cold:?}");

    let (warm, s2) = ixp_lint::scan_sources_cached(files.clone(), &dir);
    assert!(s2.fixpoint_hit, "unchanged tree must answer from the fixpoint");
    assert_eq!(warm, cold);
    assert_eq!(
        ixp_lint::json::report(&warm, &[]),
        ixp_lint::json::report(&cold, &[]),
        "cold and warm reports must be byte-identical"
    );

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn one_byte_edit_misses_exactly_one_file() {
    let dir = scratch_cache();
    let files = tree();
    let (_, _) = ixp_lint::scan_sources_cached(files.clone(), &dir);

    // Single-byte edit: `b[0]` -> `b[1]`. Same rule fires, new content digest.
    let mut edited = files.clone();
    edited[0].1 = edited[0].1.replace("b[0]", "b[1]");
    assert_eq!(edited[0].1.len(), files[0].1.len());

    let (after, s) = ixp_lint::scan_sources_cached(edited.clone(), &dir);
    assert!(!s.fixpoint_hit, "edited tree must not answer from the fixpoint");
    assert_eq!(s.file_misses, 1, "exactly the edited file recomputes");
    assert_eq!(s.file_hits, files.len() - 1, "every other file loads from cache");
    assert_eq!(
        after,
        ixp_lint::scan_sources(edited),
        "cached scan must equal an uncached scan of the edited tree"
    );

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn rule_registry_digest_guards_the_fixpoint() {
    // A fixpoint stored under a different registry digest must not load:
    // simulated by storing under a perturbed digest directly.
    let dir = scratch_cache();
    let findings = vec![ixp_lint::Finding::at("x.rs", 1, 1, "no-unwrap", "m")];
    let registry = ixp_lint::cache::registry_digest();
    ixp_lint::cache::store_fixpoint(&dir, registry ^ 1, 42, &findings);
    assert!(ixp_lint::cache::load_fixpoint(&dir, registry, 42).is_none());
    fs::remove_dir_all(&dir).ok();
}

/// Fragments with deterministic findings, for the property test.
const FRAGMENTS: &[&str] = &[
    "pub fn a(b: &[u8]) -> u8 { b[0] }\n",
    "pub fn b(v: Option<u8>) -> u8 { v.unwrap() }\n",
    "pub fn c() { panic!(\"boom\"); }\n",
    "pub fn d(x: u64) -> u64 { x + 1 }\n",
    "// just a comment\n",
];

const PATHS: &[&str] = &[
    "crates/wire/src/a.rs",
    "crates/wire/src/b.rs",
    "crates/sflow/src/c.rs",
    "crates/core/src/d.rs",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn edits_invalidate_exactly_the_edited_file(
        picks in collection::vec(collection::vec(any::<sample::Index>(), 1..4), 2..5),
        edit in any::<sample::Index>(),
    ) {
        let files: Vec<(String, String)> = picks
            .iter()
            .enumerate()
            .map(|(i, ps)| {
                let src: String =
                    ps.iter().map(|p| FRAGMENTS[p.index(FRAGMENTS.len())]).collect();
                (PATHS[i].to_string(), src)
            })
            .collect();
        let dir = scratch_cache();

        let (cold, s1) = ixp_lint::scan_sources_cached(files.clone(), &dir);
        prop_assert!(!s1.fixpoint_hit);
        let (warm, s2) = ixp_lint::scan_sources_cached(files.clone(), &dir);
        prop_assert!(s2.fixpoint_hit);
        prop_assert_eq!(&warm, &cold);
        prop_assert_eq!(
            ixp_lint::json::report(&warm, &[]),
            ixp_lint::json::report(&cold, &[])
        );

        // Append one byte to one file: that file (and only that file)
        // recomputes; the merged result matches an uncached scan.
        let k = edit.index(files.len());
        let mut edited = files.clone();
        edited[k].1.push(' ');
        let (after, s3) = ixp_lint::scan_sources_cached(edited.clone(), &dir);
        prop_assert!(!s3.fixpoint_hit);
        prop_assert_eq!(s3.file_misses, 1);
        prop_assert_eq!(s3.file_hits, files.len() - 1);
        prop_assert_eq!(after, ixp_lint::scan_sources(edited));

        fs::remove_dir_all(&dir).ok();
    }
}
