//! Library-level tests over the committed fixture trees: exact
//! file/line/rule assertions for one violation of every rule, plus the
//! suppression and `#[cfg(test)]`-exemption cases.

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

#[test]
fn violations_tree_reports_every_rule_exactly() {
    let findings = ixp_lint::scan_workspace(&fixture("violations")).unwrap();
    let got: Vec<(String, u32, &str)> =
        findings.iter().map(|f| (f.file.clone(), f.line, f.rule)).collect();
    let expected: Vec<(String, u32, &str)> = [
        ("crates/alpha/src/lib.rs", 11, "lock-order-cycle"),
        ("crates/badcrate/src/lib.rs", 1, "error-impl"),
        ("crates/core/src/codec_noreg.rs", 5, "schema-drift"),
        ("crates/core/src/codec_noreg.rs", 10, "schema-drift"),
        ("crates/core/src/report.rs", 5, "hash-iter-order"),
        ("crates/core/src/timing.rs", 3, "obs-clock-boundary"),
        ("crates/core/src/visibility.rs", 2, "no-float-eq"),
        ("crates/faults/src/clock.rs", 4, "ambient-time"),
        ("crates/faults/src/clock.rs", 5, "ambient-random"),
        ("crates/gamma/src/lib.rs", 16, "shared-state-escape"),
        ("crates/gamma/src/lib.rs", 17, "shared-state-escape"),
        ("crates/gamma/src/lib.rs", 24, "guard-across-blocking"),
        ("crates/gamma/src/lib.rs", 30, "atomic-ordering"),
        ("crates/gamma/src/lib.rs", 39, "atomic-ordering"),
        ("crates/gamma/src/lib.rs", 47, "order-dependent-merge"),
        ("crates/gamma/src/lib.rs", 48, "order-dependent-merge"),
        ("crates/obsd/src/bad.rs", 4, "no-expect"),
        ("crates/sflow/src/accounting.rs", 2, "no-narrow-cast"),
        ("crates/sflow/src/sink.rs", 13, "error-sink"),
        ("crates/sflow/src/sink.rs", 14, "error-sink"),
        ("crates/sflow/src/sink.rs", 15, "error-sink"),
        ("crates/sflow/src/taint.rs", 5, "tainted-capacity"),
        ("crates/sflow/src/taint.rs", 6, "tainted-arith"),
        ("crates/sflow/src/taint.rs", 8, "tainted-slice-len"),
        ("crates/supervisor/src/codec_pair.rs", 16, "codec-asymmetry"),
        ("crates/supervisor/src/intake.rs", 14, "unaccounted-drop"),
        ("crates/transport/src/bad.rs", 4, "no-index"),
        ("crates/transport/src/l5.rs", 6, "panic-path"),
        ("crates/transport/src/shed.rs", 14, "unaccounted-drop"),
        ("crates/transport/src/sink.rs", 13, "error-sink"),
        ("crates/transport/src/taint.rs", 5, "tainted-capacity"),
        ("crates/wire/src/bad.rs", 2, "no-unwrap"),
        ("crates/wire/src/bad.rs", 3, "no-expect"),
        ("crates/wire/src/bad.rs", 5, "no-panic"),
        ("crates/wire/src/bad.rs", 8, "no-unreachable"),
        ("crates/wire/src/bad.rs", 10, "no-index"),
        ("crates/wire/src/bad_directive.rs", 1, "bad-directive"),
        ("crates/wire/src/l5.rs", 6, "panic-path"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_string(), l, r))
    .collect();
    assert_eq!(got, expected);
}

#[test]
fn l5_trace_names_the_cross_crate_chain() {
    let findings = ixp_lint::scan_workspace(&fixture("violations")).unwrap();
    let trace = findings
        .iter()
        .find(|f| f.rule == "panic-path")
        .map(|f| f.message.clone())
        .unwrap();
    assert!(trace.contains("first_byte"), "{trace}");
    assert!(trace.contains("pick"), "{trace}");
    assert!(trace.contains("crates/core/src/util.rs"), "{trace}");
}

#[test]
fn l8_trace_names_the_cross_crate_cycle() {
    let findings = ixp_lint::scan_workspace(&fixture("violations")).unwrap();
    let trace = findings
        .iter()
        .find(|f| f.rule == "lock-order-cycle")
        .map(|f| f.message.clone())
        .unwrap();
    assert!(trace.contains("`stats`"), "{trace}");
    assert!(trace.contains("`table`"), "{trace}");
    assert!(trace.contains("inside `account`"), "{trace}");
    assert!(trace.contains("crates/beta/src/lib.rs:13"), "{trace}");
}

#[test]
fn suppressed_and_test_exempt_files_are_silent() {
    let findings = ixp_lint::scan_workspace(&fixture("violations")).unwrap();
    assert!(
        !findings.iter().any(|f| f.file.contains("allowed.rs")),
        "inline allow directives must suppress: {findings:?}"
    );
    assert!(
        !findings.iter().any(|f| f.file.contains("test_exempt.rs")),
        "cfg(test) code must be exempt: {findings:?}"
    );
}

#[test]
fn clean_tree_is_clean() {
    let findings = ixp_lint::scan_workspace(&fixture("clean")).unwrap();
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn render_matches_cli_format() {
    let findings = ixp_lint::scan_workspace(&fixture("violations")).unwrap();
    let unwrap_line = findings
        .iter()
        .find(|f| f.rule == "no-unwrap")
        .map(|f| f.render())
        .unwrap();
    assert!(
        unwrap_line.starts_with("crates/wire/src/bad.rs:2: no-unwrap: "),
        "{unwrap_line}"
    );
}
