//! Property tests for the obsd protocol core: the parser and responder
//! are total over arbitrary bytes, and the deterministic endpoints are
//! byte-identical across same-seed states under the frozen TestClock.

use proptest::prelude::*;

use ixp_obs::journal::{EventKind, Journal, EVENT_KINDS};
use ixp_obs::metrics::Registry;
use ixp_obs::test_clock;
use ixp_obsd::{parse_request, respond, Board, ParsedRequest, Response, ServerState};

fn state() -> ServerState {
    let registry = Registry::new();
    registry.counter("sflow_datagrams_total").add(41);
    registry.gauge("sflow_sources").set(3);
    let journal = Journal::with_capacity(16, test_clock());
    journal.record(EventKind::TickStart, 0, 0, 0, 0);
    let board = Board::new();
    board.publish_agents(&[(1, 2, "healthy")]);
    ServerState::new(registry, journal, board)
}

fn assert_well_formed(r: &Response) {
    let text = String::from_utf8_lossy(&r.bytes).to_string();
    assert!(text.starts_with("HTTP/1.1 "), "status line missing: {text:?}");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body separator");
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .expect("content-length header");
    assert_eq!(declared, body.len(), "content-length disagrees with body");
    assert!(head.contains("Connection: close"));
}

proptest! {
    /// The request parser never panics and always lands in one of its
    /// three outcomes, whatever the bytes.
    #[test]
    fn parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_request(&bytes);
    }

    /// Truncating a valid request at any byte yields Incomplete or
    /// Malformed — never a panic, never a bogus Complete with a
    /// different path.
    #[test]
    fn parser_handles_truncation(cut in 0usize..24) {
        let full = b"GET /metrics HTTP/1.1\r\n";
        let cut = cut.min(full.len());
        match parse_request(&full[..cut]) {
            ParsedRequest::Complete { method, path } => {
                prop_assert_eq!(method, "GET");
                prop_assert_eq!(path, "/metrics");
            }
            ParsedRequest::Incomplete | ParsedRequest::Malformed => {}
        }
    }

    /// The responder answers arbitrary bytes with a well-formed HTTP
    /// response and never panics or stops the server (only /quit stops).
    #[test]
    fn responder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let s = state();
        let r = respond(&s, &bytes);
        assert_well_formed(&r);
        if r.stop {
            // Only an explicit GET /quit may stop the loop.
            prop_assert!(bytes.starts_with(b"GET /quit"));
        }
    }

    /// Every defined event kind round-trips through the responder's
    /// /trace endpoint unharmed.
    #[test]
    fn trace_endpoint_roundtrips_kinds(kind_idx in 0usize..EVENT_KINDS.len()) {
        let s = state();
        let kind = EVENT_KINDS[kind_idx];
        s.journal.record(kind, 7, 8, 9, 10);
        let r = respond(&s, b"GET /trace HTTP/1.1\r\n\r\n");
        assert_well_formed(&r);
        let text = String::from_utf8_lossy(&r.bytes).to_string();
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        let (events, _) = ixp_obs::journal::parse_trace(&body).expect("trace parses");
        prop_assert_eq!(events.last().map(|e| e.kind), Some(kind));
    }
}

/// Same-seed states answer `/trace` and `/metrics.json` byte-identically
/// under the frozen TestClock — the serving-layer face of the snapshot
/// determinism the CI metrics smoke already enforces.
#[test]
fn same_seed_bodies_are_byte_identical() {
    let build = || {
        let s = state();
        s.journal.record(EventKind::Shed, 1, 2, 3, 4);
        s.journal.record(EventKind::TickEnd, 0, 0, 5, 0);
        let trace = respond(&s, b"GET /trace HTTP/1.1\r\n\r\n").bytes;
        let metrics = respond(&s, b"GET /metrics.json HTTP/1.1\r\n\r\n").bytes;
        let healthz = respond(&s, b"GET /healthz HTTP/1.1\r\n\r\n").bytes;
        (trace, metrics, healthz)
    };
    assert_eq!(build(), build());
}
