//! ixp-obsd — the HTTP exposition server of the observability plane.
//!
//! A dependency-free, panic-free HTTP/1.1 front end over
//! `std::net::TcpListener` that makes a *running* supervised pipeline
//! inspectable (DESIGN.md §13). Four read-only endpoints share one
//! [`ServerState`]:
//!
//! | path            | body                                            |
//! |-----------------|-------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition of the live registry |
//! | `/metrics.json` | the `ixp-obs/1` JSON snapshot                   |
//! | `/healthz`      | `ixp-health/1`: per-agent health + audit verdict|
//! | `/trace`        | the `ixp-trace/1` journal export                |
//!
//! plus `GET /quit`, which answers and then stops the accept loop so a
//! harness can terminate a serving run cleanly. The protocol front end
//! follows the same fail-closed discipline as the wire decoders: request
//! reads are bounded ([`MAX_REQUEST_BYTES`]), parsing is total
//! ([`parse_request`] never panics on arbitrary or truncated bytes), and
//! every outcome is an explicit response or an explicit close — there is
//! no path that leaves a connection dangling or the server wedged.
//!
//! The request/response core ([`respond`]) is a pure function of the
//! state and the raw request bytes, which is what the proptests drive;
//! the socket loop ([`Server`]) is a thin shell around it. Binding is
//! probe-gated by callers the same way `flowgen --probe` gates the UDP
//! smoke: where sockets are denied, the pure core still works in memory.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ixp_obs::journal::Journal;
use ixp_obs::metrics::Registry;
use ixp_obs::{json, prometheus};

/// Schema identifier of the `/healthz` document.
pub const HEALTH_SCHEMA: &str = "ixp-health/1";

/// Upper bound on a request head. Anything longer is answered 431 and
/// closed — the four endpoints need nothing beyond a short request line.
pub const MAX_REQUEST_BYTES: usize = 8192;

/// Per-connection socket read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// The per-(agent, sub_agent) health rows plus the audit verdict that
/// `/healthz` serves. Published whole by the pipeline at sync points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthView {
    /// `(agent key, state name)` rows, e.g. `("10.0.0.1/7", "healthy")`,
    /// in ascending key order.
    pub agents: Vec<(String, String)>,
    /// Total conservation breaches the auditor has observed.
    pub audit_breaches: u64,
    /// Human verdict: `"pass"`, or the failing invariant's name.
    pub audit_verdict: String,
}

impl HealthView {
    /// A view that has seen no agents and no audits yet.
    pub fn empty() -> HealthView {
        HealthView { agents: Vec::new(), audit_breaches: 0, audit_verdict: "pass".to_string() }
    }
}

/// Shared, cloneable holder of the latest [`HealthView`]. The pipeline
/// publishes; the server reads. Kept as plain strings so `ixp-obsd`
/// needs no supervisor types.
#[derive(Debug, Clone, Default)]
pub struct Board {
    inner: Arc<Mutex<HealthView>>,
}

impl Board {
    /// A board holding the empty view.
    pub fn new() -> Board {
        Board { inner: Arc::new(Mutex::new(HealthView::empty())) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthView> {
        // A poisoned board still holds a structurally valid view.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Replace the published view.
    pub fn publish(&self, view: HealthView) {
        *self.lock() = view;
    }

    /// Publish health rows from raw `(agent, sub_agent, state)` triples.
    pub fn publish_agents(&self, rows: &[(u32, u32, &str)]) {
        let mut agents: BTreeMap<String, String> = BTreeMap::new();
        for (agent, sub_agent, state) in rows {
            agents.insert(format!("{agent}/{sub_agent}"), (*state).to_string());
        }
        self.lock().agents = agents.into_iter().collect();
    }

    /// Update only the audit verdict fields.
    pub fn publish_audit(&self, breaches: u64, verdict: &str) {
        let mut view = self.lock();
        view.audit_breaches = breaches;
        view.audit_verdict = verdict.to_string();
    }

    /// The current view.
    pub fn view(&self) -> HealthView {
        self.lock().clone()
    }
}

/// Everything the endpoints read. Cloning shares all underlying state.
#[derive(Debug, Clone)]
pub struct ServerState {
    /// The live metric registry (`/metrics`, `/metrics.json`).
    pub registry: Registry,
    /// The live event journal (`/trace`).
    pub journal: Journal,
    /// The health board (`/healthz`).
    pub board: Board,
}

impl ServerState {
    /// Bundle a registry, journal, and board.
    pub fn new(registry: Registry, journal: Journal, board: Board) -> ServerState {
        ServerState { registry, journal, board }
    }
}

/// Outcome of feeding request bytes to the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedRequest {
    /// A complete request head: method and path.
    Complete {
        /// The HTTP method token.
        method: String,
        /// The request target, e.g. `/metrics`.
        path: String,
    },
    /// No complete request line yet; the caller may read more bytes.
    Incomplete,
    /// The bytes cannot be an HTTP request head; answer 400 and close.
    Malformed,
}

/// Parse an HTTP/1.1 request head from raw bytes. Total: any input maps
/// to one of the three outcomes, never a panic. Only the request line is
/// interpreted; headers are skipped (the endpoints take no arguments).
pub fn parse_request(bytes: &[u8]) -> ParsedRequest {
    // The request line ends at the first LF (tolerating a bare LF as
    // well as CRLF). Without one, the head is still in flight; the
    // caller enforces [`MAX_REQUEST_BYTES`] before giving up.
    let Some(eol) = bytes.iter().position(|b| *b == b'\n') else {
        return ParsedRequest::Incomplete;
    };
    let line = bytes.get(..eol).unwrap_or(&[]);
    let line = match line.split_last() {
        Some((b'\r', rest)) => rest,
        _ => line,
    };
    let Ok(line) = std::str::from_utf8(line) else {
        return ParsedRequest::Malformed;
    };
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(path), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return ParsedRequest::Malformed;
    };
    if parts.next().is_some() {
        return ParsedRequest::Malformed;
    }
    if !version.starts_with("HTTP/1.") {
        return ParsedRequest::Malformed;
    }
    if method.is_empty()
        || !method.bytes().all(|b| b.is_ascii_uppercase())
        || !path.starts_with('/')
    {
        return ParsedRequest::Malformed;
    }
    ParsedRequest::Complete { method: method.to_string(), path: path.to_string() }
}

/// A finished HTTP exchange: the bytes to write back, and whether the
/// server should stop accepting after this response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The full response (status line, headers, body).
    pub bytes: Vec<u8>,
    /// `true` after `GET /quit`: answer, then stop the accept loop.
    pub stop: bool,
}

fn http_response(status: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body.as_bytes());
    out
}

fn render_healthz(view: &HealthView) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", json::escape(HEALTH_SCHEMA)));
    let status = if view.audit_breaches == 0 { "ok" } else { "breach" };
    out.push_str(&format!("  \"status\": \"{status}\",\n"));
    out.push_str(&format!("  \"audit_breaches\": {},\n", view.audit_breaches));
    out.push_str(&format!(
        "  \"audit_verdict\": \"{}\",\n",
        json::escape(&view.audit_verdict)
    ));
    out.push_str("  \"agents\": [");
    let mut first = true;
    for (agent, state) in &view.agents {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"agent\": \"{}\", \"state\": \"{}\"}}",
            json::escape(agent),
            json::escape(state)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Answer one request. Pure in the state and the raw bytes: arbitrary
/// input yields a well-formed response (or a 400/431 close), never a
/// panic — this is the function the proptests hammer.
pub fn respond(state: &ServerState, request: &[u8]) -> Response {
    let (method, path) = match parse_request(request) {
        ParsedRequest::Complete { method, path } => (method, path),
        ParsedRequest::Incomplete if request.len() >= MAX_REQUEST_BYTES => {
            return Response {
                bytes: http_response(
                    431,
                    "Request Header Fields Too Large",
                    "text/plain",
                    "request head exceeds the server bound\n",
                ),
                stop: false,
            };
        }
        ParsedRequest::Incomplete | ParsedRequest::Malformed => {
            return Response {
                bytes: http_response(400, "Bad Request", "text/plain", "malformed request\n"),
                stop: false,
            };
        }
    };
    if method != "GET" {
        return Response {
            bytes: http_response(
                405,
                "Method Not Allowed",
                "text/plain",
                "only GET is served here\n",
            ),
            stop: false,
        };
    }
    match path.as_str() {
        "/metrics" => match prometheus::render(&state.registry.snapshot()) {
            Ok(body) => Response {
                bytes: http_response(
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                ),
                stop: false,
            },
            Err(e) => Response {
                bytes: http_response(
                    500,
                    "Internal Server Error",
                    "text/plain",
                    &format!("exposition failed: {e}\n"),
                ),
                stop: false,
            },
        },
        "/metrics.json" => Response {
            bytes: http_response(
                200,
                "OK",
                "application/json",
                &json::render(&state.registry.snapshot()),
            ),
            stop: false,
        },
        "/healthz" => Response {
            bytes: http_response(
                200,
                "OK",
                "application/json",
                &render_healthz(&state.board.view()),
            ),
            stop: false,
        },
        "/trace" => Response {
            bytes: http_response(200, "OK", "application/json", &state.journal.render()),
            stop: false,
        },
        "/quit" => Response {
            bytes: http_response(200, "OK", "text/plain", "stopping\n"),
            stop: true,
        },
        _ => Response {
            bytes: http_response(404, "Not Found", "text/plain", "unknown endpoint\n"),
            stop: false,
        },
    }
}

/// The accept loop: one connection at a time, bounded reads, fail-closed
/// parsing, `Connection: close` semantics.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: ServerState,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port). Errors — most
    /// relevantly a sandbox denying the bind — surface to the caller for
    /// probe-gating; nothing here panics or retries.
    pub fn bind(addr: &str, state: ServerState) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, state })
    }

    /// The bound address (for the `obsd: serving on <addr>` announce).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections until a `GET /quit` arrives. Per-connection
    /// errors (timeouts, resets, oversized or malformed requests) are
    /// answered or dropped and never abort the loop.
    pub fn serve(&self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.handle(stream) {
                return Ok(());
            }
        }
    }

    /// Handle one connection; `true` when the server should stop.
    fn handle(&self, mut stream: TcpStream) -> bool {
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let mut buf = Vec::with_capacity(512);
        let mut chunk = [0u8; 512];
        let response = loop {
            if buf.len() >= MAX_REQUEST_BYTES {
                break respond(&self.state, &buf);
            }
            match parse_request(&buf) {
                ParsedRequest::Incomplete => {}
                _ => break respond(&self.state, &buf),
            }
            match stream.read(&mut chunk) {
                // Peer closed before completing a request line.
                Ok(0) => break respond(&self.state, &buf),
                Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
                // Timeout or reset: answer what we have (400 for an
                // incomplete head) rather than hanging.
                Err(_) => break respond(&self.state, &buf),
            }
        };
        let _ = stream.write_all(&response.bytes);
        let _ = stream.flush();
        response.stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_obs::journal::EventKind;
    use ixp_obs::test_clock;

    fn state() -> ServerState {
        let registry = Registry::new();
        registry.counter("sflow_datagrams_total").add(3);
        let journal = Journal::with_capacity(8, test_clock());
        journal.record(EventKind::TickStart, 0, 0, 0, 0);
        let board = Board::new();
        board.publish_agents(&[(167772161, 7, "healthy")]);
        board.publish_audit(0, "pass");
        ServerState::new(registry, journal, board)
    }

    fn body_of(bytes: &[u8]) -> String {
        let text = String::from_utf8_lossy(bytes);
        match text.split_once("\r\n\r\n") {
            Some((_, body)) => body.to_string(),
            None => String::new(),
        }
    }

    #[test]
    fn parse_accepts_simple_gets() {
        assert_eq!(
            parse_request(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            ParsedRequest::Complete { method: "GET".to_string(), path: "/metrics".to_string() }
        );
        assert_eq!(parse_request(b"GET /trace HTTP/1.0\n"), ParsedRequest::Complete {
            method: "GET".to_string(),
            path: "/trace".to_string()
        });
    }

    #[test]
    fn parse_is_incomplete_without_a_line() {
        assert_eq!(parse_request(b""), ParsedRequest::Incomplete);
        assert_eq!(parse_request(b"GET /metr"), ParsedRequest::Incomplete);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_request(b"\xFF\xFE\n"), ParsedRequest::Malformed);
        assert_eq!(parse_request(b"GET\n"), ParsedRequest::Malformed);
        assert_eq!(parse_request(b"GET /x HTTP/1.1 extra\n"), ParsedRequest::Malformed);
        assert_eq!(parse_request(b"GET /x SMTP/1.1\n"), ParsedRequest::Malformed);
        assert_eq!(parse_request(b"get /x HTTP/1.1\n"), ParsedRequest::Malformed);
        assert_eq!(parse_request(b"GET x HTTP/1.1\n"), ParsedRequest::Malformed);
    }

    #[test]
    fn endpoints_answer() {
        let s = state();
        let metrics = respond(&s, b"GET /metrics HTTP/1.1\r\n\r\n");
        assert!(!metrics.stop);
        assert!(body_of(&metrics.bytes).contains("sflow_datagrams_total 3\n"));

        let json_body = body_of(&respond(&s, b"GET /metrics.json HTTP/1.1\r\n\r\n").bytes);
        let doc = json::parse(&json_body).expect("snapshot parses");
        assert_eq!(doc.get("schema").and_then(json::Value::as_str), Some("ixp-obs/1"));

        let trace_body = body_of(&respond(&s, b"GET /trace HTTP/1.1\r\n\r\n").bytes);
        let (events, dropped) =
            ixp_obs::journal::parse_trace(&trace_body).expect("trace parses");
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);

        let health_body = body_of(&respond(&s, b"GET /healthz HTTP/1.1\r\n\r\n").bytes);
        let doc = json::parse(&health_body).expect("healthz parses");
        assert_eq!(doc.get("schema").and_then(json::Value::as_str), Some(HEALTH_SCHEMA));
        assert_eq!(doc.get("status").and_then(json::Value::as_str), Some("ok"));
    }

    #[test]
    fn quit_stops_and_unknown_404s() {
        let s = state();
        assert!(respond(&s, b"GET /quit HTTP/1.1\r\n\r\n").stop);
        let nf = respond(&s, b"GET /nope HTTP/1.1\r\n\r\n");
        assert!(String::from_utf8_lossy(&nf.bytes).starts_with("HTTP/1.1 404"));
        let post = respond(&s, b"POST /metrics HTTP/1.1\r\n\r\n");
        assert!(String::from_utf8_lossy(&post.bytes).starts_with("HTTP/1.1 405"));
        let bad = respond(&s, b"\xFF\n");
        assert!(String::from_utf8_lossy(&bad.bytes).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn oversized_head_is_431() {
        let s = state();
        let huge = vec![b'A'; MAX_REQUEST_BYTES];
        let r = respond(&s, &huge);
        assert!(String::from_utf8_lossy(&r.bytes).starts_with("HTTP/1.1 431"));
    }

    #[test]
    fn mixed_kind_registry_is_a_500_not_a_panic() {
        let s = state();
        s.registry.counter("fam_x{shard=\"0\"}").inc();
        s.registry.gauge("fam_x{shard=\"1\"}").set(1);
        let r = respond(&s, b"GET /metrics HTTP/1.1\r\n\r\n");
        assert!(String::from_utf8_lossy(&r.bytes).starts_with("HTTP/1.1 500"));
        assert!(body_of(&r.bytes).contains("fam_x"));
    }

    #[test]
    fn healthz_reports_breach_status() {
        let s = state();
        s.board.publish_audit(2, "sflow-ledger");
        let body = body_of(&respond(&s, b"GET /healthz HTTP/1.1\r\n\r\n").bytes);
        let doc = json::parse(&body).expect("parses");
        assert_eq!(doc.get("status").and_then(json::Value::as_str), Some("breach"));
        assert_eq!(doc.get("audit_breaches").and_then(json::Value::as_u64), Some(2));
    }

    #[test]
    fn responses_carry_content_length_and_close() {
        let s = state();
        let r = respond(&s, b"GET /metrics HTTP/1.1\r\n\r\n");
        let text = String::from_utf8_lossy(&r.bytes).to_string();
        let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.parse().ok())
            .expect("content-length present");
        assert_eq!(declared, body.len());
        assert!(head.contains("Connection: close"));
    }

    #[test]
    fn loopback_roundtrip_when_sockets_allowed() {
        // Probe-gated like flowgen --probe: if the sandbox denies the
        // bind, the pure-core tests above already cover the protocol.
        let s = state();
        let Ok(server) = Server::bind("127.0.0.1:0", s) else {
            eprintln!("obsd test: loopback bind denied here; skipping socket roundtrip");
            return;
        };
        let addr = server.local_addr().expect("bound address");
        let handle = std::thread::spawn(move || server.serve());
        for path in ["/metrics", "/metrics.json", "/healthz", "/trace"] {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
                .expect("write");
            let mut reply = String::new();
            conn.read_to_string(&mut reply).expect("read");
            assert!(reply.starts_with("HTTP/1.1 200"), "{path} -> {reply}");
        }
        let mut conn = TcpStream::connect(addr).expect("connect quit");
        conn.write_all(b"GET /quit HTTP/1.1\r\n\r\n").expect("write quit");
        let mut reply = String::new();
        conn.read_to_string(&mut reply).expect("read quit");
        assert!(reply.starts_with("HTTP/1.1 200"));
        handle.join().expect("server thread").expect("serve returns cleanly");
    }
}
