//! Tiny std `TcpStream` HTTP/1.1 client for the exposition smoke in
//! `scripts/ci.sh`: `httpget <addr> <path>` fetches `http://<addr><path>`,
//! writes the response body to stdout, and exits nonzero unless the
//! status is 200 — so CI never depends on an external curl being
//! installed to drive the `ixp-obsd` endpoints.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(addr), Some(path)) = (args.next(), args.next()) else {
        eprintln!("usage: httpget <addr> <path>");
        return ExitCode::from(2);
    };
    match fetch(&addr, &path) {
        Ok(body) => {
            let mut out = std::io::stdout();
            if out.write_all(&body).and_then(|()| out.flush()).is_err() {
                return ExitCode::from(1);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("httpget: {e}");
            ExitCode::from(1)
        }
    }
}

/// One full request/response cycle. The server closes the connection
/// after answering (no keep-alive), so reading to EOF is the framing.
fn fetch(addr: &str, path: &str) -> Result<Vec<u8>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(|e| format!("send: {e}"))?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response).map_err(|e| format!("recv: {e}"))?;
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "response has no header terminator".to_string())?;
    let head = response.get(..header_end).unwrap_or(&[]);
    let head = std::str::from_utf8(head).map_err(|_| "response head is not UTF-8".to_string())?;
    let status = head.lines().next().unwrap_or("");
    if status != "HTTP/1.1 200 OK" {
        return Err(format!("unexpected status line {status:?}"));
    }
    let body_start = header_end.saturating_add(4);
    Ok(response.get(body_start..).unwrap_or(&[]).to_vec())
}
