//! # ixp-traffic
//!
//! The sFlow workload generator of the `ixp-vantage` reproduction: it turns
//! a synthetic Internet ([`ixp_netmodel::InternetModel`]) into the byte
//! stream a researcher at the studied IXP received — encoded sFlow v5
//! datagrams carrying 128-byte snippets of randomly sampled frames.
//!
//! Composition, payloads, and routing are *mechanistic*: the generator
//! never writes a paper statistic anywhere; it only follows the model
//! (server weights, activity masks, gateway members, peering matrix) and
//! the [`MixConfig`] knobs. The reproduced tables/figures then fall out of
//! the analysis pipeline, or they don't — that is the experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod isp;
pub mod payload;
pub mod week;

pub use config::MixConfig;
pub use isp::IspTrace;
pub use week::{WeekContext, WeekStream};

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_netmodel::{InternetModel, Week};
    use ixp_sflow::Datagram;
    use ixp_wire::dissect::{Dissection, Network, Transport};

    fn collect_samples(model: &InternetModel, week: Week, budget: u64) -> Vec<Datagram> {
        WeekStream::with_budget(model, MixConfig::default(), week, model.seed, budget)
            .map(|bytes| Datagram::decode(&bytes).expect("generator emits valid sFlow"))
            .collect()
    }

    #[test]
    fn stream_emits_decodable_datagrams_with_budgeted_samples() {
        let model = InternetModel::tiny(7);
        let dgs = collect_samples(&model, Week::REFERENCE, 5_000);
        let total: usize = dgs.iter().map(|d| d.samples.len()).sum();
        assert_eq!(total, 5_000);
        for dg in &dgs {
            for s in &dg.samples {
                assert!(s.record.header.len() <= 128);
                assert!(s.record.frame_length as usize >= s.record.header.len());
            }
        }
    }

    #[test]
    fn samples_dissect_and_have_plausible_mix() {
        let model = InternetModel::tiny(7);
        let dgs = collect_samples(&model, Week::REFERENCE, 20_000);
        let mut ipv4 = 0usize;
        let mut ipv6 = 0usize;
        let mut tcp = 0usize;
        let mut udp = 0usize;
        let mut http_hits = 0usize;
        let mut total = 0usize;
        for dg in &dgs {
            for s in &dg.samples {
                total += 1;
                let d = Dissection::parse(&s.record.header).expect("dissectable");
                match &d.network {
                    Network::Ipv4 { transport, payload, .. } => {
                        ipv4 += 1;
                        match transport {
                            Transport::Tcp { .. } => {
                                tcp += 1;
                                let text = String::from_utf8_lossy(payload);
                                if text.contains("HTTP/1.1") {
                                    http_hits += 1;
                                }
                            }
                            Transport::Udp { .. } => udp += 1,
                            _ => {}
                        }
                    }
                    Network::Ipv6 => ipv6 += 1,
                    _ => {}
                }
            }
        }
        assert!(ipv4 as f64 / total as f64 > 0.97, "ipv4 {ipv4}/{total}");
        assert!(ipv6 > 0, "no ipv6 sliver");
        assert!(tcp > udp, "tcp {tcp} vs udp {udp}");
        assert!(http_hits > total / 20, "http matches too rare: {http_hits}/{total}");
    }

    #[test]
    fn frames_use_member_port_macs() {
        let model = InternetModel::tiny(7);
        let dgs = collect_samples(&model, Week::REFERENCE, 4_000);
        let members = model.registry.members_at(Week::REFERENCE).len() as u32;
        let mut member_to_member = 0usize;
        let mut total_ipv4 = 0usize;
        for dg in &dgs {
            for s in &dg.samples {
                let d = Dissection::parse(&s.record.header).unwrap();
                if matches!(d.network, Network::Ipv4 { .. }) {
                    total_ipv4 += 1;
                    let src_is_member = (0..members)
                        .any(|m| ixp_wire::EthernetAddress::from_member_id(m) == d.src_mac);
                    let dst_is_member = (0..members)
                        .any(|m| ixp_wire::EthernetAddress::from_member_id(m) == d.dst_mac);
                    if src_is_member && dst_is_member {
                        member_to_member += 1;
                    }
                }
            }
        }
        assert!(
            member_to_member as f64 / total_ipv4 as f64 > 0.97,
            "{member_to_member}/{total_ipv4} member-to-member"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let model = InternetModel::tiny(7);
        let a: Vec<Vec<u8>> =
            WeekStream::with_budget(&model, MixConfig::default(), Week(40), 7, 2_000).collect();
        let b: Vec<Vec<u8>> =
            WeekStream::with_budget(&model, MixConfig::default(), Week(40), 7, 2_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn weeks_differ() {
        let model = InternetModel::tiny(7);
        let a: Vec<Vec<u8>> =
            WeekStream::with_budget(&model, MixConfig::default(), Week(40), 7, 1_000).collect();
        let b: Vec<Vec<u8>> =
            WeekStream::with_budget(&model, MixConfig::default(), Week(41), 7, 1_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn uris_appear_in_request_payloads() {
        let model = InternetModel::tiny(7);
        let dgs = collect_samples(&model, Week::REFERENCE, 30_000);
        let mut hosts = std::collections::HashSet::new();
        for dg in &dgs {
            for s in &dg.samples {
                let d = Dissection::parse(&s.record.header).unwrap();
                let text = String::from_utf8_lossy(d.payload()).to_string();
                if let Some(pos) = text.find("Host: ") {
                    let rest = &text[pos + 6..];
                    if let Some(end) = rest.find('\r') {
                        hosts.insert(rest[..end].to_string());
                    }
                }
            }
        }
        assert!(hosts.len() > 5, "only {} distinct Host headers", hosts.len());
        // Host values must be model domains.
        let all_domains: std::collections::HashSet<&str> = model
            .orgs
            .iter()
            .flat_map(|o| o.domains.iter().map(String::as_str))
            .collect();
        for h in &hosts {
            assert!(all_domains.contains(h.as_str()), "unknown host {h}");
        }
    }
}
