//! Payload synthesis: the bytes that end up inside the 128-byte snippets.
//!
//! The paper's server identification is string matching on these bytes
//! (§2.2.2): request lines (`GET / HTTP/1.1`), header fields (`Host:`,
//! `Server:` …). The generator therefore writes *real* header text for
//! header-bearing frames, opaque content bytes for mid-stream frames,
//! TLS-record-shaped bytes for HTTPS, and RTMP handshake bytes for port
//! 1935 — so the classifier downstream faces the same evidence the authors'
//! did.

use rand::rngs::SmallRng;
use rand::Rng;

/// Build an HTTP request head (fits a request line + Host into the snippet).
pub fn http_request(domain: &str, path_id: u32, rng: &mut SmallRng) -> Vec<u8> {
    let method = match rng.gen_range(0..10) {
        0 => "POST",
        1 => "HEAD",
        _ => "GET",
    };
    let path = match path_id % 5 {
        0 => "/".to_string(),
        1 => format!("/index-{}.html", path_id % 97),
        2 => format!("/assets/app-{}.js", path_id % 89),
        3 => format!("/media/seg-{}.ts", path_id % 983),
        _ => format!("/api/v1/item/{}", path_id),
    };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: {domain}\r\nUser-Agent: Mozilla/5.0\r\nAccept: */*\r\nConnection: keep-alive\r\n\r\n"
    )
    .into_bytes()
}

/// Build an HTTP response head.
pub fn http_response(server_token: &str, length: usize, rng: &mut SmallRng) -> Vec<u8> {
    let (code, reason) = match rng.gen_range(0..20) {
        0 => (301, "Moved Permanently"),
        1 => (304, "Not Modified"),
        2 => (404, "Not Found"),
        _ => (200, "OK"),
    };
    let ctype = match rng.gen_range(0..5) {
        0 => "text/html; charset=utf-8",
        1 => "application/javascript",
        2 => "image/jpeg",
        3 => "video/mp4",
        _ => "application/octet-stream",
    };
    let mut head = format!(
        "HTTP/1.1 {code} {reason}\r\nServer: {server_token}\r\nContent-Type: {ctype}\r\nContent-Length: {length}\r\nAccess-Control-Allow-Methods: GET, HEAD\r\n\r\n"
    )
    .into_bytes();
    // Pad with the first content bytes so the frame reaches its size.
    head.extend(std::iter::repeat(0xE5u8).take(32));
    head
}

/// Opaque mid-stream content bytes (no HTTP tokens). The bytes avoid ASCII
/// so no accidental string match can occur.
pub fn content_bytes(len: usize, rng: &mut SmallRng) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0x80..=0xFFu8)).collect()
}

/// A TLS application-data record header followed by ciphertext-looking
/// bytes: what port-443 snippets look like (no strings to match — the
/// paper needs active measurements for HTTPS precisely because of this).
pub fn tls_record(len: usize, rng: &mut SmallRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(len.max(5));
    out.extend_from_slice(&[0x17, 0x03, 0x03]); // TLS 1.2 application data
    let payload_len = len.saturating_sub(5).max(1) as u16;
    out.extend_from_slice(&payload_len.to_be_bytes());
    out.extend((0..payload_len).map(|_| rng.gen::<u8>() | 0x80));
    out
}

/// RTMP chunk bytes (port 1935; Akamai's multi-purpose servers, §2.2.2).
pub fn rtmp_chunk(len: usize, rng: &mut SmallRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(len.max(1));
    out.push(0x03); // RTMP version / chunk basic header
    out.extend((1..len).map(|_| rng.gen::<u8>() | 0x80));
    out
}

/// A DNS-query-shaped UDP payload.
pub fn dns_query(rng: &mut SmallRng) -> Vec<u8> {
    let mut out = vec![0u8; 12];
    out[0] = rng.gen();
    out[1] = rng.gen();
    out[2] = 0x01; // RD
    out[5] = 0x01; // QDCOUNT = 1
    out.extend_from_slice(b"\x03www\x07example\x00\x00\x01\x00\x01");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn request_contains_method_and_host() {
        let p = http_request("www.foo.example", 7, &mut rng());
        let s = String::from_utf8_lossy(&p);
        assert!(s.contains("HTTP/1.1"));
        assert!(s.contains("Host: www.foo.example"));
    }

    #[test]
    fn response_contains_status_and_server() {
        let p = http_response("nginx/1.2.1", 1234, &mut rng());
        let s = String::from_utf8_lossy(&p);
        assert!(s.starts_with("HTTP/1.1 "));
        assert!(s.contains("Server: nginx/1.2.1"));
        assert!(s.contains("Content-Length: 1234"));
    }

    #[test]
    fn content_bytes_contain_no_http_tokens() {
        let p = content_bytes(500, &mut rng());
        let s = String::from_utf8_lossy(&p);
        for token in ["HTTP/1.", "GET ", "Host:", "Server:"] {
            assert!(!s.contains(token));
        }
    }

    #[test]
    fn tls_record_is_shaped_right() {
        let p = tls_record(100, &mut rng());
        assert_eq!(&p[..3], &[0x17, 0x03, 0x03]);
        assert!(!String::from_utf8_lossy(&p).contains("HTTP"));
    }

    #[test]
    fn rtmp_chunk_starts_with_version() {
        let p = rtmp_chunk(64, &mut rng());
        assert_eq!(p[0], 0x03);
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn dns_query_has_question() {
        let p = dns_query(&mut rng());
        assert!(p.len() > 12);
        assert_eq!(p[5], 1);
    }
}
