//! Traffic-mix configuration.
//!
//! The knobs below are calibrated so that the *measured* composition — what
//! the analysis pipeline computes from the emitted bytes — matches the
//! percentages of paper Fig. 1 and §2.2: ≈ 0.4 % non-IPv4, ≈ 0.6 %
//! local/non-member, < 0.5 % non-TCP/UDP, TCP:UDP ≈ 82:18 by bytes, and a
//! Web-server-related share of > 70 % of the peering traffic.

/// Per-sample category draw probabilities and frame-size profiles.
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// Probability that a sample is a native IPv6 frame.
    pub p_ipv6: f64,
    /// Probability of an ARP/other-EtherType frame (IXP housekeeping).
    pub p_other_ethertype: f64,
    /// Probability of a frame that is not member-to-member (management,
    /// monitoring sessions, traffic staying local to one member port).
    pub p_local: f64,
    /// Probability of a member-to-member ICMP frame.
    pub p_icmp: f64,
    /// Probability of a member-to-member GRE/ESP/other-transport frame.
    pub p_other_transport: f64,
    /// Probability of a Web-server-related flow sample (HTTP/HTTPS/RTMP).
    pub p_server_flow: f64,
    /// Probability of background TCP (P2P, mail, ssh, ... incl. VPN on 443).
    pub p_background_tcp: f64,
    // The remainder is background UDP.
    /// Within a server flow: probability the sampled frame travels from the
    /// server to the client (responses dominate bytes).
    pub p_response: f64,
    /// Probability that a sampled request frame carries a parseable request
    /// line + Host header inside the 128-byte snippet.
    pub p_request_headers: f64,
    /// Probability that a sampled response frame is the header-bearing
    /// first frame of the response.
    pub p_response_headers: f64,
    /// Probability that the "client" of a server flow is itself a server
    /// with client behaviour (machine-to-machine, §2.2.2).
    pub p_m2m: f64,
    /// Probability that a background-TCP flow targets port 443 on a
    /// non-server IP (firewall-circumventing VPN/SSH, §2.2.2).
    pub p_fake_443: f64,
    /// Weight shrink applied to CDN servers hosted in third-party ASes:
    /// their main job is serving their host network internally, which never
    /// crosses the IXP (keeps Akamai's off-link share near the paper's
    /// 11.1 %).
    pub cdn_offsite_weight: f64,
    /// Fraction by which the HTTPS share of server-flow samples grows per
    /// week (the §4.2 HTTPS drift).
    pub https_weekly_drift: f64,
    /// Zipf-ish skew exponent for client-index draws (larger = fewer,
    /// hotter clients).
    pub client_skew: f64,
    /// Probability of drawing the client from an IXP-member AS (locality
    /// bias behind Table 3's traffic concentration).
    pub p_member_client: f64,
    /// Probability that a request's Host header names a domain of a
    /// *different* organization (embedded third-party content, misdirected
    /// vhosts) — the genuine noise source behind the clustering's small
    /// false-positive rate (§5.1 reports < 3 %).
    pub p_cross_org_uri: f64,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            p_ipv6: 0.0046,
            p_other_ethertype: 0.001,
            p_local: 0.012,
            p_icmp: 0.002,
            p_other_transport: 0.004,
            p_server_flow: 0.62,
            p_background_tcp: 0.165,
            p_response: 0.80,
            p_request_headers: 0.85,
            p_response_headers: 0.22,
            p_m2m: 0.05,
            p_fake_443: 0.012,
            cdn_offsite_weight: 0.02,
            https_weekly_drift: 0.04,
            client_skew: 1.7,
            p_member_client: 0.52,
            p_cross_org_uri: 0.008,
        }
    }
}

/// Frame-length profiles (wire bytes including Ethernet header).
pub mod frame_len {
    /// A full-size data frame (server responses, streaming).
    pub const DATA: usize = 1434;
    /// A header-bearing HTTP response first frame.
    pub const RESPONSE_HEAD: usize = 700;
    /// An HTTP request frame.
    pub const REQUEST: usize = 420;
    /// A TCP ack / small control frame.
    pub const ACK: usize = 66;
    /// A DNS-ish UDP datagram.
    pub const UDP_SMALL: usize = 120;
    /// A streaming/P2P UDP datagram.
    pub const UDP_LARGE: usize = 1434;
    /// ICMP echo.
    pub const ICMP: usize = 98;
    /// IPv6/other frames.
    pub const OTHER: usize = 800;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_probabilities_are_a_subdistribution() {
        let m = MixConfig::default();
        let total = m.p_ipv6
            + m.p_other_ethertype
            + m.p_local
            + m.p_icmp
            + m.p_other_transport
            + m.p_server_flow
            + m.p_background_tcp;
        assert!(total < 1.0, "no probability mass left for background UDP: {total}");
        assert!(total > 0.75);
    }

    #[test]
    fn rare_categories_are_rare() {
        let m = MixConfig::default();
        for p in [m.p_ipv6, m.p_other_ethertype, m.p_local, m.p_icmp, m.p_other_transport] {
            assert!(p < 0.02);
        }
    }
}
