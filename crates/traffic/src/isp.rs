//! The IXP-external ISP dataset (paper §2.3/§3.1).
//!
//! The authors cross-validate their IXP-derived server set against HTTP/DNS
//! logs from a large European Tier-1 ISP that does *not* exchange traffic
//! over the IXP's public fabric. The key published facts:
//!
//! * of the server IPs the ISP sees, only ≈ 45K (≈ 3 % of the IXP's 1.5M)
//!   are **not** seen at the IXP;
//! * every overlapping IP that the IXP classified as a server is confirmed
//!   by the (much richer, Bro-derived) ISP data.
//!
//! The simulated trace draws the ISP's view directly from ground truth: the
//! ISP's customers reach a large subset of the popular, IXP-visible servers
//! plus a sliver of servers the IXP cannot see (private clusters serving
//! the ISP, plus servers that happen to be quiet at the IXP that week).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::net::Ipv4Addr;

use ixp_netmodel::{InternetModel, ServerFlags, Week};

/// The ISP's weekly server-IP view.
#[derive(Debug, Clone)]
pub struct IspTrace {
    /// Server IPs extracted from the ISP's HTTP/DNS logs.
    pub server_ips: HashSet<Ipv4Addr>,
    week: Week,
}

impl IspTrace {
    /// Generate the ISP's view for one week.
    pub fn generate(model: &InternetModel, week: Week, seed: u64) -> IspTrace {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5_0200 ^ u64::from(week.0));
        let mut server_ips = HashSet::new();
        for s in model.servers.servers() {
            if !s.exists_in(week) {
                continue;
            }
            if s.flags.has(ServerFlags::HIDDEN) {
                // Private clusters: the ISP sees a few that serve *it*.
                if rng.gen::<f64>() < 0.02 {
                    server_ips.insert(s.ip);
                }
                continue;
            }
            // Popularity-weighted visibility: the ISP's customers reach the
            // heavy servers almost surely, the tail less often.
            let p = (0.12 + f64::from(s.weight) * 0.08).min(0.92);
            if rng.gen::<f64>() < p {
                server_ips.insert(s.ip);
            }
        }
        IspTrace { server_ips, week }
    }

    /// The week this trace covers.
    pub fn week(&self) -> Week {
        self.week
    }

    /// Is an IP a server according to the ISP's logs?
    pub fn confirms(&self, ip: Ipv4Addr) -> bool {
        self.server_ips.contains(&ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_nonempty_and_mostly_visible_servers() {
        let model = InternetModel::tiny(61);
        let trace = IspTrace::generate(&model, Week::REFERENCE, 61);
        assert!(!trace.server_ips.is_empty());
        let hidden = trace
            .server_ips
            .iter()
            .filter(|ip| {
                model
                    .servers
                    .by_ip(**ip)
                    .map(|s| s.flags.has(ServerFlags::HIDDEN))
                    .unwrap_or(false)
            })
            .count();
        assert!(hidden * 10 < trace.server_ips.len(), "too many hidden: {hidden}");
    }

    #[test]
    fn every_trace_ip_is_a_real_server() {
        let model = InternetModel::tiny(61);
        let trace = IspTrace::generate(&model, Week::REFERENCE, 61);
        for ip in &trace.server_ips {
            assert!(model.servers.by_ip(*ip).is_some());
        }
    }

    #[test]
    fn deterministic() {
        let model = InternetModel::tiny(61);
        let a = IspTrace::generate(&model, Week::REFERENCE, 61);
        let b = IspTrace::generate(&model, Week::REFERENCE, 61);
        assert_eq!(a.server_ips, b.server_ips);
    }
}
