//! The weekly sFlow stream generator.
//!
//! [`WeekStream`] turns one week of the synthetic Internet into a stream of
//! *encoded sFlow datagrams* — the exact artifact a collector at the IXP
//! would hand a researcher. The generator synthesises the **sampled**
//! stream directly (one emitted sample stands for `sampling_rate` frames,
//! see `ixp_sflow::Sampler::force_sample`), which is statistically
//! equivalent to materialising all 16 384× frames and four orders of
//! magnitude cheaper.
//!
//! Everything the paper measures is planted here mechanically, never as a
//! hard-coded statistic: category mixes come from [`MixConfig`], per-server
//! traffic from the catalog's weights, link heterogeneity from the
//! interplay of gateway members, CDN re-routing, and the peering matrix.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;

use ixp_netmodel::{InternetModel, MemberId, OrgId, OrgKind, ServerFlags, ServiceTag, Week};
use ixp_sflow::{Datagram, FlowSample, RawPacketHeader, HEADER_PROTO_ETHERNET, PAPER_SAMPLING_RATE};
use ixp_sflow::SNIPPET_LEN;
use ixp_wire::ethernet::{self, EthernetAddress};
use ixp_wire::ip::Protocol;
use ixp_wire::{ipv4, tcp, udp};

use crate::config::{frame_len, MixConfig};
use crate::payload;

/// Per-week pre-computed context.
pub struct WeekContext<'m> {
    model: &'m InternetModel,
    cfg: MixConfig,
    week: Week,
    /// Active (IXP-visible) server indices.
    active: Vec<u32>,
    /// Cumulative effective weights aligned with `active`.
    weight_cdf: Vec<f64>,
    /// Active servers that also act as clients.
    m2m_peers: Vec<u32>,
    /// org -> member ids hosting re-routable deployments of that org.
    org_members: HashMap<OrgId, Vec<MemberId>>,
    /// (org, member) -> active server indices hosted behind that member.
    org_member_servers: HashMap<(OrgId, u32), Vec<u32>>,
    /// Gateway member of every AS (dense index) this week.
    gateway: Vec<MemberId>,
    /// Cumulative client-population ranges of member ASes, for the
    /// member-biased client draw: (cumulative_size, as_dense_index).
    member_client_ranges: Vec<(u64, u32)>,
    member_client_total: u64,
}

impl<'m> WeekContext<'m> {
    /// Build the context for one week.
    pub fn new(model: &'m InternetModel, cfg: MixConfig, week: Week) -> WeekContext<'m> {
        let servers = model.servers.servers();
        let mut active = Vec::new();
        let mut weight_cdf = Vec::new();
        let mut m2m_peers = Vec::new();
        let mut org_members: HashMap<OrgId, Vec<MemberId>> = HashMap::new();
        let mut org_member_servers: HashMap<(OrgId, u32), Vec<u32>> = HashMap::new();

        // Gateways per AS this week.
        let gateway: Vec<MemberId> = (0..model.registry.len() as u32)
            .map(|i| {
                let asn = model.registry.by_index(i).asn;
                model
                    .graph
                    .gateway(&model.registry, asn, week)
                    .unwrap_or(MemberId(0))
            })
            .collect();

        let mut acc = 0.0f64;
        for (i, s) in servers.iter().enumerate() {
            if !s.active_in(week) {
                continue;
            }
            let org = model.orgs.get(s.org);
            let mut w = f64::from(s.weight);
            // Third-party-hosted CDN capacity mostly serves its host
            // network internally; only a sliver crosses the IXP.
            let offsite = Some(s.asn) != org.home_asn;
            if offsite
                && matches!(org.kind, OrgKind::Cdn | OrgKind::Content)
                && !s.flags.has(ServerFlags::HIDDEN)
            {
                w *= cfg.cdn_offsite_weight;
            }
            if s.flags.has(ServerFlags::FRONT_END) {
                w *= 220.0;
            }
            acc += w;
            active.push(i as u32);
            weight_cdf.push(acc);
            if s.flags.has(ServerFlags::CLIENT_TOO) {
                m2m_peers.push(i as u32);
            }
            // Re-route pools: member-hosted deployments of CDN-ish orgs.
            let reroutable = matches!(org.kind, OrgKind::Cdn | OrgKind::Content)
                || matches!(s.service, ServiceTag::Ec2(_));
            if reroutable {
                let as_idx = model.registry.index_of(s.asn).unwrap();
                let info = model.registry.by_index(as_idx);
                if let Some(m) = info.member {
                    if m.joined.0 <= week.0 {
                        org_member_servers
                            .entry((s.org, m.id.0))
                            .or_default()
                            .push(i as u32);
                        let list = org_members.entry(s.org).or_default();
                        if !list.contains(&m.id) {
                            list.push(m.id);
                        }
                    }
                }
            }
        }

        // Member-AS client ranges.
        let mut member_client_ranges = Vec::new();
        let mut member_total = 0u64;
        for asn in model.registry.members_at(week) {
            let pop = model.clients.population_of(&model.registry, asn);
            if pop > 0 {
                member_total += pop;
                let idx = model.registry.index_of(asn).unwrap();
                member_client_ranges.push((member_total, idx));
            }
        }

        WeekContext {
            model,
            cfg,
            week,
            active,
            weight_cdf,
            m2m_peers,
            org_members,
            org_member_servers,
            gateway,
            member_client_ranges,
            member_client_total: member_total,
        }
    }

    /// The week this context serves.
    pub fn week(&self) -> Week {
        self.week
    }

    /// Number of IXP-visible servers this week.
    pub fn active_servers(&self) -> usize {
        self.active.len()
    }

    fn draw_server(&self, rng: &mut SmallRng) -> u32 {
        let total = *self.weight_cdf.last().expect("no active servers");
        let x = rng.gen::<f64>() * total;
        let idx = self
            .weight_cdf
            .partition_point(|&c| c <= x)
            .min(self.active.len() - 1);
        self.active[idx]
    }

    /// Draw a client index, member-biased, with a heavy-tailed activity
    /// profile over the universe.
    fn draw_client(&self, rng: &mut SmallRng) -> u64 {
        if self.member_client_total > 0 && rng.gen::<f64>() < self.cfg.p_member_client {
            // Uniform over the member-AS populations.
            let x = rng.gen_range(0..self.member_client_total);
            let k = self
                .member_client_ranges
                .partition_point(|(end, _)| *end <= x);
            let (end, as_idx) = self.member_client_ranges[k.min(self.member_client_ranges.len() - 1)];
            let asn = self.model.registry.by_index(as_idx).asn;
            let pop = self.model.clients.population_of(&self.model.registry, asn);
            let local = pop - (end - x).min(pop);
            // Translate (as, local) back to a global client index.
            self.global_client_index(as_idx, local)
        } else {
            // Skewed global draw, scrambled so heavy hitters spread across
            // the whole universe rather than clustering at low indices.
            let universe = self.model.clients.universe();
            let u: f64 = rng.gen();
            let c = (u.powf(self.cfg.client_skew) * universe as f64) as u64;
            c.wrapping_mul(0x2545_F491_4F6C_DD1D) % universe
        }
    }

    fn global_client_index(&self, as_idx: u32, local: u64) -> u64 {
        // The client pool's cumulative boundaries give the AS's base.
        let asn = self.model.registry.by_index(as_idx).asn;
        let pop = self.model.clients.population_of(&self.model.registry, asn);
        let local = if pop == 0 { 0 } else { local % pop };
        // Reconstruct the base by searching for the first client of the AS.
        // (Binary search over indices via as_of.)
        let universe = self.model.clients.universe();
        let (mut lo, mut hi) = (0u64, universe - 1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.model.clients.as_of(mid) < as_idx {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo + local).min(universe - 1)
    }

    fn client_addr(&self, client: u64) -> Option<(Ipv4Addr, u32)> {
        let addr = self
            .model
            .clients
            .address_of(&self.model.registry, &self.model.routing, client)?;
        Some((addr, self.model.clients.as_of(client)))
    }

    /// Deterministic per-(org, member) preference for the *direct* link
    /// (Fig. 7's x-axis spread): most members take everything directly,
    /// a few take nothing directly, the rest sit in between.
    fn theta(&self, org: OrgId, member: MemberId) -> f64 {
        let h = (u64::from(org.0) << 32 | u64::from(member.0))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < 0.70 {
            1.0
        } else if u < 0.75 {
            0.0
        } else {
            0.6 + 0.4 * ((u * 37.77) % 1.0)
        }
    }

    /// Per-server gate: does this server ever expose URIs in its requests?
    fn server_emits_uris(&self, server_ip: Ipv4Addr, uri_share: f64) -> bool {
        let x = u32::from(server_ip).wrapping_mul(0x85EB_CA6B) >> 8;
        (x as f64 / (u32::MAX >> 8) as f64) < uri_share
    }
}

/// The encoded-datagram iterator for one week.
pub struct WeekStream<'m> {
    ctx: WeekContext<'m>,
    rng: SmallRng,
    /// Independent RNG for the frame-count realization behind the interface
    /// counters, so the counters never perturb the flow-sample stream.
    counter_rng: SmallRng,
    remaining: u64,
    batch: Vec<FlowSample>,
    counter_batch: Vec<ixp_sflow::CounterSample>,
    /// True octets sourced by each member port (the switch's own counters,
    /// not an estimate): each emitted sample stands for a *realized* number
    /// of frames around the sampling rate.
    port_octets: Vec<u64>,
    port_frames: Vec<u64>,
    counter_seq: u32,
    seq: u32,
    dg_seq: u32,
    done: bool,
}

/// Samples per exported datagram (bounded by the export MTU in real
/// deployments).
const SAMPLES_PER_DATAGRAM: usize = 7;

impl<'m> WeekStream<'m> {
    /// Create the stream for a week using the model's configured sample
    /// budget.
    pub fn new(model: &'m InternetModel, cfg: MixConfig, week: Week, seed: u64) -> WeekStream<'m> {
        let ctx = WeekContext::new(model, cfg, week);
        let remaining = model.scale.samples_per_week;
        let ports = model.scale.members_end as usize;
        WeekStream {
            ctx,
            rng: SmallRng::seed_from_u64(seed ^ (0xA5A5_0100 + week.0 as u64)),
            counter_rng: SmallRng::seed_from_u64(seed ^ 0xC0C0_C0C0 ^ u64::from(week.0)),
            remaining,
            batch: Vec::with_capacity(SAMPLES_PER_DATAGRAM),
            counter_batch: Vec::new(),
            port_octets: vec![0; ports],
            port_frames: vec![0; ports],
            counter_seq: 0,
            seq: 0,
            dg_seq: 0,
            done: false,
        }
    }

    /// Like `new`, but with an explicit sample budget (benches use this).
    pub fn with_budget(
        model: &'m InternetModel,
        cfg: MixConfig,
        week: Week,
        seed: u64,
        samples: u64,
    ) -> WeekStream<'m> {
        let mut s = WeekStream::new(model, cfg, week, seed);
        s.remaining = samples;
        s
    }

    /// Borrow the context (tests/benches peek at it).
    pub fn context(&self) -> &WeekContext<'m> {
        &self.ctx
    }

    fn next_sample(&mut self) -> FlowSample {
        let (frame, wire_len) = generate_frame(&self.ctx, &mut self.rng);
        self.seq = self.seq.wrapping_add(1);
        // Maintain the switch's own interface counters: each sample stands
        // for a realized frame count drawn around the sampling rate (mean
        // exactly the rate), so the counters carry ground truth the flow
        // samples only *estimate* — which is what makes the sampling-bias
        // cross-check in `ixp-core` meaningful.
        if frame.len() >= 12 && frame[6] == 0x02 && frame[7] == 0x1f {
            let port =
                u32::from_be_bytes([frame[8], frame[9], frame[10], frame[11]]) as usize;
            if port < self.port_octets.len() {
                let realized = u64::from(self.counter_rng.gen_range(
                    PAPER_SAMPLING_RATE / 2..=PAPER_SAMPLING_RATE * 3 / 2,
                ));
                self.port_octets[port] += realized * wire_len as u64;
                self.port_frames[port] += realized;
            }
        }
        FlowSample {
            sequence: self.seq,
            source_id: 0,
            sampling_rate: PAPER_SAMPLING_RATE,
            sample_pool: self.seq.wrapping_mul(PAPER_SAMPLING_RATE),
            drops: 0,
            input_if: 0,
            output_if: 0,
            record: RawPacketHeader {
                protocol: HEADER_PROTO_ETHERNET,
                frame_length: wire_len as u32,
                stripped: 0,
                header: frame,
            },
        }
    }

    fn export(&mut self) -> Vec<u8> {
        self.dg_seq = self.dg_seq.wrapping_add(1);
        let dg = Datagram {
            agent_address: Ipv4Addr::new(10, 255, 0, 1),
            sub_agent_id: 0,
            sequence: self.dg_seq,
            uptime_ms: self.dg_seq.wrapping_mul(40),
            samples: std::mem::take(&mut self.batch),
            counters: std::mem::take(&mut self.counter_batch),
        };
        dg.encode()
    }
}

impl Iterator for WeekStream<'_> {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        if self.done {
            return None;
        }
        while self.remaining > 0 {
            self.remaining -= 1;
            let sample = self.next_sample();
            self.batch.push(sample);
            if self.batch.len() >= SAMPLES_PER_DATAGRAM {
                return Some(self.export());
            }
        }
        self.done = true;
        // End of the week: export every port's cumulative interface
        // counters (real agents export them periodically; the weekly total
        // is what the bias check needs).
        for port in 0..self.port_octets.len() {
            if self.port_octets[port] == 0 {
                continue;
            }
            self.counter_seq = self.counter_seq.wrapping_add(1);
            self.counter_batch.push(ixp_sflow::CounterSample {
                sequence: self.counter_seq,
                source_id: port as u32,
                if_index: port as u32,
                if_speed: 100_000_000_000,
                if_in_octets: self.port_octets[port],
                if_in_ucast: (self.port_frames[port] & 0xFFFF_FFFF) as u32,
                if_out_octets: 0,
                if_out_ucast: 0,
            });
        }
        if self.batch.is_empty() && self.counter_batch.is_empty() {
            None
        } else {
            Some(self.export())
        }
    }
}

/// Build one sampled frame snippet: returns (first ≤128 bytes, wire length).
#[allow(unused_assignments)] // the final take!() decrement is intentionally dead
fn generate_frame(ctx: &WeekContext<'_>, rng: &mut SmallRng) -> (Vec<u8>, usize) {
    let cfg = &ctx.cfg;
    let mut x: f64 = rng.gen();

    macro_rules! take {
        ($p:expr) => {{
            if x < $p {
                true
            } else {
                x -= $p;
                false
            }
        }};
    }

    if take!(cfg.p_ipv6) {
        return ipv6_frame(ctx, rng);
    }
    if take!(cfg.p_other_ethertype) {
        return arp_frame(rng);
    }
    if take!(cfg.p_local) {
        return local_frame(ctx, rng);
    }
    if take!(cfg.p_icmp) {
        return icmp_frame(ctx, rng);
    }
    if take!(cfg.p_other_transport) {
        return other_transport_frame(ctx, rng);
    }
    if take!(cfg.p_server_flow) {
        return server_flow_frame(ctx, rng);
    }
    if take!(cfg.p_background_tcp) {
        return background_tcp_frame(ctx, rng);
    }
    background_udp_frame(ctx, rng)
}

/// Pick two distinct member-gatewayed clients that can exchange traffic
/// over the fabric.
fn client_pair(ctx: &WeekContext<'_>, rng: &mut SmallRng) -> Option<(Ipv4Addr, MemberId, Ipv4Addr, MemberId)> {
    for _ in 0..6 {
        let a = ctx.draw_client(rng);
        let b = ctx.draw_client(rng);
        let (ip_a, as_a) = match ctx.client_addr(a) {
            Some(v) => v,
            None => continue,
        };
        let (ip_b, as_b) = match ctx.client_addr(b) {
            Some(v) => v,
            None => continue,
        };
        let ma = ctx.gateway[as_a as usize];
        let mb = ctx.gateway[as_b as usize];
        if ma != mb && ctx.model.peering.peers(ma, mb) && ip_a != ip_b {
            return Some((ip_a, ma, ip_b, mb));
        }
    }
    None
}

fn server_flow_frame(ctx: &WeekContext<'_>, rng: &mut SmallRng) -> (Vec<u8>, usize) {
    let servers = ctx.model.servers.servers();
    for _ in 0..6 {
        let mut sidx = ctx.draw_server(rng);

        // Counterparty: an eyeball client, or another server (m2m).
        let m2m = !ctx.m2m_peers.is_empty() && rng.gen::<f64>() < ctx.cfg.p_m2m;
        let (client_ip, client_as) = if m2m {
            let peer = ctx.m2m_peers[rng.gen_range(0..ctx.m2m_peers.len())];
            if peer == sidx {
                continue;
            }
            let p = &servers[peer as usize];
            (p.ip, ctx.model.registry.index_of(p.asn).unwrap())
        } else {
            let c = ctx.draw_client(rng);
            match ctx.client_addr(c) {
                Some(v) => v,
                None => continue,
            }
        };
        let m_client = ctx.gateway[client_as as usize];

        // CDN re-route: some members source this org's content from
        // deployments behind *other* members instead of the direct link.
        {
            let s = &servers[sidx as usize];
            let is_cloudfront = s.service == ServiceTag::CloudFront;
            if !is_cloudfront {
                if let Some(member_list) = ctx.org_members.get(&s.org) {
                    let theta = ctx.theta(s.org, m_client);
                    if rng.gen::<f64>() > theta {
                        // Choose an alternative member-hosted deployment.
                        let candidates: Vec<MemberId> = member_list
                            .iter()
                            .copied()
                            .filter(|m| {
                                *m != m_client && ctx.model.peering.peers(*m, m_client)
                            })
                            .collect();
                        if !candidates.is_empty() {
                            let m = candidates[rng.gen_range(0..candidates.len())];
                            if let Some(pool) =
                                ctx.org_member_servers.get(&(s.org, m.0))
                            {
                                sidx = pool[rng.gen_range(0..pool.len())];
                            }
                        }
                    }
                }
            }
        }

        let server = &servers[sidx as usize];
        let server_as = ctx.model.registry.index_of(server.asn).unwrap();
        let m_server = ctx.gateway[server_as as usize];
        if m_server == m_client || !ctx.model.peering.peers(m_server, m_client) {
            continue; // stays inside one member / no public peering: invisible
        }

        let org = ctx.model.orgs.get(server.org);

        // Service port for this flow.
        let week_factor =
            1.0 + ctx.cfg.https_weekly_drift * f64::from(ctx.week.0.saturating_sub(35));
        let https = server.https_in(ctx.week)
            && rng.gen::<f64>() < (0.22 * week_factor).min(0.9);
        let rtmp = !https && server.flags.has(ServerFlags::RTMP) && rng.gen::<f64>() < 0.35;
        let port: u16 = if https {
            443
        } else if rtmp {
            1935
        } else if server.flags.has(ServerFlags::PORT_8080) {
            8080 // an 8080 server serves on 8080, not both
        } else {
            80
        };

        let response = rng.gen::<f64>() < ctx.cfg.p_response;
        let ephemeral: u16 = rng.gen_range(32768..61000);

        let (payload_bytes, wire): (Vec<u8>, usize) = if https {
            if response {
                (payload::tls_record(118, rng), frame_len::DATA)
            } else {
                (payload::tls_record(90, rng), frame_len::REQUEST)
            }
        } else if rtmp {
            (payload::rtmp_chunk(110, rng), frame_len::DATA)
        } else if response {
            if rng.gen::<f64>() < ctx.cfg.p_response_headers {
                (
                    payload::http_response(server_token(org.kind), rng.gen_range(500..2_000_000), rng),
                    frame_len::RESPONSE_HEAD,
                )
            } else {
                (payload::content_bytes(118, rng), frame_len::DATA)
            }
        } else {
            // Request direction.
            let has_headers = rng.gen::<f64>() < ctx.cfg.p_request_headers;
            // Only a minority of server IPs ever expose a recoverable
            // URI in snippets (paper §2.4: 23.8 %).
            let emits_uri = ctx.server_emits_uris(server.ip, org.uri_share * 0.35);
            if has_headers {
                // URI exposure strongly co-occurs with proper reverse DNS:
                // infrastructure without PTRs mostly serves embedded assets
                // fetched with SNI/absolute URIs that stay outside the
                // snippet. (This keeps the paper's step-3 population small.)
                let ptr_gate = server.flags.has(ServerFlags::HAS_PTR)
                    || rng.gen::<f64>() < 0.12;
                let domain = if emits_uri && ptr_gate && !org.domains.is_empty() {
                    if rng.gen::<f64>() < ctx.cfg.p_cross_org_uri {
                        // Embedded third-party content: the Host names
                        // another organization's domain.
                        let other = ctx.model.orgs.get(ixp_netmodel::OrgId(
                            rng.gen_range(0..ctx.model.orgs.len() as u32),
                        ));
                        other.domains.first().cloned().unwrap_or_default()
                    } else {
                        let u: f64 = rng.gen();
                        let k = (u * u * org.domains.len() as f64) as usize;
                        org.domains[k.min(org.domains.len() - 1)].clone()
                    }
                } else {
                    // Host header hidden beyond the snippet / absolute-form
                    // noise: emit a request line only.
                    String::new()
                };
                if domain.is_empty() {
                    let mut p = payload::http_request("x", rng.gen(), rng);
                    // Truncate before the Host header so no URI leaks.
                    if let Some(pos) = p.windows(6).position(|w| w == b"Host: ") {
                        p.truncate(pos);
                    }
                    (p, frame_len::REQUEST)
                } else {
                    (payload::http_request(&domain, rng.gen(), rng), frame_len::REQUEST)
                }
            } else {
                (payload::content_bytes(100, rng), frame_len::REQUEST)
            }
        };

        let (src_ip, dst_ip, sport, dport, src_mac, dst_mac) = if response {
            (server.ip, client_ip, port, ephemeral, mac(m_server), mac(m_client))
        } else {
            (client_ip, server.ip, ephemeral, port, mac(m_client), mac(m_server))
        };
        return tcp_frame(src_mac, dst_mac, src_ip, dst_ip, sport, dport, &payload_bytes, wire, rng);
    }
    // Could not build a server flow (degenerate tiny worlds): fall back.
    background_udp_frame(ctx, rng)
}

fn server_token(kind: OrgKind) -> &'static str {
    match kind {
        OrgKind::Cdn | OrgKind::DataCenterCdn => "AkamaiGHost-sim",
        OrgKind::Cloud => "AmazonS3-sim",
        OrgKind::Content => "gws-sim",
        OrgKind::Streamer => "Flussonic-sim",
        _ => "nginx/1.2.1",
    }
}

fn background_tcp_frame(ctx: &WeekContext<'_>, rng: &mut SmallRng) -> (Vec<u8>, usize) {
    if let Some((a, ma, b, mb)) = client_pair(ctx, rng) {
        let fake_443 = rng.gen::<f64>() < ctx.cfg.p_fake_443;
        let (sport, dport) = if fake_443 {
            (rng.gen_range(32768..61000), 443)
        } else {
            const SERVICES: [u16; 6] = [25, 22, 6881, 51413, 993, 5222];
            (rng.gen_range(32768..61000u16), SERVICES[rng.gen_range(0..SERVICES.len())])
        };
        let payload_bytes = if fake_443 {
            payload::tls_record(90, rng) // VPN-over-443 looks TLS-ish too
        } else {
            payload::content_bytes(96, rng)
        };
        let wire = if rng.gen::<f64>() < 0.4 { frame_len::DATA } else { frame_len::ACK + 120 };
        return tcp_frame(mac(ma), mac(mb), a, b, sport, dport, &payload_bytes, wire, rng);
    }
    arp_frame(rng)
}

fn background_udp_frame(ctx: &WeekContext<'_>, rng: &mut SmallRng) -> (Vec<u8>, usize) {
    if let Some((a, ma, b, mb)) = client_pair(ctx, rng) {
        let dns = rng.gen::<f64>() < 0.35;
        let (payload_bytes, wire, dport) = if dns {
            (payload::dns_query(rng), frame_len::UDP_SMALL, 53u16)
        } else {
            (
                payload::content_bytes(100, rng),
                frame_len::UDP_LARGE,
                rng.gen_range(1024..65000u16),
            )
        };
        return udp_frame(
            mac(ma),
            mac(mb),
            a,
            b,
            rng.gen_range(1024..65000),
            dport,
            &payload_bytes,
            wire,
        );
    }
    arp_frame(rng)
}

fn icmp_frame(ctx: &WeekContext<'_>, rng: &mut SmallRng) -> (Vec<u8>, usize) {
    if let Some((a, ma, b, mb)) = client_pair(ctx, rng) {
        let wire = frame_len::ICMP;
        let ip_payload_len = wire - ethernet::HEADER_LEN - ipv4::HEADER_LEN;
        let mut buf = vec![0u8; wire.min(SNIPPET_LEN)];
        emit_eth_ip(
            &mut buf,
            mac(ma),
            mac(mb),
            a,
            b,
            Protocol::Icmp,
            ip_payload_len,
            rng,
        );
        let l4 = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
        let mut icmp = ixp_wire::icmp::Packet::new_unchecked(&mut buf[l4..]);
        icmp.emit_echo(ixp_wire::icmp::Message::EchoRequest, rng.gen(), rng.gen());
        return (buf, wire);
    }
    arp_frame(rng)
}

fn other_transport_frame(ctx: &WeekContext<'_>, rng: &mut SmallRng) -> (Vec<u8>, usize) {
    if let Some((a, ma, b, mb)) = client_pair(ctx, rng) {
        let wire = 900;
        let ip_payload_len = wire - ethernet::HEADER_LEN - ipv4::HEADER_LEN;
        let mut buf = vec![0u8; wire.min(SNIPPET_LEN)];
        let proto = if rng.gen::<bool>() { Protocol::Gre } else { Protocol::Esp };
        emit_eth_ip(&mut buf, mac(ma), mac(mb), a, b, proto, ip_payload_len, rng);
        return (buf, wire);
    }
    arp_frame(rng)
}

fn ipv6_frame(ctx: &WeekContext<'_>, rng: &mut SmallRng) -> (Vec<u8>, usize) {
    // Native IPv6 between two member ports; the pipeline only needs the
    // EtherType to classify (and discard) it.
    let n_members = ctx.model.registry.members_at(ctx.week).len().max(2) as u32;
    let ma = MemberId(rng.gen_range(0..n_members));
    let mb = MemberId(rng.gen_range(0..n_members));
    let wire = frame_len::OTHER;
    let mut buf = vec![0u8; wire.min(SNIPPET_LEN)];
    let eth = ethernet::Repr {
        src_addr: mac(ma),
        dst_addr: mac(mb),
        ethertype: ixp_wire::EtherType::Ipv6,
    };
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
    buf[ethernet::HEADER_LEN] = 0x60; // IPv6 version nibble
    for b in buf[ethernet::HEADER_LEN + 1..].iter_mut() {
        *b = rng.gen();
    }
    (buf, wire)
}

fn arp_frame(rng: &mut SmallRng) -> (Vec<u8>, usize) {
    let wire = 60;
    let mut buf = vec![0u8; wire];
    let eth = ethernet::Repr {
        src_addr: EthernetAddress([0x02, 0xFE, 0, 0, 0, rng.gen()]),
        dst_addr: EthernetAddress::BROADCAST,
        ethertype: ixp_wire::EtherType::Arp,
    };
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
    (buf, wire)
}

/// IXP-management / non-member traffic: valid IPv4, but at least one MAC is
/// not a member port (monitoring boxes, route servers).
fn local_frame(ctx: &WeekContext<'_>, rng: &mut SmallRng) -> (Vec<u8>, usize) {
    let infra = EthernetAddress([0x02, 0xFD, 0, 0, 0, rng.gen_range(1..200)]);
    let n_members = ctx.model.registry.members_at(ctx.week).len().max(1) as u32;
    let member = mac(MemberId(rng.gen_range(0..n_members)));
    let wire = 520;
    let ip_payload_len = wire - ethernet::HEADER_LEN - ipv4::HEADER_LEN;
    let mut buf = vec![0u8; wire.min(SNIPPET_LEN)];
    let (src_mac, dst_mac) = if rng.gen::<bool>() { (infra, member) } else { (member, infra) };
    emit_eth_ip(
        &mut buf,
        src_mac,
        dst_mac,
        Ipv4Addr::new(10, 255, rng.gen(), rng.gen()),
        Ipv4Addr::new(10, 255, rng.gen(), rng.gen()),
        Protocol::Udp,
        ip_payload_len,
        rng,
    );
    (buf, wire)
}

fn mac(m: MemberId) -> EthernetAddress {
    EthernetAddress::from_member_id(m.0)
}

/// Emit Ethernet + IPv4 headers into `buf` (which may be shorter than the
/// claimed wire length — snippet semantics).
#[allow(clippy::too_many_arguments)]
fn emit_eth_ip(
    buf: &mut [u8],
    src_mac: EthernetAddress,
    dst_mac: EthernetAddress,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    protocol: Protocol,
    ip_payload_len: usize,
    rng: &mut SmallRng,
) {
    let eth = ethernet::Repr { src_addr: src_mac, dst_addr: dst_mac, ethertype: ixp_wire::EtherType::Ipv4 };
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
    let ip = ipv4::Repr {
        src_addr: src_ip,
        dst_addr: dst_ip,
        protocol,
        payload_len: ip_payload_len,
        ttl: rng.gen_range(40..64),
    };
    ip.emit(&mut ipv4::Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]))
        .expect("ip emit");
}

/// Build a TCP frame snippet. `wire` is the claimed on-the-wire length; the
/// returned buffer holds at most the sFlow snippet.
#[allow(clippy::too_many_arguments)]
fn tcp_frame(
    src_mac: EthernetAddress,
    dst_mac: EthernetAddress,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    sport: u16,
    dport: u16,
    payload_bytes: &[u8],
    wire: usize,
    rng: &mut SmallRng,
) -> (Vec<u8>, usize) {
    let headers = ethernet::HEADER_LEN + ipv4::HEADER_LEN + tcp::HEADER_LEN;
    let wire = wire.max(headers + payload_bytes.len().min(74));
    let ip_payload_len = wire - ethernet::HEADER_LEN - ipv4::HEADER_LEN;
    let snip = wire.min(SNIPPET_LEN);
    let mut buf = vec![0u8; snip];
    emit_eth_ip(&mut buf, src_mac, dst_mac, src_ip, dst_ip, Protocol::Tcp, ip_payload_len, rng);
    let l4 = &mut buf[ethernet::HEADER_LEN + ipv4::HEADER_LEN..];
    let tcp_repr = tcp::Repr {
        src_port: sport,
        dst_port: dport,
        seq: rng.gen(),
        ack: rng.gen(),
        flags: tcp::Flags::PSH | tcp::Flags::ACK,
        window: rng.gen_range(8_000..65_000),
    };
    // Emit header fields directly (checksum covers only the snippet bytes;
    // snippets cannot be checksum-verified anyway, as in real sFlow).
    if l4.len() >= tcp::HEADER_LEN {
        let avail = l4.len() - tcp::HEADER_LEN;
        let n = avail.min(payload_bytes.len());
        l4[tcp::HEADER_LEN..tcp::HEADER_LEN + n].copy_from_slice(&payload_bytes[..n]);
        tcp_repr
            .emit(&mut tcp::Packet::new_unchecked(&mut l4[..]), src_ip, dst_ip)
            .expect("tcp emit");
    }
    (buf, wire)
}

/// Build a UDP frame snippet.
#[allow(clippy::too_many_arguments)]
fn udp_frame(
    src_mac: EthernetAddress,
    dst_mac: EthernetAddress,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    sport: u16,
    dport: u16,
    payload_bytes: &[u8],
    wire: usize,
) -> (Vec<u8>, usize) {
    let headers = ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN;
    let wire = wire.max(headers + payload_bytes.len().min(86));
    let ip_payload_len = wire - ethernet::HEADER_LEN - ipv4::HEADER_LEN;
    let snip = wire.min(SNIPPET_LEN);
    let mut buf = vec![0u8; snip];
    // UDP needs no rng for headers; reuse a throwaway for the IP TTL.
    let mut ttl_rng = SmallRng::seed_from_u64(u64::from(u32::from(src_ip)) ^ 0x77);
    emit_eth_ip(
        &mut buf,
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        Protocol::Udp,
        ip_payload_len,
        &mut ttl_rng,
    );
    let l4 = &mut buf[ethernet::HEADER_LEN + ipv4::HEADER_LEN..];
    if l4.len() >= udp::HEADER_LEN {
        let avail = l4.len() - udp::HEADER_LEN;
        let n = avail.min(payload_bytes.len());
        l4[udp::HEADER_LEN..udp::HEADER_LEN + n].copy_from_slice(&payload_bytes[..n]);
        let udp_repr = udp::Repr {
            src_port: sport,
            dst_port: dport,
            payload_len: ip_payload_len - udp::HEADER_LEN,
        };
        udp_repr
            .emit(&mut udp::Packet::new_unchecked(&mut l4[..]), src_ip, dst_ip)
            .expect("udp emit");
    }
    (buf, wire)
}
