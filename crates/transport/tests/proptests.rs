//! Property tests: the wire decoders and the intake must fail closed on
//! arbitrary, truncated, and bit-flipped bytes — no panics, no
//! over-reads, and exact conservation accounting on every path.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use ixp_transport::flow::FlowRecord;
use ixp_transport::template::{TemplateCache, TemplateCacheConfig};
use ixp_transport::{
    ipfix, netflow5, netflow9, Drained, TransportConfig, TransportIntake,
};

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(src, dst, src_port, dst_port, proto, packets, bytes)| FlowRecord {
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            src_port,
            dst_port,
            proto,
            packets: u64::from(packets),
            bytes: u64::from(bytes),
        })
}

/// A well-formed packet of any of the three flow protocols, with or
/// without its template announcement.
fn arb_packet() -> impl Strategy<Value = Vec<u8>> {
    (
        0u8..3,
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        proptest::collection::vec(arb_record(), 0..8),
    )
        .prop_map(|(proto, sequence, domain, announce, records)| {
            let fields = netflow9::encode::flow_template_fields();
            let template = if announce { Some(&fields[..]) } else { None };
            match proto {
                0 => netflow5::encode(&netflow5::V5Packet {
                    sequence,
                    engine: (0, 1),
                    sampling_interval: 1,
                    records: records.into_iter().take(30).collect(),
                }),
                1 => netflow9::encode::packet(sequence, domain, 260, template, &records),
                _ => ipfix::encode::packet(sequence, domain, 300, template, &records),
            }
        })
}

fn drained_flows(work: &[Drained]) -> usize {
    work.iter()
        .map(|d| match d {
            Drained::Flows { records, .. } => records.len(),
            Drained::Sflow { .. } => 0,
        })
        .sum()
}

proptest! {
    /// Arbitrary bytes through the full intake: never a panic, every
    /// packet lands in exactly one bucket.
    #[test]
    fn arbitrary_bytes_never_panic_and_always_account(
        packets in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..256), 0..64),
    ) {
        let mut intake = TransportIntake::new(TransportConfig::default());
        for (i, packet) in packets.iter().enumerate() {
            intake.offer(i as u64 % 4, packet);
            intake.drain(8);
            prop_assert!(intake.fully_accounted(), "{:?}", intake.stats());
        }
        let s = intake.finish();
        prop_assert!(intake.fully_accounted(), "{s:?}");
        prop_assert_eq!(s.offered, packets.len() as u64);
    }

    /// Every proper prefix of a well-formed packet decodes to an error
    /// or parks — never panics, never fabricates records beyond the cut.
    #[test]
    fn truncation_at_every_cut_fails_closed(packet in arb_packet()) {
        for cut in 0..packet.len() {
            let mut intake = TransportIntake::new(TransportConfig::default());
            intake.offer(1, &packet[..cut]);
            intake.drain(1);
            intake.finish();
            prop_assert!(intake.fully_accounted(), "cut {cut}: {:?}", intake.stats());
        }
    }

    /// A single bit flip anywhere in a well-formed packet is survivable:
    /// the intake accepts, rejects, or parks it — with exact accounting
    /// either way.
    #[test]
    fn bit_flips_never_panic(packet in arb_packet(), at in any::<u16>(), bit in 0u8..8) {
        let mut flipped = packet.clone();
        let i = usize::from(at) % flipped.len().max(1);
        if let Some(b) = flipped.get_mut(i) {
            *b ^= 1 << bit;
        }
        let mut intake = TransportIntake::new(TransportConfig::default());
        intake.offer(1, &flipped);
        intake.drain(1);
        let s = intake.finish();
        prop_assert!(intake.fully_accounted(), "{s:?}");
        prop_assert_eq!(s.received, 1);
    }

    /// Raw decoder calls on arbitrary bytes return a typed fault or a
    /// bounded outcome — no panics, no over-reads past the slice.
    #[test]
    fn raw_decoders_are_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = netflow5::decode(&bytes);
        let mut cache = TemplateCache::new(TemplateCacheConfig::default());
        let _ = netflow9::decode(&bytes, 1, &mut cache);
        let _ = ipfix::decode(&bytes, 1, &mut cache);
    }

    /// NetFlow v5 encode → decode round-trips the records exactly
    /// (zero-record v5 packets are rejected by design, so start at 1).
    #[test]
    fn v5_round_trips(
        sequence in any::<u32>(),
        records in proptest::collection::vec(arb_record(), 1..30),
    ) {
        let packet = netflow5::encode(&netflow5::V5Packet {
            sequence,
            engine: (3, 7),
            sampling_interval: 1,
            records: records.clone(),
        });
        let decoded = netflow5::decode(&packet).expect("own encoding must decode");
        prop_assert_eq!(decoded.sequence, sequence);
        prop_assert_eq!(decoded.records, records);
    }

    /// Templated encode → decode round-trips through a cold cache when
    /// the template is announced in-band, for both v9 and IPFIX.
    #[test]
    fn templated_round_trips(
        sequence in any::<u32>(),
        domain in any::<u32>(),
        is_ipfix in any::<bool>(),
        records in proptest::collection::vec(arb_record(), 0..12),
    ) {
        let fields = netflow9::encode::flow_template_fields();
        let packet = if is_ipfix {
            ipfix::encode::packet(sequence, domain, 300, Some(&fields), &records)
        } else {
            netflow9::encode::packet(sequence, domain, 260, Some(&fields), &records)
        };
        let mut intake = TransportIntake::new(TransportConfig::default());
        intake.offer(9, &packet);
        let work = intake.drain(1);
        prop_assert_eq!(drained_flows(&work), records.len());
        let s = intake.finish();
        prop_assert_eq!(s.accepted, 1);
        prop_assert_eq!(s.flows, records.len() as u64);
    }

    /// The state codec survives arbitrary damage: any byte-suffix
    /// replacement either restores an equivalent intake or fails with a
    /// typed error — never a panic.
    #[test]
    fn state_restore_is_total(
        packets in proptest::collection::vec(arb_packet(), 0..8),
        damage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut intake = TransportIntake::new(TransportConfig::default());
        for (i, packet) in packets.iter().enumerate() {
            intake.offer(i as u64, packet);
        }
        intake.drain(4); // leave a mix of inbox / parked / decoded state
        let mut blob = intake.save_state();
        let keep = blob.len().saturating_sub(damage.len());
        blob.truncate(keep);
        blob.extend_from_slice(&damage);
        let _ = TransportIntake::restore_from(&blob);
    }
}
