//! Bounded per-(peer, observation-domain) template cache for NetFlow v9
//! and IPFIX.
//!
//! Templates arrive on the same lossy UDP stream as the data records that
//! need them, so the cache is where transport robustness is won or lost:
//!
//! * **bounded** — at most [`TemplateCacheConfig::max_domains`] domains
//!   and [`TemplateCacheConfig::max_templates_per_domain`] templates per
//!   domain; over budget, the least-recently-used entry is evicted (a
//!   deterministic logical-tick LRU, no wall clock);
//! * **versioned** — each template carries a revision, bumped on
//!   *refresh-on-conflict*: a re-announcement with a different field
//!   layout replaces the old definition immediately (RFC 7011 §8 — the
//!   newest definition wins) and the bump is visible to metrics;
//! * **accounted** — installs, refreshes, and evictions are counted, and
//!   eviction of a still-needed template shows up downstream as
//!   `template_missing_dropped`, never as a silent decode of stale
//!   layouts.

use std::collections::BTreeMap;

/// A domain is one exporter's template namespace: `(peer, odid)` where
/// `odid` is the v9 source id or the IPFIX observation domain id.
pub type DomainKey = (u64, u32);

/// One cached template definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// `(information element id, field length)` pairs, in wire order.
    pub fields: Vec<(u16, u16)>,
    /// Sum of the field lengths: the fixed data-record size.
    pub record_len: u32,
    /// Definition revision, bumped on refresh-on-conflict.
    pub revision: u32,
    /// Logical LRU tick of the last install or lookup.
    pub(crate) last_used: u64,
}

/// Per-domain template table.
#[derive(Debug, Default)]
pub(crate) struct Domain {
    /// Logical LRU tick of the domain's last touch.
    pub(crate) last_used: u64,
    /// template id → definition.
    pub(crate) templates: BTreeMap<u16, Template>,
}

/// Size bounds of the cache.
#[derive(Debug, Clone, Copy)]
pub struct TemplateCacheConfig {
    /// Most domains tracked at once.
    pub max_domains: usize,
    /// Most templates kept per domain.
    pub max_templates_per_domain: usize,
}

impl Default for TemplateCacheConfig {
    fn default() -> TemplateCacheConfig {
        TemplateCacheConfig { max_domains: 64, max_templates_per_domain: 64 }
    }
}

/// What installing a definition did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Install {
    /// First sighting of this template id in the domain.
    New,
    /// Same id, same layout: a routine periodic re-announcement.
    Unchanged,
    /// Same id, different layout: the definition was replaced and its
    /// revision bumped (refresh-on-conflict).
    Refreshed,
}

/// The bounded LRU template store.
#[derive(Debug, Default)]
pub struct TemplateCache {
    pub(crate) config: TemplateCacheConfig,
    pub(crate) domains: BTreeMap<DomainKey, Domain>,
    /// Monotonic logical clock driving the LRU order.
    pub(crate) tick: u64,
    /// Templates installed (first sightings).
    pub(crate) installed: u64,
    /// Refresh-on-conflict replacements.
    pub(crate) refreshed: u64,
    /// Definitions evicted by either bound.
    pub(crate) evicted: u64,
}

impl TemplateCache {
    /// An empty cache with the given bounds.
    pub fn new(config: TemplateCacheConfig) -> TemplateCache {
        TemplateCache { config, ..TemplateCache::default() }
    }

    /// Total templates currently cached, across domains.
    pub fn len(&self) -> usize {
        self.domains.values().map(|d| d.templates.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// (installed, refreshed, evicted) lifetime counts.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.installed, self.refreshed, self.evicted)
    }

    /// Install (or refresh) a definition for `(key, id)`.
    pub fn install(&mut self, key: DomainKey, id: u16, fields: Vec<(u16, u16)>) -> Install {
        self.tick = self.tick.saturating_add(1);
        let tick = self.tick;
        let record_len =
            fields.iter().fold(0u32, |acc, (_, len)| acc.saturating_add(u32::from(*len)));

        // Bound the domain count before admitting a new one.
        if !self.domains.contains_key(&key) && self.domains.len() >= self.config.max_domains {
            if let Some(oldest) = self.oldest_domain() {
                if let Some(gone) = self.domains.remove(&oldest) {
                    self.evicted = self.evicted.saturating_add(gone.templates.len() as u64);
                }
            }
        }
        let domain = self.domains.entry(key).or_default();
        domain.last_used = tick;

        let outcome = match domain.templates.get_mut(&id) {
            Some(existing) if existing.fields == fields => {
                existing.last_used = tick;
                Install::Unchanged
            }
            Some(existing) => {
                existing.revision = existing.revision.saturating_add(1);
                existing.fields = fields;
                existing.record_len = record_len;
                existing.last_used = tick;
                Install::Refreshed
            }
            None => {
                domain.templates.insert(
                    id,
                    Template { fields, record_len, revision: 1, last_used: tick },
                );
                Install::New
            }
        };
        if matches!(outcome, Install::Refreshed) {
            self.refreshed = self.refreshed.saturating_add(1);
        }
        if matches!(outcome, Install::New) {
            self.installed = self.installed.saturating_add(1);
            // Bound the per-domain table; evict its LRU template.
            if domain.templates.len() > self.config.max_templates_per_domain {
                let victim = domain
                    .templates
                    .iter()
                    .min_by_key(|(tid, t)| (t.last_used, **tid))
                    .map(|(tid, _)| *tid);
                if let Some(tid) = victim {
                    domain.templates.remove(&tid);
                    self.evicted = self.evicted.saturating_add(1);
                }
            }
        }
        outcome
    }

    /// Look up a definition, touching the LRU order.
    pub fn get(&mut self, key: DomainKey, id: u16) -> Option<&Template> {
        self.tick = self.tick.saturating_add(1);
        let tick = self.tick;
        let domain = self.domains.get_mut(&key)?;
        domain.last_used = tick;
        let t = domain.templates.get_mut(&id)?;
        t.last_used = tick;
        Some(&*t)
    }

    /// Whether `(key, id)` is cached, without touching the LRU order.
    pub fn contains(&self, key: DomainKey, id: u16) -> bool {
        self.domains.get(&key).is_some_and(|d| d.templates.contains_key(&id))
    }

    /// The least-recently-used domain key.
    fn oldest_domain(&self) -> Option<DomainKey> {
        self.domains.iter().min_by_key(|(k, d)| (d.last_used, **k)).map(|(k, _)| *k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(n: u16) -> Vec<(u16, u16)> {
        (0..n).map(|i| (i + 1, 4)).collect()
    }

    #[test]
    fn install_refresh_unchanged_lifecycle() {
        let mut c = TemplateCache::new(TemplateCacheConfig::default());
        assert_eq!(c.install((1, 0), 256, fields(2)), Install::New);
        assert_eq!(c.install((1, 0), 256, fields(2)), Install::Unchanged);
        assert_eq!(c.install((1, 0), 256, fields(3)), Install::Refreshed);
        let t = c.get((1, 0), 256).unwrap();
        assert_eq!(t.revision, 2);
        assert_eq!(t.record_len, 12);
        assert_eq!(c.counts(), (1, 1, 0));
    }

    #[test]
    fn per_domain_bound_evicts_lru_template() {
        let cfg = TemplateCacheConfig { max_domains: 4, max_templates_per_domain: 2 };
        let mut c = TemplateCache::new(cfg);
        c.install((1, 0), 256, fields(1));
        c.install((1, 0), 257, fields(1));
        // Touch 256 so 257 is the LRU victim.
        assert!(c.get((1, 0), 256).is_some());
        c.install((1, 0), 258, fields(1));
        assert!(c.contains((1, 0), 256));
        assert!(!c.contains((1, 0), 257), "LRU template survived the bound");
        assert!(c.contains((1, 0), 258));
        assert_eq!(c.counts(), (3, 0, 1));
    }

    #[test]
    fn domain_bound_evicts_lru_domain_with_accounting() {
        let cfg = TemplateCacheConfig { max_domains: 2, max_templates_per_domain: 8 };
        let mut c = TemplateCache::new(cfg);
        c.install((1, 0), 256, fields(1));
        c.install((1, 0), 257, fields(1));
        c.install((2, 0), 256, fields(1));
        // Touch domain 1 so domain 2 is the victim.
        assert!(c.get((1, 0), 256).is_some());
        c.install((3, 0), 256, fields(1));
        assert!(c.contains((1, 0), 256));
        assert!(!c.contains((2, 0), 256), "LRU domain survived the bound");
        let (installed, _, evicted) = c.counts();
        assert_eq!(installed, 4);
        assert_eq!(evicted, 1);
        assert_eq!(c.len(), 3);
    }
}
