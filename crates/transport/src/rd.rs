//! Bounds-checked big-endian reader for the flow-export decoders.
//!
//! Mirrors the sFlow XDR `Reader` discipline: every access is checked,
//! over-reads surface as [`DecodeFault::Truncated`], and the cursor
//! position is available so a decoder can prove it consumed exactly the
//! length a packet claimed. No method panics on any input.

use crate::error::DecodeFault;

/// Cursor over one received packet.
#[derive(Debug)]
pub struct Rd<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    /// Start at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Rd<'a> {
        Rd { data, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeFault> {
        let b = *self.data.get(self.pos).ok_or(DecodeFault::Truncated)?;
        self.pos = self.pos.saturating_add(1);
        Ok(b)
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeFault> {
        let raw = self.take(2)?;
        match raw {
            [a, b] => Ok(u16::from_be_bytes([*a, *b])),
            _ => Err(DecodeFault::Truncated),
        }
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeFault> {
        let raw = self.take(4)?;
        match raw {
            [a, b, c, d] => Ok(u32::from_be_bytes([*a, *b, *c, *d])),
            _ => Err(DecodeFault::Truncated),
        }
    }

    /// Read `n` bytes (`n` ≤ 8) as a big-endian unsigned integer — how
    /// NetFlow v9/IPFIX encode variable-width counters.
    pub fn be_uint(&mut self, n: usize) -> Result<u64, DecodeFault> {
        if n > 8 {
            return Err(DecodeFault::Inconsistent);
        }
        let raw = self.take(n)?;
        let mut v = 0u64;
        for b in raw {
            v = (v << 8) | u64::from(*b);
        }
        Ok(v)
    }

    /// Take the next `n` bytes as a slice.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeFault> {
        let end = self.pos.checked_add(n).ok_or(DecodeFault::Truncated)?;
        let s = self.data.get(self.pos..end).ok_or(DecodeFault::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), DecodeFault> {
        self.take(n).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_bounds_checked() {
        let mut r = Rd::new(&[1, 2, 3]);
        assert_eq!(r.u16(), Ok(0x0102));
        assert_eq!(r.u16(), Err(DecodeFault::Truncated));
        assert_eq!(r.u8(), Ok(3));
        assert_eq!(r.u8(), Err(DecodeFault::Truncated));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn be_uint_handles_odd_widths() {
        let mut r = Rd::new(&[0, 0, 1, 0xFF]);
        assert_eq!(r.be_uint(3), Ok(1));
        assert_eq!(r.be_uint(1), Ok(255));
        assert_eq!(Rd::new(&[0; 16]).be_uint(9), Err(DecodeFault::Inconsistent));
    }
}
