//! Live transport metrics (ixp-obs instrumentation).
//!
//! [`TransportMetrics`] mirrors [`TransportStats`](crate::intake::TransportStats)
//! as registry metrics under the `transport_*` families, the same shape
//! the collector uses for `sflow_*`. The intake synchronizes the bundle
//! after every `drain`/`finish` by *topping counters up to* the stats
//! values (counters only move forward), which makes the bundle safe to
//! bind late: a restored intake replays its whole history into a fresh
//! registry and the snapshot comes out byte-identical to an
//! uninterrupted run's — the property the supervised resume gate checks.
//!
//! A default-constructed (detached) bundle counts into thin air, so the
//! uninstrumented path stays cheap.

use ixp_obs::{Counter, Gauge, Registry};

use crate::intake::TransportStats;

/// Counter/gauge bundle for transport intake accounting.
#[derive(Debug, Clone, Default)]
pub struct TransportMetrics {
    /// Packets offered at the front door (`transport_offered_total`).
    pub offered: Counter,
    /// Packets that reached the decode stage.
    pub received: Counter,
    /// Packets fully decoded and handed downstream.
    pub accepted: Counter,
    /// Accepted packets by protocol: sFlow passthrough.
    pub sflow: Counter,
    /// Accepted packets by protocol: NetFlow v5.
    pub v5: Counter,
    /// Accepted packets by protocol: NetFlow v9.
    pub v9: Counter,
    /// Accepted packets by protocol: IPFIX.
    pub ipfix: Counter,
    /// Retransmit duplicates suppressed.
    pub duplicates: Counter,
    /// Decode errors: ran out of bytes.
    pub truncated: Counter,
    /// Decode errors: unknown version field.
    pub bad_version: Counter,
    /// Decode errors: inconsistent framing.
    pub inconsistent: Counter,
    /// Packets shed at the inbox bound.
    pub shed: Counter,
    /// Template-less packets dropped at the parking budget or flush.
    pub template_missing_dropped: Counter,
    /// Flow records decoded out of accepted packets.
    pub flows: Counter,
    /// Templates installed (first sightings).
    pub templates_installed: Counter,
    /// Templates refreshed-on-conflict.
    pub templates_refreshed: Counter,
    /// Templates evicted by a cache bound.
    pub templates_evicted: Counter,
    /// Packets currently parked awaiting a template.
    pub pending: Gauge,
    /// Bytes currently parked awaiting a template.
    pub pending_bytes: Gauge,
}

impl TransportMetrics {
    /// A metrics bundle counting into thin air (no registry).
    pub fn detached() -> TransportMetrics {
        TransportMetrics::default()
    }

    /// Register the bundle in `registry` under the `transport_*` families.
    pub fn register(registry: &Registry) -> TransportMetrics {
        let proto =
            |p: &str| registry.counter(&format!("transport_packets_total{{proto=\"{p}\"}}"));
        let kind =
            |k: &str| registry.counter(&format!("transport_decode_errors_total{{kind=\"{k}\"}}"));
        let tmpl =
            |e: &str| registry.counter(&format!("transport_templates_total{{event=\"{e}\"}}"));
        TransportMetrics {
            offered: registry.counter("transport_offered_total"),
            received: registry.counter("transport_received_total"),
            accepted: registry.counter("transport_accepted_total"),
            sflow: proto("sflow"),
            v5: proto("netflow5"),
            v9: proto("netflow9"),
            ipfix: proto("ipfix"),
            duplicates: registry.counter("transport_duplicates_total"),
            truncated: kind("truncated"),
            bad_version: kind("bad_version"),
            inconsistent: kind("inconsistent"),
            shed: registry.counter("transport_shed_total"),
            template_missing_dropped: registry
                .counter("transport_template_missing_dropped_total"),
            flows: registry.counter("transport_flow_records_total"),
            templates_installed: tmpl("installed"),
            templates_refreshed: tmpl("refreshed"),
            templates_evicted: tmpl("evicted"),
            pending: registry.gauge("transport_pending_packets"),
            pending_bytes: registry.gauge("transport_pending_bytes"),
        }
    }

    /// Top every counter up to the stats' current value (counters are
    /// monotonic, so syncing is an `add` of the shortfall) and set the
    /// gauges. `templates` is the cache's `(installed, refreshed,
    /// evicted)` triple.
    pub fn sync(&self, s: &TransportStats, templates: (u64, u64, u64)) {
        let top_up = |c: &Counter, target: u64| {
            let have = c.get();
            if target > have {
                c.add(target - have);
            }
        };
        top_up(&self.offered, s.offered);
        top_up(&self.received, s.received);
        top_up(&self.accepted, s.accepted);
        top_up(&self.sflow, s.sflow_datagrams);
        top_up(&self.v5, s.v5_packets);
        top_up(&self.v9, s.v9_packets);
        top_up(&self.ipfix, s.ipfix_packets);
        top_up(&self.duplicates, s.duplicates);
        top_up(&self.truncated, s.truncated);
        top_up(&self.bad_version, s.bad_version);
        top_up(&self.inconsistent, s.inconsistent);
        top_up(&self.shed, s.shed);
        top_up(&self.template_missing_dropped, s.template_missing_dropped);
        top_up(&self.flows, s.flows);
        top_up(&self.templates_installed, templates.0);
        top_up(&self.templates_refreshed, templates.1);
        top_up(&self.templates_evicted, templates.2);
        self.pending.set(s.pending);
        self.pending_bytes.set(s.pending_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_tops_up_monotonically() {
        let registry = Registry::new();
        let m = TransportMetrics::register(&registry);
        let mut s = TransportStats { offered: 5, received: 4, accepted: 3, ..Default::default() };
        m.sync(&s, (2, 1, 0));
        // Re-syncing the same stats is idempotent.
        m.sync(&s, (2, 1, 0));
        assert_eq!(m.offered.get(), 5);
        assert_eq!(m.templates_installed.get(), 2);
        s.offered = 9;
        m.sync(&s, (2, 1, 0));
        assert_eq!(m.offered.get(), 9);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("transport_offered_total"), Some(9));
        assert_eq!(
            snap.counter("transport_templates_total{event=\"installed\"}"),
            Some(2)
        );
    }
}
