//! The protocol-neutral flow record every decoder normalizes into.

use std::net::Ipv4Addr;

/// One unidirectional flow, as NetFlow v5/v9 or IPFIX exported it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Source IPv4 address (zero when the template carried none).
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number.
    pub proto: u8,
    /// Packets in the flow.
    pub packets: u64,
    /// Bytes in the flow.
    pub bytes: u64,
}

impl Default for FlowRecord {
    fn default() -> FlowRecord {
        FlowRecord {
            src: Ipv4Addr::UNSPECIFIED,
            dst: Ipv4Addr::UNSPECIFIED,
            src_port: 0,
            dst_port: 0,
            proto: 0,
            packets: 0,
            bytes: 0,
        }
    }
}

/// Information elements shared by NetFlow v9 and IPFIX (RFC 7012).
pub mod ie {
    /// Octet count of the flow.
    pub const IN_BYTES: u16 = 1;
    /// Packet count of the flow.
    pub const IN_PKTS: u16 = 2;
    /// IP protocol number.
    pub const PROTOCOL: u16 = 4;
    /// Transport source port.
    pub const L4_SRC_PORT: u16 = 7;
    /// IPv4 source address.
    pub const IPV4_SRC_ADDR: u16 = 8;
    /// Transport destination port.
    pub const L4_DST_PORT: u16 = 11;
    /// IPv4 destination address.
    pub const IPV4_DST_ADDR: u16 = 12;
}

/// Decode one fixed-layout data record described by `fields` from `r`.
/// Unknown information elements are skipped by their declared length;
/// known ones fill the normalized [`FlowRecord`]. Fail-closed: any field
/// running past the record's bytes is a decode fault for the whole set.
// ixp-lint: allow(schema-drift) NetFlow v9/IPFIX data-record layout is template-driven wire format, not the checkpoint ratchet
pub fn record_from_template(
    r: &mut crate::rd::Rd<'_>,
    fields: &[(u16, u16)],
) -> Result<FlowRecord, crate::error::DecodeFault> {
    let mut rec = FlowRecord::default();
    for (id, len) in fields {
        let len = usize::from(*len);
        match *id {
            ie::IPV4_SRC_ADDR if len == 4 => rec.src = Ipv4Addr::from(r.u32()?),
            ie::IPV4_DST_ADDR if len == 4 => rec.dst = Ipv4Addr::from(r.u32()?),
            ie::L4_SRC_PORT if len == 2 => rec.src_port = r.u16()?,
            ie::L4_DST_PORT if len == 2 => rec.dst_port = r.u16()?,
            ie::PROTOCOL if len == 1 => rec.proto = r.u8()?,
            ie::IN_BYTES if len <= 8 => rec.bytes = r.be_uint(len)?,
            ie::IN_PKTS if len <= 8 => rec.packets = r.be_uint(len)?,
            _ => r.skip(len)?,
        }
    }
    Ok(rec)
}
