//! IPFIX (RFC 7011): the IETF successor to NetFlow v9.
//!
//! An IPFIX message is a 16-byte header carrying its own **total length**
//! — the first thing the decoder proves against the bytes on the wire —
//! followed by sets framed exactly like v9 flowsets but with shifted ids:
//! 2 is a template set, 3 an options-template set, 256+ data sets, and
//! everything else reserved (an inconsistency here, since a conforming
//! exporter never emits one). Templates may carry enterprise-specific
//! information elements (top bit of the IE id set, followed by a 4-byte
//! enterprise number); those fields are cached with their enterprise bit
//! intact so the normalizer skips them by length instead of
//! misinterpreting them as standard elements. Variable-length fields
//! (declared length 0xFFFF) are rejected fail-closed: the flow workload
//! this collector models never uses them, and accepting them would let a
//! hostile exporter steer the cursor with attacker-controlled lengths.
//!
//! Like the v9 decoder this one is **packet-granular**: any data set
//! whose template is unknown suppresses all records from the message and
//! flags `missing_template`, so the intake can park the whole datagram
//! and replay it verbatim once the template shows up.

use crate::error::DecodeFault;
use crate::flow::{record_from_template, FlowRecord};
use crate::rd::Rd;
use crate::template::{Install, TemplateCache};

/// The version field an IPFIX message leads with.
pub const VERSION: u16 = 10;

/// Message header length fixed by RFC 7011.
const HEADER_LEN: usize = 16;

/// Set id of a template set.
const SET_TEMPLATE: u16 = 2;

/// Set id of an options-template set.
const SET_OPTIONS: u16 = 3;

/// First valid data-set id.
const FIRST_DATA_SET: u16 = 256;

/// The enterprise bit on an information-element id.
const ENTERPRISE_BIT: u16 = 0x8000;

/// The reserved variable-length field marker (unsupported, fail-closed).
const VARLEN: u16 = 0xFFFF;

/// Sanity cap on fields per template (mirrors the v9 decoder).
const MAX_TEMPLATE_FIELDS: usize = 128;

/// Sanity cap on sets per message.
const MAX_SETS: usize = 256;

/// What decoding one IPFIX message produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpfixOutcome {
    /// Export sequence number (counts data records for IPFIX, unlike v9).
    pub sequence: u32,
    /// The observation domain id — the template namespace.
    pub observation_domain: u32,
    /// Decoded data records (empty when `missing_template`).
    pub records: Vec<FlowRecord>,
    /// Templates newly installed by this message.
    pub installed: u32,
    /// Templates refreshed-on-conflict by this message.
    pub refreshed: u32,
    /// True when at least one data set referenced an unknown template:
    /// the message must be buffered and replayed, not decoded piecemeal.
    pub missing_template: bool,
}

/// Decode one IPFIX message against (and into) `cache`.
// ixp-lint: allow(schema-drift) IPFIX wire codec; the layout is fixed by RFC 7011, not the checkpoint ratchet
pub fn decode(
    data: &[u8],
    peer: u64,
    cache: &mut TemplateCache,
) -> Result<IpfixOutcome, DecodeFault> {
    let mut r = Rd::new(data);
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeFault::BadVersion(version));
    }
    // The header's own length claim must match the datagram exactly: a
    // short datagram is truncation, a long one is framing damage.
    let declared_len = usize::from(r.u16()?);
    if declared_len < HEADER_LEN || data.len() < declared_len {
        return Err(DecodeFault::Truncated);
    }
    if data.len() > declared_len {
        return Err(DecodeFault::Inconsistent);
    }
    r.skip(4)?; // export_time
    let sequence = r.u32()?;
    let observation_domain = r.u32()?;
    let key = (peer, observation_domain);

    let mut out = IpfixOutcome {
        sequence,
        observation_domain,
        records: Vec::new(),
        installed: 0,
        refreshed: 0,
        missing_template: false,
    };
    let mut sets = 0usize;
    while r.remaining() >= 4 {
        sets = sets.saturating_add(1);
        if sets > MAX_SETS {
            return Err(DecodeFault::Inconsistent);
        }
        let set_id = r.u16()?;
        let set_len = usize::from(r.u16()?);
        // The length covers the 4-byte set header itself.
        let body_len = set_len.checked_sub(4).ok_or(DecodeFault::Inconsistent)?;
        let body = r.take(body_len)?;
        match set_id {
            SET_TEMPLATE => templates(body, key, cache, &mut out)?,
            SET_OPTIONS => options_template(body)?,
            id if id < FIRST_DATA_SET => return Err(DecodeFault::Inconsistent),
            _ => data_set(body, key, set_id, cache, &mut out)?,
        }
    }
    if r.remaining() != 0 {
        // The total-length field already framed the message exactly, so
        // any straggler bytes mean a set length lied.
        return Err(DecodeFault::Inconsistent);
    }
    if out.missing_template {
        // Packet-granular: suppress records from the sets that did
        // resolve, so a buffered replay cannot double-count them.
        out.records.clear();
    }
    Ok(out)
}

/// Parse a template set body (set id 2): install each definition.
// ixp-lint: allow(schema-drift) IPFIX wire codec; the layout is fixed by RFC 7011, not the checkpoint ratchet
fn templates(
    body: &[u8],
    key: (u64, u32),
    cache: &mut TemplateCache,
    out: &mut IpfixOutcome,
) -> Result<(), DecodeFault> {
    let mut r = Rd::new(body);
    // ≥ 4: another (template_id, field_count) header fits; less is pad.
    while r.remaining() >= 4 {
        let template_id = r.u16()?;
        let field_count = usize::from(r.u16()?);
        if template_id < FIRST_DATA_SET || field_count == 0 || field_count > MAX_TEMPLATE_FIELDS {
            return Err(DecodeFault::Inconsistent);
        }
        let mut fields = Vec::with_capacity(field_count.min(MAX_TEMPLATE_FIELDS));
        for _ in 0..field_count {
            let ie = r.u16()?;
            let len = r.u16()?;
            if len == 0 || len == VARLEN {
                return Err(DecodeFault::Inconsistent);
            }
            if ie & ENTERPRISE_BIT != 0 {
                // Enterprise-specific element: a 4-byte enterprise number
                // follows. The id keeps its enterprise bit in the cache
                // so it can never collide with a standard element, and
                // the normalizer skips it by its declared length.
                r.skip(4)?;
            }
            fields.push((ie, len));
        }
        match cache.install(key, template_id, fields) {
            Install::New => out.installed = out.installed.saturating_add(1),
            Install::Refreshed => out.refreshed = out.refreshed.saturating_add(1),
            Install::Unchanged => {}
        }
    }
    if r.remaining() != 0 {
        return Err(DecodeFault::Truncated);
    }
    Ok(())
}

/// Parse an options-template set body (set id 3): validated but not
/// installed — options records describe the exporter, not flows.
// ixp-lint: allow(schema-drift) IPFIX wire codec; the layout is fixed by RFC 7011, not the checkpoint ratchet
fn options_template(body: &[u8]) -> Result<(), DecodeFault> {
    let mut r = Rd::new(body);
    while r.remaining() >= 6 {
        let template_id = r.u16()?;
        let field_count = usize::from(r.u16()?);
        let scope_count = usize::from(r.u16()?);
        if template_id < FIRST_DATA_SET
            || field_count == 0
            || field_count > MAX_TEMPLATE_FIELDS
            || scope_count > field_count
        {
            return Err(DecodeFault::Inconsistent);
        }
        for _ in 0..field_count {
            let ie = r.u16()?;
            let len = r.u16()?;
            if len == 0 || len == VARLEN {
                return Err(DecodeFault::Inconsistent);
            }
            if ie & ENTERPRISE_BIT != 0 {
                r.skip(4)?;
            }
        }
    }
    if r.remaining() > 3 {
        return Err(DecodeFault::Truncated);
    }
    Ok(())
}

/// Parse a data set body against its template, if known.
fn data_set(
    body: &[u8],
    key: (u64, u32),
    set_id: u16,
    cache: &mut TemplateCache,
    out: &mut IpfixOutcome,
) -> Result<(), DecodeFault> {
    let Some(template) = cache.get(key, set_id) else {
        out.missing_template = true;
        return Ok(());
    };
    let fields = template.fields.clone();
    let record_len = template.record_len as usize;
    if record_len == 0 {
        return Err(DecodeFault::Inconsistent);
    }
    let mut r = Rd::new(body);
    let mut n = 0u32;
    while r.remaining() >= record_len {
        out.records.push(record_from_template(&mut r, &fields)?);
        n = n.saturating_add(1);
    }
    // Remaining bytes must be 32-bit-alignment padding (< 4), otherwise
    // the set length and the record size disagree.
    if r.remaining() >= 4 || r.remaining() >= record_len {
        return Err(DecodeFault::Inconsistent);
    }
    if n == 0 {
        return Err(DecodeFault::Inconsistent);
    }
    Ok(())
}

/// Encoding — the generator/test side.
pub mod encode {
    use super::{HEADER_LEN, SET_TEMPLATE, VERSION};
    use crate::flow::FlowRecord;

    /// The canonical flow template (shared with the v9 generator).
    pub fn flow_template_fields() -> Vec<(u16, u16)> {
        crate::netflow9::encode::flow_template_fields()
    }

    /// Encode one data record under [`flow_template_fields`].
    fn push_record(out: &mut Vec<u8>, rec: &FlowRecord) {
        out.extend_from_slice(&rec.src.octets());
        out.extend_from_slice(&rec.dst.octets());
        out.extend_from_slice(&rec.src_port.to_be_bytes());
        out.extend_from_slice(&rec.dst_port.to_be_bytes());
        out.push(rec.proto);
        out.extend_from_slice(&(rec.packets as u32).to_be_bytes());
        out.extend_from_slice(&(rec.bytes as u32).to_be_bytes());
    }

    /// Build an IPFIX message: optional template set announcing
    /// `template` under `template_id`, then one data set of `records`.
    pub fn packet(
        sequence: u32,
        observation_domain: u32,
        template_id: u16,
        template: Option<&[(u16, u16)]>,
        records: &[FlowRecord],
    ) -> Vec<u8> {
        let mut sets: Vec<u8> = Vec::new();
        if let Some(fields) = template {
            let mut body = Vec::new();
            body.extend_from_slice(&template_id.to_be_bytes());
            body.extend_from_slice(&(fields.len() as u16).to_be_bytes());
            for (ie_id, len) in fields {
                body.extend_from_slice(&ie_id.to_be_bytes());
                body.extend_from_slice(&len.to_be_bytes());
            }
            sets.extend_from_slice(&SET_TEMPLATE.to_be_bytes());
            sets.extend_from_slice(&((body.len() + 4) as u16).to_be_bytes());
            sets.extend_from_slice(&body);
        }
        if !records.is_empty() {
            let mut body = Vec::new();
            for rec in records {
                push_record(&mut body, rec);
            }
            while body.len() % 4 != 0 {
                body.push(0);
            }
            sets.extend_from_slice(&template_id.to_be_bytes());
            sets.extend_from_slice(&((body.len() + 4) as u16).to_be_bytes());
            sets.extend_from_slice(&body);
        }
        let total = (HEADER_LEN + sets.len()) as u16;
        let mut out = Vec::with_capacity(usize::from(total));
        out.extend_from_slice(&VERSION.to_be_bytes());
        out.extend_from_slice(&total.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes()); // export_time
        out.extend_from_slice(&sequence.to_be_bytes());
        out.extend_from_slice(&observation_domain.to_be_bytes());
        out.extend_from_slice(&sets);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplateCacheConfig;
    use std::net::Ipv4Addr;

    fn rec(i: u8) -> FlowRecord {
        FlowRecord {
            src: Ipv4Addr::new(192, 168, 0, i),
            dst: Ipv4Addr::new(192, 168, 1, i),
            src_port: 6000 + u16::from(i),
            dst_port: 53,
            proto: 17,
            packets: 2,
            bytes: 240,
        }
    }

    fn cache() -> TemplateCache {
        TemplateCache::new(TemplateCacheConfig::default())
    }

    #[test]
    fn template_then_data_roundtrips() {
        let mut c = cache();
        let fields = encode::flow_template_fields();
        let records = vec![rec(1), rec(2), rec(3)];
        let bytes = encode::packet(5, 9, 300, Some(&fields), &records);
        let out = decode(&bytes, 2, &mut c).unwrap();
        assert_eq!(out.installed, 1);
        assert!(!out.missing_template);
        assert_eq!(out.records, records);
        assert_eq!(out.observation_domain, 9);
    }

    #[test]
    fn data_before_template_reports_missing_not_partial() {
        let mut c = cache();
        let bytes = encode::packet(1, 9, 300, None, &[rec(1)]);
        let out = decode(&bytes, 2, &mut c).unwrap();
        assert!(out.missing_template);
        assert!(out.records.is_empty(), "partial emission breaks replay");
    }

    #[test]
    fn total_length_lies_fail_closed() {
        let mut c = cache();
        let fields = encode::flow_template_fields();
        let good = encode::packet(1, 9, 300, Some(&fields), &[rec(1)]);
        // Truncated anywhere: always an error, never a panic.
        for cut in 0..good.len() {
            let mut c2 = cache();
            assert!(decode(&good[..cut], 2, &mut c2).is_err(), "cut {cut} accepted");
        }
        // Surplus bytes beyond the declared total length: inconsistent.
        let mut padded = good.clone();
        padded.push(0);
        assert_eq!(decode(&padded, 2, &mut c), Err(DecodeFault::Inconsistent));
        // A header length claim larger than the datagram: truncated.
        let mut lied = good;
        lied[2] = 0xFF;
        lied[3] = 0xFF;
        assert_eq!(decode(&lied, 2, &mut c), Err(DecodeFault::Truncated));
    }

    #[test]
    fn enterprise_fields_are_skipped_not_misread() {
        let mut c = cache();
        // Template: enterprise IE (id 0x8000|77, 4 bytes) then proto.
        let template_id = 300u16;
        let mut body = Vec::new();
        body.extend_from_slice(&template_id.to_be_bytes());
        body.extend_from_slice(&2u16.to_be_bytes());
        body.extend_from_slice(&(0x8000u16 | 77).to_be_bytes());
        body.extend_from_slice(&4u16.to_be_bytes());
        body.extend_from_slice(&9999u32.to_be_bytes()); // enterprise number
        body.extend_from_slice(&crate::flow::ie::PROTOCOL.to_be_bytes());
        body.extend_from_slice(&1u16.to_be_bytes());
        let mut sets = Vec::new();
        sets.extend_from_slice(&2u16.to_be_bytes());
        sets.extend_from_slice(&((body.len() + 4) as u16).to_be_bytes());
        sets.extend_from_slice(&body);
        // Data set: 4 opaque enterprise bytes + proto, padded to 32 bits.
        let data = [0xAA, 0xBB, 0xCC, 0xDD, 6, 0, 0, 0];
        sets.extend_from_slice(&template_id.to_be_bytes());
        sets.extend_from_slice(&((data.len() + 4) as u16).to_be_bytes());
        sets.extend_from_slice(&data);
        let total = (16 + sets.len()) as u16;
        let mut msg = Vec::new();
        msg.extend_from_slice(&VERSION.to_be_bytes());
        msg.extend_from_slice(&total.to_be_bytes());
        msg.extend_from_slice(&0u32.to_be_bytes());
        msg.extend_from_slice(&1u32.to_be_bytes());
        msg.extend_from_slice(&9u32.to_be_bytes());
        msg.extend_from_slice(&sets);

        let out = decode(&msg, 2, &mut c).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].proto, 6, "enterprise field shifted the cursor");
    }

    #[test]
    fn varlen_and_reserved_set_ids_are_rejected() {
        let mut c = cache();
        let fields = vec![(crate::flow::ie::PROTOCOL, VARLEN)];
        let bytes = encode::packet(1, 9, 300, Some(&fields), &[]);
        assert_eq!(decode(&bytes, 2, &mut c), Err(DecodeFault::Inconsistent));
        // A v9-style template set id (0) is reserved in IPFIX.
        let good = encode::packet(1, 9, 300, Some(&encode::flow_template_fields()), &[]);
        let mut reserved = good;
        reserved[16] = 0;
        reserved[17] = 0;
        assert_eq!(decode(&reserved, 2, &mut c), Err(DecodeFault::Inconsistent));
    }

    #[test]
    fn refresh_on_conflict_counts() {
        let mut c = cache();
        let fields = encode::flow_template_fields();
        decode(&encode::packet(1, 9, 300, Some(&fields), &[]), 2, &mut c).unwrap();
        let mut flapped = fields.clone();
        flapped.swap(0, 1);
        let out = decode(&encode::packet(2, 9, 300, Some(&flapped), &[]), 2, &mut c).unwrap();
        assert_eq!(out.refreshed, 1);
    }
}
