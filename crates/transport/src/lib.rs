//! # ixp-transport — hardened wire transport for the collector
//!
//! The front-end that turns raw datagrams (loopback UDP or a
//! deterministic in-memory link) into work for the sFlow
//! collector/supervisor pipeline, with the same contracts the rest of
//! the workspace holds decoders to:
//!
//! * **fail-closed decode** — NetFlow v5 ([`netflow5`]), NetFlow v9
//!   ([`netflow9`]), and IPFIX ([`ipfix`]) packets either decode
//!   completely or are rejected with a typed [`error::DecodeFault`];
//!   no panics, no partial records, every length proven against the
//!   bytes present;
//! * **bounded template state** — v9/IPFIX templates live in a
//!   per-(peer, observation-domain) LRU cache ([`template`]) with hard
//!   bounds and refresh-on-conflict versioning;
//! * **conservation accounting** — the intake ([`intake`]) puts every
//!   offered packet in exactly one bucket, extending the pipeline
//!   invariant with a `template_missing_dropped` term for data that
//!   outran its template and a transient `pending` parking lot;
//! * **checkpointable** — intake state serializes via the same
//!   versioned fail-closed codec as the collector, so a supervisor
//!   kill-and-resume mid-template-withhold loses nothing;
//! * **deterministic replay** — [`gen`] produces seeded workloads and
//!   [`link::MemLink`] carries them reproducibly, so CI gates never
//!   depend on socket permissions ([`link::UdpLink`] is the same
//!   packets over a real loopback socket).

pub mod error;
pub mod flow;
pub mod gen;
pub mod intake;
pub mod ipfix;
pub mod link;
pub mod metrics;
pub mod netflow5;
pub mod netflow9;
pub mod rd;
pub mod template;

pub use error::{DecodeFault, LinkError};
pub use flow::FlowRecord;
pub use gen::{generate, FlowGenConfig, FIN};
pub use intake::{
    Drained, TransportConfig, TransportIntake, TransportStats, TRANSPORT_STATE_VERSION,
};
pub use link::{peer_id, Link, MemLink, UdpLink, MAX_PACKET};
pub use metrics::TransportMetrics;
pub use template::{Install, Template, TemplateCache, TemplateCacheConfig};
