//! Deterministic flow-export workload generator.
//!
//! [`generate`] turns a seed into a reproducible stream of `(peer,
//! packet)` pairs mixing NetFlow v9, IPFIX, and NetFlow v5 exporters —
//! the packets `flowgen` replays over loopback UDP and the transport
//! soak feeds through a [`MemLink`](crate::link::MemLink). Template
//! dynamics are first-class knobs:
//!
//! * **withhold windows** — packet-index ranges where template
//!   re-announcements are suppressed, so data records outrun their
//!   templates and exercise the parking path;
//! * **flap windows** — ranges where the announced layout is swapped,
//!   forcing refresh-on-conflict revisions downstream;
//! * **restarts** — indices where an exporter forgets its sequence
//!   counter and its announcement state, like a rebooted router.
//!
//! Everything derives from one `SmallRng`, so the same config yields the
//! same bytes on every run — the soak gate's byte-identity checks depend
//! on it.

use std::net::Ipv4Addr;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::flow::FlowRecord;
use crate::{ipfix, netflow5, netflow9};

/// Out-of-band end-of-stream sentinel for UDP replay: `flowgen` sends a
/// few of these after the workload and the receiving side stops its
/// pump without offering them to the intake.
pub const FIN: &[u8] = b"IXP-TRANSPORT-FIN";

/// Workload shape. All windows are half-open `[from, until)` ranges of
/// the global packet index.
#[derive(Debug, Clone)]
pub struct FlowGenConfig {
    /// RNG seed; same seed, same packets.
    pub seed: u64,
    /// Total packets across all exporters.
    pub packets: u64,
    /// Exporters, round-robin by packet index. Exporter `e` speaks
    /// NetFlow v9 (`e % 3 == 0`), IPFIX (`1`), or NetFlow v5 (`2`).
    pub exporters: u32,
    /// Most records per packet (capped at NetFlow v5's 30).
    pub records_per_packet: u16,
    /// Re-announce templates every N packets per exporter.
    pub template_every: u64,
    /// Windows where template announcements are withheld.
    pub withhold: Vec<(u64, u64)>,
    /// Windows where the announced template layout flaps.
    pub flap: Vec<(u64, u64)>,
    /// Global indices where the sending exporter restarts.
    pub restarts: Vec<u64>,
}

impl Default for FlowGenConfig {
    fn default() -> FlowGenConfig {
        FlowGenConfig {
            seed: 1,
            packets: 1000,
            exporters: 3,
            records_per_packet: 8,
            template_every: 32,
            withhold: Vec::new(),
            flap: Vec::new(),
            restarts: Vec::new(),
        }
    }
}

/// True when `i` falls in any `[from, until)` window.
fn in_windows(i: u64, windows: &[(u64, u64)]) -> bool {
    windows.iter().any(|(from, until)| i >= *from && i < *until)
}

/// One synthetic flow.
fn rand_record(rng: &mut SmallRng) -> FlowRecord {
    let ports: [u16; 4] = [80, 443, 53, 25];
    FlowRecord {
        src: Ipv4Addr::from(0x0A00_0000 | rng.gen_range(0..0x1_0000u32)),
        dst: Ipv4Addr::from(0x0A01_0000 | rng.gen_range(0..0x1_0000u32)),
        src_port: rng.gen_range(1024..u16::MAX),
        dst_port: ports.get(rng.gen_range(0..ports.len())).copied().unwrap_or(80),
        proto: if rng.gen_range(0..10u32) < 8 { 6 } else { 17 },
        packets: u64::from(rng.gen_range(1..100u32)),
        bytes: u64::from(rng.gen_range(64..9000u32)),
    }
}

/// Per-exporter generator state.
struct Exporter {
    seq: u32,
    count: u64,
    announced: bool,
}

/// Produce the whole workload for `cfg`, in send order.
pub fn generate(cfg: &FlowGenConfig) -> Vec<(u64, Vec<u8>)> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xF10E_6E11);
    let exporters = cfg.exporters.max(1);
    let mut state: Vec<Exporter> = (0..exporters)
        .map(|_| Exporter { seq: 0, count: 0, announced: false })
        .collect();
    let per_packet = usize::from(cfg.records_per_packet.clamp(1, 30));
    let every = cfg.template_every.max(1);

    let mut out = Vec::with_capacity(usize::try_from(cfg.packets).unwrap_or(0));
    for i in 0..cfg.packets {
        let e = (i % u64::from(exporters)) as usize;
        let n = rng.gen_range(1..=per_packet);
        let records: Vec<FlowRecord> = (0..n).map(|_| rand_record(&mut rng)).collect();
        let peer = 0x7EE7_0000u64 + e as u64;
        let withheld = in_windows(i, &cfg.withhold);
        let flapped = in_windows(i, &cfg.flap);
        let Some(st) = state.get_mut(e) else { continue };
        if cfg.restarts.contains(&i) {
            *st = Exporter { seq: 0, count: 0, announced: false };
        }
        let packet = match e % 3 {
            2 => netflow5::encode(&netflow5::V5Packet {
                sequence: st.seq,
                engine: (0, e as u8),
                sampling_interval: 1,
                records,
            }),
            proto => {
                let announce = !withheld && (!st.announced || st.count % every == 0 || flapped);
                let mut fields = netflow9::encode::flow_template_fields();
                if flapped {
                    fields.swap(0, 1);
                }
                let template = if announce {
                    st.announced = true;
                    Some(fields.as_slice())
                } else {
                    None
                };
                let domain = 100 + e as u32;
                if proto == 0 {
                    netflow9::encode::packet(st.seq, domain, 260, template, &records)
                } else {
                    ipfix::encode::packet(st.seq, domain, 300, template, &records)
                }
            }
        };
        st.seq = st.seq.wrapping_add(1);
        st.count = st.count.saturating_add(1);
        out.push((peer, packet));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intake::{TransportConfig, TransportIntake};

    #[test]
    fn same_seed_same_bytes() {
        let cfg = FlowGenConfig { packets: 120, ..FlowGenConfig::default() };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = FlowGenConfig { seed: 2, ..cfg.clone() };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn clean_workload_fully_accepts() {
        let cfg = FlowGenConfig { packets: 90, ..FlowGenConfig::default() };
        let mut t = TransportIntake::new(TransportConfig::default());
        for (peer, packet) in generate(&cfg) {
            t.offer(peer, &packet);
            t.drain(4);
        }
        t.drain(usize::MAX);
        let s = t.finish();
        assert_eq!(s.accepted, 90, "{s:?}");
        assert_eq!(s.decode_errors, 0);
        assert_eq!(s.template_missing_dropped, 0);
        assert!(s.flows > 0);
        assert!(t.fully_accounted());
    }

    #[test]
    fn withhold_window_exercises_parking() {
        // Withhold from the very start: templated exporters' data
        // arrives before any template and must park, then resolve once
        // the window closes and announcements resume.
        let cfg = FlowGenConfig {
            packets: 120,
            withhold: vec![(0, 30)],
            ..FlowGenConfig::default()
        };
        let mut t = TransportIntake::new(TransportConfig::default());
        let mut saw_pending = false;
        for (peer, packet) in generate(&cfg) {
            t.offer(peer, &packet);
            t.drain(4);
            saw_pending = saw_pending || t.stats().pending > 0;
        }
        t.drain(usize::MAX);
        let s = t.finish();
        assert!(saw_pending, "withhold window never parked a packet");
        assert_eq!(s.pending, 0);
        assert_eq!(s.accepted + s.template_missing_dropped + s.duplicates, s.received);
        assert!(t.fully_accounted());
    }

    #[test]
    fn flap_window_forces_refreshes() {
        let cfg = FlowGenConfig {
            packets: 120,
            flap: vec![(40, 60)],
            ..FlowGenConfig::default()
        };
        let mut t = TransportIntake::new(TransportConfig::default());
        for (peer, packet) in generate(&cfg) {
            t.offer(peer, &packet);
            t.drain(4);
        }
        t.finish();
        let (_, refreshed, _) = t.template_counts();
        assert!(refreshed > 0, "flap window never refreshed a template");
        assert!(t.fully_accounted());
    }

    #[test]
    fn restart_resets_announcements() {
        let cfg = FlowGenConfig {
            packets: 60,
            exporters: 1, // v9 only
            template_every: 1000,
            restarts: vec![30],
            ..FlowGenConfig::default()
        };
        let packets = generate(&cfg);
        // The restarted exporter re-announces: at least two template
        // packets (index 0 and index 30) in the stream.
        let with_template = packets
            .iter()
            .filter(|(_, p)| p.len() > 21 && p[20] == 0 && p[21] == 0)
            .count();
        assert!(with_template >= 2, "restart did not force a re-announcement");
    }
}
