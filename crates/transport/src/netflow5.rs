//! NetFlow v5: the fixed-layout legacy export format.
//!
//! A v5 packet is a 24-byte header followed by `count` 48-byte records —
//! no templates, so the whole packet decodes or none of it does. The
//! decoder is fail-closed in the sFlow-codec style: every length the
//! packet claims is proven against the bytes actually present, the spec's
//! 30-record ceiling is enforced, and trailing garbage is an
//! inconsistency, not an accepted packet.

use std::net::Ipv4Addr;

use crate::error::DecodeFault;
use crate::flow::FlowRecord;
use crate::rd::Rd;

/// The version field a v5 packet leads with.
pub const VERSION: u16 = 5;

/// Header + per-record sizes fixed by the v5 spec.
const HEADER_LEN: usize = 24;
const RECORD_LEN: usize = 48;

/// The spec's maximum records per packet (24 + 30·48 < 1464 bytes).
const MAX_RECORDS: usize = 30;

/// One decoded NetFlow v5 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V5Packet {
    /// Cumulative flow-sequence counter (first flow of this packet).
    pub sequence: u32,
    /// Exporter engine type / engine id.
    pub engine: (u8, u8),
    /// Sampling interval field (mode bits masked off).
    pub sampling_interval: u16,
    /// The records, all-or-nothing.
    pub records: Vec<FlowRecord>,
}

/// Decode one v5 packet.
// ixp-lint: allow(schema-drift) NetFlow v5 wire codec; the layout is fixed by the protocol spec, not the checkpoint ratchet
pub fn decode(data: &[u8]) -> Result<V5Packet, DecodeFault> {
    let mut r = Rd::new(data);
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeFault::BadVersion(version));
    }
    let count = r.u16()? as usize;
    if count == 0 || count > MAX_RECORDS {
        return Err(DecodeFault::Inconsistent);
    }
    // The packet length must be exactly header + count records: a v5
    // exporter never pads, so any surplus is damage.
    let expect = HEADER_LEN
        .checked_add(count.checked_mul(RECORD_LEN).ok_or(DecodeFault::Inconsistent)?)
        .ok_or(DecodeFault::Inconsistent)?;
    if data.len() < expect {
        return Err(DecodeFault::Truncated);
    }
    if data.len() > expect {
        return Err(DecodeFault::Inconsistent);
    }
    r.skip(4)?; // sys_uptime
    r.skip(8)?; // unix_secs + unix_nsecs
    let sequence = r.u32()?;
    let engine_type = r.u8()?;
    let engine_id = r.u8()?;
    let sampling_interval = r.u16()? & 0x3FFF;

    let mut records = Vec::with_capacity(count.min(MAX_RECORDS));
    for _ in 0..count {
        records.push(decode_record(&mut r)?);
    }
    if r.remaining() != 0 {
        return Err(DecodeFault::Inconsistent);
    }
    Ok(V5Packet { sequence, engine: (engine_type, engine_id), sampling_interval, records })
}

/// Decode one fixed 48-byte record.
// ixp-lint: allow(schema-drift) NetFlow v5 wire codec; the layout is fixed by the protocol spec, not the checkpoint ratchet
fn decode_record(r: &mut Rd<'_>) -> Result<FlowRecord, DecodeFault> {
    let src = Ipv4Addr::from(r.u32()?);
    let dst = Ipv4Addr::from(r.u32()?);
    r.skip(4)?; // nexthop
    r.skip(4)?; // input + output ifIndex
    let packets = u64::from(r.u32()?);
    let bytes = u64::from(r.u32()?);
    r.skip(8)?; // first + last uptime stamps
    let src_port = r.u16()?;
    let dst_port = r.u16()?;
    r.skip(2)?; // pad1 + tcp_flags
    let proto = r.u8()?;
    r.skip(1)?; // tos
    r.skip(4)?; // src_as + dst_as
    r.skip(2)?; // src_mask + dst_mask
    r.skip(2)?; // pad2
    Ok(FlowRecord { src, dst, src_port, dst_port, proto, packets, bytes })
}

/// Encode a v5 packet — the generator/test side of the codec.
pub fn encode(p: &V5Packet) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + p.records.len() * RECORD_LEN);
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&(p.records.len() as u16).to_be_bytes());
    out.extend_from_slice(&0u32.to_be_bytes()); // sys_uptime
    out.extend_from_slice(&0u32.to_be_bytes()); // unix_secs
    out.extend_from_slice(&0u32.to_be_bytes()); // unix_nsecs
    out.extend_from_slice(&p.sequence.to_be_bytes());
    out.push(p.engine.0);
    out.push(p.engine.1);
    out.extend_from_slice(&p.sampling_interval.to_be_bytes());
    for rec in &p.records {
        out.extend_from_slice(&rec.src.octets());
        out.extend_from_slice(&rec.dst.octets());
        out.extend_from_slice(&0u32.to_be_bytes()); // nexthop
        out.extend_from_slice(&0u32.to_be_bytes()); // ifIndexes
        out.extend_from_slice(&(rec.packets as u32).to_be_bytes());
        out.extend_from_slice(&(rec.bytes as u32).to_be_bytes());
        out.extend_from_slice(&0u64.to_be_bytes()); // first + last
        out.extend_from_slice(&rec.src_port.to_be_bytes());
        out.extend_from_slice(&rec.dst_port.to_be_bytes());
        out.push(0); // pad1
        out.push(0); // tcp_flags
        out.push(rec.proto);
        out.push(0); // tos
        out.extend_from_slice(&0u32.to_be_bytes()); // ASes
        out.extend_from_slice(&[0, 0]); // masks
        out.extend_from_slice(&[0, 0]); // pad2
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> V5Packet {
        V5Packet {
            sequence: 42,
            engine: (1, 7),
            sampling_interval: 100,
            records: vec![
                FlowRecord {
                    src: Ipv4Addr::new(10, 0, 0, 1),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    src_port: 5000,
                    dst_port: 80,
                    proto: 6,
                    packets: 12,
                    bytes: 9000,
                },
                FlowRecord::default(),
            ],
        }
    }

    #[test]
    fn roundtrips() {
        let p = sample();
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn rejects_length_lies() {
        let bytes = encode(&sample());
        // Truncated anywhere: Truncated (or BadVersion at the very head).
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
        // Surplus bytes: inconsistent.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode(&padded), Err(DecodeFault::Inconsistent));
        // Record-count lie.
        let mut lied = bytes;
        lied[2] = 0;
        lied[3] = 9;
        assert!(decode(&lied).is_err());
    }

    #[test]
    fn rejects_wrong_version_and_zero_count() {
        let mut bytes = encode(&sample());
        bytes[1] = 9;
        assert!(matches!(decode(&bytes), Err(DecodeFault::BadVersion(_))));
        let empty = V5Packet { records: vec![], ..sample() };
        assert_eq!(decode(&encode(&empty)), Err(DecodeFault::Inconsistent));
    }
}
