//! Typed errors for the transport layer.
//!
//! Every failure a hostile wire can provoke maps onto a variant here —
//! never a panic — so the intake can count it into the right
//! conservation bucket and keep going.

use std::fmt;

/// Why a packet failed to decode. Fail-closed: a decoder returns the
/// first inconsistency it proves and never emits partial records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeFault {
    /// The packet ended before a length implied by its own fields.
    Truncated,
    /// The leading version field named no protocol this layer speaks.
    BadVersion(u16),
    /// Two fields of the packet contradict each other (a set length
    /// pointing past the packet end, a record count that cannot fit,
    /// a template with zero or absurd fields, ...).
    Inconsistent,
}

impl fmt::Display for DecodeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeFault::Truncated => write!(f, "packet truncated mid-field"),
            DecodeFault::BadVersion(v) => write!(f, "unsupported flow-export version {v}"),
            DecodeFault::Inconsistent => write!(f, "packet fields are self-contradictory"),
        }
    }
}

impl std::error::Error for DecodeFault {}

/// A socket-level failure of a [`Link`](crate::link::Link).
#[derive(Debug)]
pub enum LinkError {
    /// Binding the local address was denied or failed.
    Bind(std::io::Error),
    /// A send failed at the OS level.
    Send(std::io::Error),
    /// A receive failed at the OS level (timeouts are not errors).
    Recv(std::io::Error),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Bind(e) => write!(f, "udp bind denied: {e}"),
            LinkError::Send(e) => write!(f, "udp send failed: {e}"),
            LinkError::Recv(e) => write!(f, "udp recv failed: {e}"),
        }
    }
}

impl std::error::Error for LinkError {}
