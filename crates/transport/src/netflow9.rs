//! NetFlow v9 (RFC 3954): template-described export packets.
//!
//! A v9 packet is a 20-byte header followed by *flowsets*, each a
//! `(set_id, length)` frame: template flowsets (id 0) and options
//! templates (id 1) define record layouts; data flowsets (id ≥ 256)
//! carry records whose layout only a previously seen template knows.
//! Decoding is therefore stateful — the caller passes the bounded
//! [`TemplateCache`] — and **packet-granular fail-closed**: if any data
//! flowset's template is unknown, no records are emitted at all and the
//! outcome says so, so the intake can buffer the whole packet and replay
//! it when (if) the template arrives. Partial emission would make replay
//! double-count.

use crate::error::DecodeFault;
use crate::flow::{record_from_template, FlowRecord};
use crate::rd::Rd;
use crate::template::{Install, TemplateCache};

/// The version field a v9 packet leads with.
pub const VERSION: u16 = 9;

/// Header length fixed by RFC 3954.
const HEADER_LEN: usize = 20;

/// Sanity cap on fields per template (RFC allows more; a hostile count
/// would otherwise size work by attacker bytes).
const MAX_TEMPLATE_FIELDS: usize = 128;

/// Sanity cap on flowsets per packet.
const MAX_SETS: usize = 256;

/// What decoding one v9 packet produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V9Outcome {
    /// Export sequence number (counts packets for v9).
    pub sequence: u32,
    /// The exporter's source id — the template namespace.
    pub source_id: u32,
    /// Decoded data records (empty when `missing_template`).
    pub records: Vec<FlowRecord>,
    /// Templates newly installed by this packet.
    pub installed: u32,
    /// Templates refreshed-on-conflict by this packet.
    pub refreshed: u32,
    /// True when at least one data flowset referenced an unknown
    /// template: the packet must be buffered and replayed, not decoded
    /// piecemeal.
    pub missing_template: bool,
}

/// Decode one v9 packet against (and into) `cache`.
// ixp-lint: allow(schema-drift) NetFlow v9 wire codec; the layout is fixed by RFC 3954, not the checkpoint ratchet
pub fn decode(
    data: &[u8],
    peer: u64,
    cache: &mut TemplateCache,
) -> Result<V9Outcome, DecodeFault> {
    let mut r = Rd::new(data);
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeFault::BadVersion(version));
    }
    let declared_count = r.u16()?;
    r.skip(4)?; // sys_uptime
    r.skip(4)?; // unix_secs
    let sequence = r.u32()?;
    let source_id = r.u32()?;
    let key = (peer, source_id);

    let mut out = V9Outcome {
        sequence,
        source_id,
        records: Vec::new(),
        installed: 0,
        refreshed: 0,
        missing_template: false,
    };
    let mut counted = 0u32;
    let mut sets = 0usize;
    while r.remaining() >= 4 {
        sets = sets.saturating_add(1);
        if sets > MAX_SETS {
            return Err(DecodeFault::Inconsistent);
        }
        let set_id = r.u16()?;
        let set_len = usize::from(r.u16()?);
        // The length covers the 4-byte set header itself.
        let body_len = set_len.checked_sub(4).ok_or(DecodeFault::Inconsistent)?;
        let body = r.take(body_len)?;
        match set_id {
            0 => counted = counted.saturating_add(templates(body, key, cache, &mut out)?),
            1 => counted = counted.saturating_add(options_template(body)?),
            2..=255 => return Err(DecodeFault::Inconsistent),
            _ => counted = counted.saturating_add(data_set(body, key, set_id, cache, &mut out)?),
        }
    }
    // Up to 3 bytes of trailing padding are tolerated (flowsets are
    // 32-bit aligned); more is damage.
    if r.remaining() >= 4 {
        return Err(DecodeFault::Truncated);
    }
    // The header's count field is records + templates across the packet.
    // A mismatch on a fully-resolved packet is an exporter lie; with a
    // missing template we cannot know how many records the unreadable
    // sets held, so the check is skipped and the packet parked whole.
    if !out.missing_template && counted != u32::from(declared_count) {
        return Err(DecodeFault::Inconsistent);
    }
    if out.missing_template {
        // Packet-granular: suppress records from the sets that did
        // resolve, so a buffered replay cannot double-count them.
        out.records.clear();
    }
    Ok(out)
}

/// Parse a template flowset body (set id 0): install each definition.
// ixp-lint: allow(schema-drift) NetFlow v9 wire codec; the layout is fixed by RFC 3954, not the checkpoint ratchet
fn templates(
    body: &[u8],
    key: (u64, u32),
    cache: &mut TemplateCache,
    out: &mut V9Outcome,
) -> Result<u32, DecodeFault> {
    let mut r = Rd::new(body);
    let mut n = 0u32;
    // ≥ 4: another (template_id, field_count) header fits; less is pad.
    while r.remaining() >= 4 {
        let template_id = r.u16()?;
        let field_count = usize::from(r.u16()?);
        if template_id < 256 || field_count == 0 || field_count > MAX_TEMPLATE_FIELDS {
            return Err(DecodeFault::Inconsistent);
        }
        let mut fields = Vec::with_capacity(field_count.min(MAX_TEMPLATE_FIELDS));
        for _ in 0..field_count {
            let ie = r.u16()?;
            let len = r.u16()?;
            if len == 0 {
                return Err(DecodeFault::Inconsistent);
            }
            fields.push((ie, len));
        }
        match cache.install(key, template_id, fields) {
            Install::New => out.installed = out.installed.saturating_add(1),
            Install::Refreshed => out.refreshed = out.refreshed.saturating_add(1),
            Install::Unchanged => {}
        }
        n = n.saturating_add(1);
    }
    if r.remaining() != 0 {
        return Err(DecodeFault::Truncated);
    }
    Ok(n)
}

/// Parse an options-template flowset body (set id 1): validated and
/// counted, but options records carry exporter metadata, not flows, so
/// the definitions are not installed into the flow-template cache.
// ixp-lint: allow(schema-drift) NetFlow v9 wire codec; the layout is fixed by RFC 3954, not the checkpoint ratchet
fn options_template(body: &[u8]) -> Result<u32, DecodeFault> {
    let mut r = Rd::new(body);
    let mut n = 0u32;
    while r.remaining() >= 6 {
        let template_id = r.u16()?;
        let scope_len = usize::from(r.u16()?);
        let option_len = usize::from(r.u16()?);
        if template_id < 256 {
            return Err(DecodeFault::Inconsistent);
        }
        let total = scope_len.checked_add(option_len).ok_or(DecodeFault::Inconsistent)?;
        if total % 4 != 0 || total > body.len() {
            return Err(DecodeFault::Inconsistent);
        }
        r.skip(total)?;
        n = n.saturating_add(1);
    }
    if r.remaining() > 3 {
        return Err(DecodeFault::Truncated);
    }
    Ok(n)
}

/// Parse a data flowset body against its template, if known.
fn data_set(
    body: &[u8],
    key: (u64, u32),
    set_id: u16,
    cache: &mut TemplateCache,
    out: &mut V9Outcome,
) -> Result<u32, DecodeFault> {
    let Some(template) = cache.get(key, set_id) else {
        out.missing_template = true;
        return Ok(0);
    };
    let fields = template.fields.clone();
    let record_len = template.record_len as usize;
    if record_len == 0 {
        return Err(DecodeFault::Inconsistent);
    }
    let mut r = Rd::new(body);
    let mut n = 0u32;
    while r.remaining() >= record_len {
        out.records.push(record_from_template(&mut r, &fields)?);
        n = n.saturating_add(1);
    }
    // Remaining bytes must be 32-bit-alignment padding (< 4), otherwise
    // the set length and the record size disagree.
    if r.remaining() >= 4 || r.remaining() >= record_len {
        return Err(DecodeFault::Inconsistent);
    }
    if n == 0 {
        return Err(DecodeFault::Inconsistent);
    }
    Ok(n)
}

/// Encoding — the generator/test side.
pub mod encode {
    use super::{HEADER_LEN, VERSION};
    use crate::flow::{ie, FlowRecord};

    /// The canonical 7-field flow template the generator announces.
    pub fn flow_template_fields() -> Vec<(u16, u16)> {
        vec![
            (ie::IPV4_SRC_ADDR, 4),
            (ie::IPV4_DST_ADDR, 4),
            (ie::L4_SRC_PORT, 2),
            (ie::L4_DST_PORT, 2),
            (ie::PROTOCOL, 1),
            (ie::IN_PKTS, 4),
            (ie::IN_BYTES, 4),
        ]
    }

    /// Encode one data record under [`flow_template_fields`].
    fn push_record(out: &mut Vec<u8>, rec: &FlowRecord) {
        out.extend_from_slice(&rec.src.octets());
        out.extend_from_slice(&rec.dst.octets());
        out.extend_from_slice(&rec.src_port.to_be_bytes());
        out.extend_from_slice(&rec.dst_port.to_be_bytes());
        out.push(rec.proto);
        out.extend_from_slice(&(rec.packets as u32).to_be_bytes());
        out.extend_from_slice(&(rec.bytes as u32).to_be_bytes());
    }

    /// Build a v9 packet: optional template flowset announcing
    /// `template` under `template_id`, then one data flowset of
    /// `records` referencing `template_id`.
    pub fn packet(
        sequence: u32,
        source_id: u32,
        template_id: u16,
        template: Option<&[(u16, u16)]>,
        records: &[FlowRecord],
    ) -> Vec<u8> {
        let mut sets: Vec<u8> = Vec::new();
        let mut count = 0u16;
        if let Some(fields) = template {
            let mut body = Vec::new();
            body.extend_from_slice(&template_id.to_be_bytes());
            body.extend_from_slice(&(fields.len() as u16).to_be_bytes());
            for (ie_id, len) in fields {
                body.extend_from_slice(&ie_id.to_be_bytes());
                body.extend_from_slice(&len.to_be_bytes());
            }
            sets.extend_from_slice(&0u16.to_be_bytes());
            sets.extend_from_slice(&((body.len() + 4) as u16).to_be_bytes());
            sets.extend_from_slice(&body);
            count += 1;
        }
        if !records.is_empty() {
            let mut body = Vec::new();
            for rec in records {
                push_record(&mut body, rec);
            }
            while body.len() % 4 != 0 {
                body.push(0);
            }
            sets.extend_from_slice(&template_id.to_be_bytes());
            sets.extend_from_slice(&((body.len() + 4) as u16).to_be_bytes());
            sets.extend_from_slice(&body);
            count += records.len() as u16;
        }
        let mut out = Vec::with_capacity(HEADER_LEN + sets.len());
        out.extend_from_slice(&VERSION.to_be_bytes());
        out.extend_from_slice(&count.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes()); // sys_uptime
        out.extend_from_slice(&0u32.to_be_bytes()); // unix_secs
        out.extend_from_slice(&sequence.to_be_bytes());
        out.extend_from_slice(&source_id.to_be_bytes());
        out.extend_from_slice(&sets);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplateCacheConfig;
    use std::net::Ipv4Addr;

    fn rec(i: u8) -> FlowRecord {
        FlowRecord {
            src: Ipv4Addr::new(10, 0, 0, i),
            dst: Ipv4Addr::new(10, 0, 1, i),
            src_port: 4000 + u16::from(i),
            dst_port: 443,
            proto: 6,
            packets: 3,
            bytes: 1500,
        }
    }

    fn cache() -> TemplateCache {
        TemplateCache::new(TemplateCacheConfig::default())
    }

    #[test]
    fn template_then_data_roundtrips() {
        let mut c = cache();
        let fields = encode::flow_template_fields();
        let records = vec![rec(1), rec(2)];
        let bytes = encode::packet(1, 7, 260, Some(&fields), &records);
        let out = decode(&bytes, 1, &mut c).unwrap();
        assert_eq!(out.installed, 1);
        assert!(!out.missing_template);
        assert_eq!(out.records, records);
        assert_eq!(out.source_id, 7);
    }

    #[test]
    fn data_before_template_reports_missing_not_partial() {
        let mut c = cache();
        let bytes = encode::packet(1, 7, 260, None, &[rec(1)]);
        let out = decode(&bytes, 1, &mut c).unwrap();
        assert!(out.missing_template);
        assert!(out.records.is_empty(), "partial emission breaks replay");
    }

    #[test]
    fn refresh_on_conflict_bumps_revision() {
        let mut c = cache();
        let fields = encode::flow_template_fields();
        decode(&encode::packet(1, 7, 260, Some(&fields), &[]), 1, &mut c).unwrap();
        let mut flapped = fields.clone();
        flapped.swap(0, 1);
        let out = decode(&encode::packet(2, 7, 260, Some(&flapped), &[]), 1, &mut c).unwrap();
        assert_eq!(out.refreshed, 1);
        assert_eq!(c.get((1, 7), 260).unwrap().revision, 2);
    }

    #[test]
    fn length_lies_fail_closed() {
        let mut c = cache();
        let fields = encode::flow_template_fields();
        let good = encode::packet(1, 7, 260, Some(&fields), &[rec(1)]);
        for cut in 1..good.len() {
            let mut c2 = cache();
            // Never panics; truncation before set boundaries may decode
            // to fewer sets, in which case the count check catches it.
            let _unused = decode(&good[..cut], 1, &mut c2);
        }
        // A set length pointing past the packet is Truncated.
        let bytes = encode::packet(1, 7, 260, Some(&fields), &[]);
        let mut lied = bytes;
        let set_len_at = 22;
        lied[set_len_at] = 0xFF;
        assert!(decode(&lied, 1, &mut c).is_err());
    }

    #[test]
    fn header_count_mismatch_is_inconsistent() {
        let mut c = cache();
        let fields = encode::flow_template_fields();
        let mut bytes = encode::packet(1, 7, 260, Some(&fields), &[rec(1)]);
        bytes[3] = 9; // lie about the record+template count
        assert_eq!(decode(&bytes, 1, &mut c), Err(DecodeFault::Inconsistent));
    }
}
