//! Packet links: the loopback UDP socket front-end and its deterministic
//! in-memory stand-in.
//!
//! A [`Link`] delivers `(peer, packet)` pairs without blocking forever:
//! `recv` returns `Ok(None)` when nothing is pending (after at most the
//! configured poll timeout for the UDP flavour). [`MemLink`] is a pure
//! FIFO — CI and the soak gate use it so no gate ever depends on socket
//! permissions — while [`UdpLink`] carries the same packets over a real
//! non-blocking loopback socket for the `flowgen → repro` smoke.

use std::collections::VecDeque;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use crate::error::LinkError;

/// Largest datagram the UDP receive path accepts (the IPv4 UDP maximum).
pub const MAX_PACKET: usize = 65_535;

/// A source of `(peer, packet)` pairs. `peer` is a stable 64-bit identity
/// of the sending exporter (for UDP, derived from the source address).
pub trait Link {
    /// Send `packet` as peer `peer` (the in-memory flavour records it
    /// verbatim; the UDP flavour ignores `peer` — the socket's own
    /// source address is the identity the receiver sees).
    fn send(&mut self, peer: u64, packet: &[u8]) -> Result<(), LinkError>;

    /// Receive the next pending packet, or `None` when nothing is ready.
    fn recv(&mut self) -> Result<Option<(u64, Vec<u8>)>, LinkError>;
}

/// Deterministic in-memory link: a FIFO of `(peer, packet)` pairs.
/// Same sends, same receives, byte for byte — the fallback CI uses when
/// UDP binding is denied, and the substrate of `tests/transport_soak.rs`.
#[derive(Debug, Default)]
pub struct MemLink {
    queue: VecDeque<(u64, Vec<u8>)>,
}

impl MemLink {
    /// An empty link.
    pub fn new() -> MemLink {
        MemLink::default()
    }

    /// Packets queued and not yet received.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl Link for MemLink {
    fn send(&mut self, peer: u64, packet: &[u8]) -> Result<(), LinkError> {
        self.queue.push_back((peer, packet.to_vec()));
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<(u64, Vec<u8>)>, LinkError> {
        Ok(self.queue.pop_front())
    }
}

/// Stable 64-bit peer identity of a UDP source address.
pub fn peer_id(addr: &SocketAddr) -> u64 {
    match addr {
        SocketAddr::V4(v4) => {
            (u64::from(u32::from_be_bytes(v4.ip().octets())) << 16) | u64::from(v4.port())
        }
        SocketAddr::V6(v6) => {
            // Fold the 128-bit address down; loopback testing is v4, but
            // a v6 source must still get a stable identity.
            let o = v6.ip().octets();
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in o {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            (h << 16) | u64::from(v6.port())
        }
    }
}

/// The loopback UDP front-end: a socket polled with a short read
/// timeout, so `recv` never blocks longer than `poll` and the caller's
/// idle accounting stays in charge.
#[derive(Debug)]
pub struct UdpLink {
    socket: UdpSocket,
    target: Option<SocketAddr>,
    buf: Vec<u8>,
}

impl UdpLink {
    /// Bind a receiving link on `addr` (e.g. `127.0.0.1:9995`). Fails
    /// closed with [`LinkError::Bind`] when the environment denies it —
    /// the caller is expected to fall back to [`MemLink`] and say why.
    pub fn bind(addr: &str) -> Result<UdpLink, LinkError> {
        let socket = UdpSocket::bind(addr).map_err(LinkError::Bind)?;
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(LinkError::Bind)?;
        Ok(UdpLink { socket, target: None, buf: vec![0u8; MAX_PACKET] })
    }

    /// Bind an ephemeral sending link aimed at `target`.
    pub fn connect(target: &str) -> Result<UdpLink, LinkError> {
        let socket = UdpSocket::bind("127.0.0.1:0").map_err(LinkError::Bind)?;
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(LinkError::Bind)?;
        let target: SocketAddr = target
            .parse()
            .map_err(|_| LinkError::Bind(std::io::Error::other("bad target address")))?;
        Ok(UdpLink { socket, target: Some(target), buf: vec![0u8; MAX_PACKET] })
    }

    /// The bound local address (the port to aim `flowgen` at).
    pub fn local_addr(&self) -> Result<SocketAddr, LinkError> {
        self.socket.local_addr().map_err(LinkError::Bind)
    }
}

impl Link for UdpLink {
    fn send(&mut self, _peer: u64, packet: &[u8]) -> Result<(), LinkError> {
        let Some(target) = self.target else {
            return Err(LinkError::Send(std::io::Error::other("link has no target")));
        };
        self.socket.send_to(packet, target).map_err(LinkError::Send)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<(u64, Vec<u8>)>, LinkError> {
        match self.socket.recv_from(&mut self.buf) {
            Ok((n, from)) => {
                let packet = self.buf.get(..n).unwrap_or_default().to_vec();
                Ok(Some((peer_id(&from), packet)))
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(LinkError::Recv(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memlink_is_fifo_and_lossless() {
        let mut link = MemLink::new();
        for i in 0..10u8 {
            link.send(u64::from(i), &[i]).unwrap();
        }
        assert_eq!(link.pending(), 10);
        for i in 0..10u8 {
            assert_eq!(link.recv().unwrap(), Some((u64::from(i), vec![i])));
        }
        assert_eq!(link.recv().unwrap(), None);
    }

    #[test]
    fn peer_ids_distinguish_address_and_port() {
        let a: SocketAddr = "127.0.0.1:1000".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:1001".parse().unwrap();
        let c: SocketAddr = "127.0.0.2:1000".parse().unwrap();
        assert_ne!(peer_id(&a), peer_id(&b));
        assert_ne!(peer_id(&a), peer_id(&c));
        assert_eq!(peer_id(&a), peer_id(&a));
    }

    #[test]
    fn udp_roundtrip_on_loopback_when_permitted() {
        // Socket permissions vary by environment; skip (do not fail) when
        // binding is denied — MemLink covers the deterministic contract.
        let Ok(mut rx) = UdpLink::bind("127.0.0.1:0") else { return };
        let addr = rx.local_addr().unwrap().to_string();
        let Ok(mut tx) = UdpLink::connect(&addr) else { return };
        tx.send(0, b"hello-ixp").unwrap();
        for _ in 0..40 {
            if let Some((_, packet)) = rx.recv().unwrap() {
                assert_eq!(packet, b"hello-ixp");
                return;
            }
        }
        panic!("loopback datagram never arrived");
    }
}
