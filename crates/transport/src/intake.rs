//! The transport intake: a bounded packet front-end with full-packet
//! accounting, template-aware parking, and checkpointable state.
//!
//! [`TransportIntake`] sits between a [`Link`](crate::link::Link) and the
//! existing sFlow collector/supervisor pipeline. Every datagram offered
//! to it ends up in **exactly one** bucket, extending the pipeline's
//! conservation invariant to the wire:
//!
//! ```text
//! offered  = received + shed + inbox          (front door)
//! received = accepted + duplicates + decode_errors
//!          + template_missing_dropped + pending   (decode stage)
//! ```
//!
//! `pending` is the transient bucket: a NetFlow v9 / IPFIX datagram whose
//! template has not arrived yet is parked *whole* (up to a byte budget)
//! and replayed verbatim when a template installs; [`finish`] flushes
//! whatever never resolved into `template_missing_dropped`, so the final
//! balance has no transient terms. Packets shed at the byte budget are
//! counted the moment they are dropped — load shedding is always visible
//! in the accounting, never silent.
//!
//! The whole intake — stats, dedup windows, parked packets, inbox, and
//! the template cache — serializes through [`save_state`] /
//! [`restore_from`] in the same versioned fail-closed codec style as the
//! collector checkpoint, so a supervisor kill-and-resume crossing a
//! template-withhold window loses nothing and stays byte-identical.
//!
//! [`save_state`]: TransportIntake::save_state
//! [`restore_from`]: TransportIntake::restore_from
//! [`finish`]: TransportIntake::finish

use std::collections::{BTreeMap, VecDeque};

use ixp_obs::journal::{EventKind, Journal};
use ixp_sflow::checkpoint::{put_bytes, put_u16, put_u32, put_u64, Cur, StateError};

use crate::error::{DecodeFault, LinkError};
use crate::flow::FlowRecord;
use crate::link::{Link, MAX_PACKET};
use crate::metrics::TransportMetrics;
use crate::template::{Template, TemplateCache, TemplateCacheConfig};
use crate::{ipfix, netflow5, netflow9};

/// Serialization format version of [`TransportIntake`] state.
pub const TRANSPORT_STATE_VERSION: u32 = 1;

/// Cap on distinct `(peer, protocol, domain)` dedup windows kept.
const MAX_DEDUP_KEYS: usize = 4096;

/// Size bounds of the intake.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Most packets queued between `offer` and `drain` before shedding.
    pub inbox_capacity: usize,
    /// Byte budget for packets parked awaiting their template.
    pub pending_byte_budget: usize,
    /// Recent export sequence numbers remembered per exporter domain for
    /// duplicate suppression.
    pub dedup_window: usize,
    /// Bounds of the template cache.
    pub template_cache: TemplateCacheConfig,
}

impl Default for TransportConfig {
    fn default() -> TransportConfig {
        TransportConfig {
            inbox_capacity: 4096,
            pending_byte_budget: 256 * 1024,
            dedup_window: 32,
            template_cache: TemplateCacheConfig::default(),
        }
    }
}

/// Lifetime packet accounting. Every field is monotonic except
/// `pending` / `pending_bytes`, which track the parked set and drop to
/// zero when it drains or [`TransportIntake::finish`] flushes it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Packets presented at the front door (`offer`).
    pub offered: u64,
    /// Packets that reached the decode stage (`drain`).
    pub received: u64,
    /// Packets fully decoded and handed downstream.
    pub accepted: u64,
    /// Packets suppressed as retransmit duplicates.
    pub duplicates: u64,
    /// Packets rejected by a decoder (sum of the three kinds below).
    pub decode_errors: u64,
    /// Decode errors: ran out of bytes.
    pub truncated: u64,
    /// Decode errors: unknown version field.
    pub bad_version: u64,
    /// Decode errors: internally inconsistent framing.
    pub inconsistent: u64,
    /// Packets dropped at the inbox bound or oversized.
    pub shed: u64,
    /// Template-less packets dropped at the parking budget or flushed
    /// unresolved by `finish`.
    pub template_missing_dropped: u64,
    /// Packets currently parked awaiting a template.
    pub pending: u64,
    /// Bytes currently parked awaiting a template.
    pub pending_bytes: u64,
    /// Flow records decoded out of accepted packets.
    pub flows: u64,
    /// Accepted packets that were sFlow datagrams (passed through).
    pub sflow_datagrams: u64,
    /// Accepted NetFlow v5 packets.
    pub v5_packets: u64,
    /// Accepted NetFlow v9 packets.
    pub v9_packets: u64,
    /// Accepted IPFIX messages.
    pub ipfix_packets: u64,
}

/// One unit of work handed downstream by [`TransportIntake::drain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drained {
    /// An sFlow datagram, passed through verbatim for the collector
    /// (which owns sFlow sequence accounting and duplicate detection).
    Sflow {
        /// Stable identity of the sending exporter.
        peer: u64,
        /// The raw datagram bytes.
        datagram: Vec<u8>,
    },
    /// Flow records decoded from one NetFlow v5/v9 or IPFIX packet.
    Flows {
        /// Stable identity of the sending exporter.
        peer: u64,
        /// The normalized records.
        records: Vec<FlowRecord>,
    },
}

/// The bounded, checkpointable packet intake.
#[derive(Debug, Default)]
pub struct TransportIntake {
    config: TransportConfig,
    stats: TransportStats,
    inbox: VecDeque<(u64, Vec<u8>)>,
    /// Packets parked whole, awaiting their template.
    parked: VecDeque<(u64, Vec<u8>)>,
    /// Recent export sequences per `(peer, version, domain)`.
    seen: BTreeMap<(u64, u16, u32), VecDeque<u32>>,
    cache: TemplateCache,
    metrics: TransportMetrics,
    journal: Journal,
}

impl TransportIntake {
    /// An empty intake with the given bounds.
    pub fn new(config: TransportConfig) -> TransportIntake {
        TransportIntake {
            config,
            cache: TemplateCache::new(config.template_cache),
            ..TransportIntake::default()
        }
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Lifetime `(installed, refreshed, evicted)` template counts.
    pub fn template_counts(&self) -> (u64, u64, u64) {
        self.cache.counts()
    }

    /// Packets waiting between `offer` and `drain`.
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// The conservation invariant, checked at both stage boundaries.
    pub fn fully_accounted(&self) -> bool {
        let s = &self.stats;
        let front = s.offered
            == s.received.saturating_add(s.shed).saturating_add(self.inbox.len() as u64);
        let decode = s.received
            == s.accepted
                .saturating_add(s.duplicates)
                .saturating_add(s.decode_errors)
                .saturating_add(s.template_missing_dropped)
                .saturating_add(s.pending);
        let kinds = s.decode_errors
            == s.truncated.saturating_add(s.bad_version).saturating_add(s.inconsistent);
        let protos = s.accepted
            == s.sflow_datagrams
                .saturating_add(s.v5_packets)
                .saturating_add(s.v9_packets)
                .saturating_add(s.ipfix_packets);
        front && decode && kinds && protos
    }

    /// Attach live metrics, replaying the current stats into them so a
    /// restored intake's registry matches an uninterrupted run's.
    pub fn bind_metrics(&mut self, metrics: TransportMetrics) {
        self.metrics = metrics;
        self.sync_metrics();
    }

    /// Attach an event journal; template churn, sheds, parks, and
    /// replays emit span events into it from here on.
    pub fn bind_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    fn sync_metrics(&self) {
        self.metrics.sync(&self.stats, self.cache.counts());
    }

    /// Offer one packet at the front door. Returns `false` when it was
    /// shed (inbox full or oversized) — shed packets are counted, so the
    /// caller may drop the return value without losing accounting.
    pub fn offer(&mut self, peer: u64, packet: &[u8]) -> bool {
        self.stats.offered += 1;
        if packet.len() > MAX_PACKET || self.inbox.len() >= self.config.inbox_capacity {
            self.stats.shed += 1;
            self.journal.record(EventKind::Shed, peer, 0, 1, self.stats.shed);
            return false;
        }
        self.inbox.push_back((peer, packet.to_vec()));
        true
    }

    /// Pull up to `max_packets` packets out of `link` into the inbox.
    /// Returns how many arrived (0 means the link was idle).
    pub fn pump(&mut self, link: &mut dyn Link, max_packets: usize) -> Result<usize, LinkError> {
        let mut n = 0usize;
        while n < max_packets {
            let Some((peer, packet)) = link.recv()? else { break };
            self.offer(peer, &packet);
            n = n.saturating_add(1);
        }
        Ok(n)
    }

    /// Decode up to `budget` inbox packets, returning the work they
    /// produced in arrival order.
    pub fn drain(&mut self, budget: usize) -> Vec<Drained> {
        let mut out = Vec::new();
        for _ in 0..budget {
            let Some((peer, packet)) = self.inbox.pop_front() else { break };
            self.ingest_packet(peer, packet, &mut out);
        }
        self.sync_metrics();
        out
    }

    /// End of stream: everything still queued or parked is flushed into
    /// its terminal bucket so the final balance has no transient terms.
    pub fn finish(&mut self) -> TransportStats {
        let mut flushed_inbox = 0u64;
        while self.inbox.pop_front().is_some() {
            self.stats.shed += 1;
            flushed_inbox += 1;
        }
        if flushed_inbox > 0 {
            self.journal.record(EventKind::Shed, 0, 0, flushed_inbox, self.stats.shed);
        }
        let mut flushed_parked = 0u64;
        while self.parked.pop_front().is_some() {
            self.stats.template_missing_dropped += 1;
            flushed_parked += 1;
        }
        if flushed_parked > 0 {
            // Parked packets flushed unresolved at end of stream
            // (`sub_agent = 1` distinguishes this from front-door sheds).
            self.journal.record(
                EventKind::Shed,
                0,
                1,
                flushed_parked,
                self.stats.template_missing_dropped,
            );
        }
        self.stats.pending = 0;
        self.stats.pending_bytes = 0;
        self.sync_metrics();
        self.stats
    }

    /// Classify and decode one packet by its leading version field.
    fn ingest_packet(&mut self, peer: u64, packet: Vec<u8>, out: &mut Vec<Drained>) {
        self.stats.received += 1;
        let tag = match packet.get(..2) {
            Some(&[a, b]) => u16::from_be_bytes([a, b]),
            _ => {
                self.stats.decode_errors += 1;
                self.stats.truncated += 1;
                return;
            }
        };
        match tag {
            // An sFlow v5 datagram leads with a u32 version, so its
            // first 16 bits are zero; the collector owns its decode.
            0x0000 => {
                self.stats.accepted += 1;
                self.stats.sflow_datagrams += 1;
                out.push(Drained::Sflow { peer, datagram: packet });
            }
            netflow5::VERSION => self.ingest_v5(peer, &packet, out),
            netflow9::VERSION | ipfix::VERSION => self.ingest_templated(peer, packet, out),
            _ => {
                self.stats.decode_errors += 1;
                self.stats.bad_version += 1;
            }
        }
    }

    /// Decode a template-free NetFlow v5 packet.
    fn ingest_v5(&mut self, peer: u64, packet: &[u8], out: &mut Vec<Drained>) {
        let p = match netflow5::decode(packet) {
            Ok(p) => p,
            Err(fault) => {
                self.count_fault(fault);
                self.stats.decode_errors += 1;
                return;
            }
        };
        let domain = (u32::from(p.engine.0) << 8) | u32::from(p.engine.1);
        if self.seen_before(peer, netflow5::VERSION, domain, p.sequence) {
            self.stats.duplicates += 1;
            return;
        }
        self.stats.accepted += 1;
        self.stats.v5_packets += 1;
        self.stats.flows = self.stats.flows.saturating_add(p.records.len() as u64);
        out.push(Drained::Flows { peer, records: p.records });
    }

    /// Decode a template-described v9/IPFIX packet, parking it whole
    /// when its template has not arrived yet.
    fn ingest_templated(&mut self, peer: u64, packet: Vec<u8>, out: &mut Vec<Drained>) {
        let counts_before = self.cache.counts();
        let d = match decode_templated(&packet, peer, &mut self.cache) {
            Ok(d) => d,
            Err(fault) => {
                self.journal_template_churn(peer, counts_before);
                self.count_fault(fault);
                self.stats.decode_errors += 1;
                return;
            }
        };
        self.journal_template_churn(peer, counts_before);
        if self.seen_before(peer, d.version, d.domain, d.sequence) {
            self.stats.duplicates += 1;
            return;
        }
        if d.missing_template {
            self.park(peer, packet);
        } else {
            self.stats.accepted += 1;
            match d.version {
                netflow9::VERSION => self.stats.v9_packets += 1,
                _ => self.stats.ipfix_packets += 1,
            }
            self.stats.flows = self.stats.flows.saturating_add(d.records.len() as u64);
            if !d.records.is_empty() {
                out.push(Drained::Flows { peer, records: d.records });
            }
        }
        if d.installed > 0 || d.refreshed > 0 {
            self.replay_parked(out);
        }
    }

    /// Journal template installs/refreshes and evictions that happened
    /// inside one `decode_templated` call, from the cache-count deltas.
    fn journal_template_churn(&self, peer: u64, before: (u64, u64, u64)) {
        if !self.journal.is_enabled() {
            return;
        }
        let (installed, refreshed, evicted) = self.cache.counts();
        let new_installed = installed.saturating_sub(before.0);
        let new_refreshed = refreshed.saturating_sub(before.1);
        let new_evicted = evicted.saturating_sub(before.2);
        if new_installed > 0 || new_refreshed > 0 {
            self.journal.record(EventKind::TemplateInstall, peer, 0, new_installed, new_refreshed);
        }
        if new_evicted > 0 {
            self.journal.record(EventKind::TemplateEvict, peer, 0, new_evicted, 0);
        }
    }

    /// Replay parked packets after a template install, looping while
    /// replays keep resolving (a replayed packet may itself install).
    fn replay_parked(&mut self, out: &mut Vec<Drained>) {
        let parked_before = self.parked.len() as u64;
        loop {
            let before = self.parked.len();
            if before == 0 {
                break;
            }
            let parked = std::mem::take(&mut self.parked);
            self.stats.pending = 0;
            self.stats.pending_bytes = 0;
            for (peer, packet) in parked {
                self.ingest_parked(peer, packet, out);
            }
            if self.parked.len() >= before {
                break;
            }
        }
        if parked_before > 0 {
            let resolved = parked_before.saturating_sub(self.parked.len() as u64);
            self.journal.record(EventKind::Replay, 0, 0, resolved, self.parked.len() as u64);
        }
    }

    /// Re-run one parked packet (already dedup-checked at park time).
    fn ingest_parked(&mut self, peer: u64, packet: Vec<u8>, out: &mut Vec<Drained>) {
        let counts_before = self.cache.counts();
        let d = match decode_templated(&packet, peer, &mut self.cache) {
            Ok(d) => {
                self.journal_template_churn(peer, counts_before);
                d
            }
            Err(fault) => {
                self.journal_template_churn(peer, counts_before);
                // A parked packet can stop decoding if its template was
                // refreshed to an incompatible layout in the meantime.
                self.count_fault(fault);
                self.stats.decode_errors += 1;
                return;
            }
        };
        if d.missing_template {
            // Still unresolved: back on the bench (or dropped, counted,
            // at the budget) — `park` owns that accounting.
            self.park(peer, packet);
        } else {
            self.stats.accepted += 1;
            match d.version {
                netflow9::VERSION => self.stats.v9_packets += 1,
                _ => self.stats.ipfix_packets += 1,
            }
            self.stats.flows = self.stats.flows.saturating_add(d.records.len() as u64);
            if !d.records.is_empty() {
                out.push(Drained::Flows { peer, records: d.records });
            }
        }
    }

    /// Park a packet whole, or drop it (accounted) at the byte budget.
    fn park(&mut self, peer: u64, packet: Vec<u8>) {
        let len = packet.len() as u64;
        if self.stats.pending_bytes.saturating_add(len) > self.config.pending_byte_budget as u64 {
            self.stats.template_missing_dropped += 1;
            // Dropped at the parking byte budget (`sub_agent = 1`
            // distinguishes this from front-door sheds, as in `finish`).
            self.journal.record(EventKind::Shed, peer, 1, 1, self.stats.template_missing_dropped);
            return;
        }
        self.stats.pending += 1;
        self.stats.pending_bytes = self.stats.pending_bytes.saturating_add(len);
        self.parked.push_back((peer, packet));
        self.journal.record(EventKind::Park, peer, 0, self.stats.pending, self.stats.pending_bytes);
    }

    /// Record `fault` in its per-kind bucket (the caller bumps the sum).
    fn count_fault(&mut self, fault: DecodeFault) {
        match fault {
            DecodeFault::Truncated => self.stats.truncated += 1,
            DecodeFault::BadVersion(_) => self.stats.bad_version += 1,
            DecodeFault::Inconsistent => self.stats.inconsistent += 1,
        }
    }

    /// Check-and-record `sequence` in the exporter's dedup window.
    fn seen_before(&mut self, peer: u64, version: u16, domain: u32, sequence: u32) -> bool {
        let key = (peer, version, domain);
        if !self.seen.contains_key(&key) && self.seen.len() >= MAX_DEDUP_KEYS {
            // Bounded state: forget the smallest key. Losing a window
            // only risks missing a duplicate, never losing a packet.
            if let Some(first) = self.seen.keys().next().copied() {
                self.seen.remove(&first);
            }
        }
        let window = self.seen.entry(key).or_default();
        if window.contains(&sequence) {
            return true;
        }
        window.push_back(sequence);
        while window.len() > self.config.dedup_window.max(1) {
            window.pop_front();
        }
        false
    }

    /// Serialize the intake — stats, dedup windows, parked packets,
    /// inbox, template cache, and bounds — deterministically, with a
    /// trailing FNV-1a-64 checksum so storage damage (bit flips,
    /// truncation, extension) is detected before the codec runs.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, TRANSPORT_STATE_VERSION);
        // Bounds first: restore rebuilds the same shedding behaviour.
        put_u64(&mut out, self.config.inbox_capacity as u64);
        put_u64(&mut out, self.config.pending_byte_budget as u64);
        put_u64(&mut out, self.config.dedup_window as u64);
        put_u64(&mut out, self.config.template_cache.max_domains as u64);
        put_u64(&mut out, self.config.template_cache.max_templates_per_domain as u64);
        // Stats, in declaration order, mirroring `restore_from` exactly.
        let s = &self.stats;
        put_u64(&mut out, s.offered);
        put_u64(&mut out, s.received);
        put_u64(&mut out, s.accepted);
        put_u64(&mut out, s.duplicates);
        put_u64(&mut out, s.decode_errors);
        put_u64(&mut out, s.truncated);
        put_u64(&mut out, s.bad_version);
        put_u64(&mut out, s.inconsistent);
        put_u64(&mut out, s.shed);
        put_u64(&mut out, s.template_missing_dropped);
        put_u64(&mut out, s.pending);
        put_u64(&mut out, s.pending_bytes);
        put_u64(&mut out, s.flows);
        put_u64(&mut out, s.sflow_datagrams);
        put_u64(&mut out, s.v5_packets);
        put_u64(&mut out, s.v9_packets);
        put_u64(&mut out, s.ipfix_packets);
        // Dedup windows (BTreeMap: already sorted, so deterministic).
        put_u64(&mut out, self.seen.len() as u64);
        for ((peer, version, domain), window) in &self.seen {
            put_u64(&mut out, *peer);
            put_u16(&mut out, *version);
            put_u32(&mut out, *domain);
            put_u64(&mut out, window.len() as u64);
            for seq in window {
                put_u32(&mut out, *seq);
            }
        }
        // Parked packets and inbox, verbatim and in order.
        put_u64(&mut out, self.parked.len() as u64);
        for (peer, packet) in &self.parked {
            put_u64(&mut out, *peer);
            put_bytes(&mut out, packet);
        }
        put_u64(&mut out, self.inbox.len() as u64);
        for (peer, packet) in &self.inbox {
            put_u64(&mut out, *peer);
            put_bytes(&mut out, packet);
        }
        // Template cache.
        put_u64(&mut out, self.cache.tick);
        let (installed, refreshed, evicted) = self.cache.counts();
        put_u64(&mut out, installed);
        put_u64(&mut out, refreshed);
        put_u64(&mut out, evicted);
        put_u64(&mut out, self.cache.domains.len() as u64);
        for ((peer, odid), domain) in &self.cache.domains {
            put_u64(&mut out, *peer);
            put_u32(&mut out, *odid);
            put_u64(&mut out, domain.last_used);
            put_u64(&mut out, domain.templates.len() as u64);
            for (id, t) in &domain.templates {
                put_u16(&mut out, *id);
                put_u32(&mut out, t.revision);
                put_u32(&mut out, t.record_len);
                put_u64(&mut out, t.last_used);
                put_u16(&mut out, t.fields.len() as u16);
                for (ie, len) in &t.fields {
                    put_u16(&mut out, *ie);
                    put_u16(&mut out, *len);
                }
            }
        }
        // The seal is outside the field codec (restore strips it before
        // the cursor runs), so it is appended raw, not as a field write.
        let sum = fnv64(&out);
        out.extend_from_slice(&sum.to_be_bytes());
        out
    }

    /// Rebuild an intake from [`save_state`](Self::save_state) bytes.
    /// The blob is wire-grade input: the trailing checksum must match,
    /// every read is bounds-checked, and the restored accounting must
    /// balance, or the restore fails.
    pub fn restore_from(data: &[u8]) -> Result<TransportIntake, StateError> {
        if data.len() < 8 {
            return Err(StateError::Truncated);
        }
        let (payload, trailer) = data.split_at(data.len() - 8);
        let stored = match *trailer {
            [a, b, c, d, e, f, g, h] => u64::from_be_bytes([a, b, c, d, e, f, g, h]),
            _ => return Err(StateError::Truncated),
        };
        if fnv64(payload) != stored {
            return Err(StateError::Invalid("state checksum mismatch"));
        }
        let mut cur = Cur::new(payload);
        let version = cur.u32()?;
        if version != TRANSPORT_STATE_VERSION {
            return Err(StateError::BadVersion(version));
        }
        let as_usize =
            |v: u64| usize::try_from(v).map_err(|_| StateError::Invalid("bound overflows usize"));
        let config = TransportConfig {
            inbox_capacity: as_usize(cur.u64()?)?,
            pending_byte_budget: as_usize(cur.u64()?)?,
            dedup_window: as_usize(cur.u64()?)?,
            template_cache: TemplateCacheConfig {
                max_domains: as_usize(cur.u64()?)?,
                max_templates_per_domain: as_usize(cur.u64()?)?,
            },
        };
        let stats = TransportStats {
            offered: cur.u64()?,
            received: cur.u64()?,
            accepted: cur.u64()?,
            duplicates: cur.u64()?,
            decode_errors: cur.u64()?,
            truncated: cur.u64()?,
            bad_version: cur.u64()?,
            inconsistent: cur.u64()?,
            shed: cur.u64()?,
            template_missing_dropped: cur.u64()?,
            pending: cur.u64()?,
            pending_bytes: cur.u64()?,
            flows: cur.u64()?,
            sflow_datagrams: cur.u64()?,
            v5_packets: cur.u64()?,
            v9_packets: cur.u64()?,
            ipfix_packets: cur.u64()?,
        };
        let mut seen: BTreeMap<(u64, u16, u32), VecDeque<u32>> = BTreeMap::new();
        let mut prev_key: Option<(u64, u16, u32)> = None;
        for _ in 0..cur.count(14)? {
            let key = (cur.u64()?, cur.u16()?, cur.u32()?);
            if prev_key.is_some_and(|p| p >= key) {
                return Err(StateError::Invalid("dedup keys not strictly sorted"));
            }
            prev_key = Some(key);
            let mut window = VecDeque::new();
            for _ in 0..cur.count(4)? {
                window.push_back(cur.u32()?);
            }
            seen.insert(key, window);
        }
        let mut parked = VecDeque::new();
        for _ in 0..cur.count(16)? {
            let peer = cur.u64()?;
            let packet = cur.bytes()?.to_vec();
            parked.push_back((peer, packet));
        }
        let mut inbox = VecDeque::new();
        for _ in 0..cur.count(16)? {
            let peer = cur.u64()?;
            let packet = cur.bytes()?.to_vec();
            inbox.push_back((peer, packet));
        }
        let mut cache = TemplateCache::new(config.template_cache);
        cache.tick = cur.u64()?;
        cache.installed = cur.u64()?;
        cache.refreshed = cur.u64()?;
        cache.evicted = cur.u64()?;
        let mut prev_domain: Option<(u64, u32)> = None;
        for _ in 0..cur.count(24)? {
            let key = (cur.u64()?, cur.u32()?);
            if prev_domain.is_some_and(|p| p >= key) {
                return Err(StateError::Invalid("template domains not strictly sorted"));
            }
            prev_domain = Some(key);
            let last_used = cur.u64()?;
            let mut templates = BTreeMap::new();
            let mut prev_id: Option<u16> = None;
            for _ in 0..cur.count(14)? {
                let id = cur.u16()?;
                if prev_id.is_some_and(|p| p >= id) {
                    return Err(StateError::Invalid("template ids not strictly sorted"));
                }
                prev_id = Some(id);
                let revision = cur.u32()?;
                let record_len = cur.u32()?;
                let t_last_used = cur.u64()?;
                let n_fields = usize::from(cur.u16()?);
                let mut fields = Vec::new();
                let mut sum = 0u32;
                for _ in 0..n_fields {
                    let ie = cur.u16()?;
                    let len = cur.u16()?;
                    sum = sum.saturating_add(u32::from(len));
                    fields.push((ie, len));
                }
                if sum != record_len {
                    return Err(StateError::Invalid("template record_len does not match fields"));
                }
                templates.insert(
                    id,
                    Template { fields, record_len, revision, last_used: t_last_used },
                );
            }
            cache
                .domains
                .insert(key, crate::template::Domain { last_used, templates });
        }
        cur.finish()?;

        let intake = TransportIntake {
            config,
            stats,
            inbox,
            parked,
            seen,
            cache,
            metrics: TransportMetrics::detached(),
            journal: Journal::disabled(),
        };
        if stats.pending != intake.parked.len() as u64 {
            return Err(StateError::Invalid("pending count disagrees with parked packets"));
        }
        if !intake.fully_accounted() {
            return Err(StateError::Invalid("restored accounting does not balance"));
        }
        Ok(intake)
    }
}

/// FNV-1a-64 over `bytes` — the state blob's damage-detection seal (the
/// per-byte state evolution is bijective, so any single-bit flip at
/// unchanged length is always detected).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The protocol-neutral shape both templated decoders reduce to.
struct TemplatedOutcome {
    version: u16,
    domain: u32,
    sequence: u32,
    records: Vec<FlowRecord>,
    installed: u32,
    refreshed: u32,
    missing_template: bool,
}

/// Dispatch a v9/IPFIX packet to its decoder by the version field the
/// caller already classified on.
fn decode_templated(
    packet: &[u8],
    peer: u64,
    cache: &mut TemplateCache,
) -> Result<TemplatedOutcome, DecodeFault> {
    match packet.get(..2) {
        Some(&[0x00, 0x09]) => {
            let o = netflow9::decode(packet, peer, cache)?;
            Ok(TemplatedOutcome {
                version: netflow9::VERSION,
                domain: o.source_id,
                sequence: o.sequence,
                records: o.records,
                installed: o.installed,
                refreshed: o.refreshed,
                missing_template: o.missing_template,
            })
        }
        Some(&[0x00, 0x0A]) => {
            let o = ipfix::decode(packet, peer, cache)?;
            Ok(TemplatedOutcome {
                version: ipfix::VERSION,
                domain: o.observation_domain,
                sequence: o.sequence,
                records: o.records,
                installed: o.installed,
                refreshed: o.refreshed,
                missing_template: o.missing_template,
            })
        }
        _ => Err(DecodeFault::Truncated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowRecord;
    use std::net::Ipv4Addr;

    fn rec(i: u8) -> FlowRecord {
        FlowRecord {
            src: Ipv4Addr::new(10, 1, 0, i),
            dst: Ipv4Addr::new(10, 2, 0, i),
            src_port: 1000 + u16::from(i),
            dst_port: 443,
            proto: 6,
            packets: 4,
            bytes: 600,
        }
    }

    fn v5(seq: u32, n: u8) -> Vec<u8> {
        netflow5::encode(&netflow5::V5Packet {
            sequence: seq,
            engine: (0, 1),
            sampling_interval: 1,
            records: (0..n).map(rec).collect(),
        })
    }

    fn intake() -> TransportIntake {
        TransportIntake::new(TransportConfig::default())
    }

    #[test]
    fn mixed_protocols_accept_and_account() {
        let mut t = intake();
        let fields = netflow9::encode::flow_template_fields();
        assert!(t.offer(1, &v5(1, 2)));
        assert!(t.offer(2, &netflow9::encode::packet(1, 7, 260, Some(&fields), &[rec(1)])));
        assert!(t.offer(3, &ipfix::encode::packet(1, 9, 300, Some(&fields), &[rec(2)])));
        assert!(t.offer(4, b"\x00\x00\x00\x05sflowish"));
        assert!(t.offer(5, &[0xBE, 0xEF, 0, 0]));
        let work = t.drain(16);
        let flows: usize = work
            .iter()
            .map(|d| match d {
                Drained::Flows { records, .. } => records.len(),
                Drained::Sflow { .. } => 0,
            })
            .sum();
        assert_eq!(flows, 4);
        let s = t.finish();
        assert_eq!(s.offered, 5);
        assert_eq!(s.accepted, 4);
        assert_eq!(s.decode_errors, 1);
        assert_eq!(s.bad_version, 1);
        assert_eq!((s.sflow_datagrams, s.v5_packets, s.v9_packets, s.ipfix_packets), (1, 1, 1, 1));
        assert!(t.fully_accounted());
    }

    #[test]
    fn inbox_bound_sheds_with_accounting() {
        let mut t = TransportIntake::new(TransportConfig {
            inbox_capacity: 2,
            ..TransportConfig::default()
        });
        for i in 0..5u32 {
            t.offer(1, &v5(i, 1));
        }
        let s = t.stats();
        assert_eq!(s.offered, 5);
        assert_eq!(s.shed, 3);
        assert!(t.fully_accounted());
        t.drain(16);
        assert!(t.fully_accounted());
        assert_eq!(t.stats().accepted, 2);
    }

    #[test]
    fn withheld_template_parks_then_replays() {
        let mut t = intake();
        let fields = netflow9::encode::flow_template_fields();
        // Data first: parked, no records emitted.
        t.offer(1, &netflow9::encode::packet(1, 7, 260, None, &[rec(1), rec(2)]));
        let work = t.drain(16);
        assert!(work.is_empty());
        assert_eq!(t.stats().pending, 1);
        assert!(t.fully_accounted());
        // Template arrives: the parked packet replays and resolves.
        t.offer(1, &netflow9::encode::packet(2, 7, 260, Some(&fields), &[]));
        let work = t.drain(16);
        let flows: usize = work
            .iter()
            .map(|d| match d {
                Drained::Flows { records, .. } => records.len(),
                Drained::Sflow { .. } => 0,
            })
            .sum();
        assert_eq!(flows, 2);
        let s = t.finish();
        assert_eq!(s.pending, 0);
        assert_eq!(s.template_missing_dropped, 0);
        assert_eq!(s.accepted, 2);
        assert!(t.fully_accounted());
    }

    #[test]
    fn journal_sees_park_replay_and_template_churn() {
        let mut t = intake();
        let journal = Journal::deterministic();
        t.bind_journal(journal.clone());
        let fields = netflow9::encode::flow_template_fields();
        // Data-before-template parks; the template install replays it.
        t.offer(1, &netflow9::encode::packet(1, 7, 260, None, &[rec(1)]));
        t.drain(16);
        t.offer(1, &netflow9::encode::packet(2, 7, 260, Some(&fields), &[]));
        t.drain(16);
        let kinds: Vec<EventKind> = journal.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Park), "no park event: {kinds:?}");
        assert!(kinds.contains(&EventKind::TemplateInstall), "no install event: {kinds:?}");
        assert!(kinds.contains(&EventKind::Replay), "no replay event: {kinds:?}");
        let replay = journal
            .events()
            .iter()
            .rev()
            .find(|e| e.kind == EventKind::Replay)
            .copied()
            .expect("replay event");
        assert_eq!((replay.a, replay.b), (1, 0), "one packet resolved, none left parked");
    }

    #[test]
    fn journal_sees_front_door_and_budget_sheds() {
        let mut t = TransportIntake::new(TransportConfig {
            inbox_capacity: 1,
            pending_byte_budget: 1,
            ..TransportConfig::default()
        });
        let journal = Journal::deterministic();
        t.bind_journal(journal.clone());
        t.offer(1, &v5(1, 1));
        t.offer(1, &v5(2, 1)); // front-door shed (inbox full)
        t.drain(16);
        t.offer(2, &netflow9::encode::packet(1, 7, 260, None, &[rec(1)]));
        t.drain(16); // budget shed (pending_byte_budget = 1)
        let sheds: Vec<_> =
            journal.events().iter().filter(|e| e.kind == EventKind::Shed).copied().collect();
        assert!(sheds.iter().any(|e| e.sub_agent == 0), "no front-door shed: {sheds:?}");
        assert!(sheds.iter().any(|e| e.sub_agent == 1), "no budget shed: {sheds:?}");
    }

    #[test]
    fn parking_budget_drops_with_accounting() {
        let mut t = TransportIntake::new(TransportConfig {
            pending_byte_budget: 64,
            ..TransportConfig::default()
        });
        for seq in 0..8u32 {
            t.offer(1, &netflow9::encode::packet(seq, 7, 260, None, &[rec(1)]));
        }
        t.drain(16);
        let s = t.stats();
        assert!(s.template_missing_dropped > 0, "budget never tripped");
        assert!(s.pending > 0, "budget admitted nothing");
        assert!(t.fully_accounted());
        let final_s = t.finish();
        assert_eq!(final_s.pending, 0);
        assert_eq!(
            final_s.template_missing_dropped + final_s.accepted + final_s.duplicates,
            final_s.received
        );
    }

    #[test]
    fn duplicates_are_suppressed_per_domain() {
        let mut t = intake();
        let packet = v5(41, 2);
        t.offer(1, &packet);
        t.offer(1, &packet);
        // Same sequence from a different peer is not a duplicate.
        t.offer(2, &packet);
        t.drain(16);
        let s = t.finish();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.duplicates, 1);
        assert!(t.fully_accounted());
    }

    #[test]
    fn finish_flushes_unresolved_to_template_missing_dropped() {
        let mut t = intake();
        t.offer(1, &netflow9::encode::packet(1, 7, 260, None, &[rec(1)]));
        t.offer(1, &v5(9, 1)); // left in the inbox: shed by finish
        t.drain(1);
        let s = t.finish();
        assert_eq!(s.template_missing_dropped, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.pending, 0);
        assert!(t.fully_accounted());
    }

    #[test]
    fn checkpoint_roundtrips_byte_identically() {
        let mut t = intake();
        let fields = netflow9::encode::flow_template_fields();
        t.offer(1, &netflow9::encode::packet(1, 7, 260, Some(&fields), &[rec(1)]));
        t.offer(2, &ipfix::encode::packet(1, 9, 300, None, &[rec(2)])); // parks
        t.offer(3, &v5(5, 1));
        t.drain(2); // leave one packet in the inbox
        let blob = t.save_state();
        let restored = TransportIntake::restore_from(&blob).unwrap();
        assert_eq!(restored.save_state(), blob, "save → restore → save drifted");
        assert_eq!(restored.stats(), t.stats());
        assert!(restored.fully_accounted());
    }

    #[test]
    fn restore_is_fail_closed() {
        let mut t = intake();
        t.offer(1, &v5(1, 1));
        t.drain(16);
        let blob = t.save_state();
        for cut in 0..blob.len() {
            assert!(
                TransportIntake::restore_from(&blob[..cut]).is_err(),
                "cut {cut} restored"
            );
        }
        // Re-seal after tampering so the typed checks behind the
        // checksum are exercised, not just the checksum itself.
        let reseal = |mut bytes: Vec<u8>| {
            bytes.truncate(bytes.len() - 8);
            let sum = fnv64(&bytes);
            put_u64(&mut bytes, sum);
            bytes
        };
        let mut wrong = blob.clone();
        wrong[3] = 99; // version
        assert!(matches!(
            TransportIntake::restore_from(&reseal(wrong)),
            Err(StateError::BadVersion(_))
        ));
        // Tamper with a stats field: the balance check must catch it.
        let mut unbalanced = blob.clone();
        let offered_at = 4 + 5 * 8 + 7; // version + bounds, low byte of `offered`
        unbalanced[offered_at] = unbalanced[offered_at].wrapping_add(1);
        assert!(TransportIntake::restore_from(&reseal(unbalanced)).is_err());
        // Without a reseal, EVERY single-bit flip is caught by the seal.
        for i in 0..blob.len() {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    TransportIntake::restore_from(&bad).is_err(),
                    "flip at byte {i} bit {bit} restored"
                );
            }
        }
    }

    #[test]
    fn resume_mid_withhold_loses_nothing() {
        let mut t = intake();
        let fields = netflow9::encode::flow_template_fields();
        t.offer(1, &netflow9::encode::packet(1, 7, 260, None, &[rec(1), rec(2)]));
        t.drain(16);
        let blob = t.save_state();
        drop(t);
        // New process: restore, then the withheld template finally lands.
        let mut t2 = TransportIntake::restore_from(&blob).unwrap();
        t2.offer(1, &netflow9::encode::packet(2, 7, 260, Some(&fields), &[]));
        let work = t2.drain(16);
        let flows: usize = work
            .iter()
            .map(|d| match d {
                Drained::Flows { records, .. } => records.len(),
                Drained::Sflow { .. } => 0,
            })
            .sum();
        assert_eq!(flows, 2, "parked packet lost across the checkpoint");
        let s = t2.finish();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.template_missing_dropped, 0);
        assert!(t2.fully_accounted());
    }
}
