//! Seeded UDP-level perturbation for `(peer, packet)` streams.
//!
//! [`FaultPlan`](crate::FaultPlan) understands sFlow headers and injects
//! identity-aware faults; [`WirePlan`] sits one layer lower, where the
//! transport front-end lives, and perturbs *datagrams as the socket sees
//! them* — any protocol, no decoding: per-packet drop, duplication,
//! reordering, and truncation. The template-churn scenarios that pair
//! with it (withhold windows, flap windows, exporter restarts) are
//! workload-shaping knobs, so they live in [`crate::chaos`] and feed the
//! transport generator's config rather than rewriting bytes here.
//!
//! Same seed, same perturbation, byte for byte — the transport soak gate
//! replays the identical faulted stream on both sides of a
//! kill-and-resume and expects byte-identical metrics.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which wire-level failures to inject, and how often. Probabilities are
/// per input packet and independent.
#[derive(Debug, Clone, Default)]
pub struct WireFaultConfig {
    /// Seed for every random decision the plan makes.
    pub seed: u64,
    /// Probability a packet is silently dropped (UDP loss).
    pub drop: f64,
    /// Probability a packet is delivered twice.
    pub duplicate: f64,
    /// Probability a packet is held back and delivered 1–3 packets late.
    pub reorder: f64,
    /// Probability a packet is cut short at a random byte.
    pub truncate: f64,
}

impl WireFaultConfig {
    /// The identity plan: nothing is perturbed.
    pub fn clean(seed: u64) -> WireFaultConfig {
        WireFaultConfig { seed, ..WireFaultConfig::default() }
    }

    /// Pure packet loss at rate `p`.
    pub fn loss(seed: u64, p: f64) -> WireFaultConfig {
        WireFaultConfig { seed, drop: p, ..WireFaultConfig::default() }
    }
}

/// Exact counts of what a [`WirePlan`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Packets pulled from the wrapped stream.
    pub input: u64,
    /// Packets handed to the consumer (includes duplicates).
    pub emitted: u64,
    /// Packets dropped by the loss coin.
    pub dropped: u64,
    /// Packets delivered twice.
    pub duplicated: u64,
    /// Packets delivered out of order.
    pub reordered: u64,
    /// Packets cut short.
    pub truncated: u64,
}

/// The wire-level perturbing iterator adaptor over `(peer, packet)`
/// pairs. Iterate with `by_ref()` if you need [`WirePlan::stats`]
/// afterwards.
pub struct WirePlan<I> {
    inner: I,
    cfg: WireFaultConfig,
    rng: SmallRng,
    /// Packets ready to hand out.
    ready: VecDeque<(u64, Vec<u8>)>,
    /// A reordered packet waiting out its delay (packet, remaining).
    held: Option<((u64, Vec<u8>), u8)>,
    stats: WireStats,
}

impl<I: Iterator<Item = (u64, Vec<u8>)>> WirePlan<I> {
    /// Wrap a packet stream with a wire-fault configuration.
    pub fn new(inner: I, cfg: WireFaultConfig) -> WirePlan<I> {
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0x7769_7265_FA17);
        WirePlan { inner, cfg, rng, ready: VecDeque::new(), held: None, stats: WireStats::default() }
    }

    /// What has been injected so far (complete once the iterator is
    /// exhausted).
    pub fn stats(&self) -> WireStats {
        self.stats
    }

    /// Queue a packet for delivery, aging any held (reordered) packet.
    fn emit(&mut self, p: (u64, Vec<u8>)) {
        self.ready.push_back(p);
        self.stats.emitted += 1;
        let flush = match &mut self.held {
            Some((_, remaining)) => {
                *remaining = remaining.saturating_sub(1);
                *remaining == 0
            }
            None => false,
        };
        if flush {
            if let Some((h, _)) = self.held.take() {
                self.ready.push_back(h);
                self.stats.emitted += 1;
            }
        }
    }

    /// Apply the plan to one input packet.
    fn process(&mut self, peer: u64, mut packet: Vec<u8>) {
        self.stats.input += 1;
        if self.rng.gen::<f64>() < self.cfg.drop {
            self.stats.dropped += 1;
            return;
        }
        if self.rng.gen::<f64>() < self.cfg.truncate && packet.len() > 1 {
            let cut = self.rng.gen_range(1..packet.len());
            packet.truncate(cut);
            self.stats.truncated += 1;
        }
        let duplicate = self.rng.gen::<f64>() < self.cfg.duplicate;
        let hold = self.rng.gen::<f64>() < self.cfg.reorder;
        if duplicate {
            self.stats.duplicated += 1;
            self.emit((peer, packet.clone()));
        }
        if hold && self.held.is_none() {
            let delay = self.rng.gen_range(1..=3u8);
            self.held = Some(((peer, packet), delay));
            self.stats.reordered += 1;
        } else {
            self.emit((peer, packet));
        }
    }
}

impl<I: Iterator<Item = (u64, Vec<u8>)>> Iterator for WirePlan<I> {
    type Item = (u64, Vec<u8>);

    fn next(&mut self) -> Option<(u64, Vec<u8>)> {
        loop {
            if let Some(p) = self.ready.pop_front() {
                return Some(p);
            }
            match self.inner.next() {
                Some((peer, packet)) => self.process(peer, packet),
                None => {
                    // Stream over: flush a still-held reordered packet.
                    match self.held.take() {
                        Some((h, _)) => {
                            self.stats.emitted += 1;
                            return Some(h);
                        }
                        None => return None,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(n: u64) -> Vec<(u64, Vec<u8>)> {
        (0..n).map(|i| (i % 4, i.to_be_bytes().to_vec())).collect()
    }

    #[test]
    fn clean_plan_is_identity() {
        let input = feed(64);
        let mut plan = WirePlan::new(input.clone().into_iter(), WireFaultConfig::clean(7));
        let out: Vec<_> = plan.by_ref().collect();
        assert_eq!(out, input);
        let s = plan.stats();
        assert_eq!(s.input, 64);
        assert_eq!(s.emitted, 64);
        assert_eq!(s.dropped + s.duplicated + s.reordered + s.truncated, 0);
    }

    #[test]
    fn plans_replay_bit_for_bit() {
        let cfg = WireFaultConfig { seed: 3, drop: 0.1, duplicate: 0.1, reorder: 0.1, truncate: 0.1 };
        let a: Vec<_> = WirePlan::new(feed(500).into_iter(), cfg.clone()).collect();
        let b: Vec<_> = WirePlan::new(feed(500).into_iter(), cfg).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn loss_is_counted_exactly() {
        let mut plan = WirePlan::new(feed(5000).into_iter(), WireFaultConfig::loss(9, 0.05));
        let n = plan.by_ref().count() as u64;
        let s = plan.stats();
        assert_eq!(s.input, 5000);
        assert_eq!(s.emitted, n);
        assert_eq!(s.input, s.emitted + s.dropped);
        let rate = s.dropped as f64 / s.input as f64;
        assert!((rate - 0.05).abs() < 0.015, "injected loss {rate:.3}");
    }

    #[test]
    fn duplicates_keep_their_peer() {
        let cfg = WireFaultConfig { seed: 5, duplicate: 1.0, ..WireFaultConfig::default() };
        let out: Vec<_> = WirePlan::new(feed(10).into_iter(), cfg).collect();
        assert_eq!(out.len(), 20);
        for pair in out.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn reordered_packets_all_arrive() {
        let cfg = WireFaultConfig { seed: 11, reorder: 0.5, ..WireFaultConfig::default() };
        let mut plan = WirePlan::new(feed(200).into_iter(), cfg);
        let mut out: Vec<_> = plan.by_ref().map(|(_, p)| p).collect();
        assert!(plan.stats().reordered > 0);
        out.sort();
        let mut expect: Vec<_> = feed(200).into_iter().map(|(_, p)| p).collect();
        expect.sort();
        assert_eq!(out, expect);
    }
}
