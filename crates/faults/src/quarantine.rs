//! Persistent-failure quarantine.
//!
//! Targets that keep failing (dead crawl hosts, vanished resolvers) should
//! stop consuming retry budget: after `threshold` *consecutive* failures a
//! key is quarantined and callers short-circuit it. One success before the
//! threshold resets the streak. The table is internally locked so the
//! parallel study weeks can share one instance.

use std::collections::BTreeMap;

use parking_lot::Mutex;

#[derive(Debug, Clone, Copy, Default)]
struct Streak {
    consecutive: u32,
    quarantined: bool,
}

/// A consecutive-failure quarantine table over keys of type `K`.
#[derive(Debug)]
pub struct Quarantine<K> {
    threshold: u32,
    table: Mutex<BTreeMap<K, Streak>>,
}

impl<K: Ord + Clone> Quarantine<K> {
    /// Quarantine after `threshold` consecutive failures (min 1).
    pub fn new(threshold: u32) -> Quarantine<K> {
        Quarantine { threshold: threshold.max(1), table: Mutex::new(BTreeMap::new()) }
    }

    /// Record a failure; returns true when this failure crossed the
    /// threshold (the key is newly quarantined).
    pub fn record_failure(&self, key: K) -> bool {
        let mut table = self.table.lock();
        let entry = table.entry(key).or_default();
        if entry.quarantined {
            return false;
        }
        entry.consecutive += 1;
        if entry.consecutive >= self.threshold {
            entry.quarantined = true;
            return true;
        }
        false
    }

    /// Record a success: the failure streak resets, and a quarantined key
    /// is released (targets do come back).
    pub fn record_success(&self, key: &K) {
        let mut table = self.table.lock();
        if let Some(entry) = table.get_mut(key) {
            entry.consecutive = 0;
            entry.quarantined = false;
        }
    }

    /// Is this key currently quarantined?
    pub fn is_quarantined(&self, key: &K) -> bool {
        self.table.lock().get(key).map(|e| e.quarantined).unwrap_or(false)
    }

    /// Number of currently quarantined keys.
    pub fn quarantined_count(&self) -> usize {
        self.table.lock().values().filter(|e| e.quarantined).count()
    }

    /// Number of keys with any recorded history.
    pub fn tracked_count(&self) -> usize {
        self.table.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantines_after_threshold_consecutive_failures() {
        let q = Quarantine::new(3);
        assert!(!q.record_failure("a"));
        assert!(!q.record_failure("a"));
        assert!(!q.is_quarantined(&"a"));
        assert!(q.record_failure("a"));
        assert!(q.is_quarantined(&"a"));
        assert_eq!(q.quarantined_count(), 1);
        // Further failures are not "newly quarantined".
        assert!(!q.record_failure("a"));
    }

    #[test]
    fn success_resets_the_streak() {
        let q = Quarantine::new(2);
        assert!(!q.record_failure(7u32));
        q.record_success(&7);
        assert!(!q.record_failure(7));
        assert!(q.record_failure(7));
        assert!(q.is_quarantined(&7));
        // A success releases even a quarantined key.
        q.record_success(&7);
        assert!(!q.is_quarantined(&7));
    }

    #[test]
    fn keys_are_independent() {
        let q = Quarantine::new(1);
        q.record_failure("dead");
        assert!(q.is_quarantined(&"dead"));
        assert!(!q.is_quarantined(&"alive"));
        assert_eq!(q.tracked_count(), 1);
    }

    #[test]
    fn zero_threshold_behaves_like_one() {
        let q = Quarantine::new(0);
        assert!(q.record_failure(1u8));
        assert!(q.is_quarantined(&1));
    }

    #[test]
    fn shared_across_threads() {
        let q = std::sync::Arc::new(Quarantine::new(8));
        crossbeam_free_scope(&q);
        assert!(q.is_quarantined(&0u32));
    }

    /// Hammer the quarantine from plain std threads (crossbeam not needed).
    fn crossbeam_free_scope(q: &std::sync::Arc<Quarantine<u32>>) {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        q.record_failure(0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
