//! The seeded datagram-stream perturbation plan.
//!
//! [`FaultPlan`] wraps any iterator of encoded sFlow datagrams (in practice
//! `ixp_traffic::WeekStream`) and applies the configured failure modes in a
//! fixed order per input datagram:
//!
//! 1. **identity-aware faults** (need the decoded header): agent restart
//!    (sequence renumbered from 1, uptime reset), counter wrap (cumulative
//!    `if_counters` pushed close to the type maximum so later exports wrap
//!    past zero), and whole-agent outage windows (every datagram of the
//!    sub-agent inside the window is dropped);
//! 2. **byte-level faults**: drop, truncate, bit-corrupt;
//! 3. **delivery faults**: duplicate (the datagram is emitted twice) and
//!    reorder (the datagram is held back and re-injected one to three
//!    datagrams later).
//!
//! Every random decision comes from one `SmallRng` seeded by
//! [`FaultConfig::seed`], so a plan replays bit-for-bit. With an all-zero
//! configuration the plan is the identity: every input byte vector passes
//! through unchanged, in order.

use std::collections::{BTreeMap, VecDeque};

use ixp_sflow::Datagram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Offset added to cumulative octet counters when `counter_wrap` is on:
/// close enough to `u64::MAX` that a realistic second export wraps past 0.
const OCTET_WRAP_PUSH: u64 = u64::MAX - (1 << 38);

/// Offset added to cumulative packet counters when `counter_wrap` is on.
const UCAST_WRAP_PUSH: u32 = u32::MAX - (1 << 18);

/// A whole-agent outage: every datagram of `sub_agent` whose 1-based input
/// index falls in `[from, until)` is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The sub-agent taken down.
    pub sub_agent: u32,
    /// First input index affected (1-based, inclusive).
    pub from: u64,
    /// First input index no longer affected (exclusive).
    pub until: u64,
}

/// Which failures to inject, and how often.
///
/// Probabilities are per input datagram and independent; deterministic
/// faults (restarts, outages) are keyed on the 1-based input index.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Seed for every random decision the plan makes.
    pub seed: u64,
    /// Probability a datagram is silently dropped (UDP loss).
    pub drop: f64,
    /// Probability a datagram is delivered twice.
    pub duplicate: f64,
    /// Probability a datagram is held back and delivered 1–3 datagrams late.
    pub reorder: f64,
    /// Probability a datagram is cut short at a random byte.
    pub truncate: f64,
    /// Probability a single bit of the datagram is flipped.
    pub corrupt: f64,
    /// Agent restarts: `(sub_agent, at)` renumbers the sub-agent's datagram
    /// sequence from 1 starting at input index `at` (1-based), as a rebooted
    /// switch would.
    pub restarts: Vec<(u32, u64)>,
    /// Whole-agent outage windows.
    pub outages: Vec<OutageWindow>,
    /// Push cumulative interface counters close to the type maximum so the
    /// next export wraps — exercises wrap-safe delta accounting downstream.
    pub counter_wrap: bool,
}

impl FaultConfig {
    /// The identity plan: nothing is perturbed.
    pub fn clean(seed: u64) -> FaultConfig {
        FaultConfig { seed, ..FaultConfig::default() }
    }

    /// Pure datagram loss at rate `p`.
    pub fn loss(seed: u64, p: f64) -> FaultConfig {
        FaultConfig { seed, drop: p, ..FaultConfig::default() }
    }
}

/// Exact counts of what a [`FaultPlan`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams pulled from the wrapped stream.
    pub input: u64,
    /// Datagrams handed to the consumer (includes duplicates).
    pub emitted: u64,
    /// Datagrams dropped by the loss coin.
    pub dropped: u64,
    /// Datagrams dropped inside an outage window.
    pub outage_dropped: u64,
    /// Datagrams delivered twice.
    pub duplicated: u64,
    /// Datagrams delivered out of order.
    pub reordered: u64,
    /// Datagrams cut short.
    pub truncated: u64,
    /// Datagrams with a flipped bit.
    pub corrupted: u64,
    /// Agent restarts that actually fired.
    pub restarts_injected: u64,
}

impl FaultStats {
    /// Fraction of input datagrams that never reached the consumer.
    pub fn injected_loss_rate(&self) -> f64 {
        if self.input == 0 {
            0.0
        } else {
            (self.dropped + self.outage_dropped) as f64 / self.input as f64
        }
    }
}

/// The perturbing iterator adaptor. See the module docs for the fault
/// order. Iterate with `while let Some(d) = plan.next()` (or `by_ref()`) if
/// you need [`FaultPlan::stats`] afterwards.
pub struct FaultPlan<I> {
    inner: I,
    cfg: FaultConfig,
    rng: SmallRng,
    /// 1-based index of the last input datagram pulled.
    idx: u64,
    /// Datagrams ready to hand out.
    ready: VecDeque<Vec<u8>>,
    /// A reordered datagram waiting out its delay (datagram, remaining).
    held: Option<(Vec<u8>, u8)>,
    /// Per-sub-agent sequence offset applied after an injected restart.
    renumber: BTreeMap<u32, u32>,
    stats: FaultStats,
}

impl<I: Iterator<Item = Vec<u8>>> FaultPlan<I> {
    /// Wrap a datagram stream with a fault configuration.
    pub fn new(inner: I, cfg: FaultConfig) -> FaultPlan<I> {
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0xFA17_7001);
        FaultPlan {
            inner,
            cfg,
            rng,
            idx: 0,
            ready: VecDeque::new(),
            held: None,
            renumber: BTreeMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// What has been injected so far (complete once the iterator is
    /// exhausted).
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Queue a datagram for delivery, aging any held (reordered) datagram.
    fn emit(&mut self, d: Vec<u8>) {
        self.ready.push_back(d);
        self.stats.emitted += 1;
        let flush = match &mut self.held {
            Some((_, remaining)) => {
                *remaining = remaining.saturating_sub(1);
                *remaining == 0
            }
            None => false,
        };
        if flush {
            if let Some((h, _)) = self.held.take() {
                self.ready.push_back(h);
                self.stats.emitted += 1;
            }
        }
    }

    /// Apply the plan to one input datagram.
    fn process(&mut self, d: Vec<u8>) {
        self.stats.input += 1;
        self.idx += 1;
        let idx = self.idx;
        let mut d = d;

        // Identity-aware faults need the decoded header. The pristine feed
        // is always well-formed; if an upstream stage already damaged the
        // bytes, these faults simply do not apply.
        if let Ok(mut dg) = Datagram::decode(&d) {
            let mut rewrite = false;
            for (sub, at) in self.cfg.restarts.clone() {
                if dg.sub_agent_id == sub && idx >= at && !self.renumber.contains_key(&sub) {
                    // First datagram of this sub-agent at/after the restart
                    // point: renumber so its sequence restarts at 1.
                    self.renumber.insert(sub, dg.sequence.wrapping_sub(1));
                    self.stats.restarts_injected += 1;
                }
            }
            if let Some(offset) = self.renumber.get(&dg.sub_agent_id) {
                dg.sequence = dg.sequence.wrapping_sub(*offset);
                // A rebooted agent's uptime restarts too; keep it
                // proportional to the new sequence like the generator does.
                dg.uptime_ms = dg.sequence.wrapping_mul(40);
                rewrite = true;
            }
            if self.cfg.counter_wrap && !dg.counters.is_empty() {
                for c in &mut dg.counters {
                    c.if_in_octets = c.if_in_octets.wrapping_add(OCTET_WRAP_PUSH);
                    c.if_out_octets = c.if_out_octets.wrapping_add(OCTET_WRAP_PUSH);
                    c.if_in_ucast = c.if_in_ucast.wrapping_add(UCAST_WRAP_PUSH);
                    c.if_out_ucast = c.if_out_ucast.wrapping_add(UCAST_WRAP_PUSH);
                }
                rewrite = true;
            }
            let in_outage = self
                .cfg
                .outages
                .iter()
                .any(|w| w.sub_agent == dg.sub_agent_id && idx >= w.from && idx < w.until);
            if in_outage {
                self.stats.outage_dropped += 1;
                return;
            }
            if rewrite {
                d = dg.encode();
            }
        }

        if self.rng.gen::<f64>() < self.cfg.drop {
            self.stats.dropped += 1;
            return;
        }
        if self.rng.gen::<f64>() < self.cfg.truncate && d.len() > 1 {
            let cut = self.rng.gen_range(1..d.len());
            d.truncate(cut);
            self.stats.truncated += 1;
        }
        if self.rng.gen::<f64>() < self.cfg.corrupt && !d.is_empty() {
            let pos = self.rng.gen_range(0..d.len());
            let bit = self.rng.gen_range(0..8u8);
            if let Some(b) = d.get_mut(pos) {
                *b ^= 1 << bit;
            }
            self.stats.corrupted += 1;
        }
        let duplicate = self.rng.gen::<f64>() < self.cfg.duplicate;
        let hold = self.rng.gen::<f64>() < self.cfg.reorder;
        if duplicate {
            self.stats.duplicated += 1;
            self.emit(d.clone());
        }
        if hold && self.held.is_none() {
            let delay = self.rng.gen_range(1..=3u8);
            self.held = Some((d, delay));
            self.stats.reordered += 1;
        } else {
            self.emit(d);
        }
    }
}

impl<I: Iterator<Item = Vec<u8>>> Iterator for FaultPlan<I> {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        loop {
            if let Some(d) = self.ready.pop_front() {
                return Some(d);
            }
            match self.inner.next() {
                Some(d) => self.process(d),
                None => {
                    // Stream over: flush a still-held reordered datagram.
                    match self.held.take() {
                        Some((h, _)) => {
                            self.stats.emitted += 1;
                            return Some(h);
                        }
                        None => return None,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// A minimal well-formed datagram for sub-agent `sub` with sequence
    /// `seq`.
    fn dg(sub: u32, seq: u32) -> Vec<u8> {
        Datagram {
            agent_address: Ipv4Addr::new(10, 255, 0, 1),
            sub_agent_id: sub,
            sequence: seq,
            uptime_ms: seq.wrapping_mul(40),
            samples: vec![],
            counters: vec![],
        }
        .encode()
    }

    fn feed(n: u32) -> Vec<Vec<u8>> {
        (1..=n).map(|s| dg(0, s)).collect()
    }

    #[test]
    fn clean_plan_is_identity() {
        let input = feed(50);
        let mut plan = FaultPlan::new(input.clone().into_iter(), FaultConfig::clean(7));
        let mut out = Vec::new();
        for d in plan.by_ref() {
            out.push(d);
        }
        assert_eq!(out, input);
        let s = plan.stats();
        assert_eq!(s.input, 50);
        assert_eq!(s.emitted, 50);
        assert_eq!(s.dropped + s.outage_dropped + s.duplicated + s.truncated + s.corrupted, 0);
    }

    #[test]
    fn plans_replay_bit_for_bit() {
        let cfg = FaultConfig {
            seed: 99,
            drop: 0.1,
            duplicate: 0.05,
            reorder: 0.1,
            truncate: 0.05,
            corrupt: 0.05,
            restarts: vec![(0, 20)],
            outages: vec![OutageWindow { sub_agent: 0, from: 40, until: 45 }],
            counter_wrap: false,
        };
        let a: Vec<Vec<u8>> = FaultPlan::new(feed(200).into_iter(), cfg.clone()).collect();
        let b: Vec<Vec<u8>> = FaultPlan::new(feed(200).into_iter(), cfg).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn loss_rate_matches_the_coin() {
        let mut plan = FaultPlan::new(feed(5000).into_iter(), FaultConfig::loss(3, 0.1));
        let n = plan.by_ref().count() as u64;
        let s = plan.stats();
        assert_eq!(s.input, 5000);
        assert_eq!(s.emitted, n);
        assert_eq!(s.input, s.emitted + s.dropped);
        let rate = s.injected_loss_rate();
        assert!((rate - 0.1).abs() < 0.02, "injected loss {rate:.3}");
    }

    #[test]
    fn restart_renumbers_from_one() {
        let cfg = FaultConfig { seed: 1, restarts: vec![(0, 11)], ..FaultConfig::default() };
        let out: Vec<Vec<u8>> = FaultPlan::new(feed(20).into_iter(), cfg).collect();
        let seqs: Vec<u32> =
            out.iter().map(|d| Datagram::decode(d).unwrap().sequence).collect();
        let expected: Vec<u32> = (1..=10u32).chain(1..=10).collect();
        assert_eq!(seqs, expected);
    }

    #[test]
    fn outage_drops_only_the_windowed_subagent() {
        let mut input = Vec::new();
        for s in 1..=10u32 {
            input.push(dg(0, s));
            input.push(dg(1, s));
        }
        let cfg = FaultConfig {
            seed: 1,
            outages: vec![OutageWindow { sub_agent: 1, from: 1, until: 100 }],
            ..FaultConfig::default()
        };
        let out: Vec<Vec<u8>> = FaultPlan::new(input.into_iter(), cfg).collect();
        assert_eq!(out.len(), 10);
        for d in &out {
            assert_eq!(Datagram::decode(d).unwrap().sub_agent_id, 0);
        }
    }

    #[test]
    fn duplicates_are_byte_identical_and_counted() {
        let cfg = FaultConfig { seed: 5, duplicate: 1.0, ..FaultConfig::default() };
        let mut plan = FaultPlan::new(feed(10).into_iter(), cfg);
        let out: Vec<Vec<u8>> = plan.by_ref().collect();
        assert_eq!(out.len(), 20);
        for pair in out.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
        assert_eq!(plan.stats().duplicated, 10);
    }

    #[test]
    fn reordered_datagrams_all_arrive() {
        let cfg = FaultConfig { seed: 11, reorder: 0.5, ..FaultConfig::default() };
        let mut plan = FaultPlan::new(feed(100).into_iter(), cfg);
        let mut seqs: Vec<u32> = plan
            .by_ref()
            .map(|d| Datagram::decode(&d).unwrap().sequence)
            .collect();
        assert!(plan.stats().reordered > 0);
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=100u32).collect::<Vec<_>>());
    }
}
