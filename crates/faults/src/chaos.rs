//! Process-level chaos scenarios for the supervised pipeline.
//!
//! [`FaultPlan`](crate::FaultPlan) perturbs the *datagram stream*; this
//! module perturbs the *process around it*: where to kill a run (so the
//! chaos-soak gate can checkpoint and resume at seeded offsets), when to
//! stall the drain stage (sustained overload bursts that fill the intake
//! ring and force shedding), and how to damage a checkpoint image
//! (truncation, bit flips) to prove restores fail closed.
//!
//! Everything is seeded and pure — same seed, same scenario — so a chaos
//! soak is as replayable as the clean experiment it perturbs.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sustained-overload window: the supervisor's drain stage is stalled
/// while the 1-based offered-datagram index is in `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstWindow {
    /// First offered index under overload (1-based, inclusive).
    pub from: u64,
    /// First offered index past the overload (exclusive).
    pub until: u64,
}

impl BurstWindow {
    /// True if 1-based offered index `i` falls inside the window.
    pub fn contains(&self, i: u64) -> bool {
        (self.from..self.until).contains(&i)
    }
}

/// `n` distinct, sorted kill offsets in `[1, total]`: the offered-datagram
/// counts at which a supervised run is killed and resumed from checkpoint.
/// Returns fewer than `n` when `total` cannot supply that many distinct
/// offsets; empty when `total` is 0.
pub fn kill_offsets(seed: u64, total: u64, n: usize) -> Vec<u64> {
    if total == 0 || n == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6b69_6c6c);
    let want = (n as u64).min(total);
    let mut offsets = BTreeSet::new();
    // Distinct draws terminate because want ≤ total (the range size).
    while (offsets.len() as u64) < want {
        offsets.insert(rng.gen_range(1..=total));
    }
    offsets.into_iter().collect()
}

/// `n` non-overlapping, sorted overload bursts across a feed of `total`
/// datagrams, each roughly `burst_len` datagrams long. Degenerate inputs
/// (zero length or a feed too short to fit a burst) yield fewer or no
/// windows rather than panicking.
pub fn overload_bursts(seed: u64, total: u64, n: usize, burst_len: u64) -> Vec<BurstWindow> {
    if total == 0 || n == 0 || burst_len == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6275_7273_74);
    let len = burst_len.min(total);
    // Carve the feed into n equal slots and place one burst per slot, so
    // windows never overlap and stay sorted by construction.
    let slot = total / n as u64;
    if slot == 0 {
        return Vec::new();
    }
    let mut bursts = Vec::new();
    for k in 0..n as u64 {
        let slot_start = k * slot + 1;
        let room = slot.saturating_sub(len);
        let from = slot_start + if room > 0 { rng.gen_range(0..=room) } else { 0 };
        let until = (from + len).min(k * slot + slot + 1);
        if until > from {
            bursts.push(BurstWindow { from, until });
        }
    }
    bursts
}

/// Carve `total` 0-based indices into `n` equal slots and place one
/// `len`-long window per slot — non-overlapping and sorted by
/// construction. The shared shape behind the template-churn windows.
fn carve_windows(mut rng: SmallRng, total: u64, n: usize, len: u64) -> Vec<(u64, u64)> {
    if total == 0 || n == 0 || len == 0 {
        return Vec::new();
    }
    let len = len.min(total);
    let slot = total / n as u64;
    if slot == 0 {
        return Vec::new();
    }
    let mut windows = Vec::new();
    for k in 0..n as u64 {
        let slot_start = k * slot;
        let room = slot.saturating_sub(len);
        let from = slot_start + if room > 0 { rng.gen_range(0..=room) } else { 0 };
        let until = (from + len).min(slot_start + slot);
        if until > from {
            windows.push((from, until));
        }
    }
    windows
}

/// `n` non-overlapping template-withhold windows over a flow workload of
/// `total` packets: 0-based half-open `[from, until)` ranges where the
/// generator suppresses template announcements, so data records outrun
/// their templates and the transport intake must park or shed them.
pub fn withhold_windows(seed: u64, total: u64, n: usize, len: u64) -> Vec<(u64, u64)> {
    carve_windows(SmallRng::seed_from_u64(seed ^ 0x7769_7468), total, n, len)
}

/// `n` non-overlapping template-flap windows: ranges where the announced
/// template layout changes, forcing refresh-on-conflict revisions in the
/// transport template cache.
pub fn flap_windows(seed: u64, total: u64, n: usize, len: u64) -> Vec<(u64, u64)> {
    carve_windows(SmallRng::seed_from_u64(seed ^ 0x666c_6170), total, n, len)
}

/// `n` distinct, sorted 0-based exporter-restart offsets in `[1, total)`:
/// packet indices at which the sending exporter reboots mid-template-set
/// (sequence counters reset, announcement state forgotten). Index 0 is
/// excluded — a restart before the first packet is not a restart.
pub fn exporter_restart_offsets(seed: u64, total: u64, n: usize) -> Vec<u64> {
    if total < 2 || n == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6578_7265);
    let want = (n as u64).min(total - 1);
    let mut offsets = BTreeSet::new();
    // Distinct draws terminate because want ≤ total - 1 (the range size).
    while (offsets.len() as u64) < want {
        offsets.insert(rng.gen_range(1..total));
    }
    offsets.into_iter().collect()
}

/// Flip one seeded-random bit of `bytes` (no-op on an empty slice).
/// Models single-bit storage corruption of a checkpoint image.
pub fn flip_bit(bytes: &mut [u8], seed: u64) {
    if bytes.is_empty() {
        return;
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x666c_6970);
    let i = rng.gen_range(0..bytes.len());
    let bit = rng.gen_range(0..8u32);
    if let Some(b) = bytes.get_mut(i) {
        *b ^= 1 << bit;
    }
}

/// Cut `bytes` short at a seeded-random length in `[0, len)` (empty input
/// stays empty). Models a checkpoint write that lost the race with the
/// kill — the classic torn-write crash artifact.
pub fn truncate_at_random(bytes: &[u8], seed: u64) -> Vec<u8> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7472_756e_63);
    let keep = rng.gen_range(0..bytes.len());
    bytes.iter().copied().take(keep).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_offsets_are_distinct_sorted_in_range_and_deterministic() {
        let a = kill_offsets(7, 1000, 10);
        let b = kill_offsets(7, 1000, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&k| (1..=1000).contains(&k)));
        assert_ne!(a, kill_offsets(8, 1000, 10));
    }

    #[test]
    fn kill_offsets_handle_degenerate_inputs() {
        assert!(kill_offsets(1, 0, 5).is_empty());
        assert!(kill_offsets(1, 10, 0).is_empty());
        // More kills requested than the feed has boundaries: all of them.
        assert_eq!(kill_offsets(1, 3, 10), vec![1, 2, 3]);
    }

    #[test]
    fn overload_bursts_are_sorted_and_non_overlapping() {
        let bursts = overload_bursts(42, 10_000, 4, 500);
        assert_eq!(bursts.len(), 4);
        for pair in bursts.windows(2) {
            assert!(pair[0].until <= pair[1].from);
        }
        for b in &bursts {
            assert!(b.until > b.from);
            assert!(b.until - b.from <= 500);
        }
        assert_eq!(bursts, overload_bursts(42, 10_000, 4, 500));
    }

    #[test]
    fn overload_bursts_handle_degenerate_inputs() {
        assert!(overload_bursts(1, 0, 3, 10).is_empty());
        assert!(overload_bursts(1, 100, 0, 10).is_empty());
        assert!(overload_bursts(1, 100, 3, 0).is_empty());
        // Feed shorter than the requested slots still yields valid windows.
        for b in overload_bursts(1, 2, 5, 10) {
            assert!(b.until > b.from);
        }
    }

    #[test]
    fn template_windows_are_sorted_non_overlapping_and_deterministic() {
        for windows in [withhold_windows(7, 4000, 3, 300), flap_windows(7, 4000, 3, 300)] {
            assert_eq!(windows.len(), 3);
            for pair in windows.windows(2) {
                assert!(pair[0].1 <= pair[1].0);
            }
            for (from, until) in &windows {
                assert!(until > from);
                assert!(until - from <= 300);
            }
        }
        assert_eq!(withhold_windows(7, 4000, 3, 300), withhold_windows(7, 4000, 3, 300));
        // Different salts: withhold and flap windows land differently.
        assert_ne!(withhold_windows(7, 4000, 3, 300), flap_windows(7, 4000, 3, 300));
        assert!(withhold_windows(1, 0, 3, 10).is_empty());
        assert!(flap_windows(1, 100, 0, 10).is_empty());
    }

    #[test]
    fn exporter_restarts_are_distinct_sorted_and_never_at_zero() {
        let a = exporter_restart_offsets(5, 1000, 4);
        assert_eq!(a, exporter_restart_offsets(5, 1000, 4));
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&k| (1..1000).contains(&k)));
        assert!(exporter_restart_offsets(5, 1, 4).is_empty());
        assert!(exporter_restart_offsets(5, 0, 4).is_empty());
        // More restarts requested than offsets exist: all of them.
        assert_eq!(exporter_restart_offsets(5, 4, 10), vec![1, 2, 3]);
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let original = vec![0u8; 64];
        let mut flipped = original.clone();
        flip_bit(&mut flipped, 9);
        let differing: u32 = original
            .iter()
            .zip(&flipped)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1);
        let mut empty: Vec<u8> = Vec::new();
        flip_bit(&mut empty, 9);
        assert!(empty.is_empty());
    }

    #[test]
    fn truncate_at_random_always_shortens() {
        let bytes = vec![7u8; 128];
        for seed in 0..32 {
            let cut = truncate_at_random(&bytes, seed);
            assert!(cut.len() < bytes.len());
            assert_eq!(cut, truncate_at_random(&bytes, seed));
        }
        assert!(truncate_at_random(&[], 1).is_empty());
    }
}
