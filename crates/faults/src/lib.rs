//! # ixp-faults
//!
//! Deterministic fault injection and failure-handling primitives for the
//! ixp-vantage pipeline.
//!
//! A real IXP vantage point never sees a pristine feed: sFlow rides UDP, so
//! datagrams are dropped, duplicated, reordered, and truncated; switch
//! agents restart and reset their sequence numbers; interface counters wrap;
//! crawled HTTPS hosts flap; open resolvers die. The paper's headline
//! statistics are only credible if the pipeline degrades gracefully under
//! all of that — which is exactly what this crate lets the test suite and
//! the `repro --exp faults` sweep demonstrate, bit-for-bit reproducibly:
//!
//! * [`FaultPlan`] — a seeded iterator adaptor that perturbs an encoded
//!   datagram stream between `ixp-traffic` and the analyzer (drop,
//!   duplicate, reorder, truncate, bit-corrupt, agent restart, counter
//!   wrap, whole-agent outage windows), keeping exact [`FaultStats`] of
//!   what it injected;
//! * [`retry_with_backoff`] — capped exponential backoff under a simulated
//!   deadline budget, for the active-measurement paths (HTTPS crawl, open
//!   resolvers) — no real clock, no real sleeping, fully deterministic;
//! * [`Quarantine`] — consecutive-failure quarantine for persistently dead
//!   targets, shared across threads;
//! * [`chaos`] — process-level scenarios for the supervised pipeline
//!   (seeded kill offsets for checkpoint/resume, overload bursts,
//!   checkpoint-image corruption, and template-churn windows for the
//!   transport layer), driving the `tests/chaos_soak.rs` and
//!   `tests/transport_soak.rs` gates and `repro --exp chaos`;
//! * [`WirePlan`] — a protocol-agnostic sibling of [`FaultPlan`] that
//!   perturbs `(peer, packet)` pairs at the UDP level (drop, duplicate,
//!   reorder, truncate) for the transport front-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod plan;
pub mod quarantine;
pub mod retry;
pub mod wire;

pub use chaos::{
    exporter_restart_offsets, flap_windows, kill_offsets, overload_bursts, withhold_windows,
    BurstWindow,
};
pub use plan::{FaultConfig, FaultPlan, FaultStats, OutageWindow};
pub use quarantine::Quarantine;
pub use retry::{retry_with_backoff, AttemptLog, RetryPolicy};
pub use wire::{WireFaultConfig, WirePlan, WireStats};
