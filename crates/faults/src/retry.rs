//! Retry with capped exponential backoff under a simulated deadline budget.
//!
//! The active-measurement instruments (HTTPS crawl, open resolvers) retry
//! transient failures, but a measurement campaign cannot wait forever on a
//! flapping host: real collectors bound each target by a *deadline*. This
//! module models that contract with a simulated millisecond clock — each
//! attempt and each backoff advances the clock; nothing ever sleeps — so
//! retry behaviour is deterministic and instantly testable.

/// Retry budget: attempt cap, backoff shape, and deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts (including the first). At least 1 is always made.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in simulated milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff cap (exponential growth stops here).
    pub max_backoff_ms: u64,
    /// Total simulated-time budget; no retry starts past the deadline.
    pub deadline_ms: u64,
    /// Simulated cost of one attempt (connect + response timeout share).
    pub attempt_cost_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 50,
            max_backoff_ms: 800,
            deadline_ms: 3_000,
            attempt_cost_ms: 25,
        }
    }
}

/// What a retry loop actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttemptLog {
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Simulated milliseconds consumed.
    pub elapsed_ms: u64,
    /// True when the loop stopped because the deadline budget ran out
    /// before the attempt cap.
    pub exhausted_deadline: bool,
}

/// Drive `op` until it succeeds or the policy's budget runs out.
///
/// `op` receives the 0-based retry round and returns `Some(value)` on
/// success. Backoff doubles from `base_backoff_ms` up to `max_backoff_ms`;
/// a retry whose backoff would cross `deadline_ms` is not started.
pub fn retry_with_backoff<T>(
    policy: RetryPolicy,
    mut op: impl FnMut(u32) -> Option<T>,
) -> (Option<T>, AttemptLog) {
    let mut log = AttemptLog::default();
    let mut elapsed = 0u64;
    let mut backoff = policy.base_backoff_ms;
    let attempts = policy.max_attempts.max(1);
    for round in 0..attempts {
        log.attempts = round + 1;
        elapsed = elapsed.saturating_add(policy.attempt_cost_ms);
        if let Some(v) = op(round) {
            log.elapsed_ms = elapsed;
            return (Some(v), log);
        }
        if round + 1 == attempts {
            break;
        }
        if elapsed.saturating_add(backoff) > policy.deadline_ms {
            log.exhausted_deadline = true;
            break;
        }
        elapsed = elapsed.saturating_add(backoff);
        backoff = backoff.saturating_mul(2).min(policy.max_backoff_ms);
    }
    log.elapsed_ms = elapsed;
    (None, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_makes_one_attempt() {
        let (v, log) = retry_with_backoff(RetryPolicy::default(), |_| Some(42));
        assert_eq!(v, Some(42));
        assert_eq!(log.attempts, 1);
        assert_eq!(log.elapsed_ms, RetryPolicy::default().attempt_cost_ms);
    }

    #[test]
    fn retries_until_success() {
        let (v, log) = retry_with_backoff(RetryPolicy::default(), |round| {
            (round == 2).then_some("up")
        });
        assert_eq!(v, Some("up"));
        assert_eq!(log.attempts, 3);
        // 3 attempts à 25ms + backoffs 50 + 100.
        assert_eq!(log.elapsed_ms, 3 * 25 + 50 + 100);
    }

    #[test]
    fn attempt_cap_is_respected() {
        let mut calls = 0u32;
        let (v, log) = retry_with_backoff(RetryPolicy::default(), |_| -> Option<()> {
            calls += 1;
            None
        });
        assert!(v.is_none());
        assert_eq!(calls, 4);
        assert_eq!(log.attempts, 4);
        assert!(!log.exhausted_deadline);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 100,
            max_backoff_ms: 250,
            deadline_ms: 100_000,
            attempt_cost_ms: 0,
        };
        let (_, log) = retry_with_backoff(policy, |_| -> Option<()> { None });
        // Backoffs: 100, 200, 250, 250, 250.
        assert_eq!(log.elapsed_ms, 100 + 200 + 250 + 250 + 250);
    }

    #[test]
    fn deadline_stops_retries_early() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff_ms: 400,
            max_backoff_ms: 400,
            deadline_ms: 1_000,
            attempt_cost_ms: 100,
        };
        let (v, log) = retry_with_backoff(policy, |_| -> Option<()> { None });
        assert!(v.is_none());
        assert!(log.exhausted_deadline);
        assert!(log.attempts < 100);
        // An attempt started just before the deadline may finish past it,
        // but never by more than one attempt's cost.
        assert!(log.elapsed_ms <= policy.deadline_ms + policy.attempt_cost_ms);
    }

    #[test]
    fn zero_attempt_policy_still_tries_once() {
        let policy = RetryPolicy { max_attempts: 0, ..RetryPolicy::default() };
        let (v, log) = retry_with_backoff(policy, |_| Some(1));
        assert_eq!(v, Some(1));
        assert_eq!(log.attempts, 1);
    }
}
