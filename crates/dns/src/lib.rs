//! # ixp-dns
//!
//! The DNS substrate of the `ixp-vantage` reproduction.
//!
//! The paper leans on DNS in three places:
//!
//! * **§2.4 meta-data** — reverse lookups (PTR) give server hostnames; SOA
//!   resource records, resolved iteratively, give the *administrative
//!   authority* behind a name even when no hostname exists;
//! * **§5.1 clustering** — server IPs whose hostname SOA and URI-authority
//!   SOA "lead to the same entry" are grouped in step 1; outsourced DNS
//!   (third-party providers, common among hosters) pushes IPs into the
//!   majority-vote steps 2 and 3;
//! * **§2.3/§3.3 active measurements** — a vetted pool of ≈ 25K open
//!   resolvers in ≈ 12K ASes performs region-aware resolutions that uncover
//!   server IPs the IXP never sees (private clusters, far-away regions).
//!
//! This crate derives all of that behaviour from the ground truth of an
//! [`ixp_netmodel::InternetModel`]: per-organization naming schemata and
//! zones ([`names`]), the PTR/SOA database ([`db`]), and the open-resolver
//! population with its failure modes ([`resolvers`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod names;
pub mod resolvers;

pub use db::{DnsDb, SoaIdentity};
pub use names::hostname_for;
pub use resolvers::{ResolveOutcome, Resolver, ResolverMetrics, ResolverPool};
