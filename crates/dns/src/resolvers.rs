//! The open-resolver population and region-aware resolution.
//!
//! §2.3: the authors start from the top 280K recursive resolvers seen by a
//! large CDN, eliminate those that are closed, delegate, or lie, and keep
//! ≈ 25K usable resolvers across ≈ 12K ASes. §3.3 then uses them to resolve
//! the Alexa domains the IXP's URIs did *not* cover, discovering ≈ 600K
//! server IPs — among them servers the IXP can never see (private clusters,
//! far-away regions).
//!
//! The pool reproduces both the vetting pipeline and the *region-aware*
//! answer behaviour of CDNs: a resolver inside an AS that hosts an
//! organization's (possibly private) cluster is answered with that cluster;
//! everyone else gets servers from the org's general footprint.
//!
//! ## Failure handling
//!
//! Open resolvers flap. [`ResolverPool::resolve_with_retry`] wraps the pure
//! [`ResolverPool::resolve`] in a retry-with-backoff budget (a deterministic
//! per-`(slot, domain, week, round)` coin models the timeout) and fails
//! over to the next usable slot when one exhausts its budget. The caller
//! supplies a *campaign-scoped* [`Quarantine`] so dead slots stop burning
//! deadline budget within that campaign; because the campaign owns the
//! table and runs sequentially, gating on it stays deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;

use ixp_faults::{retry_with_backoff, AttemptLog, Quarantine, RetryPolicy};
use ixp_netmodel::{Asn, InternetModel, OrgId, Week};
use ixp_obs::{Counter, Obs};

/// Probability that one query round times out transiently (retryable).
const RESOLVER_TIMEOUT_RATE: f64 = 0.10;

/// How many alternative resolver slots a query may fail over to.
const MAX_FAILOVERS: usize = 3;

/// One recursive resolver candidate.
#[derive(Debug, Clone)]
pub struct Resolver {
    /// The resolver's address.
    pub ip: Ipv4Addr,
    /// Hosting AS.
    pub asn: Asn,
    /// Answers queries from outside its network.
    pub open: bool,
    /// Forwards to another recursive (answers not its own view).
    pub delegates: bool,
    /// Returns wrong answers (captive portals, NXDOMAIN-hijackers).
    pub lies: bool,
}

impl Resolver {
    /// Usable for active measurements (the §2.3 vetting criteria).
    pub fn usable(&self) -> bool {
        self.open && !self.delegates && !self.lies
    }
}

/// The result of one query campaign step under the retry/failover budget.
#[derive(Debug, Clone, Default)]
pub struct ResolveOutcome {
    /// The A records handed out (empty when nothing answered, or the
    /// domain is unknown — an *answer*, not a failure).
    pub answers: Vec<Ipv4Addr>,
    /// The usable-pool slot that actually answered, if any. Callers must
    /// attribute answers to this resolver, not the slot they asked for —
    /// failover may have moved the query.
    pub resolver: Option<usize>,
    /// Aggregate attempt accounting across all slots tried.
    pub log: AttemptLog,
    /// Slots skipped (quarantined) or abandoned (budget exhausted).
    pub failovers: u32,
}

/// Live query metrics for the retry/failover path (`dns_*` families).
/// Detached (counting into thin air) until [`ResolverPool::bind_obs`]
/// attaches the pool to a registry.
#[derive(Debug, Clone, Default)]
pub struct ResolverMetrics {
    /// Queries issued through [`ResolverPool::resolve_with_retry`].
    pub queries: Counter,
    /// Individual attempt rounds across all slots tried.
    pub attempts: Counter,
    /// Slots skipped (quarantined) or abandoned (budget exhausted).
    pub failovers: Counter,
    /// Failovers that were quarantine skips specifically.
    pub quarantine_skips: Counter,
    /// Queries whose simulated deadline ran out on some slot.
    pub exhausted: Counter,
    /// Queries no slot ever answered.
    pub unanswered: Counter,
}

impl ResolverMetrics {
    /// Register the bundle's counters in the bundle's registry.
    fn register(obs: &Obs) -> ResolverMetrics {
        let r = &obs.registry;
        ResolverMetrics {
            queries: r.counter("dns_queries_total"),
            attempts: r.counter("dns_attempts_total"),
            failovers: r.counter("dns_failovers_total"),
            quarantine_skips: r.counter("dns_quarantine_skips_total"),
            exhausted: r.counter("dns_exhausted_deadline_total"),
            unanswered: r.counter("dns_unanswered_total"),
        }
    }
}

/// The vetted resolver pool plus the org/AS server indexes needed to answer
/// region-aware queries.
#[derive(Debug)]
pub struct ResolverPool {
    candidates: Vec<Resolver>,
    usable: Vec<u32>,
    /// org -> indices of its servers in the model's catalog.
    org_servers: HashMap<OrgId, Vec<u32>>,
    /// (org, asn) -> indices of that org's servers in that AS.
    org_as_servers: HashMap<(OrgId, Asn), Vec<u32>>,
    /// domain -> owning org.
    domain_owner: HashMap<String, OrgId>,
    /// Retry budget applied to every query.
    policy: RetryPolicy,
    /// Seed for the deterministic transient-timeout coin.
    seed: u64,
    /// Live query metrics (detached until [`ResolverPool::bind_obs`]).
    metrics: ResolverMetrics,
}

impl ResolverPool {
    /// Build the candidate population and vet it.
    pub fn build(model: &InternetModel, seed: u64) -> ResolverPool {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5_0008);
        // Candidates: ≈ 6.5 per AS (280K over 43K ASes); usable ≈ 9 %.
        let n_ases = model.registry.len();
        let candidates_per_as = 6.5f64;
        let mut candidates = Vec::with_capacity((n_ases as f64 * candidates_per_as) as usize);
        for info in model.registry.iter() {
            let n = if rng.gen::<f64>() < candidates_per_as.fract() {
                candidates_per_as.ceil() as usize
            } else {
                candidates_per_as.floor() as usize
            };
            let prefixes = model.routing.prefixes_of(&model.registry, info.asn);
            if prefixes.is_empty() {
                continue;
            }
            for k in 0..n {
                let entry = model.routing.entry(prefixes[k % prefixes.len()]);
                // Resolvers live in the client zone, near its top.
                let size = entry.prefix.size();
                let ip = entry.prefix.addr_at(size - 2 - k as u64 % (size / 8).max(1));
                candidates.push(Resolver {
                    ip,
                    asn: info.asn,
                    open: rng.gen::<f64>() < 0.25,
                    delegates: rng.gen::<f64>() < 0.45,
                    lies: rng.gen::<f64>() < 0.25,
                });
            }
        }
        let usable: Vec<u32> = candidates
            .iter()
            .enumerate()
            .filter(|(_, r)| r.usable())
            .map(|(i, _)| i as u32)
            .collect();

        // Server indexes for region-aware answers.
        let mut org_servers: HashMap<OrgId, Vec<u32>> = HashMap::new();
        let mut org_as_servers: HashMap<(OrgId, Asn), Vec<u32>> = HashMap::new();
        for (i, s) in model.servers.servers().iter().enumerate() {
            org_servers.entry(s.org).or_default().push(i as u32);
            org_as_servers.entry((s.org, s.asn)).or_default().push(i as u32);
        }
        let mut domain_owner = HashMap::new();
        for org in model.orgs.iter() {
            for d in &org.domains {
                domain_owner.insert(d.clone(), org.id);
            }
        }
        ResolverPool {
            candidates,
            usable,
            org_servers,
            org_as_servers,
            domain_owner,
            policy: RetryPolicy::default(),
            seed,
            metrics: ResolverMetrics::default(),
        }
    }

    /// Publish this pool's query metrics into an observability bundle's
    /// registry (`dns_*` counter families).
    pub fn bind_obs(&mut self, obs: &Obs) {
        self.metrics = ResolverMetrics::register(obs);
    }

    /// The live query metrics (detached unless [`ResolverPool::bind_obs`]
    /// was called).
    pub fn metrics(&self) -> &ResolverMetrics {
        &self.metrics
    }

    /// All candidates (pre-vetting).
    pub fn candidates(&self) -> &[Resolver] {
        &self.candidates
    }

    /// The usable resolvers.
    pub fn usable(&self) -> impl Iterator<Item = &Resolver> {
        self.usable.iter().map(|i| &self.candidates[*i as usize])
    }

    /// Number of usable resolvers.
    pub fn usable_count(&self) -> usize {
        self.usable.len()
    }

    /// Number of distinct ASes with a usable resolver.
    pub fn usable_as_count(&self) -> usize {
        let mut ases: Vec<Asn> = self.usable().map(|r| r.asn).collect();
        ases.sort_unstable();
        ases.dedup();
        ases.len()
    }

    /// Resolve a domain through the `k`-th usable resolver in week `week`:
    /// returns the A records a region-aware authority would hand out.
    ///
    /// Answer policy (mirroring CDN behaviour the paper describes):
    /// 1. if the owning org has servers (even *private-cluster* ones) in
    ///    the resolver's AS, answer with those — this is exactly why
    ///    private clusters are discoverable by in-AS resolvers yet
    ///    invisible at the IXP;
    /// 2. otherwise answer with servers from the org's general footprint,
    ///    deterministically spread by resolver so different vantage points
    ///    harvest different subsets.
    pub fn resolve(
        &self,
        model: &InternetModel,
        domain: &str,
        k: usize,
        week: Week,
    ) -> Vec<Ipv4Addr> {
        if self.usable.is_empty() {
            return Vec::new();
        }
        let resolver = &self.candidates[self.usable[k % self.usable.len()] as usize];
        let org = match self.domain_owner.get(domain) {
            Some(o) => *o,
            None => return Vec::new(),
        };
        let servers = model.servers.servers();
        let answer_from = |pool: &[u32], salt: usize| -> Vec<Ipv4Addr> {
            let live: Vec<u32> = pool
                .iter()
                .copied()
                .filter(|i| servers[*i as usize].exists_in(week))
                .collect();
            if live.is_empty() {
                return Vec::new();
            }
            (0..3usize)
                .map(|j| live[(salt.wrapping_mul(31) + j * 7919) % live.len()])
                .map(|i| servers[i as usize].ip)
                .collect()
        };
        if let Some(local) = self.org_as_servers.get(&(org, resolver.asn)) {
            let local_answer = answer_from(local, k);
            if !local_answer.is_empty() {
                return local_answer;
            }
        }
        self.org_servers
            .get(&org)
            .map(|pool| answer_from(pool, k))
            .unwrap_or_default()
    }

    /// The retry budget queries run under.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Resolve under the retry/failover budget.
    ///
    /// The query starts at usable slot `k`. Transient timeouts (the
    /// deterministic coin) retry with capped backoff under the policy's
    /// simulated deadline; a slot that exhausts its budget records a
    /// failure in `quarantine` and the query fails over to the next slot
    /// (up to [`MAX_FAILOVERS`]). Slots the campaign has already
    /// quarantined are skipped without burning any budget. `quarantine`
    /// must be owned by the campaign: resolution *is* gated on it, which
    /// is only deterministic because the campaign queries sequentially.
    pub fn resolve_with_retry(
        &self,
        model: &InternetModel,
        domain: &str,
        k: usize,
        week: Week,
        quarantine: &Quarantine<usize>,
    ) -> ResolveOutcome {
        let outcome = self.resolve_with_retry_inner(model, domain, k, week, quarantine);
        self.metrics.queries.inc();
        self.metrics.attempts.add(u64::from(outcome.log.attempts));
        self.metrics.failovers.add(u64::from(outcome.failovers));
        if outcome.log.exhausted_deadline {
            self.metrics.exhausted.inc();
        }
        if outcome.resolver.is_none() {
            self.metrics.unanswered.inc();
        }
        outcome
    }

    fn resolve_with_retry_inner(
        &self,
        model: &InternetModel,
        domain: &str,
        k: usize,
        week: Week,
        quarantine: &Quarantine<usize>,
    ) -> ResolveOutcome {
        let mut outcome = ResolveOutcome::default();
        if self.usable.is_empty() {
            return outcome;
        }
        let n = self.usable.len();
        for f in 0..=MAX_FAILOVERS {
            let slot = (k + f) % n;
            if quarantine.is_quarantined(&slot) {
                outcome.failovers += 1;
                self.metrics.quarantine_skips.inc();
                continue;
            }
            let (result, log) = retry_with_backoff(self.policy, |round| {
                if self.resolver_timeout(slot, domain, week, round) {
                    None
                } else {
                    Some(self.resolve(model, domain, slot, week))
                }
            });
            outcome.log.attempts += log.attempts;
            outcome.log.elapsed_ms += log.elapsed_ms;
            outcome.log.exhausted_deadline |= log.exhausted_deadline;
            match result {
                Some(answers) => {
                    quarantine.record_success(&slot);
                    outcome.answers = answers;
                    outcome.resolver = Some(slot);
                    return outcome;
                }
                None => {
                    quarantine.record_failure(slot);
                    outcome.failovers += 1;
                }
            }
        }
        outcome
    }

    /// Deterministic transient-timeout coin for one query round.
    fn resolver_timeout(&self, slot: usize, domain: &str, week: Week, round: u32) -> bool {
        let mut x = 0xCBF2_9CE4u32 ^ (slot as u32).wrapping_mul(0x9E37_79B9);
        for b in domain.bytes() {
            x = (x ^ u32::from(b)).wrapping_mul(0x0100_0193);
        }
        x = x.wrapping_mul(0x85EB_CA6B).wrapping_add(u32::from(week.0));
        x = x.wrapping_mul(0xC2B2_AE35).wrapping_add(round.wrapping_mul(9176));
        x = x.wrapping_add(self.seed as u32);
        x ^= x >> 16;
        x = x.wrapping_mul(0x045D_9F3B);
        x ^= x >> 16;
        f64::from(x) / f64::from(u32::MAX) < RESOLVER_TIMEOUT_RATE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_netmodel::ServerFlags;

    fn build() -> (InternetModel, ResolverPool) {
        let model = InternetModel::tiny(29);
        let pool = ResolverPool::build(&model, 29);
        (model, pool)
    }

    #[test]
    fn vetting_keeps_a_small_usable_fraction() {
        let (_, pool) = build();
        let total = pool.candidates().len();
        let usable = pool.usable_count();
        assert!(usable > 0);
        let frac = usable as f64 / total as f64;
        // The paper keeps 25K of 280K ≈ 9 %.
        assert!((0.03..0.25).contains(&frac), "usable fraction {frac:.3}");
    }

    #[test]
    fn usable_resolvers_span_many_ases() {
        let (_, pool) = build();
        assert!(pool.usable_as_count() > 10);
        assert!(pool.usable_as_count() <= pool.usable_count());
    }

    #[test]
    fn resolution_returns_servers_of_the_owner() {
        let (model, pool) = build();
        let org = model.orgs.iter().find(|o| !o.domains.is_empty()).unwrap();
        let answers = pool.resolve(&model, &org.domains[0], 3, Week::REFERENCE);
        assert!(!answers.is_empty());
        for ip in answers {
            let s = model.servers.by_ip(ip).expect("answer must be a real server");
            assert_eq!(s.org, org.id);
        }
    }

    #[test]
    fn unknown_domains_get_no_answer() {
        let (model, pool) = build();
        assert!(pool
            .resolve(&model, "no-such-domain.example", 0, Week::REFERENCE)
            .is_empty());
    }

    #[test]
    fn different_resolvers_harvest_different_subsets() {
        let (model, pool) = build();
        // Use a big org so the answer pool is large.
        let org = model
            .orgs
            .iter()
            .max_by_key(|o| o.target_servers)
            .unwrap();
        let mut all: Vec<Ipv4Addr> = Vec::new();
        for k in 0..40 {
            all.extend(pool.resolve(&model, &org.domains[0], k, Week::REFERENCE));
        }
        all.sort_unstable();
        all.dedup();
        assert!(all.len() > 3, "resolver diversity failed: {} uniques", all.len());
    }

    #[test]
    fn private_clusters_are_found_by_in_as_resolvers() {
        let (model, pool) = build();
        // Find a hidden server whose AS hosts a usable resolver.
        let mut found_hidden = false;
        for org in model.orgs.iter() {
            if org.domains.is_empty() {
                continue;
            }
            for (k, _) in pool.usable().enumerate() {
                let answers = pool.resolve(&model, &org.domains[0], k, Week::REFERENCE);
                if answers.iter().any(|ip| {
                    model
                        .servers
                        .by_ip(*ip)
                        .map(|s| s.flags.has(ServerFlags::HIDDEN))
                        .unwrap_or(false)
                }) {
                    found_hidden = true;
                    break;
                }
                if k > 200 {
                    break;
                }
            }
            if found_hidden {
                break;
            }
        }
        assert!(found_hidden, "no private-cluster server ever surfaced via resolvers");
    }

    #[test]
    fn deterministic() {
        let (model, _) = build();
        let a = ResolverPool::build(&model, 29);
        let b = ResolverPool::build(&model, 29);
        assert_eq!(a.usable_count(), b.usable_count());
        let ra = a.resolve(&model, "www.akamai.example", 5, Week::REFERENCE);
        let rb = b.resolve(&model, "www.akamai.example", 5, Week::REFERENCE);
        assert_eq!(ra, rb);
    }

    #[test]
    fn retry_answers_match_some_pure_slot() {
        let (model, pool) = build();
        let org = model.orgs.iter().find(|o| !o.domains.is_empty()).unwrap();
        let domain = &org.domains[0];
        let q = Quarantine::new(2);
        let mut answered = 0;
        for k in 0..50 {
            let out = pool.resolve_with_retry(&model, domain, k, Week::REFERENCE, &q);
            let slot = match out.resolver {
                Some(slot) => slot,
                None => continue,
            };
            answered += 1;
            // Failover moves at most MAX_FAILOVERS slots forward.
            let n = pool.usable_count();
            let dist = (slot + n - k % n) % n;
            assert!(dist <= 3, "slot {slot} is {dist} past requested {k}");
            // The answer is exactly what the pure resolver at that slot says.
            assert_eq!(out.answers, pool.resolve(&model, domain, slot, Week::REFERENCE));
            assert!(out.log.attempts >= 1);
        }
        assert!(answered > 45, "only {answered}/50 queries answered");
    }

    #[test]
    fn retry_campaign_is_deterministic() {
        let (model, pool) = build();
        let org = model.orgs.iter().find(|o| !o.domains.is_empty()).unwrap();
        let domain = &org.domains[0];
        let run = || {
            let q = Quarantine::new(2);
            (0..40)
                .map(|k| {
                    let out = pool.resolve_with_retry(&model, domain, k, Week::REFERENCE, &q);
                    (out.answers, out.resolver, out.failovers, out.log.attempts)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn quarantined_slots_are_skipped_without_budget() {
        let (model, pool) = build();
        let org = model.orgs.iter().find(|o| !o.domains.is_empty()).unwrap();
        let domain = &org.domains[0];
        let q = Quarantine::new(1);
        let n = pool.usable_count();
        // Quarantine the requested slot up front: the query must fail over
        // past it and still answer, spending zero attempts on it.
        q.record_failure(7 % n);
        let out = pool.resolve_with_retry(&model, domain, 7, Week::REFERENCE, &q);
        assert!(out.failovers >= 1);
        if let Some(slot) = out.resolver {
            assert_ne!(slot, 7 % n);
        }
    }

    #[test]
    fn unknown_domain_is_an_answer_not_a_failure() {
        let (model, pool) = build();
        let q = Quarantine::new(2);
        let out =
            pool.resolve_with_retry(&model, "no-such-domain.example", 0, Week::REFERENCE, &q);
        // The resolver responded (with an empty answer) — no failover spiral.
        assert!(out.answers.is_empty());
        assert!(out.resolver.is_some());
    }
}
