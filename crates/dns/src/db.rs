//! The PTR/SOA database derived from the model's ground truth.
//!
//! The analysis pipeline is only ever handed query interfaces — "what is
//! the hostname of this IP?", "what SOA does this name lead to?" — with the
//! same partiality as live DNS: no PTR for ~28 % of server IPs, outsourced
//! SOAs for many hosters, and SOA timeouts for CDN servers buried deep in
//! third-party access networks (the paper's step-3 population).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use ixp_netmodel::{InternetModel, OrgId, OrgKind, ServerFlags};

use crate::names;

/// The administrative identity an SOA chain leads to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SoaIdentity {
    /// The apex zone the chain terminated in.
    pub zone: String,
    /// The third-party DNS provider operating the zone, if the SOA's
    /// MNAME/RNAME point away from the zone owner (outsourced DNS).
    pub provider: Option<String>,
}

impl SoaIdentity {
    /// True when the SOA points at a third-party DNS provider.
    pub fn outsourced(&self) -> bool {
        self.provider.is_some()
    }
}

/// The queryable DNS database.
#[derive(Debug)]
pub struct DnsDb {
    /// server ip -> hostname (only for servers with a PTR record).
    ptr: HashMap<u32, String>,
    /// apex zone -> owning organization.
    zones: HashMap<String, OrgId>,
    /// per-org SOA identity (pre-computed).
    org_identity: Vec<SoaIdentity>,
    /// server ip -> the SOA lookup for its hostname times out (step-3
    /// partial-information population).
    soa_timeout: HashMap<u32, ()>,
}

impl DnsDb {
    /// Derive the database from a generated model.
    pub fn build(model: &InternetModel) -> DnsDb {
        let mut ptr = HashMap::new();
        let mut zones = HashMap::new();
        let mut org_identity = Vec::with_capacity(model.orgs.len());
        let mut soa_timeout = HashMap::new();

        for org in model.orgs.iter() {
            zones.insert(org.soa_domain.clone(), org.id);
            org_identity.push(SoaIdentity {
                zone: org.soa_domain.clone(),
                provider: org.dns_provider.map(|k| format!("dnsprov{k}.example")),
            });
        }

        for server in model.servers.servers() {
            let org = model.orgs.get(server.org);
            if server.flags.has(ServerFlags::HAS_PTR) {
                ptr.insert(u32::from(server.ip), names::hostname_for(org, server.ip));
            }
            // Deep third-party CDN deployments often lack a resolvable SOA
            // chain for their names (paper §5.1 step 3 ≈ 3.9 % of IPs).
            let deep = Some(server.asn) != org.home_asn
                && matches!(org.kind, OrgKind::Cdn | OrgKind::Content);
            if deep && deterministic_coin(server.ip, 0.22) {
                soa_timeout.insert(u32::from(server.ip), ());
            }
        }

        DnsDb { ptr, zones, org_identity, soa_timeout }
    }

    /// Reverse lookup.
    pub fn ptr_lookup(&self, ip: Ipv4Addr) -> Option<&str> {
        self.ptr.get(&u32::from(ip)).map(String::as_str)
    }

    /// Iteratively resolve the SOA behind a name (hostname or URI
    /// authority). Returns `None` for names outside the model's zones.
    pub fn soa_lookup(&self, name: &str) -> Option<SoaIdentity> {
        let apex = names::apex_of(name)?;
        let org = *self.zones.get(apex)?;
        Some(self.org_identity[org.0 as usize].clone())
    }

    /// SOA of the hostname of an IP, with the step-3 timeout behaviour:
    /// returns `Err(())` when the lookup times out (partial information).
    pub fn soa_of_ip(&self, ip: Ipv4Addr) -> Result<Option<SoaIdentity>, ()> {
        if self.soa_timeout.contains_key(&u32::from(ip)) {
            return Err(());
        }
        match self.ptr_lookup(ip) {
            Some(name) => Ok(self.soa_lookup(name)),
            None => Ok(None),
        }
    }

    /// Ground-truth helper for tests: which org owns a zone.
    pub fn zone_owner(&self, apex: &str) -> Option<OrgId> {
        self.zones.get(apex).copied()
    }

    /// Number of PTR records.
    pub fn ptr_count(&self) -> usize {
        self.ptr.len()
    }
}

/// A deterministic pseudo-coin keyed on the IP (so the database is a pure
/// function of the model).
fn deterministic_coin(ip: Ipv4Addr, p: f64) -> bool {
    let x = u32::from(ip).wrapping_mul(0x9E37_79B9);
    (x as f64 / u32::MAX as f64) < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_netmodel::Archetype;

    fn build() -> (InternetModel, DnsDb) {
        let model = InternetModel::tiny(13);
        let db = DnsDb::build(&model);
        (model, db)
    }

    #[test]
    fn ptr_coverage_tracks_flags() {
        let (model, db) = build();
        let with_flag = model
            .servers
            .servers()
            .iter()
            .filter(|s| s.flags.has(ServerFlags::HAS_PTR))
            .count();
        assert_eq!(db.ptr_count(), with_flag);
    }

    #[test]
    fn ptr_resolves_to_owning_org_zone() {
        let (model, db) = build();
        for s in model.servers.servers().iter().take(200) {
            if let Some(name) = db.ptr_lookup(s.ip) {
                let apex = crate::names::apex_of(name).unwrap();
                assert_eq!(db.zone_owner(apex), Some(s.org), "{name}");
            }
        }
    }

    #[test]
    fn soa_identity_reflects_outsourcing() {
        let (model, db) = build();
        for org in model.orgs.iter() {
            let ident = db.soa_lookup(&format!("www.{}", org.soa_domain)).unwrap();
            match org.dns_provider {
                Some(_) => {
                    assert!(ident.outsourced());
                    assert!(ident.provider.as_deref().unwrap().starts_with("dnsprov"));
                    assert_eq!(ident.zone, org.soa_domain);
                }
                None => {
                    assert!(!ident.outsourced());
                    assert_eq!(ident.zone, org.soa_domain);
                }
            }
        }
    }

    #[test]
    fn unknown_names_yield_none() {
        let (_, db) = build();
        assert!(db.soa_lookup("www.google.com").is_none());
        assert!(db.ptr_lookup(Ipv4Addr::new(255, 255, 255, 254)).is_none());
    }

    #[test]
    fn step1_path_works_for_self_hosted_archetype() {
        let (model, db) = build();
        // Pick an Akamai-like server with a PTR at its home AS: the SOA of
        // its hostname and of its URIs must coincide (clustering step 1).
        let akamai = model.orgs.archetype(Archetype::Akamai);
        let server = model
            .servers
            .servers()
            .iter()
            .find(|s| {
                s.org == akamai.id
                    && s.flags.has(ServerFlags::HAS_PTR)
                    && Some(s.asn) == akamai.home_asn
            })
            .expect("akamai home server with PTR");
        let host_soa = db.soa_of_ip(server.ip).unwrap().unwrap();
        let uri_soa = db.soa_lookup(&akamai.domains[0]).unwrap();
        assert_eq!(host_soa, uri_soa);
    }

    #[test]
    fn some_deep_cdn_servers_time_out() {
        let (model, db) = build();
        let timeouts = model
            .servers
            .servers()
            .iter()
            .filter(|s| db.soa_of_ip(s.ip).is_err())
            .count();
        assert!(timeouts > 0, "no step-3 population generated");
    }

    #[test]
    fn deterministic_coin_is_deterministic() {
        let ip = Ipv4Addr::new(4, 5, 6, 7);
        assert_eq!(deterministic_coin(ip, 0.5), deterministic_coin(ip, 0.5));
    }
}
