//! Per-organization naming schemata.
//!
//! Large organizations name their servers under industrial conventions
//! (paper §2.4 cites Google's `1e100.net` as the canonical example). The
//! schema matters because the §5.1 clustering recovers the organization
//! from the hostname's SOA — so the names must be deterministic, unique per
//! IP, and rooted in the organization's zone.

use std::net::Ipv4Addr;

use ixp_netmodel::{OrgKind, Organization};

/// The canonical hostname of a server IP under its organization's schema.
pub fn hostname_for(org: &Organization, ip: Ipv4Addr) -> String {
    let o = ip.octets();
    let tag = format!("{}-{}-{}-{}", o[0], o[1], o[2], o[3]);
    match org.kind {
        // CDN edge naming, e.g. a96-7-49-10.deploy.akamaitechnologies-ish.
        OrgKind::Cdn => format!("a{tag}.deploy.{}", org.soa_domain),
        OrgKind::DataCenterCdn => format!("edge-{tag}.{}", org.soa_domain),
        // Content caches carry a location-ish prefix.
        OrgKind::Content => format!("cache-{tag}.{}", org.soa_domain),
        // Hosters name by server number within their space.
        OrgKind::Hoster | OrgKind::MetaHoster => format!("srv{tag}.{}", org.soa_domain),
        OrgKind::Cloud => format!("vm-{tag}.compute.{}", org.soa_domain),
        OrgKind::Streamer => format!("stream-{tag}.{}", org.soa_domain),
        OrgKind::OneClickHoster => format!("dl-{tag}.{}", org.soa_domain),
        OrgKind::Generic => format!("host-{tag}.{}", org.soa_domain),
    }
}

/// The zone (apex) a hostname belongs to, if it looks like one of ours.
/// This is the "resolve the SOA iteratively" shortcut: strip labels until
/// the `<something>.example` apex remains.
pub fn apex_of(name: &str) -> Option<&str> {
    let name = name.trim_end_matches('.');
    let (rest, tld) = name.rsplit_once('.')?;
    if tld != "example" {
        return None;
    }
    let org_label = rest.rsplit('.').next()?;
    let apex_len = org_label.len() + 1 + tld.len();
    Some(&name[name.len() - apex_len..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apex_extraction() {
        assert_eq!(apex_of("a1-2-3-4.deploy.akamai.example"), Some("akamai.example"));
        assert_eq!(apex_of("www.hoster-12.example"), Some("hoster-12.example"));
        assert_eq!(apex_of("hoster-12.example"), Some("hoster-12.example"));
        assert_eq!(apex_of("foo.com"), None);
        assert_eq!(apex_of("cache-1-2-3-4.google.example."), Some("google.example"));
    }

    #[test]
    fn hostnames_embed_ip_and_zone() {
        use ixp_netmodel::{InternetModel, OrgId};
        let model = InternetModel::tiny(5);
        let org = model.orgs.get(OrgId(0));
        let ip = Ipv4Addr::new(9, 8, 7, 6);
        let name = hostname_for(org, ip);
        assert!(name.contains("9-8-7-6"), "{name}");
        assert!(name.ends_with(&org.soa_domain), "{name}");
        assert_eq!(apex_of(&name), Some(org.soa_domain.as_str()));
    }

    #[test]
    fn hostnames_are_unique_per_ip() {
        use ixp_netmodel::{InternetModel, OrgId};
        let model = InternetModel::tiny(5);
        let org = model.orgs.get(OrgId(3));
        let a = hostname_for(org, Ipv4Addr::new(1, 2, 3, 4));
        let b = hostname_for(org, Ipv4Addr::new(1, 2, 3, 5));
        assert_ne!(a, b);
    }
}
