//! Microbenchmarks for the byte-level substrate: frame dissection, sFlow
//! encode/decode, HTTP string matching, and routing lookups — the inner
//! loops every reproduced table and figure pays for.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use ixp_netmodel::{InternetModel, ScaleConfig, Week};
use ixp_sflow::Datagram;
use ixp_traffic::{MixConfig, WeekStream};
use ixp_wire::dissect::Dissection;

fn collect_test_data() -> (InternetModel, Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let model = InternetModel::generate(ScaleConfig::tiny(), 42);
    let datagrams: Vec<Vec<u8>> =
        WeekStream::with_budget(&model, MixConfig::default(), Week::REFERENCE, 42, 7_000)
            .collect();
    let snippets: Vec<Vec<u8>> = datagrams
        .iter()
        .flat_map(|bytes| {
            Datagram::decode(bytes)
                .unwrap()
                .samples
                .into_iter()
                .map(|s| s.record.header)
        })
        .collect();
    (model, datagrams, snippets)
}

fn bench_wire(c: &mut Criterion) {
    let (model, datagrams, snippets) = collect_test_data();

    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Elements(snippets.len() as u64));
    group.bench_function("dissect_snippets", |b| {
        b.iter(|| {
            let mut flows = 0usize;
            for s in &snippets {
                if let Ok(d) = Dissection::parse(s) {
                    if d.flow_key().is_some() {
                        flows += 1;
                    }
                }
            }
            black_box(flows)
        })
    });
    group.bench_function("http_classify", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for s in &snippets {
                if let Ok(d) = Dissection::parse(s) {
                    if !matches!(
                        ixp_core::http::classify(d.payload()),
                        ixp_core::http::HttpEvidence::None
                    ) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("sflow");
    group.throughput(Throughput::Elements(datagrams.len() as u64));
    group.bench_function("decode_datagrams", |b| {
        b.iter(|| {
            let mut samples = 0usize;
            for d in &datagrams {
                samples += Datagram::decode(d).unwrap().samples.len();
            }
            black_box(samples)
        })
    });
    let decoded: Vec<Datagram> = datagrams.iter().map(|d| Datagram::decode(d).unwrap()).collect();
    group.bench_function("encode_datagrams", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for d in &decoded {
                bytes += d.encode().len();
            }
            black_box(bytes)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("routing");
    let probes: Vec<std::net::Ipv4Addr> = snippets
        .iter()
        .filter_map(|s| Dissection::parse(s).ok().and_then(|d| d.flow_key()))
        .map(|k| k.src)
        .take(4_096)
        .collect();
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("lookup", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for ip in &probes {
                if model.routing.lookup(*ip).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("generator");
    group.throughput(Throughput::Elements(2_000 * 7));
    group.bench_function("week_stream_2k_datagrams", |b| {
        b.iter(|| {
            let stream = WeekStream::with_budget(
                &model,
                MixConfig::default(),
                Week::REFERENCE,
                7,
                2_000 * 7,
            );
            black_box(stream.count())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_wire
}
criterion_main!(benches);
