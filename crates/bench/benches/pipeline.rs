//! One benchmark per reproduced table/figure: how long each analysis stage
//! of the paper takes on a fixed tiny-scale week (see DESIGN.md §4 for the
//! experiment-to-bench mapping).

use std::sync::OnceLock;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ixp_core::analyzer::{Analyzer, StudyReport, WeeklyReport};
use ixp_core::census::ServerCensus;
use ixp_core::cluster::{self, Clusters};
use ixp_core::snapshot::WeeklySnapshot;
use ixp_core::{baseline, blindspots, hetero, longitudinal, visibility, WeekScan};
use ixp_netmodel::{InternetModel, ScaleConfig, Week};

fn model() -> &'static InternetModel {
    static M: OnceLock<InternetModel> = OnceLock::new();
    M.get_or_init(|| InternetModel::generate(ScaleConfig::tiny(), 42))
}

fn analyzer() -> &'static Analyzer<'static> {
    static A: OnceLock<Analyzer<'static>> = OnceLock::new();
    A.get_or_init(|| Analyzer::new(model()))
}

fn study() -> &'static StudyReport {
    static S: OnceLock<StudyReport> = OnceLock::new();
    S.get_or_init(|| analyzer().run_study(1))
}

fn reference() -> &'static WeeklyReport {
    study().reference()
}

fn clusters() -> &'static Clusters {
    static C: OnceLock<Clusters> = OnceLock::new();
    C.get_or_init(|| cluster::cluster(reference(), &analyzer().dns))
}

fn feed_bytes() -> &'static Vec<Vec<u8>> {
    static F: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    F.get_or_init(|| analyzer().feed(Week::REFERENCE).collect())
}

fn bench_pipeline(c: &mut Criterion) {
    // E1/Fig. 1 — the filtering cascade is the scan itself.
    c.bench_function("fig1_filtering_scan", |b| {
        let members = model().registry.members_at(Week::REFERENCE).len() as u32;
        b.iter(|| {
            let mut scan = WeekScan::new(Week::REFERENCE, members);
            for dg in feed_bytes() {
                scan.ingest(dg);
            }
            black_box(scan.unique_ips())
        })
    });

    // E7 — server identification (census incl. HTTPS crawling).
    c.bench_function("serverid_census", |b| {
        let members = model().registry.members_at(Week::REFERENCE).len() as u32;
        let mut scan = WeekScan::new(Week::REFERENCE, members);
        for dg in feed_bytes() {
            scan.ingest(dg);
        }
        b.iter(|| {
            let census = ServerCensus::identify(&scan, model(), &analyzer().dns, &analyzer().crawl);
            black_box(census.len())
        })
    });

    // E3/Table 1 (and the shared aggregates behind Tables 2-3, Fig. 3).
    c.bench_function("table1_snapshot_build", |b| {
        let members = model().registry.members_at(Week::REFERENCE).len() as u32;
        let mut scan = WeekScan::new(Week::REFERENCE, members);
        for dg in feed_bytes() {
            scan.ingest(dg);
        }
        let census = ServerCensus::identify(&scan, model(), &analyzer().dns, &analyzer().crawl);
        b.iter(|| {
            let snap = WeeklySnapshot::build(&scan, &census, model());
            black_box(snap.peering.ips)
        })
    });

    // E5/Table 2 + E6/Table 3 + E2/Fig. 2 renderers.
    c.bench_function("table2_top_contributors", |b| {
        b.iter(|| black_box(visibility::table2(&reference().snapshot, model(), 10)))
    });
    c.bench_function("table3_locality", |b| {
        b.iter(|| black_box(visibility::table3(&reference().snapshot)))
    });
    c.bench_function("fig2_rank", |b| {
        b.iter(|| black_box(visibility::fig2(reference()).top34_share))
    });

    // E9-E12 — the longitudinal churn sweep over 17 weeks.
    c.bench_function("fig4_fig5_churn", |b| {
        b.iter(|| {
            let (a, _, c4, f5) = longitudinal::churn(study());
            black_box(longitudinal::summary(&a, &c4, &f5).stable_ip_share)
        })
    });

    // E17 — clustering.
    c.bench_function("cluster_pipeline", |b| {
        b.iter(|| black_box(cluster::cluster(reference(), &analyzer().dns).clusters.len()))
    });

    // E18/E19 — heterogeneity scatters.
    c.bench_function("fig6_hetero", |b| {
        b.iter(|| {
            let b6 = hetero::fig6b(clusters(), 2, 50);
            let c6 = hetero::fig6c(reference(), clusters(), 1);
            black_box((b6.points.len(), c6.points.len()))
        })
    });

    // E20 — Fig. 7 link attribution (re-streams the week).
    c.bench_function("fig7_links", |b| {
        b.iter(|| {
            black_box(
                hetero::link_usage(analyzer(), reference(), clusters(), "akamai.example")
                    .map(|f| f.offlink_share),
            )
        })
    });

    // E23 — the resolver campaign.
    c.bench_function("blindspot_campaign", |b| {
        b.iter(|| {
            black_box(
                blindspots::resolver_campaign(analyzer(), reference(), Week::REFERENCE, 4).found,
            )
        })
    });

    // E24 — the port-classification baseline (re-streams the week).
    c.bench_function("baseline_portclass", |b| {
        b.iter(|| black_box(baseline::port_baseline(analyzer(), reference()).port_servers))
    });

    // Vote-key ablation for the §5.1 majority vote (DESIGN.md §5): how much
    // slower/better footprint-weighted voting is vs the bare count.
    c.bench_function("cluster_vote_ablation_validate", |b| {
        b.iter(|| {
            let cl = cluster::cluster(reference(), &analyzer().dns);
            black_box(cluster::validate_clusters(&cl, reference(), model()).false_positive_rate)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
