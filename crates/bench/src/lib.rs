//! Shared helpers for the `ixp-bench` reproduction harness (see `src/bin`
//! and `benches/`).
