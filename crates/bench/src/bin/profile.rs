//! Self-profiling harness: measures per-stage throughput of the pipeline
//! with the `ixp-obs` instrumentation active and writes `BENCH_5.json`,
//! the baseline any later perf PR has to beat.
//!
//! ```text
//! cargo run --release -p ixp-bench --bin profile -- [--scale tiny|small]
//!     [--seed N] [--out BENCH_5.json] [--reps N]
//! ```
//!
//! Three measurements:
//!
//! * **ingest overhead** — the reference week's feed is materialized once
//!   and pushed through a detached [`WeekScan`] (metrics sinks discarded)
//!   and an instrumented one (live registry + real clock, 1-in-64 latency
//!   sampling). The two variants are *interleaved* within each repetition
//!   (detached, instrumented, detached, instrumented, …) so frequency
//!   scaling, cache warmth, and scheduler drift hit both alike — a fixed
//!   detached-then-instrumented order lets whichever runs later ride a
//!   warmer machine and can even report negative overhead. Median-of-`reps`
//!   wall times give the relative overhead; the acceptance bar is < 5 %.
//! * **journal overhead** — the same feed through the supervised intake
//!   ring, once with the event journal disabled and once with a live
//!   bounded journal recording tick spans and transitions. Interleaved
//!   and median'd the same way; same < 5 % bar (DESIGN.md §13).
//! * **per-stage throughput** — a full instrumented 17-week study plus the
//!   clustering / visibility / longitudinal analyses, with every stage's
//!   duration read back from the `core_stage_duration_ns{stage="..."}`
//!   histograms the pipeline itself publishes.
//!
//! All timing goes through [`ixp_obs::RealClock`] — this binary contains
//! no ambient `Instant::now` (the `obs-clock-boundary` lint holds here
//! too).

use std::fmt::Write as _;

use ixp_core::analyzer::{stage_metric, Analyzer};
use ixp_core::{cluster, longitudinal, visibility, WeekScan};
use ixp_netmodel::{InternetModel, ScaleConfig, Week};
use ixp_obs::{real_clock, MetricValue, Obs, Stopwatch};
use ixp_traffic::{MixConfig, WeekStream};

struct Args {
    scale: ScaleConfig,
    scale_name: String,
    seed: u64,
    out: String,
    reps: u32,
}

fn parse_args() -> Args {
    let mut scale = ScaleConfig::tiny();
    let mut scale_name = "tiny".to_string();
    let mut seed = 2012u64;
    let mut out = "BENCH_5.json".to_string();
    let mut reps = 3u32;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale value");
                scale_name = v.clone();
                scale = match v.as_str() {
                    "tiny" => ScaleConfig::tiny(),
                    "small" => ScaleConfig::small(),
                    other => panic!("--scale tiny|small, got {other}"),
                };
            }
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--out" => out = it.next().expect("--out path"),
            "--reps" => reps = it.next().and_then(|s| s.parse().ok()).expect("--reps N"),
            other => panic!("unknown argument {other}"),
        }
    }
    Args { scale, scale_name, seed, out, reps }
}

/// One timed call of `f`, in nanoseconds.
fn timed(clock: &dyn ixp_obs::Clock, mut f: impl FnMut()) -> u64 {
    let sw = Stopwatch::start(clock);
    f();
    sw.elapsed_ns(clock)
}

/// Median of the samples (robust to the odd scheduler hiccup without the
/// ordering bias a min/best-of has when variants run back to back).
fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    let n = samples.len();
    match n {
        0 => 0,
        _ if n % 2 == 1 => samples.get(n / 2).copied().unwrap_or(0),
        _ => {
            let hi = samples.get(n / 2).copied().unwrap_or(0);
            let lo = samples.get(n / 2 - 1).copied().unwrap_or(0);
            lo.midpoint(hi)
        }
    }
}

fn per_sec(count: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    count as f64 / (ns as f64 / 1e9)
}

fn main() {
    let args = parse_args();
    let clock = real_clock();
    let week = Week::REFERENCE;

    eprintln!("generating model (scale={}, seed={}) ...", args.scale_name, args.seed);
    let model = InternetModel::generate(args.scale.clone(), args.seed);
    let members = model.registry.members_at(week).len() as u32;

    // ---- ingest overhead: detached vs instrumented WeekScan -------------
    eprintln!("materializing reference-week feed ...");
    let feed: Vec<Vec<u8>> =
        WeekStream::new(&model, MixConfig::default(), week, model.seed).collect();
    let datagrams = feed.len() as u64;
    let feed_bytes: u64 = feed.iter().map(|d| d.len() as u64).sum();

    eprintln!(
        "timing ingest ({} datagrams, median of {} interleaved reps) ...",
        datagrams, args.reps
    );
    let mut run_detached = || {
        let mut scan = WeekScan::new(week, members);
        for dg in &feed {
            scan.ingest(dg);
        }
    };
    let mut run_instrumented = || {
        let obs = Obs::real();
        let mut scan = WeekScan::with_obs(week, members, &obs);
        for dg in &feed {
            scan.ingest(dg);
        }
    };
    // Untimed warmup of both variants (page in the feed, warm the caches).
    run_detached();
    run_instrumented();
    let mut detached = Vec::new();
    let mut instrumented = Vec::new();
    for _ in 0..args.reps.max(1) {
        detached.push(timed(clock.as_ref(), &mut run_detached));
        instrumented.push(timed(clock.as_ref(), &mut run_instrumented));
    }
    let detached_ns = median(detached);
    let instrumented_ns = median(instrumented);
    let overhead_pct = if detached_ns == 0 {
        0.0
    } else {
        100.0 * (instrumented_ns as f64 - detached_ns as f64) / detached_ns as f64
    };
    eprintln!(
        "  detached {:.1} ms, instrumented {:.1} ms, overhead {:+.2} % (bar: < 5 %)",
        detached_ns as f64 / 1e6,
        instrumented_ns as f64 / 1e6,
        overhead_pct
    );

    // ---- journal overhead: supervised ingest, journal off vs on ---------
    use ixp_supervisor::{Supervisor, SupervisorConfig};
    eprintln!(
        "timing supervised ingest with the event journal off vs on (median of {} reps) ...",
        args.reps
    );
    let sup_config = SupervisorConfig::default();
    let journal = ixp_obs::Journal::with_capacity(ixp_obs::journal::DEFAULT_CAPACITY, clock.clone());
    let mut run_journal_off = || {
        let mut sup = Supervisor::new(WeekScan::new(week, members), sup_config);
        for dg in &feed {
            sup.offer(dg.clone());
        }
        sup.finish();
    };
    let mut run_journal_on = || {
        let mut sup = Supervisor::new(WeekScan::new(week, members), sup_config);
        sup.bind_journal(journal.clone());
        for dg in &feed {
            sup.offer(dg.clone());
        }
        sup.finish();
    };
    run_journal_off();
    run_journal_on();
    let mut journal_off = Vec::new();
    let mut journal_on = Vec::new();
    for _ in 0..args.reps.max(1) {
        journal_off.push(timed(clock.as_ref(), &mut run_journal_off));
        journal_on.push(timed(clock.as_ref(), &mut run_journal_on));
    }
    let journal_off_ns = median(journal_off);
    let journal_on_ns = median(journal_on);
    let journal_events = journal.len() as u64 + journal.dropped();
    let journal_overhead_pct = if journal_off_ns == 0 {
        0.0
    } else {
        100.0 * (journal_on_ns as f64 - journal_off_ns as f64) / journal_off_ns as f64
    };
    eprintln!(
        "  journal off {:.1} ms, on {:.1} ms ({} events recorded), overhead {:+.2} % (bar: < 5 %)",
        journal_off_ns as f64 / 1e6,
        journal_on_ns as f64 / 1e6,
        journal_events,
        journal_overhead_pct
    );

    // ---- per-stage throughput: full instrumented study ------------------
    eprintln!("running instrumented 17-week study ...");
    let obs = Obs::real();
    let analyzer = Analyzer::with_obs(&model, obs.clone());
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let study = analyzer.run_study(threads.min(8));
    let reference = study.reference();
    let _clusters = obs.time(&stage_metric("clustering"), || {
        cluster::cluster(reference, &analyzer.dns)
    });
    obs.time(&stage_metric("visibility"), || {
        let _ = visibility::table1(&reference.snapshot);
        let _ = visibility::table2(&reference.snapshot, &model, 10);
        let _ = visibility::table3(&reference.snapshot);
    });
    obs.time(&stage_metric("longitudinal"), || {
        let _ = longitudinal::churn(&study);
    });

    let snap = obs.snapshot();
    let study_datagrams = snap.counter("sflow_datagrams_total").unwrap_or(0);

    let mut stages = String::new();
    for (i, stage) in ["scan", "census", "snapshot", "clustering", "visibility", "longitudinal"]
        .iter()
        .enumerate()
    {
        let Some(MetricValue::Histogram(h)) = snap.get(&stage_metric(stage)) else {
            continue;
        };
        let mean = if h.count == 0 { 0 } else { h.sum / h.count };
        // Only the scan stage has a meaningful per-item rate; the analysis
        // stages report spans/sec over their aggregate wall time.
        let rate = if *stage == "scan" {
            per_sec(study_datagrams, h.sum)
        } else {
            per_sec(h.count, h.sum)
        };
        let _ = write!(
            stages,
            "{}    {{\"stage\": \"{stage}\", \"spans\": {}, \"total_ns\": {}, \"mean_ns\": {mean}, \"{}\": {rate:.2}}}",
            if i == 0 { "" } else { ",\n" },
            h.count,
            h.sum,
            if *stage == "scan" { "datagrams_per_sec" } else { "spans_per_sec" },
        );
        eprintln!(
            "  stage {stage:<13} {:>3} spans, total {:>9.1} ms, mean {:>8.2} ms",
            h.count,
            h.sum as f64 / 1e6,
            mean as f64 / 1e6
        );
    }

    let json = format!(
        "{{\n  \"schema\": \"ixp-bench/profile/3\",\n  \"scale\": \"{}\",\n  \"seed\": {},\n  \"weeks\": {},\n  \"ingest\": {{\n    \"datagrams\": {datagrams},\n    \"bytes\": {feed_bytes},\n    \"detached_ns\": {detached_ns},\n    \"instrumented_ns\": {instrumented_ns},\n    \"overhead_pct\": {overhead_pct:.2},\n    \"detached_datagrams_per_sec\": {:.2},\n    \"instrumented_datagrams_per_sec\": {:.2},\n    \"detached_mbytes_per_sec\": {:.2}\n  }},\n  \"journal\": {{\n    \"off_ns\": {journal_off_ns},\n    \"on_ns\": {journal_on_ns},\n    \"events\": {journal_events},\n    \"overhead_pct\": {journal_overhead_pct:.2}\n  }},\n  \"stages\": [\n{stages}\n  ]\n}}\n",
        args.scale_name,
        args.seed,
        Week::COUNT,
        per_sec(datagrams, detached_ns),
        per_sec(datagrams, instrumented_ns),
        per_sec(feed_bytes, detached_ns) / 1e6,
    );
    std::fs::write(&args.out, json).expect("write profile json");
    eprintln!("wrote {}", args.out);
    let mut bad = false;
    if overhead_pct >= 5.0 {
        eprintln!("WARNING: instrumentation overhead {overhead_pct:.2} % exceeds the 5 % bar");
        bad = true;
    }
    if journal_overhead_pct >= 5.0 {
        eprintln!("WARNING: journal overhead {journal_overhead_pct:.2} % exceeds the 5 % bar");
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
}
