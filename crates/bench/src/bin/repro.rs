//! The reproduction harness: regenerates **every table and figure** of
//! "On the Benefits of Using a Large IXP as an Internet Vantage Point"
//! (IMC 2013) from the synthetic substrate, printing paper-vs-measured for
//! each experiment of DESIGN.md's index (E1–E24), plus the ablations.
//!
//! ```text
//! cargo run --release -p ixp-bench --bin repro -- [--scale tiny|small|paper:<divisor>]
//!     [--seed N] [--markdown <path>] [--exp <id>]
//!     [--metrics <path>] [--prometheus <path>] [--clock test|real]
//!     [--checkpoint <path>] [--kill-at <n>] [--resume <path>]
//!     [--transport none|memory|udp] [--listen <addr>]
//!     [--serve <addr>] [--trace <path>]
//! ```
//!
//! The observability plane (DESIGN.md §13) rides every run: a bounded
//! deterministic event journal records spans and transitions (stamped by
//! the obs clock, so same-seed `--trace` dumps are byte-identical), a
//! conservation auditor re-checks the ledger invariants against the live
//! metric families (a breach dumps the journal tail to a `.flight` side
//! file and exits nonzero), and `--serve <addr>` exposes `/metrics`,
//! `/metrics.json`, `/healthz`, and `/trace` over HTTP until `GET /quit`
//! (bind failure is logged and the run continues — probe-gated like the
//! UDP transport). A `--kill-at` run seals the journal tail to
//! `<checkpoint>.flight` so the crash site is named next to the
//! checkpoint; a rejected `--resume` does the same next to the rejected
//! file.
//!
//! Every run also writes the observability snapshot (`ixp-obs`, JSON
//! schema `ixp-obs/1`) to `--metrics` (default
//! `target/metrics-snapshot.json`). With the default `--clock test` the
//! clock is frozen, so two runs with the same seed and scale produce
//! byte-identical snapshots — `scripts/ci.sh` checks exactly that. Pass
//! `--clock real` for actual stage durations (at the cost of
//! reproducibility of the timing histograms).
//!
//! `--checkpoint`/`--resume` switch to the **supervised single-week
//! mode** (`ixp-supervisor`): the reference week is ingested through the
//! bounded intake ring under the watchdog. With `--kill-at N` the run is
//! killed at that datagram boundary and the sealed checkpoint written to
//! `--checkpoint`; a later `--resume <path>` run restores it, replays the
//! rest of the regenerated feed, and produces a report and metrics
//! snapshot byte-identical to an uninterrupted run — `scripts/ci.sh`
//! checks exactly that, too.
//!
//! `--transport memory|udp` puts the `ixp-transport` front-end in front
//! of the supervised mode: a seeded NetFlow v5/v9/IPFIX workload (replayed
//! in memory under wire faults, or received over a loopback UDP socket
//! from the `flowgen` binary) is decoded through the bounded
//! [`TransportIntake`](ixp_transport::TransportIntake), and the week's
//! sFlow feed then rides the same intake into the supervisor. The default
//! `--transport none` leaves the supervised path byte-identical to
//! earlier releases. A `--kill-at` run in transport mode writes the
//! intake's own checkpoint next to the supervisor's
//! (`<checkpoint>.transport`), and `--resume` restores both.

use std::fmt::Write as _;

use ixp_core::analyzer::{stage_metric, Analyzer, StudyReport};
use ixp_core::{baseline, blindspots, changes, cluster, hetero, longitudinal, report, visibility};
use ixp_core::cluster::Clusters;
use ixp_netmodel::{InternetModel, ScaleConfig, Week};
use ixp_obs::{Obs, Stopwatch};

struct Args {
    scale: ScaleConfig,
    scale_name: String,
    seed: u64,
    markdown: Option<String>,
    exp: Option<String>,
    metrics: String,
    prometheus: Option<String>,
    real_clock: bool,
    checkpoint: Option<String>,
    resume: Option<String>,
    kill_at: Option<u64>,
    transport: String,
    listen: Option<String>,
    serve: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Args {
    let mut scale = ScaleConfig::small();
    let mut scale_name = "small".to_string();
    let mut seed = 2012u64;
    let mut markdown = None;
    let mut exp = None;
    let mut metrics = "target/metrics-snapshot.json".to_string();
    let mut prometheus = None;
    let mut real_clock = false;
    let mut checkpoint = None;
    let mut resume = None;
    let mut kill_at = None;
    let mut transport = "none".to_string();
    let mut listen = None;
    let mut serve = None;
    let mut trace = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale value");
                scale_name = v.clone();
                scale = match v.as_str() {
                    "tiny" => ScaleConfig::tiny(),
                    "small" => ScaleConfig::small(),
                    other => {
                        let div: u32 = other
                            .strip_prefix("paper:")
                            .and_then(|d| d.parse().ok())
                            .expect("--scale tiny|small|paper:<divisor>");
                        ScaleConfig::paper(div)
                    }
                };
            }
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--markdown" => markdown = it.next(),
            "--exp" => exp = it.next(),
            "--metrics" => metrics = it.next().expect("--metrics path"),
            "--prometheus" => prometheus = it.next(),
            "--checkpoint" => checkpoint = it.next(),
            "--resume" => resume = it.next(),
            "--kill-at" => {
                kill_at = Some(it.next().and_then(|s| s.parse().ok()).expect("--kill-at N"))
            }
            "--transport" => {
                transport = it.next().expect("--transport none|memory|udp");
                assert!(
                    matches!(transport.as_str(), "none" | "memory" | "udp"),
                    "--transport none|memory|udp, got {transport}"
                );
            }
            "--listen" => listen = it.next(),
            "--serve" => serve = it.next(),
            "--trace" => trace = it.next(),
            "--clock" => {
                real_clock = match it.next().expect("--clock test|real").as_str() {
                    "real" => true,
                    "test" => false,
                    other => panic!("--clock test|real, got {other}"),
                };
            }
            other => panic!("unknown argument {other}"),
        }
    }
    Args {
        scale,
        scale_name,
        seed,
        markdown,
        exp,
        metrics,
        prometheus,
        real_clock,
        checkpoint,
        resume,
        kill_at,
        transport,
        listen,
        serve,
        trace,
    }
}

/// Collects sections for the markdown report.
struct Out {
    md: String,
    filter: Option<String>,
}

impl Out {
    fn section(&mut self, id: &str, title: &str, body: String) {
        if let Some(f) = &self.filter {
            if !id.eq_ignore_ascii_case(f) {
                return;
            }
        }
        println!("────────────────────────────────────────────────────────");
        println!("{id} — {title}");
        println!("{body}");
        let _ = writeln!(self.md, "### {id} — {title}\n\n```text\n{body}```\n");
    }
}

/// How many journal events a flight dump seals (the tail that must
/// explain the failure).
const FLIGHT_TAIL: usize = 64;

/// Steady-state conservation audits run every this many offered
/// datagrams in the supervised mode (plus one final audit at the end).
const AUDIT_EVERY: u64 = 4096;

fn main() {
    let args = parse_args();
    // The only time source of the whole run: the obs clock. `--clock test`
    // (default) freezes it so the snapshot is byte-reproducible.
    let obs = if args.real_clock { Obs::real() } else { Obs::deterministic() };
    // The observability plane: journal (spans/transitions, clock-stamped),
    // auditor (live ledger re-checks), board + server (HTTP exposition).
    let journal =
        ixp_obs::Journal::with_capacity(ixp_obs::journal::DEFAULT_CAPACITY, obs.clock.clone());
    let board = ixp_obsd::Board::new();
    let auditor = ixp_obs::Auditor::new(obs.registry.clone(), journal.clone());
    let server = args.serve.as_deref().and_then(|addr| serve_exposition(addr, &obs, &journal, &board));
    let completed = if args.checkpoint.is_some() || args.resume.is_some() || args.transport != "none"
    {
        supervised_mode(&args, &obs, &journal, &board, &auditor)
    } else {
        full_study(&args, &obs);
        final_audit(&args, &journal, &board, &auditor);
        write_snapshots(&args, &obs);
        true
    };
    if completed {
        if let Some(path) = &args.trace {
            std::fs::write(path, journal.render()).expect("write event trace");
            eprintln!(
                "wrote event trace to {path} ({} events, {} dropped)",
                journal.len(),
                journal.dropped()
            );
        }
        if let Some(handle) = server {
            eprintln!("obsd: run complete; serving until GET /quit");
            let _ = handle.join();
        }
    }
}

/// Bind the exposition server and serve on a background thread. A denied
/// bind is logged, not fatal — sandboxes without loopback still run.
fn serve_exposition(
    addr: &str,
    obs: &Obs,
    journal: &ixp_obs::Journal,
    board: &ixp_obsd::Board,
) -> Option<std::thread::JoinHandle<()>> {
    let state = ixp_obsd::ServerState::new(obs.registry.clone(), journal.clone(), board.clone());
    match ixp_obsd::Server::bind(addr, state) {
        Ok(server) => {
            match server.local_addr() {
                // To stderr (unbuffered): ci.sh polls the log for this
                // line to learn the ephemeral port before fetching.
                Ok(local) => eprintln!("obsd: serving on {local}"),
                Err(e) => eprintln!("obsd: serving (local addr unavailable: {e})"),
            }
            Some(std::thread::spawn(move || {
                if let Err(e) = server.serve() {
                    eprintln!("obsd: serve loop ended: {e}");
                }
            }))
        }
        Err(e) => {
            eprintln!("obsd: binding {addr} denied: {e}; continuing without exposition");
            None
        }
    }
}

/// Where a conservation-breach flight dump lands: next to the checkpoint
/// when one is in play, next to the metrics snapshot otherwise.
fn flight_path(args: &Args) -> String {
    match &args.checkpoint {
        Some(path) => format!("{path}.flight"),
        None => format!("{}.flight", args.metrics),
    }
}

/// Seal the journal tail to `path` — the crash flight recorder write.
fn write_flight(path: &str, journal: &ixp_obs::Journal) {
    std::fs::write(path, journal.dump_flight(FLIGHT_TAIL)).expect("write flight dump");
}

/// The end-of-run conservation audit. A breach has already bumped the
/// counter and journaled an `audit_breach` event; here it also seals the
/// flight dump and fails the run.
fn final_audit(
    args: &Args,
    journal: &ixp_obs::Journal,
    board: &ixp_obsd::Board,
    auditor: &ixp_obs::Auditor,
) {
    match auditor.run(ixp_obs::AuditScope::Final) {
        Ok(()) => {
            board.publish_audit(auditor.breaches(), "pass");
            eprintln!("conservation audit: pass ({} breaches)", auditor.breaches());
        }
        Err(e) => {
            board.publish_audit(auditor.breaches(), "breach");
            let side = flight_path(args);
            write_flight(&side, journal);
            eprintln!("conservation audit BREACH: {e} — flight dump written to {side}");
            std::process::exit(4);
        }
    }
}

fn full_study(args: &Args, obs: &Obs) {
    let t0 = Stopwatch::start(obs.clock.as_ref());
    let secs = |sw: &Stopwatch| sw.elapsed_ns(obs.clock.as_ref()) as f64 / 1e9;
    eprintln!("generating model (scale={}, seed={}) ...", args.scale_name, args.seed);
    let model = Box::leak(Box::new(InternetModel::generate(args.scale.clone(), args.seed)));
    eprintln!(
        "  {} ASes, {} prefixes, {} orgs, {} servers (records), {:.1}s",
        model.registry.len(),
        model.routing.len(),
        model.orgs.len(),
        model.servers.servers().len(),
        secs(&t0)
    );

    let analyzer = Analyzer::with_obs(model, obs.clone());
    eprintln!("running 17-week study ...");
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let study = analyzer.run_study(threads.min(8));
    eprintln!("  study done at {:.1}s", secs(&t0));
    let reference = study.reference();
    let clusters = obs.time(&stage_metric("clustering"), || cluster::cluster(reference, &analyzer.dns));

    let mut out = Out {
        md: format!(
            "## Reproduction run\n\nscale `{}` (divisor {}), seed {}, {} samples/week.\n\n",
            args.scale_name, args.scale.divisor, args.seed, args.scale.samples_per_week
        ),
        filter: args.exp.clone(),
    };

    e1_fig1(&mut out, reference);
    e2_fig2(&mut out, reference);
    e3_table1(&mut out, reference, model, &args.scale, obs);
    e4_fig3(&mut out, reference, model);
    e5_table2(&mut out, reference, model, obs);
    e6_table3(&mut out, reference, obs);
    e7_serverid(&mut out, reference);
    e8_metadata(&mut out, reference);
    e9_to_e12_longitudinal(&mut out, &study, obs);
    e13_https(&mut out, &study);
    e14_ec2(&mut out, &study);
    e15_sandy(&mut out, &study);
    e16_reseller(&mut out, &study);
    e17_cluster(&mut out, reference, &clusters, model);
    e18_fig6b(&mut out, &clusters, &args.scale);
    e19_fig6c(&mut out, reference, &clusters, model);
    e20_e21_fig7(&mut out, &analyzer, reference, &clusters);
    e22_isp(&mut out, reference, model, args.seed);
    e23_blindspots(&mut out, &analyzer, reference, &clusters, model);
    e24_baselines(&mut out, &analyzer, reference, &clusters, model);
    ablations(&mut out, &analyzer, reference, model);
    faults_sweep(&mut out, &analyzer, reference, args.seed);
    chaos_sweep(&mut out, &analyzer, reference, model, args.seed);

    eprintln!("all experiments done at {:.1}s", secs(&t0));
    if let Some(path) = &args.markdown {
        std::fs::write(path, out.md).expect("write markdown");
        eprintln!("wrote {path}");
    }
}

/// Export the run's observability snapshot. Sorted + integer-only, so
/// with the frozen test clock two same-seed runs are byte-identical.
fn write_snapshots(args: &Args, obs: &Obs) {
    let snapshot = obs.snapshot();
    if let Some(parent) = std::path::Path::new(&args.metrics).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create metrics dir");
        }
    }
    std::fs::write(&args.metrics, ixp_obs::json::render(&snapshot)).expect("write metrics snapshot");
    eprintln!(
        "wrote metrics snapshot to {} ({} metrics)",
        args.metrics,
        snapshot.entries.len()
    );
    if let Some(path) = &args.prometheus {
        let text = ixp_obs::prometheus::render(&snapshot)
            .unwrap_or_else(|e| panic!("prometheus exposition refused: {e}"));
        std::fs::write(path, text).expect("write prometheus exposition");
        eprintln!("wrote prometheus exposition to {path}");
    }
}

/// The supervised single-week mode (`--checkpoint` / `--resume`): ingest
/// the reference week through the bounded intake ring under the watchdog,
/// optionally killing at a datagram boundary (`--kill-at`) and writing a
/// sealed checkpoint, or resuming from one. A resumed run replays the
/// regenerated feed from its cursor and ends byte-identical — report,
/// checkpoint, and metrics snapshot — to a run that was never killed.
/// Returns `true` when the week completed (false: killed at `--kill-at`).
fn supervised_mode(
    args: &Args,
    obs: &Obs,
    journal: &ixp_obs::Journal,
    board: &ixp_obsd::Board,
    auditor: &ixp_obs::Auditor,
) -> bool {
    use ixp_supervisor::{Supervisor, SupervisorConfig};

    let t0 = Stopwatch::start(obs.clock.as_ref());
    let secs = |sw: &Stopwatch| sw.elapsed_ns(obs.clock.as_ref()) as f64 / 1e9;
    eprintln!(
        "supervised mode (scale={}, seed={}) ...",
        args.scale_name, args.seed
    );
    let model = Box::leak(Box::new(InternetModel::generate(args.scale.clone(), args.seed)));
    let analyzer = Analyzer::with_obs(model, obs.clone());
    let week = Week::REFERENCE;
    let config = SupervisorConfig::default();

    let mut sup = match &args.resume {
        Some(path) => {
            let bytes = std::fs::read(path).expect("read checkpoint file");
            let mut sup = match Supervisor::restore(&bytes, config) {
                Ok(sup) => sup,
                Err(e) => {
                    // Fail closed, and leave the flight recorder's
                    // account of the rejection next to the rejected file.
                    journal.record(ixp_obs::EventKind::RestoreRejected, 0, 0, 0, 0);
                    let side = format!("{path}.flight");
                    write_flight(&side, journal);
                    eprintln!(
                        "refusing to resume from {path}: {e} — flight dump written to {side}"
                    );
                    std::process::exit(3);
                }
            };
            sup.bind_obs(obs);
            eprintln!("  resumed from {path} at offered datagram {}", sup.offered());
            sup
        }
        None => {
            let members = model.registry.members_at(week).len() as u32;
            Supervisor::with_obs(
                ixp_core::WeekScan::with_obs(week, members, obs),
                config,
                obs,
            )
        }
    };
    sup.bind_journal(journal.clone());

    // A steady-state audit breach mid-run is fatal: seal the flight dump
    // and exit, so the journal tail names the moment the ledger broke.
    let audit_steady = |offered: u64| {
        if offered % AUDIT_EVERY != 0 {
            return;
        }
        if let Err(e) = auditor.run(ixp_obs::AuditScope::Steady) {
            let side = flight_path(args);
            write_flight(&side, journal);
            eprintln!(
                "conservation audit BREACH at offered datagram {offered}: {e} — flight dump written to {side}"
            );
            std::process::exit(4);
        }
    };

    let mut transport = if args.transport == "none" {
        None
    } else {
        Some(transport_front_end(args, obs, journal))
    };
    let done = match &mut transport {
        None => obs.time(&stage_metric("scan"), || {
            // As `Supervisor::run_feed`, plus the periodic conservation
            // audit at datagram boundaries.
            let skip = usize::try_from(sup.offered()).unwrap_or(usize::MAX);
            for dg in analyzer.feed(week).skip(skip) {
                if args.kill_at.is_some_and(|k| sup.offered() >= k) {
                    return false;
                }
                sup.offer(dg);
                audit_steady(sup.offered());
            }
            sup.finish();
            true
        }),
        Some(intake) => obs.time(&stage_metric("scan"), || {
            // The week's sFlow feed rides the transport intake into the
            // supervisor: offer → drain → forward the passthrough
            // datagrams. A resumed run skips what it already offered.
            let skip = usize::try_from(sup.offered()).unwrap_or(usize::MAX);
            for dg in analyzer.feed(week).skip(skip) {
                if args.kill_at.is_some_and(|k| sup.offered() >= k) {
                    return false;
                }
                intake.offer(SFLOW_PEER, &dg);
                for unit in intake.drain(usize::MAX) {
                    if let ixp_transport::Drained::Sflow { datagram, .. } = unit {
                        sup.offer(datagram);
                    }
                }
                audit_steady(sup.offered());
            }
            sup.finish();
            true
        }),
    };
    if !done {
        // The flight recorder's last word: where the kill landed.
        journal.record(ixp_obs::EventKind::Kill, 0, 0, sup.offered(), sup.stats().ticks);
        let path = args
            .checkpoint
            .as_deref()
            .expect("--kill-at needs --checkpoint <path> to write to");
        std::fs::write(path, sup.checkpoint()).expect("write checkpoint file");
        if let Some(intake) = &transport {
            let side = format!("{path}.transport");
            std::fs::write(&side, intake.save_state()).expect("write transport state file");
            eprintln!("  transport state written to {side}");
        }
        let flight = format!("{path}.flight");
        write_flight(&flight, journal);
        eprintln!(
            "  killed at offered datagram {} ({:.1}s) — checkpoint written to {path}, flight dump to {flight}",
            sup.offered(),
            secs(&t0)
        );
        return false;
    }
    if let Some(path) = &args.checkpoint {
        std::fs::write(path, sup.checkpoint()).expect("write checkpoint file");
        eprintln!("  final checkpoint written to {path}");
    }

    let stats = sup.stats();
    let health = sup.scan().ingest_health();
    // Publish the per-agent health board for `/healthz` before the
    // supervisor is consumed for the report.
    let health_rows: Vec<((u32, u32), &'static str)> =
        sup.health_states().into_iter().map(|(key, state)| (key, state.as_str())).collect();
    let rows: Vec<(u32, u32, &str)> =
        health_rows.iter().map(|((agent, sub), state)| (*agent, *sub, *state)).collect();
    board.publish_agents(&rows);
    let report = analyzer.report_from_scan(sup.into_scan());
    let t1 = visibility::table1(&report.snapshot);
    println!("supervised week {} complete at {:.1}s", week.0, secs(&t0));
    println!(
        "  Table 1: {} peering IPs / {} prefixes / {} ASes",
        t1.peering.ips, t1.peering.prefixes, t1.peering.ases
    );
    println!(
        "  supervisor: {} offered, {} shed, {} ticks, {} deadline misses, ring high water {}",
        stats.offered, stats.shed, stats.ticks, stats.deadline_misses, stats.high_water
    );
    println!(
        "  agents: {} healthy / {} degraded / {} quarantined / {} recovering",
        stats.agents[0], stats.agents[1], stats.agents[2], stats.agents[3]
    );
    println!(
        "  accounting invariant (ingested = accepted + duplicates + errors + shed): {}",
        if health.fully_accounted() { "holds" } else { "VIOLATED" }
    );
    if let Some(intake) = &mut transport {
        let ts = intake.finish();
        let (installed, refreshed, evicted) = intake.template_counts();
        println!(
            "  transport ({} mode): {} offered, {} received, {} accepted ({} sflow / {} v5 / {} v9 / {} ipfix), {} flow records",
            args.transport,
            ts.offered,
            ts.received,
            ts.accepted,
            ts.sflow_datagrams,
            ts.v5_packets,
            ts.v9_packets,
            ts.ipfix_packets,
            ts.flows,
        );
        println!(
            "  transport faults: {} shed, {} duplicates, {} decode errors ({} truncated / {} bad version / {} inconsistent), {} template-missing dropped",
            ts.shed,
            ts.duplicates,
            ts.decode_errors,
            ts.truncated,
            ts.bad_version,
            ts.inconsistent,
            ts.template_missing_dropped,
        );
        println!(
            "  transport templates: {installed} installed, {refreshed} refreshed, {evicted} evicted"
        );
        println!(
            "  transport accounting invariant (offered = received + shed; received = accepted + duplicates + errors + template-missing + pending): {}",
            if intake.fully_accounted() { "holds" } else { "VIOLATED" }
        );
    }
    final_audit(args, journal, board, auditor);
    write_snapshots(args, obs);
    true
}

/// Stable peer identity the supervised mode uses when it offers the
/// week's sFlow datagrams to the transport intake.
const SFLOW_PEER: u64 = 0x5F10;

/// Build the transport intake for `--transport memory|udp` and run the
/// flow-export phase: a seeded NetFlow v5/v9/IPFIX workload with template
/// churn, replayed either deterministically in memory under wire faults
/// or received over a loopback UDP socket from `flowgen`. A resumed run
/// restores the intake (flow phase included) from the side file the
/// killed run wrote and skips the phase.
fn transport_front_end(
    args: &Args,
    obs: &Obs,
    journal: &ixp_obs::Journal,
) -> ixp_transport::TransportIntake {
    use ixp_faults::{WireFaultConfig, WirePlan};
    use ixp_transport::{
        FlowGenConfig, Link as _, MemLink, TransportConfig, TransportIntake, TransportMetrics,
        UdpLink, FIN,
    };

    let restored = args.resume.as_deref().and_then(|path| {
        let side = format!("{path}.transport");
        let bytes = std::fs::read(&side).ok()?;
        let intake = match TransportIntake::restore_from(&bytes) {
            Ok(intake) => intake,
            Err(e) => {
                journal.record(ixp_obs::EventKind::RestoreRejected, 0, 1, 0, 0);
                let flight = format!("{side}.flight");
                write_flight(&flight, journal);
                eprintln!(
                    "refusing to resume transport state from {side}: {e} — flight dump written to {flight}"
                );
                std::process::exit(3);
            }
        };
        eprintln!("  transport state resumed from {side}");
        Some(intake)
    });
    let resumed = restored.is_some();
    let mut intake = restored.unwrap_or_else(|| TransportIntake::new(TransportConfig::default()));
    intake.bind_metrics(TransportMetrics::register(&obs.registry));
    intake.bind_journal(journal.clone());
    if resumed {
        return intake;
    }

    match args.transport.as_str() {
        "memory" => {
            // Deterministic in-memory replay: seeded workload with
            // template withhold/flap windows and exporter restarts,
            // perturbed at the wire level. Same seed, same bytes — two
            // same-seed runs produce byte-identical metrics snapshots.
            let packets = 600u64;
            let cfg = FlowGenConfig {
                seed: args.seed,
                packets,
                withhold: ixp_faults::withhold_windows(args.seed, packets, 2, 60),
                flap: ixp_faults::flap_windows(args.seed, packets, 1, 40),
                restarts: ixp_faults::exporter_restart_offsets(args.seed, packets, 2),
                ..FlowGenConfig::default()
            };
            let wire = WireFaultConfig {
                seed: args.seed,
                drop: 0.02,
                duplicate: 0.005,
                reorder: 0.005,
                truncate: 0.001,
            };
            let mut link = MemLink::new();
            for (peer, packet) in WirePlan::new(ixp_transport::generate(&cfg).into_iter(), wire) {
                link.send(peer, &packet).expect("memlink send");
            }
            eprintln!("  transport: replaying {} flow packets in memory", link.pending());
            loop {
                let n = intake.pump(&mut link, 64).expect("memlink recv");
                intake.drain(usize::MAX);
                if n == 0 {
                    break;
                }
            }
        }
        "udp" => {
            let addr = args.listen.as_deref().unwrap_or("127.0.0.1:0");
            let mut link = match UdpLink::bind(addr) {
                Ok(link) => link,
                Err(e) => {
                    eprintln!("transport: binding UDP {addr} denied: {e}");
                    std::process::exit(42);
                }
            };
            match link.local_addr() {
                // To stderr (unbuffered): ci.sh polls the log for this
                // line to learn the ephemeral port before starting flowgen.
                Ok(local) => eprintln!("transport: listening on {local}"),
                Err(e) => eprintln!("transport: listening (local addr unavailable: {e})"),
            }
            let mut idle = 0u32;
            loop {
                match link.recv() {
                    Ok(Some((peer, packet))) => {
                        idle = 0;
                        if packet == FIN {
                            break;
                        }
                        intake.offer(peer, &packet);
                        intake.drain(64);
                    }
                    Ok(None) => {
                        // The socket polls at 50 ms; give a slow sender
                        // ~15 s of silence before giving up.
                        idle += 1;
                        if idle >= 300 {
                            eprintln!("transport: idle timeout waiting for flowgen; proceeding");
                            break;
                        }
                    }
                    Err(e) => {
                        eprintln!("transport: receive error: {e}; proceeding");
                        break;
                    }
                }
            }
        }
        other => panic!("--transport none|memory|udp, got {other}"),
    }
    intake.drain(usize::MAX);
    intake
}

fn e1_fig1(out: &mut Out, reference: &ixp_core::WeeklyReport) {
    let mut body = report::render_fig1(reference);
    let _ = writeln!(
        body,
        "  paper: non-IPv4 ~0.4 %, non-member/local ~0.6 %, non-TCP/UDP < 0.5 %, peering ≈ 98.5 %, TCP:UDP = 82:18"
    );
    out.section("E1", "Fig. 1 — filtering cascade", body);
}

fn e2_fig2(out: &mut Out, reference: &ixp_core::WeeklyReport) {
    let mut body = report::render_fig2(reference);
    let _ = writeln!(body, "  paper: top-34 server IPs > 6 %; single IPs above 0.5 % exist");
    out.section("E2", "Fig. 2 — per-server traffic concentration", body);
}

fn e3_table1(
    out: &mut Out,
    reference: &ixp_core::WeeklyReport,
    model: &InternetModel,
    scale: &ScaleConfig,
    obs: &Obs,
) {
    let mut body = report::render_table1(reference);
    let t1 = obs.time(&stage_metric("visibility"), || visibility::table1(&reference.snapshot));
    let _ = writeln!(
        body,
        "  coverage: {:.1} % of routed prefixes, {:.1} % of routed ASes seen (paper: ~98 %, ~100 %)",
        100.0 * t1.peering.prefixes as f64 / model.routing.len() as f64,
        100.0 * t1.peering.ases as f64 / model.registry.len() as f64,
    );
    let _ = writeln!(
        body,
        "  server view: {:.1} % of prefixes, {:.1} % of ASes, {:.0} % of countries (paper: 17 %, 50 %, 80 %)",
        100.0 * t1.server.prefixes as f64 / model.routing.len() as f64,
        100.0 * t1.server.ases as f64 / t1.peering.ases.max(1) as f64,
        100.0 * t1.server.countries as f64 / t1.peering.countries.max(1) as f64,
    );
    let _ = writeln!(
        body,
        "  paper absolute (week 45): 232,460,635 IPs / 445,051 prefixes / 42,825 ASes / 242 countries; servers 1,488,286 / 75,841 / 19,824 / 200.\n  this run is scaled by divisor {} — shapes, not absolutes, are the comparison.",
        scale.divisor
    );
    out.section("E3", "Table 1 — IXP summary statistics", body);
}

fn e4_fig3(out: &mut Out, reference: &ixp_core::WeeklyReport, model: &InternetModel) {
    let mut body = report::render_fig3(reference, model);
    let _ = writeln!(body, "  paper: traffic from every country except EH/CX/CC");
    out.section("E4", "Fig. 3 — IPs per country", body);
}

fn e5_table2(out: &mut Out, reference: &ixp_core::WeeklyReport, model: &InternetModel, obs: &Obs) {
    let t2 =
        obs.time(&stage_metric("visibility"), || visibility::table2(&reference.snapshot, model, 10));
    let mut body = report::render_table2(&t2);
    let _ = writeln!(
        body,
        "  paper top-3: IPs-all US/DE/CN; IPs-server DE/US/RU; traffic-all DE/US/RU; networks-by-server-IPs Akamai/1&1/OVH; networks-by-server-traffic Akamai/Google/Hetzner"
    );
    out.section("E5", "Table 2 — top contributors", body);
}

fn e6_table3(out: &mut Out, reference: &ixp_core::WeeklyReport, obs: &Obs) {
    let t3 = obs.time(&stage_metric("visibility"), || visibility::table3(&reference.snapshot));
    let mut body = report::render_table3(&t3);
    let _ = writeln!(
        body,
        "  paper peering: IPs 42.3/45.0/12.7, prefixes 10.1/34.1/55.8, ASes 1.0/48.9/50.1, traffic 67.3/28.4/4.3"
    );
    let _ = writeln!(
        body,
        "  paper server:  IPs 52.9/41.2/5.9, prefixes 17.2/61.9/20.9, ASes 2.2/61.5/36.3, traffic 82.6/17.35/0.05"
    );
    out.section("E6", "Table 3 — local yet global", body);
}

fn e7_serverid(out: &mut Out, reference: &ixp_core::WeeklyReport) {
    let s = &reference.snapshot;
    let c = &reference.census;
    let mut body = String::new();
    let _ = writeln!(body, "  identified server IPs: {}", c.len());
    let _ = writeln!(
        body,
        "  HTTPS funnel: {} candidates -> {} responders -> {} confirmed (paper: 1.5M -> 500K -> 250K)",
        s.https.candidates, s.https.responders, s.https.confirmed
    );
    let _ = writeln!(
        body,
        "  multi-purpose (>= 2 service ports): {} ({:.1} %; paper ~23 %)",
        s.multi_port,
        100.0 * s.multi_port as f64 / c.len().max(1) as f64
    );
    let _ = writeln!(
        body,
        "  server+client IPs: {} carrying {:.1} % of server traffic (paper: 200K, ~10 %)",
        s.dual_role.0,
        100.0 * s.dual_role.1 as f64 / c.total_bytes().max(1) as f64
    );
    let _ = writeln!(
        body,
        "  server-related share of peering traffic: {:.1} % (paper: > 70 %)",
        s.server_traffic_share()
    );
    let _ = writeln!(body, "  client IPs seen: {} (paper: ~40M)", s.client_ips);
    out.section("E7", "§2.2.2 — server identification", body);
}

fn e8_metadata(out: &mut Out, reference: &ixp_core::WeeklyReport) {
    let cov = reference.snapshot.coverage;
    let mut body = String::new();
    let _ = writeln!(
        body,
        "  DNS {:.1} %  URI {:.1} %  X.509 {:.1} %  any {:.1} %  (paper: 71.7 / 23.8 / 17.7 / 81.9)",
        cov.pct(cov.dns),
        cov.pct(cov.uri),
        cov.pct(cov.x509),
        cov.pct(cov.any)
    );
    let _ = writeln!(
        body,
        "  cleaning removed {} records ({:.2} %; paper: < 3 %)",
        cov.cleaned,
        100.0 * cov.cleaned as f64 / (cov.total + cov.cleaned).max(1) as f64
    );
    out.section("E8", "§2.4 — meta-data coverage", body);
}

fn e9_to_e12_longitudinal(out: &mut Out, study: &StudyReport, obs: &Obs) {
    let (f4a, f4b, f4c, f5) =
        obs.time(&stage_metric("longitudinal"), || longitudinal::churn(study));
    let s = longitudinal::summary(&f4a, &f4c, &f5);

    let mut body = String::new();
    for (w, bar) in longitudinal::week_labels().iter().zip(f4a.bars.iter()) {
        let _ = writeln!(
            body,
            "  week {w}: total {:>7}  stable {:>7}  recurrent {:>7}  fresh {:>7}",
            bar.total, bar.stable, bar.recurrent, bar.fresh
        );
    }
    let _ = writeln!(
        body,
        "  week-51 shares: stable {:.1} % / recurrent {:.1} % / fresh {:.1} %  (paper: ~30/60/10)",
        s.stable_ip_share, s.recurrent_ip_share, s.fresh_ip_share
    );
    out.section("E9", "Fig. 4a — server-IP churn", body);

    let mut body = String::new();
    let labels = ["DE", "US", "RU", "CN", "RoW"];
    let last = &f4b.bars[16];
    for (i, l) in labels.iter().enumerate() {
        let _ = writeln!(
            body,
            "  {l:<4} week-51: total {:>6}  stable {:>6}  recurrent {:>6}  fresh {:>6}",
            last[i].total, last[i].stable, last[i].recurrent, last[i].fresh
        );
    }
    let total_stable: usize = last.iter().map(|b| b.stable).sum();
    let _ = writeln!(
        body,
        "  DE share of the stable pool: {:.1} % (paper: ~half); CN stable pool: {} (paper: vanishing)",
        100.0 * last[0].stable as f64 / total_stable.max(1) as f64,
        last[3].stable
    );
    out.section("E10", "Fig. 4b — churn by region", body);

    let mut body = String::new();
    let last_as = f4c.bars[16];
    let _ = writeln!(
        body,
        "  week-51 ASes hosting servers: total {}  stable {}  ({:.1} %; paper ~70 %)",
        last_as.total,
        last_as.stable,
        s.stable_as_share
    );
    out.section("E11", "Fig. 4c — AS churn", body);

    let mut body = String::new();
    for (w, week) in longitudinal::week_labels().iter().zip(f5.weeks.iter()) {
        let _ = writeln!(
            body,
            "  week {w}: stable-pool traffic {:.1} %  recurrent {:.1} %  (DE all {:.1} %)",
            week.stable.iter().sum::<f64>(),
            week.recurrent.iter().sum::<f64>(),
            week.all[0]
        );
    }
    let _ = writeln!(
        body,
        "  min stable-pool traffic share {:.1} % (paper: consistently > 60 %)",
        s.min_stable_traffic_share
    );
    out.section("E12", "Fig. 5 — server traffic by pool × region", body);
}

fn e13_https(out: &mut Out, study: &StudyReport) {
    let trend = changes::https_trend(study);
    let mut body = String::new();
    for p in &trend.points {
        let _ = writeln!(
            body,
            "  week {}: HTTPS servers {:.2} %, HTTPS traffic {:.2} %",
            p.week.0, p.server_share, p.traffic_share
        );
    }
    let _ = writeln!(
        body,
        "  slopes: +{:.3} pp/week (servers), +{:.3} pp/week (traffic); paper: 'small, yet steady increase'",
        trend.server_slope, trend.traffic_slope
    );
    out.section("E13", "§4.2 — HTTPS drift", body);
}

fn e14_ec2(out: &mut Out, study: &StudyReport) {
    let series = changes::range_series(study, "eu-ireland");
    let v = changes::ec2_verdict(&series);
    let mut body = String::new();
    for (w, c, _) in &series.points {
        let _ = writeln!(body, "  week {}: {} servers in eu-ireland ranges", w.0, c);
    }
    let _ = writeln!(
        body,
        "  ramp: {:.1} -> {:.1} ({:.2}x); paper: 'pronounced increase' in weeks 49-51",
        v.before, v.after, v.growth
    );
    out.section("E14", "§4.2 — Amazon-EC2/Netflix expansion", body);
}

fn e15_sandy(out: &mut Out, study: &StudyReport) {
    let series = changes::range_series(study, "sc-us-east-1");
    let v = changes::outage_verdict(&series);
    let body = format!(
        "  sc-us-east-1 servers: week 43 = {}, week 44 = {}, week 45 = {} (bytes wk44: {})\n  paper: 'drastic reduction ... with traffic dropping close to zero' in week 44\n",
        v.week43, v.week44, v.week45, v.week44_bytes
    );
    out.section("E15", "§4.2 — Hurricane Sandy", body);
}

fn e16_reseller(out: &mut Out, study: &StudyReport) {
    let mut body = String::new();
    for s in changes::reseller_series(study) {
        let _ = writeln!(body, "  reseller member {:>3}: {:?} (growth {:.2}x)", s.member.0, s.counts, s.growth);
    }
    let _ = writeln!(body, "  paper: one reseller's customer servers doubled (50K -> 100K) in four months");
    out.section("E16", "§4.2 — reseller growth", body);
}

fn e17_cluster(
    out: &mut Out,
    reference: &ixp_core::WeeklyReport,
    clusters: &Clusters,
    model: &InternetModel,
) {
    let shares = clusters.step_shares();
    let v = cluster::validate_clusters(clusters, reference, model);
    let mut body = String::new();
    let _ = writeln!(body, "  organizations recovered: {} (paper: ~21K at full scale)", clusters.clusters.len());
    let _ = writeln!(
        body,
        "  step shares: {:.1} / {:.1} / {:.1} % (paper: 78.7 / 17.4 / 3.9); unclustered {}",
        shares[0], shares[1], shares[2], clusters.unclustered
    );
    let _ = writeln!(
        body,
        "  validated FP rate: {:.2} % overall, {:.2} % for footprints >= {} ASes (paper: < 3 %, decreasing with footprint)",
        100.0 * v.false_positive_rate,
        100.0 * v.fp_rate_large,
        v.large_threshold
    );
    out.section("E17", "§5.1 — organization clustering", body);
}

fn e18_fig6b(out: &mut Out, clusters: &Clusters, scale: &ScaleConfig) {
    // Scale the paper's ">1000 servers" and ">10 servers" thresholds by the
    // divisor (they collapse toward zero at high divisors).
    let large = if scale.divisor > 0 { (1000 / scale.divisor).max(2) as usize } else { 30 };
    let small = if scale.divisor > 0 { (10 / scale.divisor).max(0) as usize } else { 2 };
    let f = hetero::fig6b(clusters, small.min(large - 1), large);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "  orgs with > {} servers: {} (paper: 6K+ over 10); orgs with > {} servers: {} (paper: 143 over 1000)",
        small.min(large - 1),
        f.points.len(),
        large,
        f.large_count
    );
    let mut pts = f.points.clone();
    pts.sort_by_key(|(_, ips, _)| std::cmp::Reverse(*ips));
    for (key, ips, ases) in pts.iter().take(12) {
        let _ = writeln!(body, "  {key:<30} {ips:>7} server IPs in {ases:>4} ASes");
    }
    out.section("E18", "Fig. 6b — org footprint scatter", body);
}

fn e19_fig6c(
    out: &mut Out,
    reference: &ixp_core::WeeklyReport,
    clusters: &Clusters,
    model: &InternetModel,
) {
    let f = hetero::fig6c(reference, clusters, 0);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "  ASes hosting > 5 orgs: {} (paper: > 500); > 10 orgs: {} (paper: > 200) [all clustered orgs]",
        f.over_5_orgs, f.over_10_orgs
    );
    let mut pts = f.points.clone();
    pts.sort_by_key(|(_, _, orgs)| std::cmp::Reverse(*orgs));
    for (as_idx, ips, orgs) in pts.iter().take(8) {
        let _ = writeln!(
            body,
            "  {:<30} {ips:>7} server IPs of {orgs:>4} organizations",
            model.registry.by_index(*as_idx).name
        );
    }
    let _ = writeln!(body, "  paper's flagship: a Web hoster (AS36351) with 40K+ IPs of 350+ orgs");
    out.section("E19", "Fig. 6c — AS diversity scatter", body);
}

fn e20_e21_fig7(
    out: &mut Out,
    analyzer: &Analyzer<'_>,
    reference: &ixp_core::WeeklyReport,
    clusters: &Clusters,
) {
    for (id, key, paper) in [
        ("E20", "akamai.example", "paper: 11.1 % of Akamai traffic off-link; >15K of 28K servers via other links"),
        ("E21", "cloudflare.example", "paper: CloudFlare shows a similar pattern despite its data-center model"),
    ] {
        let Some(f) = hetero::link_usage(analyzer, reference, clusters, key) else {
            out.section(id, &format!("Fig. 7 — {key}"), "  no data\n".into());
            continue;
        };
        let mut body = String::new();
        let _ = writeln!(
            body,
            "  off-link traffic share: {:.1} %; servers via other links: {} of {}",
            f.offlink_share, f.servers_via_other_links, f.servers_total
        );
        let x0 = f.points.iter().filter(|(_, x, _)| *x < 1.0).count();
        let x100 = f.points.iter().filter(|(_, x, _)| *x > 99.0).count();
        let _ = writeln!(
            body,
            "  member dots: {} total, {} at x=0 (all via other links), {} at x=100 (all direct)",
            f.points.len(),
            x0,
            x100
        );
        let _ = writeln!(body, "  {paper}");
        out.section(id, &format!("Fig. 7 — {key}"), body);
    }
}

fn e22_isp(out: &mut Out, reference: &ixp_core::WeeklyReport, model: &InternetModel, seed: u64) {
    let isp = ixp_traffic::IspTrace::generate(model, Week::REFERENCE, seed);
    let confirmed = reference.census.records.iter().filter(|r| isp.confirms(r.ip)).count();
    let isp_only = isp.server_ips.iter().filter(|ip| reference.census.get(**ip).is_none()).count();
    let body = format!(
        "  ISP sees {} server IPs; overlap with IXP census: {}; ISP-only: {} ({:.1} % of the IXP census size; paper: 45K of 1.5M ≈ 3 %)\n  every overlapping IP was independently identified -> identification confirmed\n",
        isp.server_ips.len(),
        confirmed,
        isp_only,
        100.0 * isp_only as f64 / reference.census.len().max(1) as f64
    );
    out.section("E22", "§3.1 — ISP cross-validation", body);
}

fn e23_blindspots(
    out: &mut Out,
    analyzer: &Analyzer<'_>,
    reference: &ixp_core::WeeklyReport,
    clusters: &Clusters,
    model: &InternetModel,
) {
    let rec = blindspots::domain_recovery(reference, model);
    let campaign = blindspots::resolver_campaign(analyzer, reference, Week::REFERENCE, 12);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "  domain recovery: full list {:.1} %, top decile {:.1} %, top percentile {:.1} % (paper: 20 / 63 / 80)",
        rec.full_list, rec.top_decile, rec.top_percentile
    );
    let _ = writeln!(
        body,
        "  resolver campaign over {} uncovered domains: {} server IPs found, {} already seen at the IXP, {} unseen (paper: 600K found, 360K seen, 240K unseen)",
        campaign.domains_queried, campaign.found, campaign.already_seen, campaign.unseen_total()
    );
    let _ = writeln!(body, "  unseen breakdown: {:?}", campaign.unseen);
    let _ = writeln!(
        body,
        "  private clusters + far-away: {:.1} % of unseen (paper: > 40 %)",
        campaign.structural_share()
    );
    if let Some(cs) = blindspots::validate_footprint_case_study(
        analyzer, reference, clusters, "akamai.example", Week::REFERENCE, 16,
    ) {
        let _ = writeln!(
            body,
            "  Akamai-like case study: IXP {} servers/{} ASes; +resolvers {} servers/{} ASes; published truth {} servers/{} ASes (paper: 28K/278 -> 100K/700 -> 100K+/1K+)",
            cs.ixp_servers, cs.ixp_ases, cs.active_servers, cs.active_ases, cs.truth_servers, cs.truth_ases
        );
    }
    out.section("E23", "§3.3 — blind spots", body);
}

fn e24_baselines(
    out: &mut Out,
    analyzer: &Analyzer<'_>,
    reference: &ixp_core::WeeklyReport,
    clusters: &Clusters,
    model: &InternetModel,
) {
    let pb = baseline::port_baseline(analyzer, reference);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "  port-based view: {} servers vs census {}; {} unconfirmed (443-tunnel artefacts etc.), {} payload-servers missed",
        pb.port_servers, pb.census_servers, pb.false_servers, pb.missed_servers
    );
    if let Some(ab) = baseline::as_org_baseline(reference, clusters, "akamai.example") {
        let _ = writeln!(
            body,
            "  AS-to-org view of akamai.example misses {:.1} % of its footprint ({} of {} servers outside the own AS)",
            ab.missed_share, ab.in_third_party, ab.servers
        );
    }
    let overall = baseline::validate_as_org_coverage(reference, clusters, model);
    let _ = writeln!(
        body,
        "  across all identified servers, {overall:.1} % sit outside their organization's home AS — invisible to ownership-based mapping"
    );
    out.section("E24", "§6 — baselines", body);
}

fn ablations(
    out: &mut Out,
    analyzer: &Analyzer<'_>,
    reference: &ixp_core::WeeklyReport,
    model: &InternetModel,
) {
    // Sampling-rate ablation: how much visibility a coarser sampler loses.
    // The budget scales inversely with the rate (same wire traffic).
    use ixp_core::WeekScan;
    use ixp_traffic::WeekStream;
    let mut body = String::new();
    let base = model.scale.samples_per_week;
    for (factor, label) in [(4u64, "4x coarser"), (16, "16x coarser")] {
        let mut scan = WeekScan::new(
            Week::REFERENCE,
            model.registry.members_at(Week::REFERENCE).len() as u32,
        );
        let stream = WeekStream::with_budget(
            model,
            analyzer.mix.clone(),
            Week::REFERENCE,
            model.seed,
            base / factor,
        );
        for dg in stream {
            scan.ingest(&dg);
        }
        let _ = writeln!(
            body,
            "  {label}: unique IPs {} ({:.1} % of full-rate {})",
            scan.unique_ips(),
            100.0 * scan.unique_ips() as f64 / reference.snapshot.peering.ips.max(1) as f64,
            reference.snapshot.peering.ips,
        );
    }
    let _ = writeln!(
        body,
        "  (the paper argues 1-in-16K sampling suffices to 'see' the routed Internet; coarser sampling erodes the unique-IP view first)"
    );
    out.section("A1", "ablation — sampling rate vs visibility", body);

    // Crawl-repetition ablation: stability checks need repeats.
    use ixp_cert::{validate_fetches, RootStore};
    let store = RootStore::default_store();
    let mut body = String::new();
    for attempts in [1u32, 2, 4] {
        let mut confirmed = 0;
        let mut unstable = 0;
        for r in reference.census.records.iter().filter(|r| r.https) {
            let fetches = analyzer.crawl.fetch_repeatedly(model, r.ip, Week::REFERENCE, attempts);
            match validate_fetches(&fetches, &store) {
                Ok(_) => confirmed += 1,
                Err(ixp_cert::ValidationError::Unstable) => unstable += 1,
                Err(_) => {}
            }
        }
        let _ = writeln!(
            body,
            "  {attempts} fetch(es): {confirmed} confirmed, {unstable} rejected as unstable"
        );
    }
    let _ = writeln!(
        body,
        "  (single fetches admit role-flipping cloud IPs; the paper crawls 'several times' for this reason)"
    );
    out.section("A2", "ablation — crawl repetitions vs stability check", body);

    // Clustering-heuristic ablations (DESIGN.md §5): how much the
    // footprint-weighted vote and the prefix-neighbourhood vote buy.
    use ixp_core::cluster::{cluster_with, validate_clusters, ClusterConfig};
    let mut body = String::new();
    for (label, cfg) in [
        ("paper method (weighted vote + prefix vote)", ClusterConfig::default()),
        (
            "count-only vote",
            ClusterConfig { footprint_weighted: false, ..ClusterConfig::default() },
        ),
        ("no prefix vote", ClusterConfig { prefix_vote: false, ..ClusterConfig::default() }),
    ] {
        let cl = cluster_with(reference, &analyzer.dns, cfg);
        let v = validate_clusters(&cl, reference, model);
        let shares = cl.step_shares();
        let _ = writeln!(
            body,
            "  {label:<44} FP {:.2} %  clustered {:>5}  unclustered {:>4}  steps {:.0}/{:.0}/{:.0}",
            100.0 * v.false_positive_rate,
            cl.clustered_total(),
            cl.unclustered,
            shares[0],
            shares[1],
            shares[2],
        );
    }
    out.section("A3", "ablation — clustering vote heuristics", body);

    // Sampling-bias cross-check against the switch's interface counters
    // (paper §2.1 claims the deployment's sampling is unbiased; here the
    // pipeline verifies it from the feed itself).
    let bias = ixp_core::bias::sampling_bias_check(analyzer, Week::REFERENCE);
    let body = format!(
        "  ports with counters: {}
  mean signed relative error: {:+.4} (unbiased => ~0)
  mean |relative error|: {:.4}; worst port: {:.4}
",
        bias.ports.len(),
        bias.mean_signed_rel_error,
        bias.mean_abs_rel_error,
        bias.max_abs_rel_error
    );
    out.section("A4", "sampling-bias cross-check vs interface counters", body);
}

/// The robustness sweep (`--exp faults`): replay the reference week through
/// seeded [`FaultPlan`]s of increasing hostility and check that the
/// headline Table 1 statistics degrade gracefully while the collector's
/// ingest-health accounting stays exact.
fn faults_sweep(
    out: &mut Out,
    analyzer: &Analyzer<'_>,
    reference: &ixp_core::WeeklyReport,
    seed: u64,
) {
    use ixp_faults::{FaultConfig, FaultPlan, OutageWindow};

    let week = Week::REFERENCE;
    let clean = visibility::table1(&reference.snapshot);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "  clean feed (week {}): {} peering IPs / {} prefixes / {} ASes",
        week.0, clean.peering.ips, clean.peering.prefixes, clean.peering.ases
    );

    let hostile = FaultConfig {
        seed,
        drop: 0.05,
        duplicate: 0.01,
        reorder: 0.01,
        truncate: 0.002,
        corrupt: 0.002,
        restarts: vec![(0, 500)],
        counter_wrap: true,
        ..FaultConfig::default()
    };
    let outage = FaultConfig {
        seed,
        outages: vec![OutageWindow { sub_agent: 0, from: 200, until: 400 }],
        ..FaultConfig::default()
    };
    for (label, cfg) in [
        ("loss 2.5 %", FaultConfig::loss(seed, 0.025)),
        ("loss 5.0 %", FaultConfig::loss(seed, 0.05)),
        ("loss 10 %", FaultConfig::loss(seed, 0.10)),
        ("loss 5 % + restart + dup/reorder/corrupt + counter wrap", hostile),
        ("agent outage (input 200..400)", outage),
    ] {
        let mut plan = FaultPlan::new(analyzer.feed(week), cfg);
        let scan = analyzer.scan_week_from(week, plan.by_ref());
        let stats = plan.stats();
        let report = analyzer.report_from_scan(scan);
        let t1 = visibility::table1(&report.snapshot);
        let h = &report.health;
        let drift = |a: u64, b: u64| 100.0 * (a as f64 - b as f64).abs() / b.max(1) as f64;
        let _ = writeln!(body, "  — {label}");
        let _ = writeln!(
            body,
            "    Table 1: {} IPs ({:+.2} % drift) / {} prefixes ({:+.2} %) / {} ASes ({:+.2} %)",
            t1.peering.ips,
            drift(t1.peering.ips, clean.peering.ips),
            t1.peering.prefixes,
            drift(t1.peering.prefixes, clean.peering.prefixes),
            t1.peering.ases,
            drift(t1.peering.ases, clean.peering.ases),
        );
        let _ = writeln!(
            body,
            "    injected: loss {:.2} %, {} dup, {} reordered, {} truncated, {} corrupted, {} restarts",
            100.0 * stats.injected_loss_rate(),
            stats.duplicated,
            stats.reordered,
            stats.truncated,
            stats.corrupted,
            stats.restarts_injected,
        );
        let _ = writeln!(
            body,
            "    measured: loss {:.2} % (estimate error {:+.2} pp), {} dups suppressed, {} restarts, {} decode errors, compensation x{:.4}",
            h.loss_pct(),
            h.loss_pct() - 100.0 * stats.injected_loss_rate(),
            h.collector.duplicates,
            h.collector.restarts,
            h.collector.decode_errors.total(),
            h.compensation_factor(),
        );
        let _ = writeln!(
            body,
            "    accounting invariant (ingested = accepted + duplicates + errors + shed): {}",
            if h.fully_accounted() { "holds" } else { "VIOLATED" }
        );
    }
    // Wire-level grid: the flow-export front-end (NetFlow v5/v9/IPFIX
    // through the transport intake) under UDP loss × template churn.
    {
        use ixp_faults::{WireFaultConfig, WirePlan};
        use ixp_transport::{FlowGenConfig, TransportConfig, TransportIntake};
        let packets = 600u64;
        let _ = writeln!(
            body,
            "  — transport wire grid ({packets} v5/v9/IPFIX packets, loss × template churn)"
        );
        for (label, loss, churn) in [
            ("clean", 0.0, false),
            ("loss 5 %", 0.05, false),
            ("template churn", 0.0, true),
            ("loss 5 % + template churn", 0.05, true),
        ] {
            let (withhold, flap, restarts) = if churn {
                (
                    ixp_faults::withhold_windows(seed, packets, 2, 60),
                    ixp_faults::flap_windows(seed, packets, 1, 40),
                    ixp_faults::exporter_restart_offsets(seed, packets, 2),
                )
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };
            let cfg = FlowGenConfig { seed, packets, withhold, flap, restarts, ..FlowGenConfig::default() };
            let mut plan = WirePlan::new(
                ixp_transport::generate(&cfg).into_iter(),
                WireFaultConfig::loss(seed, loss),
            );
            let mut t = TransportIntake::new(TransportConfig::default());
            for (peer, packet) in plan.by_ref() {
                t.offer(peer, &packet);
                t.drain(8);
            }
            t.drain(usize::MAX);
            let s = t.finish();
            let wire = plan.stats();
            let (installed, refreshed, _evicted) = t.template_counts();
            let _ = writeln!(
                body,
                "    {label}: {} offered ({} lost on the wire), {} accepted, {} dup, {} errors, {} template-missing dropped, {} flows, {installed} templates installed ({refreshed} refreshed) — accounting {}",
                s.offered,
                wire.dropped,
                s.accepted,
                s.duplicates,
                s.decode_errors,
                s.template_missing_dropped,
                s.flows,
                if t.fully_accounted() { "holds" } else { "VIOLATED" }
            );
        }
    }
    let _ = writeln!(
        body,
        "  (the unique-AS/prefix counts are what the paper's Table 1 rests on: heavy-hitter\n   visibility survives sampling-level loss, only the one-packet tail erodes)"
    );
    out.section("FAULTS", "robustness — degraded-mode sweep over injected stream faults", body);
}

/// The chaos soak (`--exp chaos`): the reference week's faulted feed is
/// driven through the supervised pipeline while the drain stage is stalled
/// in seeded overload bursts and the process is killed and resumed from
/// its own checkpoint at seeded offsets. The resumed run must end
/// byte-identical to the uninterrupted one, damaged checkpoints must fail
/// closed, and Table 1 must stay within the chaos drift tolerance.
fn chaos_sweep(
    out: &mut Out,
    analyzer: &Analyzer<'_>,
    reference: &ixp_core::WeeklyReport,
    model: &InternetModel,
    seed: u64,
) {
    use ixp_faults::{chaos, BurstWindow, FaultConfig, FaultPlan};
    use ixp_supervisor::{Supervisor, SupervisorConfig};

    let week = Week::REFERENCE;
    let clean = visibility::table1(&reference.snapshot);
    let members = model.registry.members_at(week).len() as u32;
    let config = SupervisorConfig {
        ring_capacity: 256,
        arrivals_per_tick: 64,
        drain_budget: 96,
        ..SupervisorConfig::default()
    };

    // One faulted feed, collected once so both arms see identical bytes.
    let fault_cfg = FaultConfig {
        seed,
        drop: 0.02,
        duplicate: 0.005,
        reorder: 0.005,
        truncate: 0.001,
        corrupt: 0.001,
        ..FaultConfig::default()
    };
    let stream: Vec<Vec<u8>> = FaultPlan::new(analyzer.feed(week), fault_cfg).collect();
    let total = stream.len() as u64;
    let kills = chaos::kill_offsets(seed, total, 3);
    let bursts = chaos::overload_bursts(seed, total, 2, (total / 16).max(1));

    // Drive `sup` over the shared feed, stalling the drain inside the
    // overload bursts; stops (returning false) at `kill_at` if given.
    let drive = |sup: &mut Supervisor, kill_at: Option<u64>| -> bool {
        let skip = usize::try_from(sup.offered()).unwrap_or(usize::MAX);
        for (i, dg) in stream.iter().enumerate().skip(skip) {
            if kill_at.is_some_and(|k| sup.offered() >= k) {
                return false;
            }
            let idx = i as u64 + 1;
            sup.set_stalled(bursts.iter().any(|b: &BurstWindow| b.contains(idx)));
            sup.offer(dg.clone());
        }
        sup.set_stalled(false);
        sup.finish();
        true
    };

    let mut whole = Supervisor::new(ixp_core::WeekScan::new(week, members), config);
    drive(&mut whole, None);
    let whole_ckpt = whole.checkpoint();

    // Kill-and-resume chain: die at each seeded offset, restore from the
    // sealed checkpoint, continue.
    let mut sup = Supervisor::new(ixp_core::WeekScan::new(week, members), config);
    let mut resumes = 0u32;
    for &k in &kills {
        if drive(&mut sup, Some(k)) {
            break;
        }
        let ckpt = sup.checkpoint();
        sup = Supervisor::restore(&ckpt, config).expect("restore own checkpoint");
        resumes += 1;
    }
    drive(&mut sup, None);
    let identical = sup.checkpoint() == whole_ckpt;

    // Damaged checkpoints must fail closed.
    let mut flipped = whole_ckpt.clone();
    chaos::flip_bit(&mut flipped, seed);
    let flip_rejected = Supervisor::restore(&flipped, config).is_err();
    let truncated = chaos::truncate_at_random(&whole_ckpt, seed);
    let trunc_rejected = Supervisor::restore(&truncated, config).is_err();

    let stats = sup.stats();
    let h = sup.scan().ingest_health();
    let fully_accounted = h.fully_accounted();
    let report = analyzer.report_from_scan(sup.into_scan());
    let t1 = visibility::table1(&report.snapshot);
    let drift = |a: u64, b: u64| 100.0 * (a as f64 - b as f64).abs() / b.max(1) as f64;

    let mut body = String::new();
    let _ = writeln!(
        body,
        "  feed: {} datagrams; kills at {:?}; {} overload bursts of ≤{} datagrams",
        total,
        kills,
        bursts.len(),
        (total / 16).max(1)
    );
    let _ = writeln!(
        body,
        "  kill/resume × {resumes}: final checkpoint byte-identical to uninterrupted run: {}",
        if identical { "yes" } else { "NO" }
    );
    let _ = writeln!(
        body,
        "  damaged checkpoints fail closed: bit flip {}, truncation {}",
        if flip_rejected { "rejected" } else { "ACCEPTED" },
        if trunc_rejected { "rejected" } else { "ACCEPTED" },
    );
    let _ = writeln!(
        body,
        "  supervisor: {} offered, {} shed, {} ticks, {} deadline misses, ring high water {}",
        stats.offered, stats.shed, stats.ticks, stats.deadline_misses, stats.high_water
    );
    let _ = writeln!(
        body,
        "  Table 1 under chaos: {} IPs ({:+.2} % drift) / {} prefixes ({:+.2} %) / {} ASes ({:+.2} %)",
        t1.peering.ips,
        drift(t1.peering.ips, clean.peering.ips),
        t1.peering.prefixes,
        drift(t1.peering.prefixes, clean.peering.prefixes),
        t1.peering.ases,
        drift(t1.peering.ases, clean.peering.ases),
    );
    let _ = writeln!(
        body,
        "  accounting invariant (ingested = accepted + duplicates + errors + shed): {}",
        if fully_accounted { "holds" } else { "VIOLATED" }
    );
    out.section(
        "CHAOS",
        "chaos soak — kill/resume, overload shedding, checkpoint corruption",
        body,
    );
}
