//! Scratch diagnostics for calibration (not part of the reproduction
//! harness; see `repro.rs` for that).

use ixp_core::analyzer::Analyzer;
use ixp_core::{changes, cluster, hetero};
use ixp_netmodel::{InternetModel, Week};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(31);
    let model = Box::leak(Box::new(InternetModel::tiny(seed)));
    let analyzer = Analyzer::new(model);
    let study = analyzer.run_study(8);

    println!("== https trend ==");
    let trend = changes::https_trend(&study);
    for p in &trend.points {
        println!(
            "  {}: servers {:.2}%  traffic {:.3}%",
            p.week.0, p.server_share, p.traffic_share
        );
    }
    println!("  slopes: server {:.4}, traffic {:.4}", trend.server_slope, trend.traffic_slope);

    println!("== sc-us-east-1 ==");
    let series = changes::range_series(&study, "sc-us-east-1");
    for (w, c, b) in &series.points {
        println!("  {}: {} servers, {} bytes", w.0, c, b);
    }

    println!("== akamai cluster ==");
    let report = study.reference();
    let clusters = cluster::cluster(report, &analyzer.dns);
    match clusters.by_key("akamai.example") {
        Some((_, c)) => println!("  size {} ases {} bytes {}", c.size, c.ases, c.bytes),
        None => println!("  NOT FOUND"),
    }
    println!(
        "  steps: {:?} shares {:?} unclustered {}",
        clusters.step_counts,
        clusters.step_shares(),
        clusters.unclustered
    );

    println!("== fig7 akamai ==");
    if let Some(f) = hetero::link_usage(&analyzer, report, &clusters, "akamai.example") {
        println!(
            "  offlink {:.1}%  servers {}/{} via other links, home member {}",
            f.offlink_share,
            f.servers_via_other_links,
            f.servers_total,
            f.home_member.0
        );
    } else {
        println!("  NO DATA");
    }

    println!("== ground truth akamai ==");
    let ak = model.orgs.archetype(ixp_netmodel::Archetype::Akamai);
    let (vis, hid, ases) = model.servers.footprint(ak.id, Week::REFERENCE);
    println!("  visible {vis} hidden {hid} ases {ases} home {:?}", ak.home_asn);
}
