//! `flowgen` — the loopback flow-export load generator.
//!
//! Replays a seeded NetFlow v5/v9/IPFIX workload (the same
//! [`ixp_transport::generate`] stream the transport soak uses in memory)
//! over a real UDP socket, aimed at a `repro --transport udp` receiver:
//!
//! ```text
//! cargo run --release -p ixp-bench --bin flowgen -- --target 127.0.0.1:9995
//!     [--seed N] [--packets N] [--exporters N] [--records N]
//!     [--template-every N] [--withhold N:LEN] [--flap N:LEN]
//!     [--restarts N] [--pace-us N] [--probe]
//! ```
//!
//! Template churn is driven by the same seeded `ixp-faults` chaos
//! windows the in-memory soak uses: `--withhold 2:60` carves two
//! 60-packet windows where template announcements are suppressed,
//! `--flap 1:40` one window where the announced layout changes, and
//! `--restarts 2` picks two seeded offsets where the exporter reboots.
//!
//! After the workload it sends a few out-of-band [`FIN`] sentinels so the
//! receiver stops pumping promptly. `--probe` only checks whether this
//! environment allows binding a loopback UDP socket (exit 0 yes, 1 no) —
//! `scripts/ci.sh` uses it to decide between the UDP smoke and the
//! deterministic in-memory fallback.

use std::time::Duration;

use ixp_transport::{generate, FlowGenConfig, Link as _, UdpLink, FIN};

struct Args {
    target: String,
    seed: u64,
    packets: u64,
    exporters: u32,
    records: u16,
    template_every: u64,
    withhold: (usize, u64),
    flap: (usize, u64),
    restarts: usize,
    pace_us: u64,
    probe: bool,
}

/// Parse an `N:LEN` window spec ("2:60" → two windows of 60 packets).
fn parse_windows(spec: &str) -> (usize, u64) {
    let mut it = spec.splitn(2, ':');
    let n = it.next().and_then(|s| s.parse().ok());
    let len = it.next().and_then(|s| s.parse().ok());
    match (n, len) {
        (Some(n), Some(len)) => (n, len),
        _ => panic!("window spec must be N:LEN, got {spec}"),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        target: "127.0.0.1:9995".to_string(),
        seed: 2012,
        packets: 600,
        exporters: 3,
        records: 8,
        template_every: 32,
        withhold: (0, 0),
        flap: (0, 0),
        restarts: 0,
        pace_us: 200,
        probe: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> u64 {
            it.next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a number"))
        };
        match arg.as_str() {
            "--target" => args.target = it.next().expect("--target addr"),
            "--seed" => args.seed = num("--seed"),
            "--packets" => args.packets = num("--packets"),
            "--exporters" => args.exporters = num("--exporters") as u32,
            "--records" => args.records = num("--records") as u16,
            "--template-every" => args.template_every = num("--template-every"),
            "--restarts" => args.restarts = num("--restarts") as usize,
            "--pace-us" => args.pace_us = num("--pace-us"),
            "--withhold" => args.withhold = parse_windows(&it.next().expect("--withhold N:LEN")),
            "--flap" => args.flap = parse_windows(&it.next().expect("--flap N:LEN")),
            "--probe" => args.probe = true,
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if args.probe {
        // Can this environment open a loopback UDP socket at all? ci.sh
        // keys the flowgen → repro smoke (vs the in-memory fallback) on
        // the exit code; say why on stderr either way.
        match UdpLink::bind("127.0.0.1:0") {
            Ok(_) => {
                eprintln!("flowgen: UDP loopback binding available");
                return;
            }
            Err(e) => {
                eprintln!("flowgen: UDP loopback binding denied: {e}");
                std::process::exit(1);
            }
        }
    }

    let cfg = FlowGenConfig {
        seed: args.seed,
        packets: args.packets,
        exporters: args.exporters,
        records_per_packet: args.records,
        template_every: args.template_every,
        withhold: ixp_faults::withhold_windows(args.seed, args.packets, args.withhold.0, args.withhold.1),
        flap: ixp_faults::flap_windows(args.seed, args.packets, args.flap.0, args.flap.1),
        restarts: ixp_faults::exporter_restart_offsets(args.seed, args.packets, args.restarts),
    };
    let workload = generate(&cfg);
    let mut link = match UdpLink::connect(&args.target) {
        Ok(link) => link,
        Err(e) => {
            eprintln!("flowgen: cannot open a sending socket for {}: {e}", args.target);
            std::process::exit(1);
        }
    };
    let mut sent = 0u64;
    let mut bytes = 0u64;
    for (peer, packet) in &workload {
        if let Err(e) = link.send(*peer, packet) {
            eprintln!("flowgen: send failed after {sent} packets: {e}");
            std::process::exit(1);
        }
        sent += 1;
        bytes += packet.len() as u64;
        if args.pace_us > 0 {
            // Loopback has no congestion control; pace so the receiver's
            // bounded inbox is a policy choice, not an artifact of burst
            // scheduling.
            std::thread::sleep(Duration::from_micros(args.pace_us));
        }
    }
    // A few FIN sentinels: UDP may drop one, the receiver stops at the
    // first it sees and never offers them to the intake.
    for _ in 0..3 {
        let _ = link.send(0, FIN);
        std::thread::sleep(Duration::from_millis(10));
    }
    eprintln!(
        "flowgen: sent {sent} packets ({bytes} bytes) to {} (seed {}, {} exporters, withhold {:?}, flap {:?}, {} restarts)",
        args.target,
        args.seed,
        args.exporters,
        cfg.withhold,
        cfg.flap,
        cfg.restarts.len(),
    );
}
