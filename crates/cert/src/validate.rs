//! The six-check validation pipeline of paper §2.2.2.

use crate::x509::{domain_is_valid, Chain, KeyUsage, RootStore};

/// Why a chain failed validation. Ordered like the paper's checks (a)–(f).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationError {
    /// (a) subject is not a valid domain / valid ccSLD.
    BadSubject,
    /// (b) an alternative name is invalid.
    BadAltName,
    /// (c) key usage does not indicate a server role.
    BadKeyUsage,
    /// (d) the chain does not reference itself in order up to a trusted root.
    BadChain,
    /// (e) some certificate was not valid at fetch time.
    Expired,
    /// (f) repeated fetches disagreed (role-flipping cloud IP).
    Unstable,
    /// The chain was empty.
    Empty,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ValidationError::BadSubject => "invalid certificate subject",
            ValidationError::BadAltName => "invalid alternative name",
            ValidationError::BadKeyUsage => "key usage is not server-auth",
            ValidationError::BadChain => "broken certificate chain",
            ValidationError::Expired => "certificate outside validity window",
            ValidationError::Unstable => "unstable across repeated fetches",
            ValidationError::Empty => "empty chain",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ValidationError {}

/// What a validated certificate tells the pipeline (§2.4 meta-data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidatedInfo {
    /// The subject domain.
    pub subject: String,
    /// All (valid) names the certificate covers.
    pub names: Vec<String>,
}

/// Run checks (a)–(e) on a single fetched chain.
pub fn validate_chain(
    chain: &Chain,
    store: &RootStore,
    fetch_week: u8,
) -> Result<ValidatedInfo, ValidationError> {
    let leaf = chain.leaf().ok_or(ValidationError::Empty)?;

    // (a) subject.
    if !domain_is_valid(&leaf.subject) {
        return Err(ValidationError::BadSubject);
    }
    // (b) alternative names.
    if leaf.alt_names.iter().any(|n| !domain_is_valid(n)) {
        return Err(ValidationError::BadAltName);
    }
    // (c) key usage.
    if leaf.key_usage != KeyUsage::ServerAuth {
        return Err(ValidationError::BadKeyUsage);
    }
    // (d) chain order: each certificate's issuer must be the subject of the
    // next one, every non-leaf must be a CA cert, and the last issuer must
    // be in the trust store.
    for pair in chain.certs.windows(2) {
        if pair[0].issuer != pair[1].subject {
            return Err(ValidationError::BadChain);
        }
        if pair[1].key_usage != KeyUsage::CertSign {
            return Err(ValidationError::BadChain);
        }
    }
    let last = chain.certs.last().unwrap();
    if chain.certs.len() == 1 {
        // A single self-signed certificate can never chain to the store.
        if leaf.self_signed() || !store.trusts(&leaf.issuer) {
            return Err(ValidationError::BadChain);
        }
    } else if !store.trusts(&last.issuer) {
        return Err(ValidationError::BadChain);
    }
    // (e) validity time at fetch.
    if chain.certs.iter().any(|c| !c.valid_at(fetch_week)) {
        return Err(ValidationError::Expired);
    }

    let mut names = vec![leaf.subject.clone()];
    names.extend(leaf.alt_names.iter().cloned());
    Ok(ValidatedInfo { subject: leaf.subject.clone(), names })
}

/// Run the full pipeline over repeated fetches of the same IP: every fetch
/// must validate individually, and — ignoring validity time — all fetched
/// chains must agree (check (f)).
pub fn validate_fetches(
    fetches: &[(Chain, u8)],
    store: &RootStore,
) -> Result<ValidatedInfo, ValidationError> {
    if fetches.is_empty() {
        return Err(ValidationError::Empty);
    }
    let mut first: Option<ValidatedInfo> = None;
    for (chain, week) in fetches {
        let info = validate_chain(chain, store, *week)?;
        match &first {
            None => first = Some(info),
            Some(prev) => {
                if prev != &info {
                    return Err(ValidationError::Unstable);
                }
            }
        }
    }
    Ok(first.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::x509::Certificate;

    fn good_chain() -> Chain {
        Chain {
            certs: vec![
                Certificate {
                    subject: "www.shop.example".into(),
                    alt_names: vec!["shop.example".into(), "*.shop.example".into()],
                    issuer: "Intermediate CA 1".into(),
                    key_usage: KeyUsage::ServerAuth,
                    not_before: 20,
                    not_after: 70,
                },
                Certificate {
                    subject: "Intermediate CA 1".into(),
                    alt_names: vec![],
                    issuer: "Root CA Alpha".into(),
                    key_usage: KeyUsage::CertSign,
                    not_before: 0,
                    not_after: 200,
                },
            ],
        }
    }

    #[test]
    fn good_chain_validates() {
        let store = RootStore::default_store();
        let info = validate_chain(&good_chain(), &store, 45).unwrap();
        assert_eq!(info.subject, "www.shop.example");
        assert_eq!(info.names.len(), 3);
    }

    #[test]
    fn bad_subject_rejected() {
        let store = RootStore::default_store();
        let mut chain = good_chain();
        chain.certs[0].subject = "localhost".into();
        assert_eq!(validate_chain(&chain, &store, 45).unwrap_err(), ValidationError::BadSubject);
    }

    #[test]
    fn bad_alt_name_rejected() {
        let store = RootStore::default_store();
        let mut chain = good_chain();
        chain.certs[0].alt_names.push("192.0.2.1".into());
        assert_eq!(validate_chain(&chain, &store, 45).unwrap_err(), ValidationError::BadAltName);
    }

    #[test]
    fn wrong_key_usage_rejected() {
        let store = RootStore::default_store();
        let mut chain = good_chain();
        chain.certs[0].key_usage = KeyUsage::ClientAuth;
        assert_eq!(validate_chain(&chain, &store, 45).unwrap_err(), ValidationError::BadKeyUsage);
    }

    #[test]
    fn shuffled_chain_rejected() {
        let store = RootStore::default_store();
        let mut chain = good_chain();
        chain.certs.swap(0, 1);
        assert!(validate_chain(&chain, &store, 45).is_err());
    }

    #[test]
    fn untrusted_root_rejected() {
        let store = RootStore::default_store();
        let mut chain = good_chain();
        chain.certs[1].issuer = "Shady Root".into();
        assert_eq!(validate_chain(&chain, &store, 45).unwrap_err(), ValidationError::BadChain);
    }

    #[test]
    fn self_signed_rejected() {
        let store = RootStore::default_store();
        let mut chain = good_chain();
        chain.certs.truncate(1);
        chain.certs[0].issuer = chain.certs[0].subject.clone();
        assert_eq!(validate_chain(&chain, &store, 45).unwrap_err(), ValidationError::BadChain);
    }

    #[test]
    fn expired_rejected_but_only_outside_window() {
        let store = RootStore::default_store();
        let chain = good_chain();
        assert!(validate_chain(&chain, &store, 80).is_err());
        assert!(validate_chain(&chain, &store, 45).is_ok());
    }

    #[test]
    fn stability_check_detects_role_flips() {
        let store = RootStore::default_store();
        let a = good_chain();
        let mut b = good_chain();
        b.certs[0].subject = "www.other.example".into();
        b.certs[0].alt_names.clear();
        let ok = validate_fetches(&[(a.clone(), 44), (a.clone(), 45)], &store);
        assert!(ok.is_ok());
        let flip = validate_fetches(&[(a, 44), (b, 45)], &store);
        assert_eq!(flip.unwrap_err(), ValidationError::Unstable);
    }

    #[test]
    fn empty_inputs_rejected() {
        let store = RootStore::default_store();
        assert_eq!(
            validate_chain(&Chain { certs: vec![] }, &store, 45).unwrap_err(),
            ValidationError::Empty
        );
        assert_eq!(validate_fetches(&[], &store).unwrap_err(), ValidationError::Empty);
    }
}
