//! The active HTTPS crawl simulation.
//!
//! Feed it the candidate IPs that showed traffic on TCP 443 and it behaves
//! like the live Internet did for the authors: most candidates never
//! complete a TLS handshake (SSH/VPN tunnels riding 443 through firewalls,
//! clients, dead hosts), real HTTPS servers present their chains — a
//! calibrated share of which is broken in one of the classic ways — and
//! role-flipping cloud IPs answer differently on every visit.
//!
//! ## Failure handling
//!
//! A real crawl campaign also sees *transient* failures — flapping hosts,
//! congested paths — on top of the definitive outcomes above. Each fetch
//! therefore runs under [`ixp_faults::retry_with_backoff`]: a deterministic
//! per-`(ip, week, attempt, round)` coin models the transient timeout, and
//! capped exponential backoff under a simulated deadline budget retries it.
//! Hosts that answer nothing across a whole repeated-fetch campaign stop
//! consuming the remaining attempt budget (persistent-failure cutoff) and
//! are recorded in a shared [`Quarantine`] table. The table is
//! observability only — it never gates results, so the parallel study
//! weeks stay bit-for-bit deterministic regardless of scheduling order.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;

use ixp_faults::{retry_with_backoff, AttemptLog, Quarantine, RetryPolicy};
use ixp_netmodel::{InternetModel, OrgKind, ServerFlags, Week};
use ixp_obs::{Counter, Obs};

use crate::x509::{Certificate, Chain, KeyUsage, RootStore};

/// Probability that one fetch round times out transiently (retryable).
const TRANSIENT_DOWN_RATE: f64 = 0.12;

/// Consecutive completely-unanswered attempts within one repeated-fetch
/// campaign before the remaining attempts are skipped.
const PERSISTENT_FAILURE_CUTOFF: u32 = 2;

/// Result of one crawl attempt against an IP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlResult {
    /// No TCP answer / handshake timeout.
    NoAnswer,
    /// Something answered on 443, but it does not speak TLS (SSH, VPN,
    /// proxies — the firewall-circumvention traffic the paper filters out).
    NotTls,
    /// A TLS handshake delivered this certificate chain.
    Tls(Chain),
}

/// How a server's certificate is broken, if it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defect {
    None,
    Expired,
    SelfSigned,
    BadSubject,
    WrongKeyUsage,
    ShuffledChain,
    BadCcsld,
    /// Role-flipping cloud IP: presents a different identity per attempt.
    Flaky,
}

#[derive(Debug, Clone)]
struct CertProfile {
    chain: Chain,
    defect: Defect,
}

/// Live crawl metrics (`cert_*` counter families). Counters only: counts
/// sum the same whatever order the parallel study weeks crawl in, so the
/// metrics snapshot stays deterministic. The quarantine table's size is
/// interleaving-dependent and is therefore *not* exported as a metric —
/// use [`CrawlSim::quarantined_hosts`] for the operational reading.
#[derive(Debug, Clone, Default)]
pub struct CrawlMetrics {
    /// Fetches issued through [`CrawlSim::fetch_with_retry`].
    pub fetches: Counter,
    /// Individual attempt rounds across all fetches.
    pub attempts: Counter,
    /// Fetches whose simulated deadline ran out.
    pub exhausted: Counter,
    /// Repeated-fetch campaigns run ([`CrawlSim::fetch_repeatedly`]).
    pub campaigns: Counter,
    /// Campaigns cut short by the persistent-failure cutoff.
    pub abandoned: Counter,
}

impl CrawlMetrics {
    fn register(obs: &Obs) -> CrawlMetrics {
        let r = &obs.registry;
        CrawlMetrics {
            fetches: r.counter("cert_fetches_total"),
            attempts: r.counter("cert_attempts_total"),
            exhausted: r.counter("cert_exhausted_deadline_total"),
            campaigns: r.counter("cert_campaigns_total"),
            abandoned: r.counter("cert_campaigns_abandoned_total"),
        }
    }
}

/// The crawl simulator.
#[derive(Debug)]
pub struct CrawlSim {
    profiles: HashMap<u32, CertProfile>,
    seed: u64,
    /// Retry budget applied to every fetch.
    policy: RetryPolicy,
    /// Hosts that persistently answered nothing (reporting only — never
    /// consulted to gate results, so parallel weeks stay deterministic).
    quarantine: Quarantine<u32>,
    /// Live crawl metrics (detached until [`CrawlSim::bind_obs`]).
    metrics: CrawlMetrics,
}

impl CrawlSim {
    /// Build certificate profiles for every HTTPS-capable server.
    pub fn build(model: &InternetModel, seed: u64) -> CrawlSim {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5_0009);
        let store = RootStore::default_store();
        let mut profiles = HashMap::new();
        for server in model.servers.servers() {
            if !server.flags.has(ServerFlags::HTTPS) {
                continue;
            }
            let org = model.orgs.get(server.org);
            let defect = match rng.gen::<f64>() {
                x if x < 0.52 => Defect::None,
                x if x < 0.60 => Defect::Expired,
                x if x < 0.68 => Defect::SelfSigned,
                x if x < 0.74 => Defect::BadSubject,
                x if x < 0.79 => Defect::WrongKeyUsage,
                x if x < 0.84 => Defect::ShuffledChain,
                x if x < 0.88 => Defect::BadCcsld,
                _ => Defect::Flaky,
            };
            // Cloud/hoster IPs are the flaky ones in practice; bias there.
            let defect = if defect == Defect::Flaky
                && !matches!(org.kind, OrgKind::Cloud | OrgKind::Hoster | OrgKind::MetaHoster)
            {
                Defect::None
            } else {
                defect
            };

            let subject = match defect {
                Defect::BadSubject => "localhost".to_string(),
                Defect::BadCcsld => format!("www.{}.invalid-ccsld", org.name.to_lowercase()),
                _ => org
                    .domains
                    .first()
                    .cloned()
                    .unwrap_or_else(|| format!("www.{}", org.soa_domain)),
            };
            // SANs: hosting companies pack many customer names onto one
            // certificate (§2.4 — used to find additional URIs).
            let san_count = match org.kind {
                OrgKind::Hoster | OrgKind::MetaHoster => 6.min(org.domains.len()),
                _ => 2.min(org.domains.len()),
            };
            let offset = rng.gen_range(0..org.domains.len().max(1));
            let alt_names: Vec<String> = (0..san_count)
                .map(|k| org.domains[(offset + k) % org.domains.len()].clone())
                .collect();

            let ca = rng.gen_range(1..=4u8);
            let root = ["Root CA Alpha", "Root CA Beta", "Root CA Gamma", "Root CA Delta"]
                [(ca - 1) as usize];
            debug_assert!(store.trusts(root));
            let (not_before, not_after) = match defect {
                Defect::Expired => (10u8, 40u8), // dies mid-study
                _ => (10, 120),
            };
            let leaf = Certificate {
                subject,
                alt_names,
                issuer: format!("Intermediate CA {ca}"),
                key_usage: if defect == Defect::WrongKeyUsage {
                    KeyUsage::ClientAuth
                } else {
                    KeyUsage::ServerAuth
                },
                not_before,
                not_after,
            };
            let intermediate = Certificate {
                subject: format!("Intermediate CA {ca}"),
                alt_names: vec![],
                issuer: root.to_string(),
                key_usage: KeyUsage::CertSign,
                not_before: 0,
                not_after: 255,
            };
            let mut certs = match defect {
                Defect::SelfSigned => {
                    let mut c = leaf.clone();
                    c.issuer = c.subject.clone();
                    vec![c]
                }
                _ => vec![leaf, intermediate],
            };
            if defect == Defect::ShuffledChain {
                certs.reverse();
            }
            profiles.insert(u32::from(server.ip), CertProfile { chain: Chain { certs }, defect });
        }
        CrawlSim {
            profiles,
            seed,
            policy: RetryPolicy::default(),
            quarantine: Quarantine::new(PERSISTENT_FAILURE_CUTOFF),
            metrics: CrawlMetrics::default(),
        }
    }

    /// Publish this crawler's metrics into an observability bundle's
    /// registry (`cert_*` counter families).
    pub fn bind_obs(&mut self, obs: &Obs) {
        self.metrics = CrawlMetrics::register(obs);
    }

    /// The live crawl metrics (detached unless [`CrawlSim::bind_obs`] was
    /// called).
    pub fn metrics(&self) -> &CrawlMetrics {
        &self.metrics
    }

    /// Crawl an IP in a given week (attempt counter distinguishes repeated
    /// fetches for the stability check).
    pub fn fetch(
        &self,
        model: &InternetModel,
        ip: Ipv4Addr,
        week: Week,
        attempt: u32,
    ) -> CrawlResult {
        match model.servers.by_ip(ip) {
            None => {
                // Not a server: VPN/SSH endpoints answer without TLS; the
                // rest never respond. Deterministic per IP.
                if self.coin(ip, 0x51, 0.10) {
                    CrawlResult::NotTls
                } else {
                    CrawlResult::NoAnswer
                }
            }
            Some(server) => {
                if !server.exists_in(week) {
                    return CrawlResult::NoAnswer;
                }
                if server.flags.has(ServerFlags::HTTPS) && !server.https_in(week) {
                    // TLS not enabled yet on this IP.
                    return CrawlResult::NoAnswer;
                }
                match self.profiles.get(&u32::from(ip)) {
                    None => {
                        // A server, but not an HTTPS one: a sliver runs
                        // non-TLS services on 443.
                        if self.coin(ip, 0x52, 0.08) {
                            CrawlResult::NotTls
                        } else {
                            CrawlResult::NoAnswer
                        }
                    }
                    Some(profile) => {
                        let mut chain = profile.chain.clone();
                        if profile.defect == Defect::Flaky {
                            // Present a different tenant identity per visit.
                            if let Some(leaf) = chain.certs.first_mut() {
                                leaf.subject = format!(
                                    "tenant-{}.{}",
                                    (u32::from(ip) ^ attempt).wrapping_mul(2654435761) % 100_000,
                                    leaf.subject
                                );
                            }
                        }
                        CrawlResult::Tls(chain)
                    }
                }
            }
        }
    }

    /// One fetch under the retry budget: transient timeouts (a
    /// deterministic per-round coin) are retried with capped exponential
    /// backoff until the policy's attempt cap or simulated deadline runs
    /// out. A definitive `NoAnswer` is *not* retried — the host answered
    /// the probe with silence, which is an answer.
    pub fn fetch_with_retry(
        &self,
        model: &InternetModel,
        ip: Ipv4Addr,
        week: Week,
        attempt: u32,
    ) -> (CrawlResult, AttemptLog) {
        let (result, log) = retry_with_backoff(self.policy, |round| {
            if self.transient_down(ip, week, attempt, round) {
                None
            } else {
                Some(self.fetch(model, ip, week, attempt))
            }
        });
        self.metrics.fetches.inc();
        self.metrics.attempts.add(u64::from(log.attempts));
        if log.exhausted_deadline {
            self.metrics.exhausted.inc();
        }
        (result.unwrap_or(CrawlResult::NoAnswer), log)
    }

    /// Crawl an IP several times across two weeks, as the paper does, and
    /// hand back the fetches for validation.
    ///
    /// Each fetch runs under the retry budget. An IP that answers nothing
    /// on [`PERSISTENT_FAILURE_CUTOFF`] consecutive attempts is treated as
    /// persistently down for this campaign: the remaining attempts are
    /// skipped (they could only burn deadline budget on a dead host) and
    /// the IP is recorded in the shared quarantine table.
    pub fn fetch_repeatedly(
        &self,
        model: &InternetModel,
        ip: Ipv4Addr,
        week: Week,
        attempts: u32,
    ) -> Vec<(Chain, u8)> {
        self.metrics.campaigns.inc();
        let mut out = Vec::new();
        let mut dead_streak = 0u32;
        let mut answered = false;
        for a in 0..attempts {
            if dead_streak >= PERSISTENT_FAILURE_CUTOFF {
                self.metrics.abandoned.inc();
                break;
            }
            // Alternate between this week and the previous one (clamped to
            // the start of the study).
            let w = Week(week.0.saturating_sub((a % 2) as u8).max(Week::FIRST.0));
            match self.fetch_with_retry(model, ip, w, a) {
                (CrawlResult::Tls(chain), _) => {
                    answered = true;
                    dead_streak = 0;
                    out.push((chain, w.0));
                }
                (CrawlResult::NotTls, _) => {
                    answered = true;
                    dead_streak = 0;
                }
                (CrawlResult::NoAnswer, _) => dead_streak += 1,
            }
        }
        let key = u32::from(ip);
        if answered {
            self.quarantine.record_success(&key);
        } else {
            self.quarantine.record_failure(key);
        }
        out
    }

    /// Hosts currently flagged as persistently unresponsive by past
    /// campaigns (an operational gauge, not a result filter).
    pub fn quarantined_hosts(&self) -> usize {
        self.quarantine.quarantined_count()
    }

    /// The retry budget fetches run under.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Deterministic transient-timeout coin for one fetch round.
    fn transient_down(&self, ip: Ipv4Addr, week: Week, attempt: u32, round: u32) -> bool {
        let mut x = u32::from(ip) ^ 0x7A11_5EED;
        x = x.wrapping_mul(0x9E37_79B9).wrapping_add(u32::from(week.0));
        x = x.wrapping_mul(0x85EB_CA6B).wrapping_add(attempt.wrapping_mul(1009));
        x = x.wrapping_mul(0xC2B2_AE35).wrapping_add(round.wrapping_mul(9176));
        x = x.wrapping_add(self.seed as u32);
        x ^= x >> 16;
        x = x.wrapping_mul(0x045D_9F3B);
        x ^= x >> 16;
        f64::from(x) / f64::from(u32::MAX) < TRANSIENT_DOWN_RATE
    }

    fn coin(&self, ip: Ipv4Addr, salt: u32, p: f64) -> bool {
        let x = (u32::from(ip) ^ salt.wrapping_mul(0x85EB_CA6B))
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(self.seed as u32);
        (x as f64 / u32::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{validate_fetches, ValidationError};

    fn build() -> (InternetModel, CrawlSim) {
        let model = InternetModel::tiny(41);
        let sim = CrawlSim::build(&model, 41);
        (model, sim)
    }

    #[test]
    fn https_servers_answer_tls() {
        let (model, sim) = build();
        let server = model
            .servers
            .servers()
            .iter()
            .find(|s| s.flags.has(ServerFlags::HTTPS) && s.active_in(Week::REFERENCE))
            .unwrap();
        match sim.fetch(&model, server.ip, Week::REFERENCE, 0) {
            CrawlResult::Tls(chain) => assert!(!chain.certs.is_empty()),
            other => panic!("expected TLS, got {other:?}"),
        }
    }

    #[test]
    fn non_https_servers_mostly_silent() {
        let (model, sim) = build();
        let mut answers = 0;
        let mut total = 0;
        for s in model.servers.servers().iter().filter(|s| !s.flags.has(ServerFlags::HTTPS)) {
            total += 1;
            if sim.fetch(&model, s.ip, Week::REFERENCE, 0) != CrawlResult::NoAnswer
                && s.active_in(Week::REFERENCE)
            {
                answers += 1;
            }
        }
        assert!(total > 0);
        assert!((answers as f64) < total as f64 * 0.3, "{answers}/{total} answered");
    }

    #[test]
    fn inactive_weeks_do_not_answer() {
        let (model, sim) = build();
        if let Some(s) = model
            .servers
            .servers()
            .iter()
            .find(|s| s.flags.has(ServerFlags::HTTPS) && !s.exists_in(Week::FIRST) && s.exists_in(Week::LAST))
        {
            assert_eq!(sim.fetch(&model, s.ip, Week::FIRST, 0), CrawlResult::NoAnswer);
            assert!(matches!(sim.fetch(&model, s.ip, Week::LAST, 0), CrawlResult::Tls(_)));
        }
    }

    #[test]
    fn validation_funnel_accepts_some_rejects_some() {
        let (model, sim) = build();
        let store = RootStore::default_store();
        let mut valid = 0;
        let mut invalid = 0;
        for s in model.servers.servers() {
            if !s.flags.has(ServerFlags::HTTPS) || !s.active_in(Week::REFERENCE) {
                continue;
            }
            let fetches = sim.fetch_repeatedly(&model, s.ip, Week::REFERENCE, 3);
            match validate_fetches(&fetches, &store) {
                Ok(_) => valid += 1,
                Err(_) => invalid += 1,
            }
        }
        assert!(valid > 0, "nothing validated");
        assert!(invalid > 0, "nothing rejected — defects not firing");
        let rate = valid as f64 / (valid + invalid) as f64;
        // The paper validates ≈ 50 % of responders.
        assert!((0.3..0.8).contains(&rate), "valid rate {rate:.2}");
    }

    #[test]
    fn flaky_ips_fail_the_stability_check() {
        let (model, sim) = build();
        let store = RootStore::default_store();
        let mut saw_unstable = false;
        for s in model.servers.servers() {
            if !s.flags.has(ServerFlags::HTTPS) || !s.active_in(Week::REFERENCE) {
                continue;
            }
            let fetches = sim.fetch_repeatedly(&model, s.ip, Week::REFERENCE, 4);
            if validate_fetches(&fetches, &store) == Err(ValidationError::Unstable) {
                saw_unstable = true;
                break;
            }
        }
        assert!(saw_unstable, "no role-flipping cloud IPs in the population");
    }

    #[test]
    fn non_servers_never_deliver_tls() {
        let (model, sim) = build();
        for probe in [Ipv4Addr::new(2, 3, 4, 5), Ipv4Addr::new(200, 1, 2, 3)] {
            if model.servers.by_ip(probe).is_none() {
                assert!(!matches!(
                    sim.fetch(&model, probe, Week::REFERENCE, 0),
                    CrawlResult::Tls(_)
                ));
            }
        }
    }

    #[test]
    fn deterministic() {
        let (model, sim) = build();
        let sim2 = CrawlSim::build(&model, 41);
        for s in model.servers.servers().iter().take(100) {
            assert_eq!(
                sim.fetch(&model, s.ip, Week::REFERENCE, 1),
                sim2.fetch(&model, s.ip, Week::REFERENCE, 1)
            );
        }
    }

    #[test]
    fn retry_rides_through_transient_timeouts() {
        let (model, sim) = build();
        let mut retried = 0u32;
        let mut flipped = 0u32;
        let mut total = 0u32;
        for s in model.servers.servers() {
            if !s.flags.has(ServerFlags::HTTPS) || !s.active_in(Week::REFERENCE) {
                continue;
            }
            total += 1;
            let plain = sim.fetch(&model, s.ip, Week::REFERENCE, 0);
            let (with_retry, log) = sim.fetch_with_retry(&model, s.ip, Week::REFERENCE, 0);
            assert!(log.attempts >= 1);
            assert!(log.attempts <= sim.retry_policy().max_attempts);
            if log.attempts > 1 {
                retried += 1;
            }
            if with_retry != plain {
                flipped += 1;
            }
        }
        assert!(total > 0);
        // The transient coin fires at ≈ 12 % per round, so a visible share
        // of fetches needs at least one retry …
        assert!(retried > 0, "no fetch ever needed a retry");
        // … but the budget absorbs nearly all of them: losing all rounds is
        // a ≈ 0.12⁴ event.
        assert!(
            f64::from(flipped) < f64::from(total) * 0.01,
            "{flipped}/{total} fetches changed outcome under retry"
        );
    }

    #[test]
    fn retry_is_deterministic() {
        let (model, sim) = build();
        let sim2 = CrawlSim::build(&model, 41);
        for s in model.servers.servers().iter().take(100) {
            let (a, log_a) = sim.fetch_with_retry(&model, s.ip, Week::REFERENCE, 2);
            let (b, log_b) = sim2.fetch_with_retry(&model, s.ip, Week::REFERENCE, 2);
            assert_eq!(a, b);
            assert_eq!(log_a.attempts, log_b.attempts);
            assert_eq!(log_a.elapsed_ms, log_b.elapsed_ms);
        }
    }

    #[test]
    fn dead_hosts_are_cut_off_and_quarantined() {
        let (model, sim) = build();
        // A non-server IP that is silent (not the NotTls 10 %): every
        // campaign against it exhausts the dead-streak cutoff.
        let dead = (1..255)
            .map(|o| Ipv4Addr::new(203, 0, 113, o))
            .find(|ip| {
                model.servers.by_ip(*ip).is_none()
                    && sim.fetch(&model, *ip, Week::REFERENCE, 0) == CrawlResult::NoAnswer
                    && sim.fetch(&model, *ip, Week::REFERENCE, 1) == CrawlResult::NoAnswer
            })
            .expect("no silent non-server IP found");
        assert_eq!(sim.quarantined_hosts(), 0);
        let fetches = sim.fetch_repeatedly(&model, dead, Week::REFERENCE, 8);
        assert!(fetches.is_empty());
        // One failed campaign starts the streak; the second crosses the
        // cutoff and quarantines the host.
        assert_eq!(sim.quarantined_hosts(), 0);
        sim.fetch_repeatedly(&model, dead, Week::REFERENCE, 8);
        assert_eq!(sim.quarantined_hosts(), 1);
        // An answering host releases itself on its next campaign.
        let alive = model
            .servers
            .servers()
            .iter()
            .find(|s| s.flags.has(ServerFlags::HTTPS) && s.active_in(Week::REFERENCE))
            .unwrap();
        let fetches = sim.fetch_repeatedly(&model, alive.ip, Week::REFERENCE, 3);
        assert!(!fetches.is_empty());
        assert_eq!(sim.quarantined_hosts(), 1, "answering host must not be quarantined");
    }

    #[test]
    fn quarantine_never_gates_results() {
        let (model, sim) = build();
        let alive = model
            .servers
            .servers()
            .iter()
            .find(|s| s.flags.has(ServerFlags::HTTPS) && s.active_in(Week::REFERENCE))
            .unwrap();
        let first = sim.fetch_repeatedly(&model, alive.ip, Week::REFERENCE, 3);
        // Poison the shared table for this key, then refetch: identical.
        for _ in 0..10 {
            sim.quarantine.record_failure(u32::from(alive.ip));
        }
        let second = sim.fetch_repeatedly(&model, alive.ip, Week::REFERENCE, 3);
        assert_eq!(first.len(), second.len());
        for ((c1, w1), (c2, w2)) in first.iter().zip(second.iter()) {
            assert_eq!(w1, w2);
            assert_eq!(c1.certs.len(), c2.certs.len());
        }
    }
}
