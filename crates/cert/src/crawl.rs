//! The active HTTPS crawl simulation.
//!
//! Feed it the candidate IPs that showed traffic on TCP 443 and it behaves
//! like the live Internet did for the authors: most candidates never
//! complete a TLS handshake (SSH/VPN tunnels riding 443 through firewalls,
//! clients, dead hosts), real HTTPS servers present their chains — a
//! calibrated share of which is broken in one of the classic ways — and
//! role-flipping cloud IPs answer differently on every visit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;

use ixp_netmodel::{InternetModel, OrgKind, ServerFlags, Week};

use crate::x509::{Certificate, Chain, KeyUsage, RootStore};

/// Result of one crawl attempt against an IP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlResult {
    /// No TCP answer / handshake timeout.
    NoAnswer,
    /// Something answered on 443, but it does not speak TLS (SSH, VPN,
    /// proxies — the firewall-circumvention traffic the paper filters out).
    NotTls,
    /// A TLS handshake delivered this certificate chain.
    Tls(Chain),
}

/// How a server's certificate is broken, if it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defect {
    None,
    Expired,
    SelfSigned,
    BadSubject,
    WrongKeyUsage,
    ShuffledChain,
    BadCcsld,
    /// Role-flipping cloud IP: presents a different identity per attempt.
    Flaky,
}

#[derive(Debug, Clone)]
struct CertProfile {
    chain: Chain,
    defect: Defect,
}

/// The crawl simulator.
#[derive(Debug)]
pub struct CrawlSim {
    profiles: HashMap<u32, CertProfile>,
    seed: u64,
}

impl CrawlSim {
    /// Build certificate profiles for every HTTPS-capable server.
    pub fn build(model: &InternetModel, seed: u64) -> CrawlSim {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5_0009);
        let store = RootStore::default_store();
        let mut profiles = HashMap::new();
        for server in model.servers.servers() {
            if !server.flags.has(ServerFlags::HTTPS) {
                continue;
            }
            let org = model.orgs.get(server.org);
            let defect = match rng.gen::<f64>() {
                x if x < 0.52 => Defect::None,
                x if x < 0.60 => Defect::Expired,
                x if x < 0.68 => Defect::SelfSigned,
                x if x < 0.74 => Defect::BadSubject,
                x if x < 0.79 => Defect::WrongKeyUsage,
                x if x < 0.84 => Defect::ShuffledChain,
                x if x < 0.88 => Defect::BadCcsld,
                _ => Defect::Flaky,
            };
            // Cloud/hoster IPs are the flaky ones in practice; bias there.
            let defect = if defect == Defect::Flaky
                && !matches!(org.kind, OrgKind::Cloud | OrgKind::Hoster | OrgKind::MetaHoster)
            {
                Defect::None
            } else {
                defect
            };

            let subject = match defect {
                Defect::BadSubject => "localhost".to_string(),
                Defect::BadCcsld => format!("www.{}.invalid-ccsld", org.name.to_lowercase()),
                _ => org
                    .domains
                    .first()
                    .cloned()
                    .unwrap_or_else(|| format!("www.{}", org.soa_domain)),
            };
            // SANs: hosting companies pack many customer names onto one
            // certificate (§2.4 — used to find additional URIs).
            let san_count = match org.kind {
                OrgKind::Hoster | OrgKind::MetaHoster => 6.min(org.domains.len()),
                _ => 2.min(org.domains.len()),
            };
            let offset = rng.gen_range(0..org.domains.len().max(1));
            let alt_names: Vec<String> = (0..san_count)
                .map(|k| org.domains[(offset + k) % org.domains.len()].clone())
                .collect();

            let ca = rng.gen_range(1..=4u8);
            let root = ["Root CA Alpha", "Root CA Beta", "Root CA Gamma", "Root CA Delta"]
                [(ca - 1) as usize];
            debug_assert!(store.trusts(root));
            let (not_before, not_after) = match defect {
                Defect::Expired => (10u8, 40u8), // dies mid-study
                _ => (10, 120),
            };
            let leaf = Certificate {
                subject,
                alt_names,
                issuer: format!("Intermediate CA {ca}"),
                key_usage: if defect == Defect::WrongKeyUsage {
                    KeyUsage::ClientAuth
                } else {
                    KeyUsage::ServerAuth
                },
                not_before,
                not_after,
            };
            let intermediate = Certificate {
                subject: format!("Intermediate CA {ca}"),
                alt_names: vec![],
                issuer: root.to_string(),
                key_usage: KeyUsage::CertSign,
                not_before: 0,
                not_after: 255,
            };
            let mut certs = match defect {
                Defect::SelfSigned => {
                    let mut c = leaf.clone();
                    c.issuer = c.subject.clone();
                    vec![c]
                }
                _ => vec![leaf, intermediate],
            };
            if defect == Defect::ShuffledChain {
                certs.reverse();
            }
            profiles.insert(u32::from(server.ip), CertProfile { chain: Chain { certs }, defect });
        }
        CrawlSim { profiles, seed }
    }

    /// Crawl an IP in a given week (attempt counter distinguishes repeated
    /// fetches for the stability check).
    pub fn fetch(
        &self,
        model: &InternetModel,
        ip: Ipv4Addr,
        week: Week,
        attempt: u32,
    ) -> CrawlResult {
        match model.servers.by_ip(ip) {
            None => {
                // Not a server: VPN/SSH endpoints answer without TLS; the
                // rest never respond. Deterministic per IP.
                if self.coin(ip, 0x51, 0.10) {
                    CrawlResult::NotTls
                } else {
                    CrawlResult::NoAnswer
                }
            }
            Some(server) => {
                if !server.exists_in(week) {
                    return CrawlResult::NoAnswer;
                }
                if server.flags.has(ServerFlags::HTTPS) && !server.https_in(week) {
                    // TLS not enabled yet on this IP.
                    return CrawlResult::NoAnswer;
                }
                match self.profiles.get(&u32::from(ip)) {
                    None => {
                        // A server, but not an HTTPS one: a sliver runs
                        // non-TLS services on 443.
                        if self.coin(ip, 0x52, 0.08) {
                            CrawlResult::NotTls
                        } else {
                            CrawlResult::NoAnswer
                        }
                    }
                    Some(profile) => {
                        let mut chain = profile.chain.clone();
                        if profile.defect == Defect::Flaky {
                            // Present a different tenant identity per visit.
                            if let Some(leaf) = chain.certs.first_mut() {
                                leaf.subject = format!(
                                    "tenant-{}.{}",
                                    (u32::from(ip) ^ attempt).wrapping_mul(2654435761) % 100_000,
                                    leaf.subject
                                );
                            }
                        }
                        CrawlResult::Tls(chain)
                    }
                }
            }
        }
    }

    /// Crawl an IP several times across two weeks, as the paper does, and
    /// hand back the fetches for validation.
    pub fn fetch_repeatedly(
        &self,
        model: &InternetModel,
        ip: Ipv4Addr,
        week: Week,
        attempts: u32,
    ) -> Vec<(Chain, u8)> {
        let mut out = Vec::new();
        for a in 0..attempts {
            // Alternate between this week and the previous one (clamped to
            // the start of the study).
            let w = Week(week.0.saturating_sub((a % 2) as u8).max(Week::FIRST.0));
            if let CrawlResult::Tls(chain) = self.fetch(model, ip, w, a) {
                out.push((chain, w.0));
            }
        }
        out
    }

    fn coin(&self, ip: Ipv4Addr, salt: u32, p: f64) -> bool {
        let x = (u32::from(ip) ^ salt.wrapping_mul(0x85EB_CA6B))
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(self.seed as u32);
        (x as f64 / u32::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{validate_fetches, ValidationError};

    fn build() -> (InternetModel, CrawlSim) {
        let model = InternetModel::tiny(41);
        let sim = CrawlSim::build(&model, 41);
        (model, sim)
    }

    #[test]
    fn https_servers_answer_tls() {
        let (model, sim) = build();
        let server = model
            .servers
            .servers()
            .iter()
            .find(|s| s.flags.has(ServerFlags::HTTPS) && s.active_in(Week::REFERENCE))
            .unwrap();
        match sim.fetch(&model, server.ip, Week::REFERENCE, 0) {
            CrawlResult::Tls(chain) => assert!(!chain.certs.is_empty()),
            other => panic!("expected TLS, got {other:?}"),
        }
    }

    #[test]
    fn non_https_servers_mostly_silent() {
        let (model, sim) = build();
        let mut answers = 0;
        let mut total = 0;
        for s in model.servers.servers().iter().filter(|s| !s.flags.has(ServerFlags::HTTPS)) {
            total += 1;
            if sim.fetch(&model, s.ip, Week::REFERENCE, 0) != CrawlResult::NoAnswer
                && s.active_in(Week::REFERENCE)
            {
                answers += 1;
            }
        }
        assert!(total > 0);
        assert!((answers as f64) < total as f64 * 0.3, "{answers}/{total} answered");
    }

    #[test]
    fn inactive_weeks_do_not_answer() {
        let (model, sim) = build();
        if let Some(s) = model
            .servers
            .servers()
            .iter()
            .find(|s| s.flags.has(ServerFlags::HTTPS) && !s.exists_in(Week::FIRST) && s.exists_in(Week::LAST))
        {
            assert_eq!(sim.fetch(&model, s.ip, Week::FIRST, 0), CrawlResult::NoAnswer);
            assert!(matches!(sim.fetch(&model, s.ip, Week::LAST, 0), CrawlResult::Tls(_)));
        }
    }

    #[test]
    fn validation_funnel_accepts_some_rejects_some() {
        let (model, sim) = build();
        let store = RootStore::default_store();
        let mut valid = 0;
        let mut invalid = 0;
        for s in model.servers.servers() {
            if !s.flags.has(ServerFlags::HTTPS) || !s.active_in(Week::REFERENCE) {
                continue;
            }
            let fetches = sim.fetch_repeatedly(&model, s.ip, Week::REFERENCE, 3);
            match validate_fetches(&fetches, &store) {
                Ok(_) => valid += 1,
                Err(_) => invalid += 1,
            }
        }
        assert!(valid > 0, "nothing validated");
        assert!(invalid > 0, "nothing rejected — defects not firing");
        let rate = valid as f64 / (valid + invalid) as f64;
        // The paper validates ≈ 50 % of responders.
        assert!((0.3..0.8).contains(&rate), "valid rate {rate:.2}");
    }

    #[test]
    fn flaky_ips_fail_the_stability_check() {
        let (model, sim) = build();
        let store = RootStore::default_store();
        let mut saw_unstable = false;
        for s in model.servers.servers() {
            if !s.flags.has(ServerFlags::HTTPS) || !s.active_in(Week::REFERENCE) {
                continue;
            }
            let fetches = sim.fetch_repeatedly(&model, s.ip, Week::REFERENCE, 4);
            if validate_fetches(&fetches, &store) == Err(ValidationError::Unstable) {
                saw_unstable = true;
                break;
            }
        }
        assert!(saw_unstable, "no role-flipping cloud IPs in the population");
    }

    #[test]
    fn non_servers_never_deliver_tls() {
        let (model, sim) = build();
        for probe in [Ipv4Addr::new(2, 3, 4, 5), Ipv4Addr::new(200, 1, 2, 3)] {
            if model.servers.by_ip(probe).is_none() {
                assert!(!matches!(
                    sim.fetch(&model, probe, Week::REFERENCE, 0),
                    CrawlResult::Tls(_)
                ));
            }
        }
    }

    #[test]
    fn deterministic() {
        let (model, sim) = build();
        let sim2 = CrawlSim::build(&model, 41);
        for s in model.servers.servers().iter().take(100) {
            assert_eq!(
                sim.fetch(&model, s.ip, Week::REFERENCE, 1),
                sim2.fetch(&model, s.ip, Week::REFERENCE, 1)
            );
        }
    }
}
