//! A structural model of X.509 certificates and chains.
//!
//! Only the fields the paper's validation pipeline inspects are modelled;
//! no ASN.1. Time is measured in study weeks (the granularity at which the
//! crawler re-fetches).

/// Key-usage purpose of a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyUsage {
    /// TLS server authentication (what a Web server must carry).
    ServerAuth,
    /// TLS client authentication.
    ClientAuth,
    /// Code signing (shows up on misissued certs).
    CodeSigning,
    /// CA certificate (intermediates and roots).
    CertSign,
}

/// One certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject common name.
    pub subject: String,
    /// Subject alternative names.
    pub alt_names: Vec<String>,
    /// Issuer common name.
    pub issuer: String,
    /// Key usage.
    pub key_usage: KeyUsage,
    /// First week (inclusive) of validity, in absolute study-week numbers.
    pub not_before: u8,
    /// Last week (inclusive) of validity.
    pub not_after: u8,
}

impl Certificate {
    /// Is the certificate valid at the given week?
    pub fn valid_at(&self, week: u8) -> bool {
        self.not_before <= week && week <= self.not_after
    }

    /// Is this a self-signed certificate?
    pub fn self_signed(&self) -> bool {
        self.subject == self.issuer
    }
}

/// A certificate chain as delivered by a server: leaf first, then
/// intermediates in the order the server chose to send them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Certificates as delivered (leaf first if the server is honest).
    pub certs: Vec<Certificate>,
}

impl Chain {
    /// The leaf certificate (as delivered; validation re-checks ordering).
    pub fn leaf(&self) -> Option<&Certificate> {
        self.certs.first()
    }
}

/// The local trust store ("the current Linux/Ubuntu white-list" in the
/// paper's words).
#[derive(Debug, Clone)]
pub struct RootStore {
    roots: Vec<String>,
}

impl RootStore {
    /// The default synthetic trust store.
    pub fn default_store() -> RootStore {
        RootStore {
            roots: [
                "Root CA Alpha",
                "Root CA Beta",
                "Root CA Gamma",
                "Root CA Delta",
                "Root CA Epsilon",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }

    /// Is the named root trusted?
    pub fn trusts(&self, issuer: &str) -> bool {
        self.roots.iter().any(|r| r == issuer)
    }

    /// All trusted roots.
    pub fn roots(&self) -> &[String] {
        &self.roots
    }
}

/// Domain validity in the publicsuffix sense (paper check (a)/(b)): at
/// least two labels, a known suffix, no illegal characters, not an IP
/// literal, not an internal name.
pub fn domain_is_valid(domain: &str) -> bool {
    let domain = domain.trim_end_matches('.');
    if domain.is_empty() || domain.len() > 253 {
        return false;
    }
    let labels: Vec<&str> = domain.split('.').collect();
    if labels.len() < 2 {
        return false; // single-label internal names like "localhost"
    }
    if labels.iter().any(|l| {
        l.is_empty()
            || l.len() > 63
            || !l.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '*')
            || l.starts_with('-')
            || l.ends_with('-')
    }) {
        return false;
    }
    // IP literals are not domains.
    if labels.iter().all(|l| l.chars().all(|c| c.is_ascii_digit())) {
        return false;
    }
    // Known public suffixes of the synthetic universe (stand-in for the
    // publicsuffix.org ccSLD list).
    const SUFFIXES: &[&str] = &["example", "test", "invalid-ccsld"];
    let tld = labels.last().unwrap();
    SUFFIXES[..2].contains(tld) && *tld != "invalid-ccsld"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(subject: &str) -> Certificate {
        Certificate {
            subject: subject.to_string(),
            alt_names: vec![],
            issuer: "Intermediate CA 1".into(),
            key_usage: KeyUsage::ServerAuth,
            not_before: 30,
            not_after: 60,
        }
    }

    #[test]
    fn validity_window() {
        let c = leaf("www.foo.example");
        assert!(c.valid_at(30));
        assert!(c.valid_at(45));
        assert!(c.valid_at(60));
        assert!(!c.valid_at(29));
        assert!(!c.valid_at(61));
    }

    #[test]
    fn self_signed_detection() {
        let mut c = leaf("www.foo.example");
        assert!(!c.self_signed());
        c.issuer = c.subject.clone();
        assert!(c.self_signed());
    }

    #[test]
    fn root_store_trusts_only_its_roots() {
        let store = RootStore::default_store();
        assert!(store.trusts("Root CA Alpha"));
        assert!(!store.trusts("Evil Root"));
        assert_eq!(store.roots().len(), 5);
    }

    #[test]
    fn domain_validity_rules() {
        assert!(domain_is_valid("www.akamai.example"));
        assert!(domain_is_valid("a-b.c9.example"));
        assert!(domain_is_valid("*.hoster-12.example"));
        assert!(!domain_is_valid("localhost"));
        assert!(!domain_is_valid("192.0.2.7"));
        assert!(!domain_is_valid("www.foo.com")); // unknown suffix
        assert!(!domain_is_valid("-bad.example"));
        assert!(!domain_is_valid("bad-.example"));
        assert!(!domain_is_valid("under_score.example"));
        assert!(!domain_is_valid(""));
        assert!(!domain_is_valid("www.shop.invalid-ccsld"));
    }
}
