//! # ixp-cert
//!
//! The X.509/HTTPS substrate of the `ixp-vantage` reproduction.
//!
//! §2.2.2 of the paper identifies HTTPS servers by a mixed passive/active
//! method: port-443 traffic nominates *candidate* IPs, each candidate is
//! crawled for its certificate chain, and a six-check validation pipeline
//! decides whether the IP really is a commercial HTTPS server:
//!
//! 1. **certificate subject** — a valid domain with a valid ccSLD
//!    (publicsuffix-style check),
//! 2. **alternative names** — same validity requirements,
//! 3. **key usage** — must indicate a (Web) server role,
//! 4. **certificate chain** — the delivered certificates must reference
//!    each other in order up to a root in the local trust store,
//! 5. **validity time** — every certificate valid at fetch time,
//! 6. **stability over time** — repeated crawls must agree (cloud IPs
//!    "change their role very quickly and frequently").
//!
//! The funnel the paper reports — ≈ 1.5M candidates → ≈ 500K responders →
//! ≈ 250K validated HTTPS servers — emerges from the model: port-443
//! impostors (SSH/VPN behind firewall-friendly ports) never answer TLS,
//! non-HTTPS servers refuse, HTTPS servers present chains of which a
//! calibrated fraction is broken (expired, self-signed, shuffled chain,
//! bogus subject, wrong key usage), and role-flipping cloud IPs fail the
//! stability check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crawl;
pub mod validate;
pub mod x509;

pub use crawl::{CrawlMetrics, CrawlResult, CrawlSim};
pub use validate::{validate_chain, validate_fetches, ValidationError};
pub use x509::{Certificate, Chain, KeyUsage, RootStore};
