//! Property tests: datagram round-trip, decoder robustness, and collector
//! sequence accounting.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use ixp_sflow::{Collector, Datagram, FlowSample, Ingest, RawPacketHeader, HEADER_PROTO_ETHERNET};

fn arb_sample() -> impl Strategy<Value = FlowSample> {
    (
        any::<u32>(),
        any::<u32>(),
        1u32..1_000_000,
        any::<u32>(),
        0u32..10,
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..=128),
        14u32..9_000,
    )
        .prop_map(
            |(sequence, source_id, sampling_rate, sample_pool, drops, input_if, output_if, header, frame_length)| {
                FlowSample {
                    sequence,
                    source_id,
                    sampling_rate,
                    sample_pool,
                    drops,
                    input_if,
                    output_if,
                    record: RawPacketHeader {
                        protocol: HEADER_PROTO_ETHERNET,
                        frame_length,
                        stripped: 0,
                        header,
                    },
                }
            },
        )
}

fn arb_datagram() -> impl Strategy<Value = Datagram> {
    (
        any::<u32>().prop_map(Ipv4Addr::from),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(arb_sample(), 0..12),
    )
        .prop_map(|(agent_address, sub_agent_id, sequence, uptime_ms, samples)| Datagram {
            agent_address,
            sub_agent_id,
            sequence,
            uptime_ms,
            samples,
            counters: vec![],
        })
}

proptest! {
    #[test]
    fn datagram_round_trips(dg in arb_datagram()) {
        let bytes = dg.encode();
        prop_assert_eq!(bytes.len() % 4, 0);
        let decoded = Datagram::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, dg);
    }

    /// The decoder must not panic on arbitrary input.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Datagram::decode(&bytes);
    }

    /// Corrupting one byte of a valid datagram must not panic and, if it
    /// still decodes, must stay within the original sample count.
    #[test]
    fn decoder_handles_corruption(dg in arb_datagram(), idx in any::<proptest::sample::Index>(), flip in 1u8..=255) {
        let mut bytes = dg.encode();
        if bytes.is_empty() { return Ok(()); }
        let i = idx.index(bytes.len());
        bytes[i] ^= flip;
        let _ = Datagram::decode(&bytes);
    }

    /// The collector must never panic on adversarial input — arbitrary
    /// byte blobs interleaved with valid, corrupted, and truncated
    /// datagrams — and its accounting invariant must always hold:
    /// every ingested buffer is accepted, a duplicate, or a counted error.
    #[test]
    fn collector_never_panics_and_never_loses_count(
        dgs in proptest::collection::vec(arb_datagram(), 0..20),
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..256), 0..10),
        corrupt_idx in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut c = Collector::new();
        let mut ingested = 0u64;
        for (i, dg) in dgs.iter().enumerate() {
            let mut bytes = dg.encode();
            if i % 3 == 2 && !bytes.is_empty() {
                let j = corrupt_idx.index(bytes.len());
                bytes[j] ^= flip;
            }
            let _ = c.ingest(&bytes);
            ingested += 1;
        }
        for blob in &blobs {
            let _ = c.ingest(blob);
            ingested += 1;
        }
        let s = c.stats();
        prop_assert_eq!(s.datagrams, ingested);
        prop_assert_eq!(s.datagrams, s.accepted + s.duplicates + s.decode_errors.total());
        prop_assert!(s.loss_rate() >= 0.0 && s.loss_rate() <= 1.0);
        prop_assert!(s.compensation_factor() >= 1.0);
    }

    /// Sequence accounting is correct across the u32 wraparound: an
    /// in-order stream that crosses u32::MAX with `gap - 1` datagrams
    /// missing per jump reports exactly the skipped count as lost and
    /// never misreads the wrap as a restart.
    #[test]
    fn collector_wraparound_accounting(
        start_back in 0u32..40,
        gaps in proptest::collection::vec(1u32..5, 1..30),
    ) {
        let agent = Ipv4Addr::new(192, 0, 2, 1);
        let mut c = Collector::new();
        let mut seq = u32::MAX - start_back;
        let mut expect_lost = 0u64;
        let mut expect_accepted = 0u64;
        let mk = |seq: u32| Datagram {
            agent_address: agent,
            sub_agent_id: 0,
            sequence: seq,
            uptime_ms: 1_000,
            samples: vec![],
            counters: vec![],
        }.encode();
        prop_assert!(matches!(c.ingest(&mk(seq)), Ingest::Accepted(_)));
        expect_accepted += 1;
        for gap in gaps {
            seq = seq.wrapping_add(gap);
            expect_lost += u64::from(gap - 1);
            prop_assert!(matches!(c.ingest(&mk(seq)), Ingest::Accepted(_)));
            expect_accepted += 1;
        }
        let s = c.stats();
        prop_assert_eq!(s.accepted, expect_accepted);
        prop_assert_eq!(s.lost, expect_lost);
        prop_assert_eq!(s.restarts, 0);
        prop_assert_eq!(s.duplicates, 0);
    }

    /// Replaying any stream a second time yields only duplicates within
    /// the reorder window; accepted count never exceeds distinct
    /// sequence numbers.
    #[test]
    fn collector_replay_is_all_duplicates(seqs in proptest::collection::vec(0u32..64, 1..40)) {
        let agent = Ipv4Addr::new(192, 0, 2, 2);
        let mk = |seq: u32| Datagram {
            agent_address: agent,
            sub_agent_id: 0,
            sequence: seq,
            uptime_ms: 1_000,
            samples: vec![],
            counters: vec![],
        }.encode();
        let mut c = Collector::new();
        for &s in &seqs {
            let _ = c.ingest(&mk(s));
        }
        let first = c.stats();
        // All sequences live within a 64-wide band < the 128 reorder
        // window, so a full replay must be suppressed entirely.
        for &s in &seqs {
            prop_assert_eq!(c.ingest(&mk(s)), Ingest::Duplicate);
        }
        let second = c.stats();
        prop_assert_eq!(second.accepted, first.accepted);
        prop_assert_eq!(second.duplicates, first.duplicates + seqs.len() as u64);
        let distinct: std::collections::HashSet<u32> = seqs.iter().copied().collect();
        prop_assert!(first.accepted <= distinct.len() as u64);
    }
}

proptest! {
    /// Checkpointing the collector at an arbitrary datagram boundary and
    /// restoring is byte-identical to never having been interrupted: the
    /// resumed collector's final state blob equals the uninterrupted
    /// run's, for any mix of valid, corrupted, and garbage datagrams.
    #[test]
    fn collector_checkpoint_boundary_is_byte_identical(
        dgs in proptest::collection::vec(arb_datagram(), 1..16),
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..6),
        cut in any::<proptest::sample::Index>(),
        corrupt_idx in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut stream: Vec<Vec<u8>> = Vec::new();
        for (i, dg) in dgs.iter().enumerate() {
            let mut bytes = dg.encode();
            if i % 4 == 3 && !bytes.is_empty() {
                let j = corrupt_idx.index(bytes.len());
                bytes[j] ^= flip;
            }
            stream.push(bytes);
        }
        stream.extend(blobs);
        let boundary = cut.index(stream.len() + 1);

        let mut whole = Collector::new();
        for bytes in &stream {
            let _ = whole.ingest(bytes);
        }

        let mut first = Collector::new();
        for bytes in stream.iter().take(boundary) {
            let _ = first.ingest(bytes);
        }
        let ckpt = first.save_state();
        let mut resumed = Collector::restore_state(&ckpt).expect("restore own checkpoint");
        for bytes in stream.iter().skip(boundary) {
            let _ = resumed.ingest(bytes);
        }
        prop_assert_eq!(resumed.save_state(), whole.save_state());
    }

    /// A damaged checkpoint — any strict truncation, or an arbitrary byte
    /// flip — is rejected with a typed `StateError` or restores to a
    /// still-balanced collector. It must never panic and never yield a
    /// collector whose accounting does not add up.
    #[test]
    fn collector_checkpoint_corruption_is_typed_never_panics(
        dgs in proptest::collection::vec(arb_datagram(), 1..12),
        cut in any::<proptest::sample::Index>(),
        flip_at in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut c = Collector::new();
        for dg in &dgs {
            let _ = c.ingest(&dg.encode());
        }
        let blob = c.save_state();

        let boundary = cut.index(blob.len());
        let prefix: Vec<u8> = blob.iter().copied().take(boundary).collect();
        prop_assert!(Collector::restore_state(&prefix).is_err());

        let mut bad = blob.clone();
        let j = flip_at.index(bad.len());
        bad[j] ^= flip;
        if let Ok(restored) = Collector::restore_state(&bad) {
            // The flip survived validation: the restored state must still
            // satisfy the accounting invariant (restore re-checks it).
            let s = restored.stats();
            prop_assert_eq!(
                s.datagrams,
                s.accepted + s.duplicates + s.decode_errors.total()
            );
        }
    }
}
