//! Property tests: datagram round-trip and decoder robustness.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use ixp_sflow::{Datagram, FlowSample, RawPacketHeader, HEADER_PROTO_ETHERNET};

fn arb_sample() -> impl Strategy<Value = FlowSample> {
    (
        any::<u32>(),
        any::<u32>(),
        1u32..1_000_000,
        any::<u32>(),
        0u32..10,
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..=128),
        14u32..9_000,
    )
        .prop_map(
            |(sequence, source_id, sampling_rate, sample_pool, drops, input_if, output_if, header, frame_length)| {
                FlowSample {
                    sequence,
                    source_id,
                    sampling_rate,
                    sample_pool,
                    drops,
                    input_if,
                    output_if,
                    record: RawPacketHeader {
                        protocol: HEADER_PROTO_ETHERNET,
                        frame_length,
                        stripped: 0,
                        header,
                    },
                }
            },
        )
}

fn arb_datagram() -> impl Strategy<Value = Datagram> {
    (
        any::<u32>().prop_map(Ipv4Addr::from),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(arb_sample(), 0..12),
    )
        .prop_map(|(agent_address, sub_agent_id, sequence, uptime_ms, samples)| Datagram {
            agent_address,
            sub_agent_id,
            sequence,
            uptime_ms,
            samples,
            counters: vec![],
        })
}

proptest! {
    #[test]
    fn datagram_round_trips(dg in arb_datagram()) {
        let bytes = dg.encode();
        prop_assert_eq!(bytes.len() % 4, 0);
        let decoded = Datagram::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, dg);
    }

    /// The decoder must not panic on arbitrary input.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Datagram::decode(&bytes);
    }

    /// Corrupting one byte of a valid datagram must not panic and, if it
    /// still decodes, must stay within the original sample count.
    #[test]
    fn decoder_handles_corruption(dg in arb_datagram(), idx in any::<proptest::sample::Index>(), flip in 1u8..=255) {
        let mut bytes = dg.encode();
        if bytes.is_empty() { return Ok(()); }
        let i = idx.index(bytes.len());
        bytes[i] ^= flip;
        let _ = Datagram::decode(&bytes);
    }
}
