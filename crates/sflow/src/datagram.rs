//! sFlow v5 datagram, flow-sample, and raw-packet-header record formats.
//!
//! The encoding follows the sFlow v5 specification (sflow.org, July 2004)
//! for the record types the IXP's collectors actually emit:
//!
//! * datagram header (IPv4 agent address form),
//! * `flow_sample` (enterprise 0, format 1),
//! * `raw packet header` flow record (enterprise 0, format 1) with
//!   `header_protocol = 1` (Ethernet).
//!
//! Unknown sample and record types are skipped using their length fields,
//! as the spec requires of collectors.

use core::fmt;
use std::net::Ipv4Addr;

use bytes::BufMut;

use crate::xdr::{self, Reader};

/// `header_protocol` value for Ethernet (ISO 8023) in raw-packet records.
pub const HEADER_PROTO_ETHERNET: u32 = 1;

const SFLOW_VERSION: u32 = 5;
const AGENT_ADDR_IPV4: u32 = 1;
const SAMPLE_TYPE_FLOW: u32 = 1;
const SAMPLE_TYPE_COUNTERS: u32 = 2;
const RECORD_TYPE_RAW_PACKET: u32 = 1;
const RECORD_TYPE_IF_COUNTERS: u32 = 1;

/// Failure while decoding a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-structure.
    Truncated,
    /// The version field is not 5.
    BadVersion(u32),
    /// Only IPv4 agent addresses are supported by this collector.
    UnsupportedAgentAddress(u32),
    /// A length field contradicts the surrounding structure.
    Inconsistent,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("datagram truncated"),
            DecodeError::BadVersion(v) => write!(f, "unsupported sFlow version {v}"),
            DecodeError::UnsupportedAgentAddress(t) => {
                write!(f, "unsupported agent address type {t}")
            }
            DecodeError::Inconsistent => f.write_str("inconsistent length field"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A raw-packet-header flow record: the first bytes of a sampled frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawPacketHeader {
    /// Header protocol (1 = Ethernet).
    pub protocol: u32,
    /// Original length of the sampled frame on the wire, in bytes.
    pub frame_length: u32,
    /// Bytes removed from the end of the frame before sampling (FCS etc.).
    pub stripped: u32,
    /// The captured header bytes (≤ the sampler's snippet length).
    pub header: Vec<u8>,
}

/// A `flow_sample` structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSample {
    /// Sample sequence number (per source).
    pub sequence: u32,
    /// Source id (class 0, index = ifIndex of the sampled port).
    pub source_id: u32,
    /// The configured sampling rate N (one frame sampled out of N).
    pub sampling_rate: u32,
    /// Total frames that could have been sampled so far.
    pub sample_pool: u32,
    /// Samples dropped due to collector back-pressure.
    pub drops: u32,
    /// Input interface index.
    pub input_if: u32,
    /// Output interface index.
    pub output_if: u32,
    /// The raw packet header record (sFlow allows several records per
    /// sample; the IXP's switches emit exactly one raw-header record, which
    /// is all the study uses).
    pub record: RawPacketHeader,
}

/// A `counters_sample` with the standard `if_counters` block: the switch's
/// own per-interface octet/packet counters, exported unsampled. Real
/// deployments use these to verify the flow samples are unbiased — and so
/// does this reproduction (see `ixp-core`'s sampling-bias check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Sample sequence number (per source).
    pub sequence: u32,
    /// Source id (the polled interface).
    pub source_id: u32,
    /// ifIndex of the interface.
    pub if_index: u32,
    /// ifSpeed in bits per second.
    pub if_speed: u64,
    /// Octets received on the interface since boot.
    pub if_in_octets: u64,
    /// Unicast packets received.
    pub if_in_ucast: u32,
    /// Octets transmitted.
    pub if_out_octets: u64,
    /// Unicast packets transmitted.
    pub if_out_ucast: u32,
}

/// An sFlow v5 datagram: one agent's batch of samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// IPv4 address of the switch agent.
    pub agent_address: Ipv4Addr,
    /// Sub-agent id.
    pub sub_agent_id: u32,
    /// Datagram sequence number.
    pub sequence: u32,
    /// Switch uptime in milliseconds.
    pub uptime_ms: u32,
    /// The flow samples in this datagram.
    pub samples: Vec<FlowSample>,
    /// The counter samples in this datagram.
    pub counters: Vec<CounterSample>,
}

impl Datagram {
    /// Encode to the XDR wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.samples.len() * 192);
        out.put_u32(SFLOW_VERSION);
        out.put_u32(AGENT_ADDR_IPV4);
        out.put_slice(&self.agent_address.octets());
        out.put_u32(self.sub_agent_id);
        out.put_u32(self.sequence);
        out.put_u32(self.uptime_ms);
        out.put_u32((self.samples.len() + self.counters.len()) as u32);
        for sample in &self.samples {
            encode_flow_sample(&mut out, sample);
        }
        for counter in &self.counters {
            encode_counter_sample(&mut out, counter);
        }
        out
    }

    /// Decode from the XDR wire format.
    // ixp-lint: allow(schema-drift) sFlow v5 wire codec; the schema is fixed by the protocol spec, not the checkpoint ratchet
    pub fn decode(data: &[u8]) -> Result<Datagram, DecodeError> {
        let mut r = Reader::new(data);
        let version = r.u32()?;
        if version != SFLOW_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let addr_type = r.u32()?;
        if addr_type != AGENT_ADDR_IPV4 {
            return Err(DecodeError::UnsupportedAgentAddress(addr_type));
        }
        let agent_address = match *r.opaque(4)? {
            [a, b, c, d] => Ipv4Addr::new(a, b, c, d),
            _ => return Err(DecodeError::Truncated),
        };
        let sub_agent_id = r.u32()?;
        let sequence = r.u32()?;
        let uptime_ms = r.u32()?;
        let n_samples = r.u32()? as usize;
        if n_samples > data.len() / 8 {
            // Cheap sanity bound: each sample needs well over 8 bytes.
            return Err(DecodeError::Inconsistent);
        }
        let mut samples = Vec::with_capacity(n_samples.min(data.len() / 8));
        let mut counters = Vec::new();
        for _ in 0..n_samples {
            match decode_sample(&mut r)? {
                DecodedSample::Flow(sample) => samples.push(sample),
                DecodedSample::Counters(sample) => counters.push(sample),
                DecodedSample::Unknown => {}
            }
        }
        Ok(Datagram { agent_address, sub_agent_id, sequence, uptime_ms, samples, counters })
    }
}

fn encode_flow_sample(out: &mut Vec<u8>, sample: &FlowSample) {
    out.put_u32(SAMPLE_TYPE_FLOW);
    // Reserve the sample length, fill in afterwards.
    let len_pos = out.len();
    out.put_u32(0);
    let body_start = out.len();

    out.put_u32(sample.sequence);
    out.put_u32(sample.source_id);
    out.put_u32(sample.sampling_rate);
    out.put_u32(sample.sample_pool);
    out.put_u32(sample.drops);
    out.put_u32(sample.input_if);
    out.put_u32(sample.output_if);
    out.put_u32(1); // record count

    // Raw packet header record.
    out.put_u32(RECORD_TYPE_RAW_PACKET);
    let rec = &sample.record;
    let record_len = 16usize.saturating_add(xdr::pad4(rec.header.len()));
    out.put_u32(record_len as u32);
    out.put_u32(rec.protocol);
    out.put_u32(rec.frame_length);
    out.put_u32(rec.stripped);
    out.put_u32(rec.header.len() as u32);
    xdr::put_opaque(out, &rec.header);

    let body_len = (out.len() - body_start) as u32;
    // ixp-lint: allow(no-index) encoder backpatch; len_pos was reserved above
    out[len_pos..len_pos + 4].copy_from_slice(&body_len.to_be_bytes());
}

enum DecodedSample {
    Flow(FlowSample),
    Counters(CounterSample),
    Unknown,
}

/// Encode a counters sample with one generic-interface-counters record.
fn encode_counter_sample(out: &mut Vec<u8>, c: &CounterSample) {
    out.put_u32(SAMPLE_TYPE_COUNTERS);
    let len_pos = out.len();
    out.put_u32(0);
    let body_start = out.len();

    out.put_u32(c.sequence);
    out.put_u32(c.source_id);
    out.put_u32(1); // record count

    out.put_u32(RECORD_TYPE_IF_COUNTERS);
    // The standard if_counters block is 88 bytes; fields we do not model
    // are emitted as zero so real parsers stay happy.
    out.put_u32(88);
    out.put_u32(c.if_index);
    out.put_u32(6); // ifType: ethernetCsmacd
    out.put_u64(c.if_speed);
    out.put_u32(1); // ifDirection: full duplex
    out.put_u32(0b11); // ifStatus: admin up, oper up
    out.put_u64(c.if_in_octets);
    out.put_u32(c.if_in_ucast);
    out.put_u32(0); // in multicast
    out.put_u32(0); // in broadcast
    out.put_u32(0); // in discards
    out.put_u32(0); // in errors
    out.put_u32(0); // in unknown protos
    out.put_u64(c.if_out_octets);
    out.put_u32(c.if_out_ucast);
    out.put_u32(0); // out multicast
    out.put_u32(0); // out broadcast
    out.put_u32(0); // out discards
    out.put_u32(0); // out errors
    out.put_u32(0); // promiscuous mode

    let body_len = (out.len() - body_start) as u32;
    // ixp-lint: allow(no-index) encoder backpatch; len_pos was reserved above
    out[len_pos..len_pos + 4].copy_from_slice(&body_len.to_be_bytes());
}

// ixp-lint: allow(schema-drift) sFlow v5 wire codec; the schema is fixed by the protocol spec, not the checkpoint ratchet
fn decode_counter_sample(r: &mut Reader<'_>, sample_len: usize) -> Result<DecodedSample, DecodeError> {
    let end = r
        .position()
        .checked_add(sample_len)
        .ok_or(DecodeError::Inconsistent)?;
    let sequence = r.u32()?;
    let source_id = r.u32()?;
    let n_records = r.u32()? as usize;
    let mut out = None;
    for _ in 0..n_records {
        let record_type = r.u32()?;
        let record_len = r.u32()? as usize;
        if record_type != RECORD_TYPE_IF_COUNTERS || record_len != 88 {
            r.skip(xdr::pad4(record_len))?;
            continue;
        }
        let if_index = r.u32()?;
        let _if_type = r.u32()?;
        let if_speed = ((r.u32()? as u64) << 32) | r.u32()? as u64;
        let _dir = r.u32()?;
        let _status = r.u32()?;
        let if_in_octets = ((r.u32()? as u64) << 32) | r.u32()? as u64;
        let if_in_ucast = r.u32()?;
        r.skip(4 * 5)?;
        let if_out_octets = ((r.u32()? as u64) << 32) | r.u32()? as u64;
        let if_out_ucast = r.u32()?;
        // out multicast/broadcast/discards/errors + promiscuous mode.
        r.skip(4 * 5)?;
        out = Some(CounterSample {
            sequence,
            source_id,
            if_index,
            if_speed,
            if_in_octets,
            if_in_ucast,
            if_out_octets,
            if_out_ucast,
        });
    }
    if r.position() != end {
        return Err(DecodeError::Inconsistent);
    }
    match out {
        Some(c) => Ok(DecodedSample::Counters(c)),
        None => Ok(DecodedSample::Unknown),
    }
}

/// Decode one sample; unknown sample types are skipped.
// ixp-lint: allow(schema-drift) sFlow v5 wire codec; the schema is fixed by the protocol spec, not the checkpoint ratchet
fn decode_sample(r: &mut Reader<'_>) -> Result<DecodedSample, DecodeError> {
    let sample_type = r.u32()?;
    let sample_len = r.u32()? as usize;
    if sample_type == SAMPLE_TYPE_COUNTERS {
        return decode_counter_sample(r, sample_len);
    }
    if sample_type != SAMPLE_TYPE_FLOW {
        r.skip(xdr::pad4(sample_len))?;
        return Ok(DecodedSample::Unknown);
    }
    let end = r
        .position()
        .checked_add(sample_len)
        .ok_or(DecodeError::Inconsistent)?;

    let sequence = r.u32()?;
    let source_id = r.u32()?;
    let sampling_rate = r.u32()?;
    let sample_pool = r.u32()?;
    let drops = r.u32()?;
    let input_if = r.u32()?;
    let output_if = r.u32()?;
    let n_records = r.u32()? as usize;

    let mut record = None;
    for _ in 0..n_records {
        let record_type = r.u32()?;
        let record_len = r.u32()? as usize;
        if record_type != RECORD_TYPE_RAW_PACKET {
            r.skip(xdr::pad4(record_len))?;
            continue;
        }
        let record_end = r
            .position()
            .checked_add(record_len)
            .ok_or(DecodeError::Inconsistent)?;
        let protocol = r.u32()?;
        let frame_length = r.u32()?;
        let stripped = r.u32()?;
        let header_len = r.u32()? as usize;
        if header_len > record_len {
            return Err(DecodeError::Inconsistent);
        }
        let header = r.opaque(header_len)?.to_vec();
        if r.position() != record_end {
            return Err(DecodeError::Inconsistent);
        }
        record = Some(RawPacketHeader { protocol, frame_length, stripped, header });
    }
    if r.position() != end {
        return Err(DecodeError::Inconsistent);
    }
    let record = record.ok_or(DecodeError::Inconsistent)?;
    Ok(DecodedSample::Flow(FlowSample {
        sequence,
        source_id,
        sampling_rate,
        sample_pool,
        drops,
        input_if,
        output_if,
        record,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_with_header(header: Vec<u8>) -> FlowSample {
        FlowSample {
            sequence: 42,
            source_id: 7,
            sampling_rate: crate::PAPER_SAMPLING_RATE,
            sample_pool: 42 * crate::PAPER_SAMPLING_RATE,
            drops: 0,
            input_if: 7,
            output_if: 9,
            record: RawPacketHeader {
                protocol: HEADER_PROTO_ETHERNET,
                frame_length: 1514,
                stripped: 4,
                header,
            },
        }
    }

    fn sample_datagram() -> Datagram {
        Datagram {
            agent_address: Ipv4Addr::new(10, 0, 0, 1),
            sub_agent_id: 0,
            sequence: 99,
            uptime_ms: 123_456,
            samples: vec![
                sample_with_header(vec![0xaa; 128]),
                sample_with_header(vec![0xbb; 60]),
                sample_with_header(vec![0xcc; 61]), // odd length exercises padding
            ],
            counters: vec![CounterSample {
                sequence: 9,
                source_id: 7,
                if_index: 7,
                if_speed: 10_000_000_000,
                if_in_octets: 123_456_789_012,
                if_in_ucast: 4_000_000,
                if_out_octets: 987_654_321_098,
                if_out_ucast: 5_000_000,
            }],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let dg = sample_datagram();
        let bytes = dg.encode();
        assert_eq!(bytes.len() % 4, 0, "XDR output must stay 4-byte aligned");
        let decoded = Datagram::decode(&bytes).unwrap();
        assert_eq!(decoded, dg);
    }

    #[test]
    fn empty_datagram_round_trips() {
        let dg = Datagram {
            agent_address: Ipv4Addr::new(192, 168, 1, 1),
            sub_agent_id: 3,
            sequence: 0,
            uptime_ms: 0,
            samples: vec![],
            counters: vec![],
        };
        assert_eq!(Datagram::decode(&dg.encode()).unwrap(), dg);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample_datagram().encode();
        bytes[3] = 4;
        assert_eq!(Datagram::decode(&bytes).unwrap_err(), DecodeError::BadVersion(4));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample_datagram().encode();
        for cut in 1..bytes.len() {
            // Any strict prefix must decode to an error, never panic. A few
            // prefixes may cut exactly at a sample boundary *and* lie about
            // the count, which the count check rejects as Truncated too.
            assert!(Datagram::decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn unknown_sample_types_are_skipped() {
        let dg = sample_datagram();
        let mut bytes = Vec::new();
        {
            use bytes::BufMut;
            bytes.put_u32(5);
            bytes.put_u32(1);
            bytes.put_slice(&[10, 0, 0, 1]);
            bytes.put_u32(0);
            bytes.put_u32(1);
            bytes.put_u32(0);
            bytes.put_u32(2); // two samples: one unknown, one real
            bytes.put_u32(4); // expanded counter sample (unknown to us)
            bytes.put_u32(8);
            bytes.put_u64(0xdeadbeef_cafebabe);
        }
        let mut real = Vec::new();
        encode_flow_sample(&mut real, &dg.samples[0]);
        bytes.extend_from_slice(&real);
        let decoded = Datagram::decode(&bytes).unwrap();
        assert_eq!(decoded.samples.len(), 1);
        assert_eq!(decoded.samples[0], dg.samples[0]);
    }

    #[test]
    fn rejects_absurd_sample_count() {
        let mut bytes = sample_datagram().encode();
        // Overwrite the sample-count field (offset 24) with a huge number.
        bytes[24..28].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(Datagram::decode(&bytes).unwrap_err(), DecodeError::Inconsistent);
    }
}
