//! Versioned, deterministic byte codec for collector-state checkpoints.
//!
//! The supervised pipeline (`ixp-supervisor`) must be able to kill the
//! process at any datagram boundary and resume from a checkpoint with
//! byte-identical results, which puts three demands on this codec:
//!
//! * **determinism** — the same state always serializes to the same bytes
//!   (hash maps are written in sorted key order), so `save → restore →
//!   save` is the identity on the byte level and checkpoints can be
//!   compared with `cmp`;
//! * **robustness** — checkpoints come back off disk, which makes them
//!   wire-grade input: every read is bounds-checked through [`Cur`] and
//!   fails with a typed [`StateError`], never a panic (the same no-panic
//!   contract as the datagram decoder in [`crate::xdr`]);
//! * **versioning** — each state blob leads with a format version so a
//!   schema change is a clean [`StateError::BadVersion`], not a
//!   misinterpretation.
//!
//! Layout is plain big-endian primitives with 64-bit length prefixes for
//! byte strings; there is no self-description. The enclosing file format
//! (magic, envelope version, checksum) belongs to `ixp-supervisor`; this
//! module only covers the state payloads of [`crate::Collector`] and, via
//! re-use, `ixp-core`'s week scan.

use std::fmt;

/// Serialization format version of [`crate::Collector`] state.
pub const COLLECTOR_STATE_VERSION: u32 = 1;

/// A typed decode failure while restoring checkpointed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// The blob ended before the announced content did.
    Truncated,
    /// The state was written by an unknown format version.
    BadVersion(u32),
    /// The bytes decoded but describe an impossible state (unsorted keys,
    /// out-of-range references, accounting that does not balance).
    Invalid(&'static str),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Truncated => write!(f, "checkpoint state truncated"),
            StateError::BadVersion(v) => {
                write!(f, "unsupported checkpoint state version {v}")
            }
            StateError::Invalid(what) => write!(f, "invalid checkpoint state: {what}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Append a big-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u128`.
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a length-prefixed byte string (`u64` length, then the bytes).
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked read cursor over a checkpoint blob. Every accessor
/// returns a typed error instead of panicking — the blob is treated as
/// hostile input (it may have been truncated or corrupted on disk).
#[derive(Debug, Clone, Copy)]
pub struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    /// A cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Cur<'a> {
        Cur { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// Succeeds only if the cursor consumed the blob exactly.
    pub fn finish(&self) -> Result<(), StateError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StateError::Invalid("trailing bytes after state"))
        }
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StateError> {
        let end = self.pos.checked_add(1).ok_or(StateError::Truncated)?;
        match *self.data.get(self.pos..end).ok_or(StateError::Truncated)? {
            [a] => {
                self.pos = end;
                Ok(a)
            }
            _ => Err(StateError::Truncated),
        }
    }

    /// Read one byte as a strict `bool` (0 or 1).
    pub fn bool(&mut self) -> Result<bool, StateError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StateError::Invalid("boolean byte out of range")),
        }
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, StateError> {
        let end = self.pos.checked_add(2).ok_or(StateError::Truncated)?;
        match *self.data.get(self.pos..end).ok_or(StateError::Truncated)? {
            [a, b] => {
                self.pos = end;
                Ok(u16::from_be_bytes([a, b]))
            }
            _ => Err(StateError::Truncated),
        }
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StateError> {
        let end = self.pos.checked_add(4).ok_or(StateError::Truncated)?;
        match *self.data.get(self.pos..end).ok_or(StateError::Truncated)? {
            [a, b, c, d] => {
                self.pos = end;
                Ok(u32::from_be_bytes([a, b, c, d]))
            }
            _ => Err(StateError::Truncated),
        }
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        let end = self.pos.checked_add(8).ok_or(StateError::Truncated)?;
        match *self.data.get(self.pos..end).ok_or(StateError::Truncated)? {
            [a, b, c, d, e, f, g, h] => {
                self.pos = end;
                Ok(u64::from_be_bytes([a, b, c, d, e, f, g, h]))
            }
            _ => Err(StateError::Truncated),
        }
    }

    /// Read a big-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, StateError> {
        let hi = self.u64()?;
        let lo = self.u64()?;
        Ok((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], StateError> {
        let len = self.u64()?;
        let n = usize::try_from(len).map_err(|_| StateError::Truncated)?;
        let end = self.pos.checked_add(n).ok_or(StateError::Truncated)?;
        let s = self.data.get(self.pos..end).ok_or(StateError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, StateError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| StateError::Invalid("non-UTF-8 string in state"))
    }

    /// Read an element count and sanity-cap it against the remaining bytes,
    /// assuming each element needs at least `min_element_size` bytes. A
    /// corrupted count then fails fast instead of driving a giant loop.
    pub fn count(&mut self, min_element_size: usize) -> Result<usize, StateError> {
        let raw = self.u64()?;
        let n = usize::try_from(raw).map_err(|_| StateError::Truncated)?;
        let need = n.checked_mul(min_element_size.max(1)).ok_or(StateError::Truncated)?;
        if need > self.remaining() {
            return Err(StateError::Truncated);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_bool(&mut out, true);
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_u128(&mut out, u128::MAX / 3);
        put_bytes(&mut out, b"abc");
        put_str(&mut out, "über");
        let mut cur = Cur::new(&out);
        assert_eq!(cur.u8(), Ok(7));
        assert_eq!(cur.bool(), Ok(true));
        assert_eq!(cur.u16(), Ok(0xBEEF));
        assert_eq!(cur.u32(), Ok(0xDEAD_BEEF));
        assert_eq!(cur.u64(), Ok(u64::MAX - 1));
        assert_eq!(cur.u128(), Ok(u128::MAX / 3));
        assert_eq!(cur.bytes(), Ok(&b"abc"[..]));
        assert_eq!(cur.str(), Ok("über"));
        assert_eq!(cur.finish(), Ok(()));
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_cut() {
        let mut out = Vec::new();
        put_u32(&mut out, 1);
        put_bytes(&mut out, b"payload");
        put_u64(&mut out, 42);
        for cut in 0..out.len() {
            let prefix: Vec<u8> = out.iter().copied().take(cut).collect();
            let mut cur = Cur::new(&prefix);
            let r = cur
                .u32()
                .and_then(|_| cur.bytes().map(<[u8]>::len))
                .and_then(|_| cur.u64());
            assert!(r.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate_or_panic() {
        // A length prefix claiming u64::MAX bytes.
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut cur = Cur::new(&out);
        assert_eq!(cur.bytes(), Err(StateError::Truncated));
        // A count prefix claiming more elements than bytes remain.
        let mut out = Vec::new();
        put_u64(&mut out, 1 << 40);
        let mut cur = Cur::new(&out);
        assert_eq!(cur.count(8), Err(StateError::Truncated));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_invalid_not_truncated() {
        let mut cur = Cur::new(&[2u8]);
        assert!(matches!(cur.bool(), Err(StateError::Invalid(_))));
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xFF, 0xFE]);
        let mut cur = Cur::new(&out);
        assert!(matches!(cur.str(), Err(StateError::Invalid(_))));
    }

    #[test]
    fn errors_render_and_implement_error() {
        let errors: [Box<dyn std::error::Error>; 3] = [
            Box::new(StateError::Truncated),
            Box::new(StateError::BadVersion(9)),
            Box::new(StateError::Invalid("x")),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
