//! Scaling samples back up to traffic estimates.
//!
//! With 1-in-N random sampling, each sample stands for N frames and
//! `N × frame_length` bytes. Every traffic number in the paper — the
//! filtering percentages of Fig. 1, the per-server shares of Fig. 2, the
//! link-usage ratios of Fig. 7 — is such an estimate. This module keeps the
//! arithmetic in one audited place.

use crate::datagram::FlowSample;

/// An additive traffic estimate derived from flow samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficEstimate {
    /// Number of samples aggregated.
    pub samples: u64,
    /// Estimated frames on the wire.
    pub frames: u64,
    /// Estimated bytes on the wire.
    pub bytes: u64,
}

impl TrafficEstimate {
    /// The zero estimate.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Account one flow sample.
    pub fn add_sample(&mut self, sample: &FlowSample) {
        self.add_raw(sample.sampling_rate, sample.record.frame_length);
    }

    /// Account one sample given its rate and original frame length. Both
    /// inputs come straight off the wire, so the scaling arithmetic
    /// saturates rather than wrapping on forged extremes.
    pub fn add_raw(&mut self, sampling_rate: u32, frame_length: u32) {
        self.samples += 1;
        self.frames = self.frames.saturating_add(u64::from(sampling_rate));
        self.bytes = self
            .bytes
            .saturating_add(u64::from(sampling_rate).saturating_mul(u64::from(frame_length)));
    }

    /// Merge another estimate into this one.
    pub fn merge(&mut self, other: &TrafficEstimate) {
        self.samples = self.samples.saturating_add(other.samples);
        self.frames = self.frames.saturating_add(other.frames);
        self.bytes = self.bytes.saturating_add(other.bytes);
    }

    /// This estimate's byte share of a total, in percent (0 if total empty).
    pub fn share_of(&self, total: &TrafficEstimate) -> f64 {
        if total.bytes == 0 {
            0.0
        } else {
            100.0 * self.bytes as f64 / total.bytes as f64
        }
    }

    /// Scale the estimate by a compensation factor (e.g. the collector's
    /// loss-compensation ratio). Sample counts stay raw — they record what
    /// was actually received — while frames and bytes are extrapolated.
    pub fn scaled(&self, factor: f64) -> TrafficEstimate {
        let factor = if factor.is_finite() && factor > 0.0 { factor } else { 1.0 };
        TrafficEstimate {
            samples: self.samples,
            frames: (self.frames as f64 * factor).round() as u64,
            bytes: (self.bytes as f64 * factor).round() as u64,
        }
    }

    /// Average estimated bytes per day given a measurement window in days.
    pub fn bytes_per_day(&self, window_days: f64) -> f64 {
        if window_days <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / window_days
        }
    }
}

impl std::ops::Add for TrafficEstimate {
    type Output = TrafficEstimate;
    fn add(mut self, rhs: TrafficEstimate) -> TrafficEstimate {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for TrafficEstimate {
    fn sum<I: Iterator<Item = TrafficEstimate>>(iter: I) -> Self {
        iter.fold(TrafficEstimate::zero(), |acc, e| acc + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagram::{FlowSample, RawPacketHeader, HEADER_PROTO_ETHERNET};

    fn sample(rate: u32, frame_length: u32) -> FlowSample {
        FlowSample {
            sequence: 1,
            source_id: 1,
            sampling_rate: rate,
            sample_pool: rate,
            drops: 0,
            input_if: 1,
            output_if: 2,
            record: RawPacketHeader {
                protocol: HEADER_PROTO_ETHERNET,
                frame_length,
                stripped: 0,
                header: vec![],
            },
        }
    }

    #[test]
    fn estimate_is_linear_in_rate() {
        let mut low = TrafficEstimate::zero();
        low.add_sample(&sample(1_000, 1_500));
        let mut high = TrafficEstimate::zero();
        high.add_sample(&sample(16_384, 1_500));
        assert_eq!(low.bytes * 16_384 / 1_000, high.bytes);
        assert_eq!(high.frames, 16_384);
    }

    #[test]
    fn shares_sum_to_hundred() {
        let mut a = TrafficEstimate::zero();
        let mut b = TrafficEstimate::zero();
        a.add_raw(16_384, 900);
        a.add_raw(16_384, 100);
        b.add_raw(16_384, 1_000);
        let total = a + b;
        assert!((a.share_of(&total) + b.share_of(&total) - 100.0).abs() < 1e-9);
        assert!((a.share_of(&total) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_total_yields_zero_share() {
        let a = TrafficEstimate::zero();
        assert!(a.share_of(&TrafficEstimate::zero()).abs() < 1e-9);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            {
                let mut e = TrafficEstimate::zero();
                e.add_raw(10, 100);
                e
            },
            {
                let mut e = TrafficEstimate::zero();
                e.add_raw(10, 200);
                e
            },
        ];
        let total: TrafficEstimate = parts.into_iter().sum();
        assert_eq!(total.bytes, 3_000);
        assert_eq!(total.samples, 2);
    }

    #[test]
    fn bytes_per_day() {
        let mut e = TrafficEstimate::zero();
        e.add_raw(16_384, 1_000);
        assert!((e.bytes_per_day(7.0) - 16_384_000.0 / 7.0).abs() < 1e-6);
        assert!(e.bytes_per_day(0.0).abs() < 1e-9);
    }
}
