//! The fault-tolerant collector front-end: per-source sequence accounting.
//!
//! sFlow rides UDP, so a real collector must reconstruct stream health from
//! the datagram sequence numbers alone (sFlow v5 spec §4: "the sequence
//! number can be used to detect lost datagrams"). [`Collector`] tracks each
//! `(agent, sub_agent)` source independently:
//!
//! * **gap/loss estimation** — a forward sequence jump of `k` means `k − 1`
//!   datagrams are missing (until they show up late);
//! * **duplicate suppression** — a 128-wide sliding bitmap over recent
//!   sequence numbers (the RTP/IPsec anti-replay window construction)
//!   recognises both exact re-delivery of the head and older duplicates;
//! * **reorder tolerance** — a late datagram inside the window is accepted
//!   and the loss estimate is corrected back down;
//! * **restart detection** — a sequence regression beyond the reorder
//!   window, or a large forward jump with the agent's uptime reset, means
//!   the agent rebooted (the v5 heuristic), not that thousands of
//!   datagrams vanished;
//! * **counter-wrap-safe deltas** — cumulative `if_counters` are
//!   accumulated as `wrapping_sub` deltas per `(agent, ifIndex)`, so a
//!   counter passing the type maximum contributes its true increment;
//! * **garbage quarantine** — a source emitting a long run of undecodable
//!   datagrams is flagged for the health report.
//!
//! The collector never discards silently: every ingested buffer is counted
//! exactly once as accepted, duplicate, or rejected-with-kind, so
//! `datagrams = accepted + duplicates + decode_errors` always holds.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use ixp_obs::journal::{EventKind, Journal};
use ixp_obs::{test_clock, Clock, Obs, Stopwatch};

use crate::accounting::TrafficEstimate;
use crate::checkpoint::{self, Cur, StateError, COLLECTOR_STATE_VERSION};
use crate::datagram::{CounterSample, Datagram, DecodeError};
use crate::metrics::CollectorMetrics;

/// Sequence regressions up to this distance are treated as reordering; a
/// regression beyond it is a restart. 128 matches the sliding-window width.
const REORDER_WINDOW: u32 = 128;

/// Ingest latency is sampled into `sflow_ingest_duration_ns` once every
/// this many datagrams, so instrumentation costs one atomic add — not two
/// clock reads — on the typical hot-path iteration.
pub const LATENCY_SAMPLE_EVERY: u64 = 64;

/// Forward distances below 2³¹ are forward jumps; at or above, the
/// wrapping difference is really a regression.
const HALF_RANGE: u32 = 1 << 31;

/// Consecutive decode failures before a source is flagged as quarantined.
const QUARANTINE_THRESHOLD: u32 = 32;

/// Per-kind decode-error counters (the visible form of `DecodeError`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeErrorCounts {
    /// `DecodeError::Truncated`.
    pub truncated: u64,
    /// `DecodeError::BadVersion`.
    pub bad_version: u64,
    /// `DecodeError::UnsupportedAgentAddress`.
    pub unsupported_agent: u64,
    /// `DecodeError::Inconsistent`.
    pub inconsistent: u64,
}

impl DecodeErrorCounts {
    /// Count one error by kind.
    pub fn count(&mut self, e: DecodeError) {
        match e {
            DecodeError::Truncated => self.truncated += 1,
            DecodeError::BadVersion(_) => self.bad_version += 1,
            DecodeError::UnsupportedAgentAddress(_) => self.unsupported_agent += 1,
            DecodeError::Inconsistent => self.inconsistent += 1,
        }
    }

    /// Total across all kinds.
    pub fn total(&self) -> u64 {
        self.truncated + self.bad_version + self.unsupported_agent + self.inconsistent
    }

    /// `(label, count)` pairs in declaration order, for reports.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> {
        [
            ("truncated", self.truncated),
            ("bad-version", self.bad_version),
            ("unsupported-agent-address", self.unsupported_agent),
            ("inconsistent", self.inconsistent),
        ]
        .into_iter()
    }
}

/// One sFlow data stream: an `(agent, sub_agent)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceKey {
    /// The agent's IPv4 address.
    pub agent: Ipv4Addr,
    /// The sub-agent id within the agent.
    pub sub_agent: u32,
}

/// Health counters of one source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Datagrams accepted (unique, decodable).
    pub received: u64,
    /// Datagrams suppressed as duplicates.
    pub duplicates: u64,
    /// Datagrams estimated lost from sequence gaps.
    pub lost: u64,
    /// Restarts detected.
    pub restarts: u64,
    /// Undecodable datagrams attributed to this source by header peek.
    pub decode_errors: u64,
    /// True once a long consecutive run of garbage flagged this source.
    pub quarantined: bool,
}

/// Per-source sequence state: head + anti-replay bitmap.
#[derive(Debug, Clone)]
struct SourceState {
    /// Highest (most recent) sequence number accepted.
    last_seq: u32,
    /// Bit `i` set ⇔ sequence `last_seq − i` was received (bit 0 = head).
    window: u128,
    /// Uptime reported with `last_seq`, for the restart heuristic.
    last_uptime: u32,
    /// False until the first datagram establishes the head.
    started: bool,
    /// Current run of consecutive decode failures.
    error_run: u32,
    stats: SourceStats,
}

impl SourceState {
    fn new() -> SourceState {
        SourceState {
            last_seq: 0,
            window: 0,
            last_uptime: 0,
            started: false,
            error_run: 0,
            stats: SourceStats::default(),
        }
    }
}

/// Accumulated wrap-safe interface-counter deltas for one `(agent,
/// source_id)` stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterTotals {
    /// Octets received, summed over wrap-safe deltas.
    pub in_octets: u64,
    /// Octets transmitted.
    pub out_octets: u64,
    /// Unicast packets received.
    pub in_ucast: u64,
    /// Unicast packets transmitted.
    pub out_ucast: u64,
    /// Counter exports seen (deltas accumulated = exports − 1).
    pub exports: u64,
}

#[derive(Debug, Clone)]
struct CounterTrack {
    last: CounterSample,
    totals: CounterTotals,
}

/// Aggregate collector health, for `IngestHealth`-style reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Buffers handed to [`Collector::ingest`].
    pub datagrams: u64,
    /// Unique decodable datagrams accepted.
    pub accepted: u64,
    /// Duplicates suppressed.
    pub duplicates: u64,
    /// Datagrams estimated lost (sequence gaps, net of late arrivals).
    pub lost: u64,
    /// Agent restarts detected.
    pub restarts: u64,
    /// Decode errors by kind.
    pub decode_errors: DecodeErrorCounts,
    /// Decode errors whose header was too damaged to attribute to a source.
    pub unattributed_errors: u64,
    /// Distinct sources seen.
    pub sources: usize,
    /// Sources flagged by the garbage quarantine.
    pub quarantined_sources: usize,
}

impl CollectorStats {
    /// Estimated datagram loss rate: `lost / (accepted + lost)`.
    pub fn loss_rate(&self) -> f64 {
        let expected = self.accepted + self.lost;
        if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        }
    }

    /// Multiplier that scales received-traffic estimates back up to the
    /// expected stream: `(accepted + lost) / accepted`, at least 1.
    pub fn compensation_factor(&self) -> f64 {
        if self.accepted == 0 {
            1.0
        } else {
            ((self.accepted + self.lost) as f64 / self.accepted as f64).max(1.0)
        }
    }
}

/// What happened to one ingested buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ingest {
    /// New, decodable: process the samples.
    Accepted(Datagram),
    /// Already delivered (head repeat or inside the replay window).
    Duplicate,
    /// Undecodable; the kind was counted.
    Rejected(DecodeError),
}

/// Running aggregate over all sources, maintained incrementally at each
/// ingest so [`Collector::stats`] is O(1) instead of a walk over every
/// source (the stats walk used to be recomputed per datagram by callers
/// polling health mid-run).
#[derive(Debug, Clone, Copy, Default)]
struct AggTotals {
    accepted: u64,
    duplicates: u64,
    lost: u64,
    restarts: u64,
    quarantined: u64,
}

/// The per-source sequence-accounting collector. See the module docs.
#[derive(Debug)]
pub struct Collector {
    sources: HashMap<SourceKey, SourceState>,
    counters: HashMap<(Ipv4Addr, u32), CounterTrack>,
    datagrams: u64,
    errors: DecodeErrorCounts,
    unattributed_errors: u64,
    agg: AggTotals,
    // Monotonic shadows of the metric-only counters (`sflow_seq_lost_total`
    // / `sflow_seq_recovered_total` / latency-sample count). Registered
    // counters may be shared across collectors and cannot be read back per
    // instance, so checkpoint/restore carries these shadows and replays
    // them into a fresh registry — a resumed run's metrics snapshot is then
    // byte-identical to the uninterrupted run's.
    seq_opened: u64,
    seq_recovered: u64,
    latency_samples: u64,
    metrics: CollectorMetrics,
    clock: Arc<dyn Clock>,
    // Disabled unless attached via [`Collector::bind_journal`]: restart
    // and quarantine detections then become journal events for the
    // flight recorder. Journal state is not checkpointed.
    journal: Journal,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector {
            sources: HashMap::new(),
            counters: HashMap::new(),
            datagrams: 0,
            errors: DecodeErrorCounts::default(),
            unattributed_errors: 0,
            agg: AggTotals::default(),
            seq_opened: 0,
            seq_recovered: 0,
            latency_samples: 0,
            metrics: CollectorMetrics::detached(),
            clock: test_clock(),
            journal: Journal::disabled(),
        }
    }
}

impl Collector {
    /// A fresh collector with detached (unregistered) metrics and a
    /// frozen test clock: the uninstrumented configuration.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// A collector publishing live `sflow_*` metrics into the bundle's
    /// registry and timing sampled ingests against its clock.
    pub fn with_obs(obs: &Obs) -> Collector {
        Collector {
            metrics: CollectorMetrics::register(&obs.registry),
            clock: Arc::clone(&obs.clock),
            ..Collector::default()
        }
    }

    /// The live metrics bundle (detached unless built by
    /// [`Collector::with_obs`]).
    pub fn metrics(&self) -> &CollectorMetrics {
        &self.metrics
    }

    /// Ingest one encoded datagram. Never panics, never silently drops:
    /// the outcome is always counted.
    pub fn ingest(&mut self, bytes: &[u8]) -> Ingest {
        let sampled = self.datagrams.is_multiple_of(LATENCY_SAMPLE_EVERY);
        if sampled {
            self.latency_samples += 1;
        }
        let sw = if sampled { Some(Stopwatch::start(self.clock.as_ref())) } else { None };
        let outcome = self.ingest_inner(bytes);
        self.metrics.record(&outcome);
        if let Some(sw) = sw {
            sw.record(self.clock.as_ref(), &self.metrics.ingest_ns);
        }
        outcome
    }

    fn ingest_inner(&mut self, bytes: &[u8]) -> Ingest {
        self.datagrams += 1;
        let dg = match Datagram::decode(bytes) {
            Ok(dg) => dg,
            Err(e) => {
                self.errors.count(e);
                match peek_source(bytes) {
                    Some(key) => {
                        let src = self.sources.entry(key).or_insert_with(SourceState::new);
                        src.stats.decode_errors += 1;
                        src.error_run += 1;
                        if src.error_run >= QUARANTINE_THRESHOLD && !src.stats.quarantined {
                            src.stats.quarantined = true;
                            self.agg.quarantined += 1;
                            self.metrics.quarantined_sources.set_max(self.agg.quarantined);
                            self.journal.record(
                                EventKind::SourceQuarantined,
                                u64::from(u32::from(key.agent)),
                                u64::from(key.sub_agent),
                                u64::from(src.error_run),
                                0,
                            );
                        }
                        self.publish_source_count();
                    }
                    None => {
                        self.unattributed_errors += 1;
                        self.metrics.unattributed.inc();
                    }
                }
                return Ingest::Rejected(e);
            }
        };
        let key = SourceKey { agent: dg.agent_address, sub_agent: dg.sub_agent_id };
        let src = self.sources.entry(key).or_insert_with(SourceState::new);
        src.error_run = 0;

        if !src.started {
            src.started = true;
            src.last_seq = dg.sequence;
            src.window = 1;
            src.last_uptime = dg.uptime_ms;
            src.stats.received += 1;
            self.agg.accepted += 1;
            self.publish_source_count();
            self.track_counters(&dg);
            return Ingest::Accepted(dg);
        }

        let ahead = dg.sequence.wrapping_sub(src.last_seq);
        if ahead == 0 {
            src.stats.duplicates += 1;
            self.agg.duplicates += 1;
            return Ingest::Duplicate;
        }
        if ahead < HALF_RANGE {
            if ahead > REORDER_WINDOW && dg.uptime_ms < src.last_uptime {
                // Large forward jump and the uptime went backwards: the
                // agent rebooted and its new sequence landed above the old
                // one. Counting the jump as loss would be wildly wrong.
                restart(src, &dg);
                self.agg.restarts += 1;
                self.agg.accepted += 1;
                self.metrics.restarts.inc();
                self.journal.record(
                    EventKind::SourceRestart,
                    u64::from(u32::from(key.agent)),
                    u64::from(key.sub_agent),
                    self.agg.restarts,
                    0,
                );
            } else {
                // Forward jump of `ahead`: the `ahead − 1` sequence numbers
                // in between are (so far) lost.
                let missing = u64::from(ahead - 1);
                src.stats.lost += missing;
                self.agg.lost += missing;
                self.seq_opened += missing;
                self.metrics.lost.add(missing);
                src.window = if ahead >= REORDER_WINDOW {
                    1
                } else {
                    (src.window << ahead) | 1
                };
                src.last_seq = dg.sequence;
                src.last_uptime = dg.uptime_ms;
                src.stats.received += 1;
                self.agg.accepted += 1;
            }
            self.track_counters(&dg);
            return Ingest::Accepted(dg);
        }

        // Regression.
        let behind = src.last_seq.wrapping_sub(dg.sequence);
        if behind < REORDER_WINDOW {
            let bit = 1u128 << behind;
            if src.window & bit != 0 {
                src.stats.duplicates += 1;
                self.agg.duplicates += 1;
                return Ingest::Duplicate;
            }
            // Late arrival: it was provisionally counted lost when the gap
            // opened; take it back. Counter records from out-of-order
            // datagrams are skipped — their cumulative values are stale.
            // (A late arrival just after a restart may not have a
            // provisional loss to take back; mirror the exact per-source
            // correction into the aggregate so they never diverge.)
            src.window |= bit;
            let before = src.stats.lost;
            src.stats.lost = before.saturating_sub(1);
            let corrected = before - src.stats.lost;
            self.agg.lost = self.agg.lost.saturating_sub(corrected);
            self.seq_recovered += corrected;
            self.metrics.recovered.add(corrected);
            src.stats.received += 1;
            self.agg.accepted += 1;
            return Ingest::Accepted(dg);
        }

        // Regression beyond any plausible reordering: sequence reset.
        restart(src, &dg);
        self.agg.restarts += 1;
        self.agg.accepted += 1;
        self.metrics.restarts.inc();
        self.journal.record(
            EventKind::SourceRestart,
            u64::from(u32::from(key.agent)),
            u64::from(key.sub_agent),
            self.agg.restarts,
            0,
        );
        self.track_counters(&dg);
        Ingest::Accepted(dg)
    }

    /// Refresh the `sflow_sources` gauge after a possible insertion. The
    /// gauge is a high-water mark (`set_max`): several per-week collectors
    /// may share one registered gauge when a study runs in parallel, and a
    /// running maximum is scheduling-independent where a plain store is
    /// last-writer-wins.
    fn publish_source_count(&self) {
        self.metrics.sources.set_max(u64::try_from(self.sources.len()).unwrap_or(u64::MAX));
    }

    /// Accumulate wrap-safe deltas for the datagram's counter samples.
    fn track_counters(&mut self, dg: &Datagram) {
        for c in &dg.counters {
            let track = self
                .counters
                .entry((dg.agent_address, c.source_id))
                .or_insert_with(|| CounterTrack {
                    last: c.clone(),
                    totals: CounterTotals { exports: 0, ..CounterTotals::default() },
                });
            if track.totals.exports > 0 {
                // The deltas are wrap-corrected but still wire-controlled:
                // a forged absolute counter can make a single delta huge, so
                // the running totals saturate rather than overflowing.
                let t = &mut track.totals;
                t.in_octets =
                    t.in_octets.saturating_add(c.if_in_octets.wrapping_sub(track.last.if_in_octets));
                t.out_octets = t
                    .out_octets
                    .saturating_add(c.if_out_octets.wrapping_sub(track.last.if_out_octets));
                t.in_ucast = t
                    .in_ucast
                    .saturating_add(u64::from(c.if_in_ucast.wrapping_sub(track.last.if_in_ucast)));
                t.out_ucast = t
                    .out_ucast
                    .saturating_add(u64::from(c.if_out_ucast.wrapping_sub(track.last.if_out_ucast)));
            }
            track.totals.exports += 1;
            track.last = c.clone();
        }
    }

    /// Aggregate health across all sources. O(1): the totals are
    /// maintained incrementally by [`Collector::ingest`], so callers can
    /// poll health per datagram without a per-source walk.
    pub fn stats(&self) -> CollectorStats {
        CollectorStats {
            datagrams: self.datagrams,
            accepted: self.agg.accepted,
            duplicates: self.agg.duplicates,
            lost: self.agg.lost,
            restarts: self.agg.restarts,
            decode_errors: self.errors,
            unattributed_errors: self.unattributed_errors,
            sources: self.sources.len(),
            quarantined_sources: usize::try_from(self.agg.quarantined).unwrap_or(usize::MAX),
        }
    }

    /// Health counters of one source, if it has been seen.
    pub fn source_stats(&self, key: &SourceKey) -> Option<SourceStats> {
        self.sources.get(key).map(|s| s.stats)
    }

    /// Iterate over all sources and their health.
    pub fn sources(&self) -> impl Iterator<Item = (&SourceKey, SourceStats)> {
        self.sources.iter().map(|(k, s)| (k, s.stats))
    }

    /// Accumulated wrap-safe counter deltas for an `(agent, source_id)`
    /// stream.
    pub fn counter_totals(&self, agent: Ipv4Addr, source_id: u32) -> Option<CounterTotals> {
        self.counters.get(&(agent, source_id)).map(|t| t.totals)
    }

    /// Scale a received-traffic estimate up by the loss-compensation
    /// factor, so degraded feeds still estimate the full stream.
    pub fn compensate(&self, estimate: &TrafficEstimate) -> TrafficEstimate {
        estimate.scaled(self.stats().compensation_factor())
    }

    /// Serialize the full collector state — per-source sequence trackers,
    /// dup-suppression windows, quarantine flags, counter tracks, and all
    /// accounting totals — into a versioned, deterministic byte blob.
    ///
    /// Deterministic means: the same state always yields the same bytes
    /// (hash maps are emitted in sorted key order), so checkpoints taken
    /// from identical runs compare equal with `cmp`.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        checkpoint::put_u32(&mut out, COLLECTOR_STATE_VERSION);
        checkpoint::put_u64(&mut out, self.datagrams);
        checkpoint::put_u64(&mut out, self.errors.truncated);
        checkpoint::put_u64(&mut out, self.errors.bad_version);
        checkpoint::put_u64(&mut out, self.errors.unsupported_agent);
        checkpoint::put_u64(&mut out, self.errors.inconsistent);
        checkpoint::put_u64(&mut out, self.unattributed_errors);
        checkpoint::put_u64(&mut out, self.seq_opened);
        checkpoint::put_u64(&mut out, self.seq_recovered);
        checkpoint::put_u64(&mut out, self.latency_samples);

        let mut sources: Vec<(&SourceKey, &SourceState)> = self.sources.iter().collect();
        sources.sort_by_key(|(k, _)| (u32::from(k.agent), k.sub_agent));
        checkpoint::put_u64(&mut out, sources.len() as u64);
        for (k, s) in sources {
            checkpoint::put_u32(&mut out, u32::from(k.agent));
            checkpoint::put_u32(&mut out, k.sub_agent);
            checkpoint::put_u32(&mut out, s.last_seq);
            checkpoint::put_u128(&mut out, s.window);
            checkpoint::put_u32(&mut out, s.last_uptime);
            checkpoint::put_bool(&mut out, s.started);
            checkpoint::put_u32(&mut out, s.error_run);
            checkpoint::put_u64(&mut out, s.stats.received);
            checkpoint::put_u64(&mut out, s.stats.duplicates);
            checkpoint::put_u64(&mut out, s.stats.lost);
            checkpoint::put_u64(&mut out, s.stats.restarts);
            checkpoint::put_u64(&mut out, s.stats.decode_errors);
            checkpoint::put_bool(&mut out, s.stats.quarantined);
        }

        let mut counters: Vec<(&(Ipv4Addr, u32), &CounterTrack)> = self.counters.iter().collect();
        counters.sort_by_key(|((agent, source_id), _)| (u32::from(*agent), *source_id));
        checkpoint::put_u64(&mut out, counters.len() as u64);
        for ((agent, source_id), t) in counters {
            checkpoint::put_u32(&mut out, u32::from(*agent));
            checkpoint::put_u32(&mut out, *source_id);
            checkpoint::put_u32(&mut out, t.last.sequence);
            checkpoint::put_u32(&mut out, t.last.source_id);
            checkpoint::put_u32(&mut out, t.last.if_index);
            checkpoint::put_u64(&mut out, t.last.if_speed);
            checkpoint::put_u64(&mut out, t.last.if_in_octets);
            checkpoint::put_u32(&mut out, t.last.if_in_ucast);
            checkpoint::put_u64(&mut out, t.last.if_out_octets);
            checkpoint::put_u32(&mut out, t.last.if_out_ucast);
            checkpoint::put_u64(&mut out, t.totals.in_octets);
            checkpoint::put_u64(&mut out, t.totals.out_octets);
            checkpoint::put_u64(&mut out, t.totals.in_ucast);
            checkpoint::put_u64(&mut out, t.totals.out_ucast);
            checkpoint::put_u64(&mut out, t.totals.exports);
        }
        out
    }

    /// Restore a collector from [`Collector::save_state`] bytes, consuming
    /// the cursor exactly. The blob is validated as hostile input: typed
    /// errors (never panics) on truncation, version skew, unsorted keys, or
    /// accounting that does not balance. The restored collector starts with
    /// detached metrics and the frozen test clock; use
    /// [`Collector::bind_obs`] to re-attach instrumentation.
    pub fn restore_state(bytes: &[u8]) -> Result<Collector, StateError> {
        let mut cur = Cur::new(bytes);
        let c = Collector::restore_from(&mut cur)?;
        cur.finish()?;
        Ok(c)
    }

    /// Restore from an open cursor (the week-scan checkpoint nests the
    /// collector state inside its own), leaving the cursor just past the
    /// collector section.
    pub fn restore_from(cur: &mut Cur<'_>) -> Result<Collector, StateError> {
        let version = cur.u32()?;
        if version != COLLECTOR_STATE_VERSION {
            return Err(StateError::BadVersion(version));
        }
        let mut c = Collector::new();
        c.datagrams = cur.u64()?;
        c.errors.truncated = cur.u64()?;
        c.errors.bad_version = cur.u64()?;
        c.errors.unsupported_agent = cur.u64()?;
        c.errors.inconsistent = cur.u64()?;
        c.unattributed_errors = cur.u64()?;
        c.seq_opened = cur.u64()?;
        c.seq_recovered = cur.u64()?;
        c.latency_samples = cur.u64()?;

        // Per-source entry: 2×u32 key + 3×u32 + u128 + 2×bool + 5×u64.
        let n_sources = cur.count(78)?;
        let mut prev_key: Option<(u32, u32)> = None;
        for _ in 0..n_sources {
            let agent = cur.u32()?;
            let sub_agent = cur.u32()?;
            if prev_key.is_some_and(|p| p >= (agent, sub_agent)) {
                return Err(StateError::Invalid("source keys not strictly increasing"));
            }
            prev_key = Some((agent, sub_agent));
            let mut s = SourceState::new();
            s.last_seq = cur.u32()?;
            s.window = cur.u128()?;
            s.last_uptime = cur.u32()?;
            s.started = cur.bool()?;
            s.error_run = cur.u32()?;
            s.stats.received = cur.u64()?;
            s.stats.duplicates = cur.u64()?;
            s.stats.lost = cur.u64()?;
            s.stats.restarts = cur.u64()?;
            s.stats.decode_errors = cur.u64()?;
            s.stats.quarantined = cur.bool()?;
            // Rebuild the aggregate from per-source sums: the blob then
            // cannot smuggle in an aggregate that disagrees with the
            // sources it claims to summarize.
            c.agg.accepted = c.agg.accepted.saturating_add(s.stats.received);
            c.agg.duplicates = c.agg.duplicates.saturating_add(s.stats.duplicates);
            c.agg.lost = c.agg.lost.saturating_add(s.stats.lost);
            c.agg.restarts = c.agg.restarts.saturating_add(s.stats.restarts);
            c.agg.quarantined += u64::from(s.stats.quarantined);
            let key = SourceKey { agent: Ipv4Addr::from(agent), sub_agent };
            c.sources.insert(key, s);
        }

        // Per-counter entry: 2×u32 key + CounterSample (5×u32 + 3×u64) +
        // CounterTotals (5×u64).
        let n_counters = cur.count(92)?;
        let mut prev_key: Option<(u32, u32)> = None;
        for _ in 0..n_counters {
            let agent = cur.u32()?;
            let source_id = cur.u32()?;
            if prev_key.is_some_and(|p| p >= (agent, source_id)) {
                return Err(StateError::Invalid("counter keys not strictly increasing"));
            }
            prev_key = Some((agent, source_id));
            let last = CounterSample {
                sequence: cur.u32()?,
                source_id: cur.u32()?,
                if_index: cur.u32()?,
                if_speed: cur.u64()?,
                if_in_octets: cur.u64()?,
                if_in_ucast: cur.u32()?,
                if_out_octets: cur.u64()?,
                if_out_ucast: cur.u32()?,
            };
            let totals = CounterTotals {
                in_octets: cur.u64()?,
                out_octets: cur.u64()?,
                in_ucast: cur.u64()?,
                out_ucast: cur.u64()?,
                exports: cur.u64()?,
            };
            c.counters.insert((Ipv4Addr::from(agent), source_id), CounterTrack { last, totals });
        }

        // The no-silent-discard invariant must already hold in the blob.
        let errors = c.errors.total();
        let accounted =
            c.agg.accepted.checked_add(c.agg.duplicates).and_then(|v| v.checked_add(errors));
        if accounted != Some(c.datagrams) {
            return Err(StateError::Invalid("datagram accounting does not balance"));
        }
        if c.seq_opened.checked_sub(c.seq_recovered) != Some(c.agg.lost) {
            return Err(StateError::Invalid("loss accounting does not balance"));
        }
        Ok(c)
    }

    /// Attach an event journal: restart detections and quarantine firings
    /// are recorded for the flight recorder. Past events are not
    /// replayed — the journal is live-run evidence, not state.
    pub fn bind_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    /// Attach a restored collector to live instrumentation: register the
    /// `sflow_*` families in the bundle's registry, replay the checkpointed
    /// totals into them, and adopt the bundle's clock. After this, the
    /// registry reads exactly as if the collector had run uninterrupted
    /// under it (latency observations replay as zero-duration samples,
    /// which is what the frozen test clock records anyway).
    pub fn bind_obs(&mut self, obs: &Obs) {
        let m = CollectorMetrics::register(&obs.registry);
        m.datagrams.add(self.datagrams);
        m.accepted.add(self.agg.accepted);
        m.duplicates.add(self.agg.duplicates);
        m.truncated.add(self.errors.truncated);
        m.bad_version.add(self.errors.bad_version);
        m.unsupported_agent.add(self.errors.unsupported_agent);
        m.inconsistent.add(self.errors.inconsistent);
        m.unattributed.add(self.unattributed_errors);
        m.lost.add(self.seq_opened);
        m.recovered.add(self.seq_recovered);
        m.restarts.add(self.agg.restarts);
        m.sources.set_max(u64::try_from(self.sources.len()).unwrap_or(u64::MAX));
        m.quarantined_sources.set_max(self.agg.quarantined);
        for _ in 0..self.latency_samples {
            m.ingest_ns.observe(0);
        }
        self.metrics = m;
        self.clock = Arc::clone(&obs.clock);
    }
}

/// Wrap-safe counter delta for 32-bit cumulative counters.
pub fn wrap_safe_delta32(prev: u32, cur: u32) -> u32 {
    cur.wrapping_sub(prev)
}

/// Wrap-safe counter delta for 64-bit cumulative counters.
pub fn wrap_safe_delta64(prev: u64, cur: u64) -> u64 {
    cur.wrapping_sub(prev)
}

/// Best-effort source attribution for an undecodable buffer: if the fixed
/// 16-byte header prefix survived (version 5, IPv4 agent), read the agent
/// address and sub-agent id from their fixed offsets.
fn peek_source(bytes: &[u8]) -> Option<SourceKey> {
    if peek_u32(bytes, 0)? != 5 || peek_u32(bytes, 4)? != 1 {
        return None;
    }
    let agent = Ipv4Addr::from(peek_u32(bytes, 8)?);
    let sub_agent = peek_u32(bytes, 12)?;
    Some(SourceKey { agent, sub_agent })
}

/// Big-endian u32 at a byte offset, if present.
fn peek_u32(bytes: &[u8], off: usize) -> Option<u32> {
    match *bytes.get(off..off.checked_add(4)?)? {
        [a, b, c, d] => Some(u32::from_be_bytes([a, b, c, d])),
        _ => None,
    }
}

/// Restart bookkeeping: reset the window to the new head.
fn restart(src: &mut SourceState, dg: &Datagram) {
    src.stats.restarts += 1;
    src.stats.received += 1;
    src.last_seq = dg.sequence;
    src.window = 1;
    src.last_uptime = dg.uptime_ms;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dg(sub: u32, seq: u32) -> Vec<u8> {
        dg_up(sub, seq, seq.wrapping_mul(40))
    }

    fn dg_up(sub: u32, seq: u32, uptime_ms: u32) -> Vec<u8> {
        Datagram {
            agent_address: Ipv4Addr::new(10, 255, 0, 1),
            sub_agent_id: sub,
            sequence: seq,
            uptime_ms,
            samples: vec![],
            counters: vec![],
        }
        .encode()
    }

    fn key(sub: u32) -> SourceKey {
        SourceKey { agent: Ipv4Addr::new(10, 255, 0, 1), sub_agent: sub }
    }

    #[test]
    fn in_order_stream_has_no_loss() {
        let mut c = Collector::new();
        for seq in 1..=100u32 {
            assert!(matches!(c.ingest(&dg(0, seq)), Ingest::Accepted(_)));
        }
        let s = c.stats();
        assert_eq!(s.accepted, 100);
        assert_eq!(s.lost, 0);
        assert_eq!(s.duplicates, 0);
        assert_eq!(s.restarts, 0);
        assert!(s.loss_rate().abs() < 1e-9);
        assert!((s.compensation_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gaps_count_as_loss_and_compensation_scales() {
        let mut c = Collector::new();
        for seq in [1u32, 2, 5, 6, 10] {
            c.ingest(&dg(0, seq));
        }
        let s = c.stats();
        assert_eq!(s.accepted, 5);
        assert_eq!(s.lost, 5); // 3,4 and 7,8,9
        assert!((s.loss_rate() - 0.5).abs() < 1e-9);
        assert!((s.compensation_factor() - 2.0).abs() < 1e-9);
        let mut e = TrafficEstimate::zero();
        e.add_raw(16_384, 1_000);
        assert_eq!(c.compensate(&e).bytes, e.bytes * 2);
        assert_eq!(c.compensate(&e).samples, e.samples);
    }

    #[test]
    fn duplicates_are_suppressed_head_and_windowed() {
        let mut c = Collector::new();
        c.ingest(&dg(0, 1));
        c.ingest(&dg(0, 2));
        assert_eq!(c.ingest(&dg(0, 2)), Ingest::Duplicate); // head repeat
        assert_eq!(c.ingest(&dg(0, 1)), Ingest::Duplicate); // windowed
        let s = c.stats();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.duplicates, 2);
        assert_eq!(s.lost, 0);
    }

    #[test]
    fn late_arrival_corrects_the_loss_estimate() {
        let mut c = Collector::new();
        c.ingest(&dg(0, 1));
        c.ingest(&dg(0, 3)); // gap: 2 provisionally lost
        assert_eq!(c.stats().lost, 1);
        assert!(matches!(c.ingest(&dg(0, 2)), Ingest::Accepted(_)));
        let s = c.stats();
        assert_eq!(s.lost, 0);
        assert_eq!(s.accepted, 3);
        // And the late one is now a duplicate if it comes again.
        assert_eq!(c.ingest(&dg(0, 2)), Ingest::Duplicate);
    }

    #[test]
    fn regression_beyond_window_is_a_restart_not_loss() {
        let mut c = Collector::new();
        for seq in 5_000..5_010u32 {
            c.ingest(&dg(0, seq));
        }
        assert!(matches!(c.ingest(&dg(0, 1)), Ingest::Accepted(_)));
        c.ingest(&dg(0, 2));
        let s = c.stats();
        assert_eq!(s.restarts, 1);
        assert_eq!(s.lost, 0);
        assert_eq!(s.accepted, 12);
    }

    #[test]
    fn forward_jump_with_uptime_reset_is_a_restart() {
        let mut c = Collector::new();
        c.ingest(&dg_up(0, 1_000, 4_000_000));
        // Rebooted agent whose new sequence landed far above: tiny uptime.
        assert!(matches!(c.ingest(&dg_up(0, 9_000, 40)), Ingest::Accepted(_)));
        let s = c.stats();
        assert_eq!(s.restarts, 1);
        assert_eq!(s.lost, 0);
    }

    #[test]
    fn sequence_accounting_survives_u32_wraparound() {
        let mut c = Collector::new();
        // Approach the wrap, cross it, keep going — with one dropped
        // datagram on each side of the boundary.
        let seqs = [u32::MAX - 3, u32::MAX - 2, u32::MAX, 1u32, 2, 3];
        for s in seqs {
            assert!(matches!(c.ingest(&dg(0, s)), Ingest::Accepted(_)));
        }
        let s = c.stats();
        assert_eq!(s.accepted, 6);
        assert_eq!(s.lost, 2); // u32::MAX-1 and 0
        assert_eq!(s.restarts, 0, "wraparound must not look like a restart");
        // A windowed duplicate across the boundary is still recognised.
        assert_eq!(c.ingest(&dg(0, u32::MAX)), Ingest::Duplicate);
        // And the lost pre-wrap sequence arriving late is accepted.
        assert!(matches!(c.ingest(&dg(0, u32::MAX - 1)), Ingest::Accepted(_)));
        assert_eq!(c.stats().lost, 1);
    }

    #[test]
    fn sources_are_tracked_independently() {
        let mut c = Collector::new();
        for seq in 1..=10u32 {
            c.ingest(&dg(0, seq));
        }
        for seq in [1u32, 5] {
            c.ingest(&dg(1, seq));
        }
        assert_eq!(c.source_stats(&key(0)).map(|s| s.lost), Some(0));
        assert_eq!(c.source_stats(&key(1)).map(|s| s.lost), Some(3));
        assert_eq!(c.stats().sources, 2);
    }

    #[test]
    fn decode_errors_are_counted_by_kind_and_attributed() {
        let mut c = Collector::new();
        // Garbage with no recoverable header.
        assert!(matches!(c.ingest(&[1, 2, 3]), Ingest::Rejected(DecodeError::Truncated)));
        // A truncated-but-attributable datagram: valid 16-byte prefix.
        let full = dg(7, 1);
        let cut = full.get(..20).map(<[u8]>::to_vec);
        if let Some(prefix) = cut {
            assert!(matches!(c.ingest(&prefix), Ingest::Rejected(DecodeError::Truncated)));
        }
        let s = c.stats();
        assert_eq!(s.decode_errors.truncated, 2);
        assert_eq!(s.decode_errors.total(), 2);
        assert_eq!(s.unattributed_errors, 1);
        assert_eq!(c.source_stats(&key(7)).map(|s| s.decode_errors), Some(1));
        // Accounting invariant: nothing silently discarded.
        assert_eq!(s.datagrams, s.accepted + s.duplicates + s.decode_errors.total());
    }

    #[test]
    fn garbage_run_quarantines_the_source() {
        let mut c = Collector::new();
        let full = dg(3, 1);
        let prefix: Vec<u8> = full.iter().copied().take(20).collect();
        for _ in 0..QUARANTINE_THRESHOLD {
            c.ingest(&prefix);
        }
        assert_eq!(c.stats().quarantined_sources, 1);
        assert_eq!(c.source_stats(&key(3)).map(|s| s.quarantined), Some(true));
        // A clean decode ends the error run but the flag stays for the
        // report.
        c.ingest(&dg(3, 2));
        assert_eq!(c.stats().quarantined_sources, 1);
    }

    #[test]
    fn counter_deltas_are_wrap_safe() {
        let push = u64::MAX - 500;
        let mk = |seq: u32, octets: u64, ucast: u32| {
            Datagram {
                agent_address: Ipv4Addr::new(10, 255, 0, 1),
                sub_agent_id: 0,
                sequence: seq,
                uptime_ms: seq * 40,
                samples: vec![],
                counters: vec![CounterSample {
                    sequence: seq,
                    source_id: 9,
                    if_index: 9,
                    if_speed: 10_000_000_000,
                    if_in_octets: octets.wrapping_add(push),
                    if_in_ucast: ucast.wrapping_add(u32::MAX - 5),
                    if_out_octets: 0,
                    if_out_ucast: 0,
                }],
            }
            .encode()
        };
        let mut c = Collector::new();
        // First export sits just below the wrap; second crosses it.
        c.ingest(&mk(1, 100, 2));
        c.ingest(&mk(2, 90_000, 900));
        let t = c.counter_totals(Ipv4Addr::new(10, 255, 0, 1), 9).unwrap();
        assert_eq!(t.exports, 2);
        assert_eq!(t.in_octets, 89_900);
        assert_eq!(t.in_ucast, 898);
        assert_eq!(wrap_safe_delta32(u32::MAX - 10, 20), 31);
        assert_eq!(wrap_safe_delta64(u64::MAX, 0), 1);
    }

    #[test]
    fn aggregate_stats_match_a_per_source_recomputation() {
        let mut c = Collector::new();
        // A messy multi-source stream: gaps, duplicates, late arrivals,
        // restarts, attributed and unattributed garbage.
        for seq in [1u32, 2, 5, 5, 3, 9_000, 1] {
            c.ingest(&dg(0, seq));
        }
        c.ingest(&dg_up(1, 1_000, 4_000_000));
        c.ingest(&dg_up(1, 9_000, 40)); // forward jump + uptime reset
        let prefix: Vec<u8> = dg(2, 1).iter().copied().take(20).collect();
        for _ in 0..QUARANTINE_THRESHOLD {
            c.ingest(&prefix);
        }
        c.ingest(&[0u8; 3]);
        let s = c.stats();
        let mut accepted = 0;
        let mut duplicates = 0;
        let mut lost = 0;
        let mut restarts = 0;
        let mut quarantined = 0;
        for (_, st) in c.sources() {
            accepted += st.received;
            duplicates += st.duplicates;
            lost += st.lost;
            restarts += st.restarts;
            quarantined += usize::from(st.quarantined);
        }
        assert_eq!(s.accepted, accepted);
        assert_eq!(s.duplicates, duplicates);
        assert_eq!(s.lost, lost);
        assert_eq!(s.restarts, restarts);
        assert_eq!(s.quarantined_sources, quarantined);
        assert_eq!(s.sources, 3);
        assert_eq!(s.datagrams, s.accepted + s.duplicates + s.decode_errors.total());
    }

    #[test]
    fn live_metrics_mirror_the_stats_report() {
        let obs = ixp_obs::Obs::deterministic();
        let mut c = Collector::with_obs(&obs);
        for seq in [1u32, 2, 5, 5, 3] {
            c.ingest(&dg(0, seq));
        }
        c.ingest(&[0u8; 3]);
        let s = c.stats();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("sflow_datagrams_total"), Some(s.datagrams));
        assert_eq!(snap.counter("sflow_accepted_total"), Some(s.accepted));
        assert_eq!(snap.counter("sflow_duplicates_total"), Some(s.duplicates));
        assert_eq!(snap.counter("sflow_restarts_total"), Some(s.restarts));
        // Net loss = gaps opened − late arrivals recovered.
        let opened = snap.counter("sflow_seq_lost_total").unwrap_or(0);
        let recovered = snap.counter("sflow_seq_recovered_total").unwrap_or(0);
        assert_eq!(opened, 2); // seqs 3 and 4 provisionally lost
        assert_eq!(recovered, 1); // seq 3 arrived late
        assert_eq!(s.lost, opened - recovered);
        assert_eq!(
            snap.counter("sflow_decode_errors_total{kind=\"truncated\"}"),
            Some(s.decode_errors.truncated)
        );
        assert_eq!(snap.counter("sflow_unattributed_errors_total"), Some(1));
        match snap.get("sflow_sources") {
            Some(ixp_obs::MetricValue::Gauge(n)) => assert_eq!(*n, 1),
            other => panic!("unexpected sflow_sources entry: {other:?}"),
        }
        // The sampled latency histogram saw at least the first ingest.
        match snap.get("sflow_ingest_duration_ns") {
            Some(ixp_obs::MetricValue::Histogram(h)) => assert!(h.count >= 1),
            other => panic!("unexpected latency entry: {other:?}"),
        }
    }

    /// A collector exercising every state dimension: gaps, late arrivals,
    /// duplicates, restarts, quarantine, counter tracks, unattributed
    /// garbage.
    fn messy_collector() -> Collector {
        let mut c = Collector::new();
        for seq in [1u32, 2, 5, 5, 3, 9_000, 1] {
            c.ingest(&dg(0, seq));
        }
        c.ingest(&dg_up(1, 1_000, 4_000_000));
        c.ingest(&dg_up(1, 9_000, 40));
        let prefix: Vec<u8> = dg(2, 1).iter().copied().take(20).collect();
        for _ in 0..QUARANTINE_THRESHOLD {
            c.ingest(&prefix);
        }
        c.ingest(&[0u8; 3]);
        c
    }

    #[test]
    fn save_restore_round_trips_and_stays_byte_identical() {
        let c = messy_collector();
        let blob = c.save_state();
        let restored = Collector::restore_state(&blob).expect("restore");
        assert_eq!(restored.stats(), c.stats());
        assert_eq!(restored.save_state(), blob, "save → restore → save changed bytes");
    }

    #[test]
    fn restore_then_continue_matches_uninterrupted_run() {
        // Same stream ingested (a) straight through and (b) with a
        // checkpoint/restore in the middle — the final state must be
        // byte-identical.
        let stream: Vec<Vec<u8>> =
            [1u32, 2, 5, 5, 3, 9_000, 1, 7, 4, 9_001].iter().map(|&s| dg(0, s)).collect();
        for cut in 0..=stream.len() {
            let mut a = Collector::new();
            for b in &stream {
                a.ingest(b);
            }
            let mut head = Collector::new();
            for b in stream.iter().take(cut) {
                head.ingest(b);
            }
            let mut resumed = Collector::restore_state(&head.save_state()).expect("restore");
            for b in stream.iter().skip(cut) {
                resumed.ingest(b);
            }
            assert_eq!(resumed.save_state(), a.save_state(), "divergence at cut {cut}");
        }
    }

    #[test]
    fn corrupted_or_truncated_state_is_a_typed_error_never_a_panic() {
        let blob = messy_collector().save_state();
        for cut in 0..blob.len() {
            let prefix: Vec<u8> = blob.iter().copied().take(cut).collect();
            assert!(Collector::restore_state(&prefix).is_err(), "cut {cut} restored");
        }
        // Single-byte corruption anywhere must be rejected (the payload has
        // no checksum of its own — the accounting and ordering validation
        // plus the envelope checksum in ixp-supervisor carry that — but it
        // must never panic and never restore an unbalanced state).
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            if let Some(b) = bad.get_mut(i) {
                *b ^= 0x80;
            }
            if let Ok(restored) = Collector::restore_state(&bad) {
                let s = restored.stats();
                assert_eq!(s.datagrams, s.accepted + s.duplicates + s.decode_errors.total());
            }
        }
    }

    #[test]
    fn restore_rejects_version_skew() {
        let mut blob = messy_collector().save_state();
        if let Some(b) = blob.get_mut(3) {
            *b = 99;
        }
        match Collector::restore_state(&blob) {
            Err(crate::checkpoint::StateError::BadVersion(99)) => {}
            other => panic!("expected BadVersion(99), got {:?}", other.err()),
        }
    }

    #[test]
    fn bind_obs_replays_checkpointed_totals_into_a_fresh_registry() {
        // Run instrumented; checkpoint; restore into a new registry. Both
        // registries must snapshot identically under the frozen clock.
        let obs_a = ixp_obs::Obs::deterministic();
        let mut live = Collector::with_obs(&obs_a);
        for seq in [1u32, 2, 5, 5, 3] {
            live.ingest(&dg(0, seq));
        }
        live.ingest(&[0u8; 3]);
        let blob = live.save_state();

        let obs_b = ixp_obs::Obs::deterministic();
        let mut restored = Collector::restore_state(&blob).expect("restore");
        restored.bind_obs(&obs_b);
        assert_eq!(
            ixp_obs::json::render(&obs_a.snapshot()),
            ixp_obs::json::render(&obs_b.snapshot())
        );
    }

    #[test]
    fn never_panics_on_hostile_prefixes() {
        let mut c = Collector::new();
        let full = dg(0, 1);
        for cut in 0..full.len() {
            let prefix: Vec<u8> = full.iter().copied().take(cut).collect();
            let _ = c.ingest(&prefix);
        }
        let s = c.stats();
        assert_eq!(s.datagrams, full.len() as u64);
        assert_eq!(s.datagrams, s.accepted + s.duplicates + s.decode_errors.total());
    }
}
