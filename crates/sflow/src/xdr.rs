//! Minimal XDR-style (RFC 4506) primitives: big-endian u32-aligned encoding,
//! which is what the sFlow v5 specification uses throughout.

use bytes::BufMut;

use crate::datagram::DecodeError;

/// Pad a byte length up to the next multiple of four. Saturates instead of
/// wrapping for lengths within 3 of `usize::MAX` (which no real datagram
/// can reach, but a forged length field can claim).
pub fn pad4(len: usize) -> usize {
    len.saturating_add(3) & !3
}

/// Append an opaque byte string with XDR padding (no length prefix; sFlow
/// fields carry explicit separate lengths).
pub fn put_opaque(out: &mut Vec<u8>, data: &[u8]) {
    out.put_slice(data);
    let padding = pad4(data.len()) - data.len();
    out.put_bytes(0, padding);
}

/// A forward-only reader over an XDR byte stream.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read one big-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        match self.data.get(self.pos..self.pos.wrapping_add(4)) {
            Some(&[a, b, c, d]) => {
                self.pos += 4;
                Ok(u32::from_be_bytes([a, b, c, d]))
            }
            _ => Err(DecodeError::Truncated),
        }
    }

    /// Read `len` opaque bytes plus their XDR padding.
    pub fn opaque(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let padded = pad4(len);
        if self.remaining() < padded {
            return Err(DecodeError::Truncated);
        }
        let end = self.pos.checked_add(len).ok_or(DecodeError::Truncated)?;
        let out = self.data.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = self.pos.saturating_add(padded);
        Ok(out)
    }

    /// Skip `len` bytes exactly (no padding).
    pub fn skip(&mut self, len: usize) -> Result<(), DecodeError> {
        if self.remaining() < len {
            return Err(DecodeError::Truncated);
        }
        self.pos = self.pos.saturating_add(len);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad4_rounds_up() {
        assert_eq!(pad4(0), 0);
        assert_eq!(pad4(1), 4);
        assert_eq!(pad4(4), 4);
        assert_eq!(pad4(5), 8);
        assert_eq!(pad4(128), 128);
    }

    #[test]
    fn opaque_round_trip() {
        let mut buf = Vec::new();
        put_opaque(&mut buf, b"hello");
        assert_eq!(buf.len(), 8);
        let mut r = Reader::new(&buf);
        assert_eq!(r.opaque(5).unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn u32_sequence() {
        let mut buf = Vec::new();
        bytes::BufMut::put_u32(&mut buf, 5);
        bytes::BufMut::put_u32(&mut buf, 0xdead_beef);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 5);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u32().unwrap_err(), DecodeError::Truncated);
    }
}
