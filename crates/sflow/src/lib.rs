//! # ixp-sflow
//!
//! An implementation of the subset of **sFlow version 5** that the IMC'13
//! IXP study rests on: flow samples carrying the first bytes of randomly
//! sampled Ethernet frames, shipped in XDR-encoded datagrams from the
//! switch agents to a collector.
//!
//! The study's measurement apparatus (paper §2.1) is:
//!
//! * random sampling of **1 out of 16 384** frames on every public-fabric
//!   port,
//! * capture of the **first 128 bytes** of each sampled frame, and
//! * continuous collection over 17 weeks.
//!
//! This crate provides both halves of that apparatus:
//!
//! * [`Datagram`]/[`FlowSample`] — faithful encode/decode of the v5 wire
//!   format (datagram header, flow-sample header, raw-packet-header record),
//!   so the analysis side works on *bytes*, exactly like a real collector;
//! * [`Sampler`] — the per-port sampling process (geometric skip counts, the
//!   textbook implementation of sFlow's random 1-in-N sampling) plus snippet
//!   truncation; and
//! * [`accounting`] — scaling sampled bytes/frames back up to traffic
//!   estimates (1 sample ≙ N frames), which is how every traffic share in
//!   the paper is computed; and
//! * [`collector`] — the fault-tolerant collector front-end: per-source
//!   sequence accounting (loss estimation, duplicate suppression, restart
//!   detection), counter-wrap-safe deltas, and loss compensation, because
//!   sFlow rides UDP and a 17-week campaign will see every failure mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod checkpoint;
pub mod collector;
pub mod datagram;
pub mod metrics;
pub mod sampler;

pub mod xdr;

pub use accounting::TrafficEstimate;
pub use checkpoint::StateError;
pub use collector::{Collector, CollectorStats, CounterTotals, DecodeErrorCounts, Ingest, SourceKey, SourceStats};
pub use metrics::CollectorMetrics;
pub use datagram::{CounterSample, Datagram, DecodeError, FlowSample, RawPacketHeader, HEADER_PROTO_ETHERNET};
pub use sampler::{Sampler, SamplerConfig, SNIPPET_LEN};

/// The sampling rate used by the studied IXP: 1 out of 16 384 frames.
pub const PAPER_SAMPLING_RATE: u32 = 16_384;
