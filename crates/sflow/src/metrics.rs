//! Live collector metrics (ixp-obs instrumentation).
//!
//! [`CollectorMetrics`] mirrors [`CollectorStats`](crate::collector::CollectorStats)
//! as *live* registry metrics, so a running ingest exposes the same
//! accounting the end-of-run health report prints — datagrams by outcome,
//! sequence-gap loss, restarts, quarantine — without a stats walk.
//!
//! Two deliberate deviations from the report shape, forced by metric
//! monotonicity:
//!
//! * the report's `lost` is *net of late arrivals* (a late datagram takes
//!   its provisional loss back), but a counter must never move backwards,
//!   so the registry carries `sflow_seq_lost_total` (gaps opened) and
//!   `sflow_seq_recovered_total` (late arrivals that closed one) and the
//!   net estimate is their difference;
//! * `sources` / `quarantined_sources` are gauges, updated on transition.
//!
//! Ingest latency is recorded into `sflow_ingest_duration_ns`, sampled one
//! datagram in [`LATENCY_SAMPLE_EVERY`](crate::collector::LATENCY_SAMPLE_EVERY)
//! so the hot loop does not pay two clock reads per datagram.
//!
//! A default-constructed (detached) bundle counts into thin air: the
//! uninstrumented path pays one uncontended atomic add per datagram.

use ixp_obs::{Counter, Gauge, Histogram, Registry};

use crate::collector::Ingest;
use crate::datagram::DecodeError;

/// Counter/gauge bundle for collector ingest outcomes.
#[derive(Debug, Clone, Default)]
pub struct CollectorMetrics {
    /// Every buffer handed to `ingest` (`sflow_datagrams_total`).
    pub datagrams: Counter,
    /// Unique decodable datagrams accepted.
    pub accepted: Counter,
    /// Duplicates suppressed (head repeats and windowed).
    pub duplicates: Counter,
    /// Decode errors: `DecodeError::Truncated`.
    pub truncated: Counter,
    /// Decode errors: `DecodeError::BadVersion`.
    pub bad_version: Counter,
    /// Decode errors: `DecodeError::UnsupportedAgentAddress`.
    pub unsupported_agent: Counter,
    /// Decode errors: `DecodeError::Inconsistent`.
    pub inconsistent: Counter,
    /// Decode errors too damaged to attribute to a source.
    pub unattributed: Counter,
    /// Sequence gaps opened: datagrams provisionally counted lost.
    pub lost: Counter,
    /// Late arrivals that took a provisional loss back.
    pub recovered: Counter,
    /// Agent restarts detected.
    pub restarts: Counter,
    /// Distinct sources seen so far.
    pub sources: Gauge,
    /// Sources currently flagged by the garbage quarantine.
    pub quarantined_sources: Gauge,
    /// Sampled per-`ingest` latency, in nanoseconds.
    pub ingest_ns: Histogram,
}

impl CollectorMetrics {
    /// A metrics bundle counting into thin air (no registry).
    pub fn detached() -> CollectorMetrics {
        CollectorMetrics::default()
    }

    /// Register the bundle in `registry` under the `sflow_*` families.
    pub fn register(registry: &Registry) -> CollectorMetrics {
        let kind =
            |k: &str| registry.counter(&format!("sflow_decode_errors_total{{kind=\"{k}\"}}"));
        CollectorMetrics {
            datagrams: registry.counter("sflow_datagrams_total"),
            accepted: registry.counter("sflow_accepted_total"),
            duplicates: registry.counter("sflow_duplicates_total"),
            truncated: kind("truncated"),
            bad_version: kind("bad_version"),
            unsupported_agent: kind("unsupported_agent_address"),
            inconsistent: kind("inconsistent"),
            unattributed: registry.counter("sflow_unattributed_errors_total"),
            lost: registry.counter("sflow_seq_lost_total"),
            recovered: registry.counter("sflow_seq_recovered_total"),
            restarts: registry.counter("sflow_restarts_total"),
            sources: registry.gauge("sflow_sources"),
            quarantined_sources: registry.gauge("sflow_quarantined_sources"),
            ingest_ns: registry.duration_histogram("sflow_ingest_duration_ns"),
        }
    }

    /// Count one ingest outcome (the per-datagram hot-path add).
    pub fn record(&self, outcome: &Ingest) {
        self.datagrams.inc();
        match outcome {
            Ingest::Accepted(_) => self.accepted.inc(),
            Ingest::Duplicate => self.duplicates.inc(),
            Ingest::Rejected(e) => match e {
                DecodeError::Truncated => self.truncated.inc(),
                DecodeError::BadVersion(_) => self.bad_version.inc(),
                DecodeError::UnsupportedAgentAddress(_) => self.unsupported_agent.inc(),
                DecodeError::Inconsistent => self.inconsistent.inc(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_route_to_the_right_counter() {
        let registry = Registry::new();
        let m = CollectorMetrics::register(&registry);
        m.record(&Ingest::Duplicate);
        m.record(&Ingest::Rejected(DecodeError::Truncated));
        m.record(&Ingest::Rejected(DecodeError::BadVersion(4)));
        assert_eq!(m.datagrams.get(), 3);
        assert_eq!(m.duplicates.get(), 1);
        assert_eq!(m.truncated.get(), 1);
        assert_eq!(m.bad_version.get(), 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sflow_datagrams_total"), Some(3));
        assert_eq!(
            snap.counter("sflow_decode_errors_total{kind=\"bad_version\"}"),
            Some(1)
        );
    }
}
