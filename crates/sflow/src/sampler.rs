//! The per-port sampling process.
//!
//! sFlow's random 1-in-N sampling is implemented the way real ASICs do it:
//! after each sample, draw the number of frames to *skip* uniformly from
//! `[0, 2N)`, giving a mean inter-sample gap of N and an unbiased sample
//! stream (the absence of sampling bias in the studied IXP's deployment is
//! discussed in the Anatomy paper the study builds on).
//!
//! The sampler also performs the 128-byte snippet truncation that shapes
//! everything downstream: the analysis only ever gets `SNIPPET_LEN` bytes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::datagram::{Datagram, FlowSample, RawPacketHeader, HEADER_PROTO_ETHERNET};

/// Number of leading frame bytes captured per sample (paper §2.1).
pub const SNIPPET_LEN: usize = 128;

/// Configuration of one sampling agent.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Sampling rate N: one frame out of N is sampled on average.
    pub rate: u32,
    /// ifIndex of the monitored port (becomes the flow-sample source id).
    pub source_id: u32,
    /// IPv4 address of the exporting agent.
    pub agent_address: std::net::Ipv4Addr,
    /// Samples per exported datagram.
    pub samples_per_datagram: usize,
    /// RNG seed (derived per-port by the generator for reproducibility).
    pub seed: u64,
}

impl SamplerConfig {
    /// The paper's configuration: rate 16 384, a typical batch of 7 samples
    /// per datagram (bounded by the 1 500-byte export MTU).
    pub fn paper(source_id: u32, agent_address: std::net::Ipv4Addr, seed: u64) -> Self {
        SamplerConfig {
            rate: crate::PAPER_SAMPLING_RATE,
            source_id,
            agent_address,
            samples_per_datagram: 7,
            seed,
        }
    }
}

/// A sampling agent for one switch port: feed it every frame, collect the
/// datagrams it decides to export.
#[derive(Debug)]
pub struct Sampler {
    config: SamplerConfig,
    rng: SmallRng,
    skip: u32,
    sample_pool: u32,
    sample_seq: u32,
    datagram_seq: u32,
    uptime_ms: u32,
    pending: Vec<FlowSample>,
}

impl Sampler {
    /// Create a sampler; the first skip count is drawn immediately.
    pub fn new(config: SamplerConfig) -> Self {
        // ixp-lint: allow(panic-path) rate is operator configuration, not wire input
        assert!(config.rate >= 1, "sampling rate must be at least 1");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let skip = draw_skip(&mut rng, config.rate);
        Sampler {
            config,
            rng,
            skip,
            sample_pool: 0,
            sample_seq: 0,
            datagram_seq: 0,
            uptime_ms: 0,
            pending: Vec::new(),
        }
    }

    /// The configured sampling rate.
    pub fn rate(&self) -> u32 {
        self.config.rate
    }

    /// Observe one frame on the wire. Returns a datagram when the pending
    /// batch fills up.
    pub fn observe(&mut self, frame: &[u8]) -> Option<Datagram> {
        self.sample_pool = self.sample_pool.wrapping_add(1);
        self.uptime_ms = self.uptime_ms.wrapping_add(1);
        if self.skip > 0 {
            self.skip -= 1;
            return None;
        }
        self.skip = draw_skip(&mut self.rng, self.config.rate);
        self.take_sample(frame);
        if self.pending.len() >= self.config.samples_per_datagram {
            Some(self.export())
        } else {
            None
        }
    }

    /// Sample a frame unconditionally (used by the workload generator, which
    /// synthesises the *sampled* stream directly instead of materialising
    /// all 16 384× frames — statistically equivalent and 4 orders of
    /// magnitude cheaper).
    pub fn force_sample(&mut self, frame: &[u8]) -> Option<Datagram> {
        self.sample_pool = self.sample_pool.wrapping_add(self.config.rate);
        self.uptime_ms = self.uptime_ms.wrapping_add(1);
        self.take_sample(frame);
        if self.pending.len() >= self.config.samples_per_datagram {
            Some(self.export())
        } else {
            None
        }
    }

    fn take_sample(&mut self, frame: &[u8]) {
        self.sample_seq = self.sample_seq.wrapping_add(1);
        // ixp-lint: allow(no-index) the end index is clamped to frame.len()
        let captured = &frame[..frame.len().min(SNIPPET_LEN)];
        self.pending.push(FlowSample {
            sequence: self.sample_seq,
            source_id: self.config.source_id,
            sampling_rate: self.config.rate,
            sample_pool: self.sample_pool,
            drops: 0,
            input_if: self.config.source_id,
            output_if: 0,
            record: RawPacketHeader {
                protocol: HEADER_PROTO_ETHERNET,
                frame_length: frame.len() as u32,
                stripped: 0,
                header: captured.to_vec(),
            },
        });
    }

    /// Flush any pending samples into a final datagram.
    pub fn flush(&mut self) -> Option<Datagram> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.export())
        }
    }

    fn export(&mut self) -> Datagram {
        self.datagram_seq = self.datagram_seq.wrapping_add(1);
        Datagram {
            agent_address: self.config.agent_address,
            sub_agent_id: 0,
            sequence: self.datagram_seq,
            uptime_ms: self.uptime_ms,
            samples: std::mem::take(&mut self.pending),
            counters: Vec::new(),
        }
    }
}

fn draw_skip(rng: &mut SmallRng, rate: u32) -> u32 {
    if rate == 1 {
        0
    } else {
        rng.gen_range(0..2 * rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn test_config(rate: u32) -> SamplerConfig {
        SamplerConfig {
            rate,
            source_id: 12,
            agent_address: Ipv4Addr::new(10, 0, 0, 2),
            samples_per_datagram: 4,
            seed: 7,
        }
    }

    #[test]
    fn rate_one_samples_everything() {
        let mut s = Sampler::new(test_config(1));
        let mut samples = 0;
        for i in 0..100u32 {
            let frame = i.to_be_bytes();
            if let Some(dg) = s.observe(&frame) {
                samples += dg.samples.len();
            }
        }
        samples += s.flush().map_or(0, |d| d.samples.len());
        assert_eq!(samples, 100);
    }

    #[test]
    fn mean_sampling_rate_is_unbiased() {
        let rate = 64;
        let mut s = Sampler::new(test_config(rate));
        let frames = 400_000u32;
        let mut samples = 0usize;
        for _ in 0..frames {
            if let Some(dg) = s.observe(&[0u8; 64]) {
                samples += dg.samples.len();
            }
        }
        samples += s.flush().map_or(0, |d| d.samples.len());
        let expected = frames as f64 / rate as f64;
        let observed = samples as f64;
        // 3-sigma bound for a mean-N geometric-ish process.
        assert!(
            (observed - expected).abs() < 4.0 * expected.sqrt() + 50.0,
            "observed {observed} vs expected {expected}"
        );
    }

    #[test]
    fn snippet_is_capped_at_128_bytes() {
        let mut s = Sampler::new(test_config(1));
        let frame = vec![0x5a; 1514];
        let dg = loop {
            if let Some(dg) = s.observe(&frame) {
                break dg;
            }
        };
        for sample in &dg.samples {
            assert_eq!(sample.record.header.len(), SNIPPET_LEN);
            assert_eq!(sample.record.frame_length, 1514);
        }
    }

    #[test]
    fn short_frames_are_captured_whole() {
        let mut s = Sampler::new(test_config(1));
        let frame = vec![0x11; 60];
        let dg = loop {
            if let Some(dg) = s.observe(&frame) {
                break dg;
            }
        };
        assert_eq!(dg.samples[0].record.header.len(), 60);
    }

    #[test]
    fn force_sample_accounts_full_pool() {
        let mut s = Sampler::new(test_config(1000));
        let mut exported = Vec::new();
        for _ in 0..8 {
            if let Some(dg) = s.force_sample(&[0u8; 64]) {
                exported.push(dg);
            }
        }
        if let Some(dg) = s.flush() {
            exported.push(dg);
        }
        let last = exported.last().unwrap().samples.last().unwrap();
        // 8 forced samples at rate 1000 stand for 8 000 observed frames.
        assert_eq!(last.sample_pool, 8 * 1000);
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut s = Sampler::new(test_config(1));
        let mut last_seq = 0;
        let mut last_dg_seq = 0;
        for _ in 0..40 {
            if let Some(dg) = s.observe(&[0u8; 64]) {
                assert!(dg.sequence > last_dg_seq);
                last_dg_seq = dg.sequence;
                for sample in &dg.samples {
                    assert!(sample.sequence > last_seq);
                    last_seq = sample.sequence;
                }
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = || {
            let mut s = Sampler::new(test_config(16));
            let mut out = Vec::new();
            for i in 0..5_000u32 {
                if let Some(dg) = s.observe(&i.to_be_bytes()) {
                    out.push(dg.encode());
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
