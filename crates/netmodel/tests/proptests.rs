//! Property tests over the synthetic Internet's structural invariants.

use proptest::prelude::*;

use ixp_netmodel::{InternetModel, Locality, MemberId, ScaleConfig, ServerFlags, Week};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Model-wide invariants hold for any seed.
    #[test]
    fn model_invariants_for_any_seed(seed in 0u64..1_000_000) {
        let model = InternetModel::generate(ScaleConfig::tiny(), seed);

        // Prefixes are disjoint and sorted.
        let mut last_end = 0u64;
        for e in model.routing.iter() {
            prop_assert!(e.prefix.base as u64 >= last_end);
            last_end = e.prefix.base as u64 + e.prefix.size();
        }

        // Server IPs are unique and resolve to their hosting AS.
        let mut ips: Vec<u32> = model.servers.servers().iter().map(|s| u32::from(s.ip)).collect();
        let n = ips.len();
        ips.sort_unstable();
        ips.dedup();
        prop_assert_eq!(ips.len(), n);

        // Locality classes partition the AS set.
        let mut class_counts = [0usize; 3];
        for info in model.registry.iter() {
            match model.graph.locality(&model.registry, info.asn).unwrap() {
                Locality::Member => class_counts[0] += 1,
                Locality::NearMember => class_counts[1] += 1,
                Locality::Global => class_counts[2] += 1,
            }
        }
        prop_assert_eq!(class_counts.iter().sum::<usize>(), model.registry.len());

        // Stable ⇒ active in every week.
        for s in model.servers.servers() {
            if s.flags.has(ServerFlags::STABLE) {
                for w in Week::all() {
                    prop_assert!(s.exists_in(w));
                }
            }
        }

        // Membership counts grow monotonically.
        let mut last = 0;
        for w in Week::all() {
            let m = model.member_count(w);
            prop_assert!(m >= last);
            last = m;
        }
    }

    /// Client address mapping is total and AS-consistent for any seed.
    #[test]
    fn client_mapping_total(seed in 0u64..100_000, probe in 0u64..6_000) {
        let model = InternetModel::generate(ScaleConfig::tiny(), seed);
        let client = probe % model.clients.universe();
        let addr = model.clients.address_of(&model.registry, &model.routing, client);
        prop_assert!(addr.is_some());
        let entry = model.routing.resolve(addr.unwrap());
        prop_assert!(entry.is_some());
        let as_idx = model.clients.as_of(client);
        prop_assert_eq!(entry.unwrap().origin, model.registry.by_index(as_idx).asn);
    }

    /// Peering matrices stay symmetric at any size/density.
    #[test]
    fn peering_symmetry(n in 2usize..60, density in 0.0f64..1.0, seed in any::<u64>()) {
        let m = ixp_netmodel::PeeringMatrix::generate(n, density, seed);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                prop_assert_eq!(m.peers(MemberId(a), MemberId(b)), m.peers(MemberId(b), MemberId(a)));
            }
        }
    }
}
